#!/usr/bin/env python3
"""Scenario: an HTTPS file server under the four Figure-13 configurations.

Serves 256 KiB files from the page cache (the paper's C2 state) through
nginx+wrk models and compares: software kTLS (https), TLS offload,
TLS offload + zero-copy sendfile, and plain http — printing single-core
throughput and where the cycles went.

Run:  python examples/https_file_server.py
"""

from repro.experiments.nginx_bench import VARIANTS, run_nginx
from repro.harness.report import Table, ratio_label


def main() -> None:
    table = Table(
        ["variant", "Gbps (1 core)", "busy cores", "requests", "vs https"],
        title="HTTPS file server, 256KiB files in page cache (C2)",
    )
    results = {}
    for variant in VARIANTS:
        results[variant] = run_nginx(
            variant,
            storage="c2",
            file_size=256 * 1024,
            server_cores=1,
            connections=24,
            measure=8e-3,
        )
    base = results["https"].goodput_gbps
    for variant in VARIANTS:
        r = results[variant]
        table.row(variant, r.goodput_gbps, r.busy_cores, r.requests, ratio_label(r.goodput_gbps, base))
    table.show()
    print()
    print("The offload bars sit between https and http: the NIC took the")
    print("crypto, zero-copy removed the bounce buffer, and what remains")
    print("is the per-packet cost of the software TCP/IP stack.")


if __name__ == "__main__":
    main()
