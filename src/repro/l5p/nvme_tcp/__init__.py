"""NVMe over TCP: PDU layer, offload adapter, initiator (host) and
target (controller)."""

from repro.l5p.nvme_tcp.pdu import NvmeAdapter, NvmeConfig
from repro.l5p.nvme_tcp.host import NvmeTcpHost
from repro.l5p.nvme_tcp.target import NvmeTcpTarget

__all__ = ["NvmeAdapter", "NvmeConfig", "NvmeTcpHost", "NvmeTcpTarget"]
