"""A miniature L5P used to unit-test the autonomous offload engines.

Wire format ("toy" protocol):

    +-------+------+----------+----------------+-----------+
    | 0xA5  | kind | len (2B) | body (len B)   | sum (4B)  |
    +-------+------+----------+----------------+-----------+

The offloaded operation XORs the body with a per-message key byte
(derived from the message index) and fills/verifies the trailing
checksum of the *wire* (transformed) body.  It satisfies every Table 3
precondition, making it the smallest honest exercise of the machinery.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.core.types import Direction, L5pAdapter, MessageDesc, MsgTransform, TxMsgState

MAGIC = 0xA5
KINDS = (1, 2, 3)
HEADER_LEN = 4
TRAILER_LEN = 4


def key_byte(msg_index: int) -> int:
    return (0x5A + msg_index) & 0xFF


def encode_message(body: bytes, msg_index: int) -> bytes:
    """The true on-wire form (what the NIC should produce on TX)."""
    transformed = bytes(b ^ key_byte(msg_index) for b in body)
    header = struct.pack(">BBH", MAGIC, 1, len(body))
    checksum = sum(transformed) & 0xFFFFFFFF
    return header + transformed + struct.pack(">I", checksum)


def plain_message(body: bytes) -> bytes:
    """What the L5P hands to TCP when offloading (dummy trailer)."""
    header = struct.pack(">BBH", MAGIC, 1, len(body))
    return header + body + b"\x00" * TRAILER_LEN


class _ToyTransform(MsgTransform):
    def __init__(self, direction: Direction, msg_index: int):
        self.direction = direction
        self.key = key_byte(msg_index)
        self.wire_sum = 0

    def process(self, data: bytes) -> bytes:
        out = bytes(b ^ self.key for b in data)
        wire = out if self.direction == Direction.TX else data
        self.wire_sum = (self.wire_sum + sum(wire)) & 0xFFFFFFFF
        return out

    def finalize_tx(self) -> bytes:
        return struct.pack(">I", self.wire_sum)

    def verify_rx(self, wire_trailer: bytes) -> bool:
        return wire_trailer == struct.pack(">I", self.wire_sum)


class ToyAdapter(L5pAdapter):
    name = "toy"
    header_len = HEADER_LEN
    magic_len = 2

    def parse_header(self, header: bytes, static_state) -> Optional[MessageDesc]:
        magic, kind, length = struct.unpack(">BBH", header)
        if magic != MAGIC or kind not in KINDS:
            return None
        return MessageDesc(
            kind=str(kind),
            header_len=HEADER_LEN,
            body_len=length,
            trailer_len=TRAILER_LEN,
            raw_header=header,
        )

    def check_magic(self, window: bytes, static_state) -> bool:
        return len(window) >= 2 and window[0] == MAGIC and window[1] in KINDS

    def begin_message(self, direction, static_state, desc, msg_index, rr_state=None):
        return _ToyTransform(direction, msg_index)

    def apply_packet_meta(self, meta, processed: bool, ok: bool, desc_kinds) -> None:
        meta.decrypted = processed and ok
        meta.crc_ok = ok


class ToyL5pOps:
    """Listing 2 implementation for tests: a seq->message map plus a
    recorder for resync requests."""

    def __init__(self, start_seq: int = 0):
        self.messages: list[tuple[int, int, bytes]] = []  # (start_seq, idx, bytes)
        self.next_seq = start_seq
        self.resync_requests: list[int] = []

    def stage(self, body: bytes) -> bytes:
        """Record a message as handed to TCP; returns its plain bytes."""
        wire = plain_message(body)
        self.messages.append((self.next_seq, len(self.messages), wire))
        self.next_seq += len(wire)
        return wire

    def l5o_get_tx_msgstate(self, tcpsn: int) -> Optional[TxMsgState]:
        for start, idx, wire in self.messages:
            if start <= tcpsn < start + len(wire):
                return TxMsgState(start_seq=start, msg_index=idx, wire_bytes=wire)
        return None

    def l5o_resync_rx_req(self, tcpsn: int) -> None:
        self.resync_requests.append(tcpsn)


def software_decode(wire: bytes, msg_index: int) -> bytes:
    """Receiver-side software fallback: parse + verify + un-XOR."""
    magic, kind, length = struct.unpack(">BBH", wire[:HEADER_LEN])
    assert magic == MAGIC
    body = wire[HEADER_LEN : HEADER_LEN + length]
    trailer = wire[HEADER_LEN + length : HEADER_LEN + length + TRAILER_LEN]
    assert struct.unpack(">I", trailer)[0] == sum(body) & 0xFFFFFFFF
    return bytes(b ^ key_byte(msg_index) for b in body)


from repro.l5p import plugin as _plugin

#: Registered like any real protocol so driver-level tests pass the
#: l5o_create registry gate — and so the registry tests have a plugin
#: whose declaration they fully control.
PLUGIN = _plugin.register(
    _plugin.L5Protocol(
        name="toy",
        header_len=HEADER_LEN,
        magic=_plugin.MagicSpec(
            pattern=bytes([MAGIC, 0]),
            mask=b"\xff\xfc",
            confidence=1e-4,
        ),
        preconditions=_plugin.Table3Preconditions(
            size_preserving=True,
            incremental_constant_state=True,
            header_plaintext_length=True,
            magic_identifiable=True,
            state_from_msg_index=True,
            notes="XOR body keyed by msg_index; checksum trailer",
        ),
        factory=ToyAdapter,
        upcalls=("l5o_get_tx_msgstate", "l5o_resync_rx_req"),
        description="Unit-test miniature L5P",
        info={"trailer_len": TRAILER_LEN, "ops": ("xor", "checksum")},
    )
)
