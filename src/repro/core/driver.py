"""The NIC driver: the software half of the autonomous offload.

Implements Listing 1 (operations the driver provides to the L5P) and
dispatches Listing 2 (upcalls the L5P provides to the driver).  The
driver shadows each HW context's expected TCP sequence so that
out-of-sequence transmissions are detected in software, before the
packet is posted to the NIC (§4.2).

Offload commands ride to the NIC through the flow's send ring as
special descriptors; we account their PCIe cost but model their
ordering as exact (the send ring guarantees it in hardware).
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Optional, Protocol

from repro.core.context import HwContext, RxState
from repro.core.types import Direction, L5pAdapter, TxMsgState
from repro.net.packet import FlowKey


class L5pOps(Protocol):
    """Listing 2: operations the L5P provides to the NIC driver."""

    def l5o_get_tx_msgstate(self, tcpsn: int) -> Optional[TxMsgState]:
        """State of the transmitted message covering ``tcpsn``."""
        ...

    def l5o_resync_rx_req(self, tcpsn: int) -> None:
        """The NIC speculates an L5P header starts at ``tcpsn``; confirm
        or deny later via ``l5o_resync_rx_resp``."""
        ...


class NicDriver:
    """Per-NIC driver instance (mlx5-equivalent glue)."""

    _ids = itertools.count(1)

    def __init__(self, nic):
        # Local import: repro.nic's package init pulls in this module,
        # so a top-level import would be circular (same idiom as the
        # DatagramEngine import in repro.nic.nic).
        from repro.nic.flow_table import FlowTable

        self.nic = nic
        # Indexed flow tables (repro.nic.flow_table): dict-shaped O(1)
        # lookup plus dense iteration and lifetime install/remove
        # accounting, sized for datacenter flow counts.
        self.tx_contexts = FlowTable()
        self.rx_contexts = FlowTable()
        self.dgram_tx_contexts: dict[FlowKey, object] = {}
        self.dgram_rx_contexts: dict[FlowKey, object] = {}
        # Ablation knob: extra delay before the L5P sees a speculation
        # request (models slower driver/firmware paths).
        self.resync_delay_s = 0.0
        # Graceful degradation (paper §5.3).  All off by default so no
        # retry timers are scheduled and event order is untouched; the
        # harness arms them from a FaultPlan via configure_degradation().
        self.max_resync_retries = 0
        self.resync_timeout_s = 2e-3
        self.resync_backoff = 2.0
        self.disable_after_failures = 0
        self.probation_s = 0.0
        # ctx_id -> (tcpsn, token) of the speculation awaiting an
        # answer; the token makes stale timeout events detectable even
        # when a later speculation lands on the same sequence number.
        self._resync_pending: dict[int, tuple[int, int]] = {}
        self._resync_token = itertools.count(1)
        # ctx_id -> (conn, l5p_ops): who asked for each context, so a
        # NIC reset can route re-installation (or, for the TOE
        # personality, connection loss) back to its owner.
        self._installs: dict[int, tuple[Any, Any]] = {}
        # Watchdog + re-install queue (armed by the NIC lifecycle).
        self._watchdog_profile = None
        self._watchdog_missed = 0
        self._reattach_queue: deque = deque()
        self._reattach_profile = None
        # Old TX ctx_id -> reattached successor id.  Packets are stamped
        # with the context id at *build* time, so a packet queued before
        # a reset can reach the wire after it, carrying the torn-down
        # id; resolving the alias routes it to the successor, whose
        # standard §4.2 recovery absorbs the sequence seam.
        self._ctx_aliases: dict[int, int] = {}

    def configure_degradation(self, policy) -> None:
        """Arm the degradation knobs from a DegradePolicy-shaped object
        (duck-typed: any object with the five attributes below works,
        keeping this module import-free of repro.faults)."""
        if policy is None:
            return
        self.max_resync_retries = policy.max_resync_retries
        self.resync_timeout_s = policy.resync_timeout_s
        self.resync_backoff = policy.resync_backoff
        self.disable_after_failures = policy.disable_after_failures
        self.probation_s = policy.probation_s

    # ------------------------------------------------------------------
    # Listing 1: L5P-facing operations
    # ------------------------------------------------------------------
    def l5o_create(
        self,
        conn,
        adapter: L5pAdapter,
        static_state: Any,
        tcpsn: int,
        direction: Direction,
        l5p_ops: L5pOps,
        msg_index: int = 0,
    ) -> HwContext:
        """Install an offload context for ``conn`` starting at ``tcpsn``
        (the first byte of the next L5P message on the stream).

        The adapter's protocol must be registered with
        :mod:`repro.l5p.plugin` — a NIC image only contains the parsers
        it was built with, so an unregistered name is a programming
        error surfaced loudly here rather than a silent misparse."""
        from repro.l5p import plugin

        plugin.require(adapter.name)
        if self.nic.obs is not None:
            self.nic.obs.cell(f"driver.l5p.{adapter.name}.contexts").value += 1
        ctx_id = next(self._ids)
        if direction == Direction.TX:
            flow = conn.flow
        else:
            flow = conn.flow.reversed()  # incoming packets carry the peer's view
        ctx = HwContext(ctx_id, flow, direction, adapter, static_state, tcpsn, msg_index=msg_index)
        ctx.l5p_ops = l5p_ops
        ctx.obs = self.nic.obs
        if direction == Direction.TX:
            self.tx_contexts[ctx_id] = ctx
            conn.tx_ctx_id = ctx_id
        else:
            self.rx_contexts[flow] = ctx
        self._installs[ctx_id] = (conn, l5p_ops)
        self.nic.context_installed(ctx)
        return ctx

    def l5o_destroy(self, ctx: HwContext) -> None:
        if ctx.direction == Direction.TX:
            self.tx_contexts.pop(ctx.ctx_id, None)
        else:
            self.rx_contexts.pop(ctx.flow, None)
        self._resync_pending.pop(ctx.ctx_id, None)
        self._installs.pop(ctx.ctx_id, None)
        if self._ctx_aliases:
            for stale in [k for k, v in self._ctx_aliases.items() if v == ctx.ctx_id]:
                del self._ctx_aliases[stale]
        self.nic.context_removed(ctx)

    def l5o_add_rr_state(self, ctx: HwContext, key: Any, state: Any) -> Any:
        """Register request/response state (e.g. an NVMe CID -> the block
        buffers its response payload must be placed into)."""
        ctx.rr_state[key] = state
        self.nic.pcie.count("descriptor", 64)
        return key

    def l5o_del_rr_state(self, ctx: HwContext, key: Any) -> None:
        ctx.rr_state.pop(key, None)
        self.nic.pcie.count("descriptor", 64)

    def l5o_resync_rx_resp(self, ctx: HwContext, tcpsn: int, result: bool, msg_index: int = 0) -> None:
        """The L5P confirms/denies the NIC's speculated header at
        ``tcpsn``; on success the NIC resumes offloading from the next
        message boundary (Figure 7, transition d2).

        The response rides a send-ring descriptor; an injected NIC fault
        profile can drop, delay, or duplicate it on the way down.
        """
        faults = getattr(self.nic, "faults", None)
        if faults is not None:
            rng = self.nic.fault_rng
            obs = self.nic.obs
            if faults.resync_resp_drop and rng.random() < faults.resync_resp_drop:
                if obs is not None:
                    obs.count("driver.resync.resp_dropped")
                return  # the retry timeout (if armed) will re-ask
            if faults.resync_resp_dup and rng.random() < faults.resync_resp_dup:
                if obs is not None:
                    obs.count("driver.resync.resp_duplicated")
                self.nic.host.sim.call_soon(self._deliver_resync_resp, ctx, tcpsn, result, msg_index)
            if faults.resync_resp_delay and rng.random() < faults.resync_resp_delay:
                if obs is not None:
                    obs.count("driver.resync.resp_delayed")
                self.nic.host.sim.schedule(
                    faults.resync_resp_delay_s, self._deliver_resync_resp, ctx, tcpsn, result, msg_index
                )
                return
        self._deliver_resync_resp(ctx, tcpsn, result, msg_index)

    def _deliver_resync_resp(self, ctx: HwContext, tcpsn: int, result: bool, msg_index: int) -> None:
        obs = self.nic.obs
        if obs is not None:
            obs.count("driver.resync.confirmed" if result else "driver.resync.denied")
        outcome = self.nic.rx_engine.resync_response(ctx, tcpsn, result, msg_index)
        if outcome == "confirmed":
            ctx.consecutive_resync_failures = 0
            self._resync_pending.pop(ctx.ctx_id, None)
        elif outcome == "denied":
            self._resync_pending.pop(ctx.ctx_id, None)
            self._resync_failed(ctx)
        # "stale" responses (speculation already abandoned) change nothing.

    # ------------------------------------------------------------------
    # driver-internal helpers used by the engines
    # ------------------------------------------------------------------
    def l5o_create_datagram(self, flow: FlowKey, adapter, static_state, direction: Direction):
        """Install a datagram (UDP) offload context — §7's trivial case:
        static state only, no sequence tracking, no recovery interface."""
        from repro.core.datagram import DatagramContext

        ctx = DatagramContext(next(self._ids), flow, adapter, static_state)
        if direction == Direction.TX:
            self.dgram_tx_contexts[flow] = ctx
        else:
            self.dgram_rx_contexts[flow] = ctx
        self.nic.pcie.count("descriptor", 64)
        return ctx

    def l5o_destroy_datagram(self, ctx) -> None:
        self.dgram_tx_contexts.pop(ctx.flow, None)
        self.dgram_rx_contexts.pop(ctx.flow, None)

    def lookup_tx(self, ctx_id: Optional[int]) -> Optional[HwContext]:
        if ctx_id is None:
            return None
        ctx = self.tx_contexts.get(ctx_id)
        if ctx is None and self._ctx_aliases:
            alias = self._ctx_aliases.get(ctx_id)
            if alias is not None:
                ctx = self.tx_contexts.get(alias)
        if ctx is not None and ctx.offload_disabled:
            return None  # degraded: the flow rides the software path
        return ctx

    def lookup_rx(self, flow: FlowKey) -> Optional[HwContext]:
        ctx = self.rx_contexts.get(flow)
        if ctx is not None and ctx.offload_disabled:
            return None  # degraded: the flow rides the software path
        return ctx

    def request_resync(self, ctx: HwContext, tcpsn: int) -> None:
        """HW->SW: deliver the speculation request to the L5P (via a
        completion on the receive ring, then the driver's upcall)."""
        ctx.resync_requests += 1
        obs = self.nic.obs
        if obs is not None:
            obs.count("driver.resync.requests")
            obs.event("resync-request", lane=f"ctx/{ctx.ctx_id}", cat="resync", tcpsn=tcpsn)
        self.nic.pcie.count("descriptor", 64)
        if ctx.l5p_ops is not None:
            self.nic.host.sim.schedule(self.resync_delay_s, ctx.l5p_ops.l5o_resync_rx_req, tcpsn)
        if self.max_resync_retries > 0:
            token = next(self._resync_token)
            self._resync_pending[ctx.ctx_id] = (tcpsn, token)
            self.nic.host.sim.schedule(
                self.resync_delay_s + self.resync_timeout_s, self._resync_timeout, ctx, tcpsn, token, 1
            )

    # ------------------------------------------------------------------
    # graceful degradation (paper §5.3): bounded retries, then give up
    # ------------------------------------------------------------------
    def _resync_timeout(self, ctx: HwContext, tcpsn: int, token: int, attempt: int) -> None:
        """The speculation at ``tcpsn`` was never answered in time."""
        if self._resync_pending.get(ctx.ctx_id) != (tcpsn, token):
            return  # answered, superseded, or already failed — stale timer
        if ctx.offload_disabled or self.rx_contexts.get(ctx.flow) is not ctx:
            self._resync_pending.pop(ctx.ctx_id, None)
            return
        if ctx.rx_state != RxState.TRACKING or ctx.speculation_seq != tcpsn:
            self._resync_pending.pop(ctx.ctx_id, None)
            return
        if attempt > self.max_resync_retries:
            self._resync_pending.pop(ctx.ctx_id, None)
            self._resync_failed(ctx)
            return
        ctx.resync_retries += 1
        obs = self.nic.obs
        if obs is not None:
            obs.count("driver.resync.retries")
            obs.event("resync-retry", lane=f"ctx/{ctx.ctx_id}", cat="resync", tcpsn=tcpsn, attempt=attempt)
        self.nic.pcie.count("descriptor", 64)
        if ctx.l5p_ops is not None:
            self.nic.host.sim.schedule(self.resync_delay_s, ctx.l5p_ops.l5o_resync_rx_req, tcpsn)
        backoff = self.resync_timeout_s * (self.resync_backoff**attempt)
        self.nic.host.sim.schedule(
            self.resync_delay_s + backoff, self._resync_timeout, ctx, tcpsn, token, attempt + 1
        )

    def _resync_failed(self, ctx: HwContext) -> None:
        """One speculation definitively failed (denied or retries
        exhausted); after enough consecutive failures, give up."""
        ctx.resync_failures += 1
        ctx.consecutive_resync_failures += 1
        obs = self.nic.obs
        if obs is not None:
            obs.count("driver.resync.failures")
        if ctx.rx_state == RxState.TRACKING:
            ctx.enter_searching()  # Figure 7 edge d1
        if self.disable_after_failures and ctx.consecutive_resync_failures >= self.disable_after_failures:
            self._auto_disable(ctx)

    def _auto_disable(self, ctx: HwContext) -> None:
        if ctx.offload_disabled:
            return
        ctx.offload_disabled = True
        ctx.auto_disables += 1
        self._resync_pending.pop(ctx.ctx_id, None)
        obs = self.nic.obs
        if obs is not None:
            obs.count("driver.offload.auto_disabled")
            obs.event("offload-auto-disable", lane=f"ctx/{ctx.ctx_id}", cat="degrade")
        degraded = getattr(ctx.l5p_ops, "l5o_offload_degraded", None)
        if degraded is not None:
            degraded(ctx.direction.value, "resync-failures")
        if self.probation_s > 0:
            self.nic.host.sim.schedule(self.probation_s, self._probation_reenable, ctx)

    def _probation_reenable(self, ctx: HwContext) -> None:
        """Probation expired: give the offload another chance.  The
        context resumes in SEARCHING, so the Figure 7 machine re-locks
        on the live stream before any packet is offloaded again."""
        if self.rx_contexts.get(ctx.flow) is not ctx and self.tx_contexts.get(ctx.ctx_id) is not ctx:
            return  # destroyed while on probation
        if not ctx.offload_disabled:
            return
        ctx.offload_disabled = False
        ctx.consecutive_resync_failures = 0
        obs = self.nic.obs
        if obs is not None:
            obs.count("driver.offload.probation_reenabled")
            obs.event("offload-probation-reenable", lane=f"ctx/{ctx.ctx_id}", cat="degrade")

    # ------------------------------------------------------------------
    # NIC lifecycle: watchdog, teardown, and paced re-installation
    # ------------------------------------------------------------------
    def start_watchdog(self, profile) -> None:
        """Arm the heartbeat watchdog (NicLifecycleProfile-shaped knobs).
        The tick charges no cycles and draws no randomness, so an armed
        but never-firing lifecycle leaves every metric untouched."""
        self._watchdog_profile = profile
        self._watchdog_missed = 0
        self.nic.host.sim.schedule(profile.heartbeat_interval_s, self._watchdog_tick)

    def _watchdog_tick(self) -> None:
        profile = self._watchdog_profile
        if profile is None:
            return
        lifecycle = self.nic.lifecycle
        from repro.nic.lifecycle import NicState

        if lifecycle.state is NicState.HUNG:
            # The device did not answer the heartbeat (stalled
            # completion queue / dead firmware mailbox).
            self._watchdog_missed += 1
            obs = self.nic.obs
            if obs is not None:
                obs.count("driver.watchdog.missed_heartbeats")
            if self._watchdog_missed >= profile.missed_heartbeats:
                self._watchdog_missed = 0
                if obs is not None:
                    obs.count("driver.watchdog.resets_initiated")
                lifecycle.begin_reset("watchdog")
        else:
            self._watchdog_missed = 0
        self.nic.host.sim.schedule(profile.heartbeat_interval_s, self._watchdog_tick)

    def nic_reset_teardown(self, personality: str = "autonomous") -> list:
        """The NIC is resetting: every HW context it held is gone.

        Autonomous personality (the paper's design): TX contexts are
        parked as software shadows so queued "wrong bytes" keep getting
        transformed by the host during the outage, RX flows ride the
        L5P software path, and a re-install request per (owner,
        direction) is returned for :meth:`begin_reattach`.

        TOE personality (*PnO-TCP* / *FlexiNS* model): the connection
        state lived on the NIC, so every offloaded connection is aborted
        outright — nothing to re-install.
        """
        lifecycle = self.nic.lifecycle
        obs = self.nic.obs
        requests: list = []
        killed: set = set()
        removed = 0
        for ctx in list(self.tx_contexts.values()):
            self.tx_contexts.pop(ctx.ctx_id, None)
            self._teardown_one(ctx, personality, requests, killed)
            removed += 1
        for ctx in list(self.rx_contexts.values()):
            self.rx_contexts.pop(ctx.flow, None)
            lifecycle.track_rx_fallback(ctx.flow)
            self._teardown_one(ctx, personality, requests, killed)
            removed += 1
        self._resync_pending.clear()
        if obs is not None and removed:
            obs.count("driver.contexts.removed", removed)
        return requests

    def _teardown_one(self, ctx: HwContext, personality: str, requests: list, killed: set) -> None:
        lifecycle = self.nic.lifecycle
        obs = self.nic.obs
        # In-flight DMA/descriptor abort semantics: a context mid-walk
        # had a transform in flight; the reset aborts it on the device
        # (one descriptor-sized PCIe transaction to reap the queue).
        lifecycle.note_context_lost(mid_walk=ctx.desc is not None)
        self.nic.pcie.count("reset-abort", 64)
        if obs is not None:
            obs.gauge("driver.contexts.active").dec()
        conn, _l5p_ops = self._installs.pop(ctx.ctx_id, (None, None))
        if personality == "toe":
            if conn is not None and id(conn) not in killed and conn.state != "closed":
                killed.add(id(conn))
                lifecycle.note_toe_connection_lost()
                conn.abort()
            return
        if ctx.direction == Direction.TX:
            lifecycle.park_tx(ctx)
        requests.append((ctx.l5p_ops, ctx.direction, ctx.ctx_id))

    def begin_reattach(self, requests: list, profile) -> None:
        """The function came back up: re-install offload contexts from
        host-owned state, ``reinstall_batch`` per ``reinstall_interval_s``
        tick so the recovering cache is not thundering-herded."""
        self._reattach_queue = deque(requests)
        self._reattach_profile = profile
        # Datagram offloads (§7) are static-state-only: the driver
        # re-writes them directly, one descriptor each, no upcall.
        for _ in range(len(self.dgram_tx_contexts) + len(self.dgram_rx_contexts)):
            self.nic.pcie.count("descriptor", 64)
        self._reattach_tick()

    def _reattach_tick(self) -> None:
        lifecycle = self.nic.lifecycle
        profile = self._reattach_profile
        budget = getattr(profile, "reinstall_batch", 8) if profile is not None else 8
        while budget > 0 and self._reattach_queue:
            l5p_ops, direction, old_id = self._reattach_queue.popleft()
            budget -= 1
            reattach = getattr(l5p_ops, "l5o_nic_reattach", None)
            if reattach is None:
                lifecycle.note_reinstall_unsupported()
                continue
            ctx = reattach(direction.value)
            if ctx is None:
                lifecycle.note_reinstall_unsupported()
                continue
            lifecycle.note_reinstall()
            if direction == Direction.TX:
                # Route packets stamped with the dead id (built before
                # the reset) to the successor; flatten chains so a storm
                # of resets still resolves in one hop.
                for stale, target in self._ctx_aliases.items():
                    if target == old_id:
                        self._ctx_aliases[stale] = ctx.ctx_id
                self._ctx_aliases[old_id] = ctx.ctx_id
        if self._reattach_queue:
            interval = getattr(profile, "reinstall_interval_s", 0.0) if profile is not None else 0.0
            self.nic.host.sim.schedule(interval, self._reattach_tick)
        else:
            lifecycle.reattach_complete()
