"""NIC-to-NIC toy pipeline: a TX engine encodes on one host, the wire
carries the transformed bytes, and an RX engine on the peer decodes —
verifying the two engines are exact inverses end to end, byte for byte,
over real TCP with faults."""

import pytest

from helpers import make_pair
from repro.core.types import Direction, TxMsgState
from repro.nic import OffloadNic
from repro.tcp import seq as sq
from toy_l5p import ToyAdapter, encode_message, plain_message


class ToyEndpointTx:
    """Minimal sender L5P: frames bodies, keeps the seq->message map."""

    def __init__(self, host, conn):
        self.host = host
        self.conn = conn
        self.messages = []  # (start_seq, idx, wire)
        self.count = 0
        self.ctx = host.nic.driver.l5o_create(
            conn, ToyAdapter(), None, tcpsn=conn.send_buffer.end_seq, direction=Direction.TX, l5p_ops=self
        )

    def send(self, body: bytes) -> None:
        wire = plain_message(body)
        start = self.conn.send_buffer.end_seq
        self.messages.append((start, self.count, wire))
        self.count += 1
        accepted = self.conn.send(wire)
        assert accepted == len(wire)

    def l5o_get_tx_msgstate(self, tcpsn):
        for start, idx, wire in self.messages:
            if sq.between(start, tcpsn, sq.add(start, len(wire))):
                return TxMsgState(start_seq=start, msg_index=idx, wire_bytes=wire)
        return None

    def l5o_resync_rx_req(self, tcpsn):
        pass


class TestNicToNic:
    def run_pipeline(self, bodies, seed=0, loss=0.0, reorder=0.0):
        pair = make_pair(
            seed=seed,
            loss_to_server=loss,
            reorder_to_server=reorder,
            client_nic=OffloadNic(),
            server_nic=OffloadNic(),
        )
        wire_received = bytearray()

        def on_accept(conn):
            conn.on_data = lambda skb: wire_received.extend(skb.data)

        pair.server.tcp.listen(9000, on_accept)
        conn = pair.client.tcp.connect("server", 9000)
        state = {}

        def go():
            tx = ToyEndpointTx(pair.client, conn)
            state["tx"] = tx
            for body in bodies:
                tx.send(body)

        conn.on_established = go
        pair.sim.run(until=30.0)
        return pair, bytes(wire_received)

    def test_wire_is_exactly_the_encoded_form(self):
        bodies = [bytes([i]) * (100 + i * 37) for i in range(10)]
        pair, wire = self.run_pipeline(bodies)
        assert wire == b"".join(encode_message(b, i) for i, b in enumerate(bodies))

    @pytest.mark.parametrize("loss,reorder", [(0.02, 0.0), (0.0, 0.03), (0.02, 0.02)])
    def test_wire_correct_under_faults(self, loss, reorder):
        bodies = [bytes([i % 256]) * 500 for i in range(30)]
        pair, wire = self.run_pipeline(bodies, seed=7, loss=loss, reorder=reorder)
        assert wire == b"".join(encode_message(b, i) for i, b in enumerate(bodies))
        if loss:
            assert pair.client.nic.offload_stats()["tx_recoveries"] > 0
