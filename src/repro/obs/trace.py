"""Simulation-time event tracer with Chrome ``trace_event`` export.

Events are keyed on simulated nanoseconds and export to the JSON Object
Format that ``about:tracing`` and Perfetto load directly: instant events
for state transitions (resync edges, recoveries, retransmits), complete
("X") events for spans with a known duration (NAPI poll batches), and
counter ("C") events for sampled values.  Lanes — one per NIC context,
host core, or subsystem — become named threads in the viewer via
``thread_name`` metadata records.

The tracer is bounded: past ``limit`` events it drops (counting what it
dropped) rather than growing without bound in long sweeps.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Optional

#: A single simulated process id for the whole run; lanes map to tids.
TRACE_PID = 1


class Tracer:
    """Collects trace events against a simulated-seconds clock."""

    def __init__(self, clock: Callable[[], float], limit: int = 200_000):
        self._clock = clock
        self.limit = limit
        self.events: list[dict] = []
        self.dropped = 0
        self._tids: dict[str, int] = {}

    # ------------------------------------------------------------------
    def _tid(self, lane: str) -> int:
        tid = self._tids.get(lane)
        if tid is None:
            tid = self._tids[lane] = len(self._tids) + 1
        return tid

    def _push(self, event: dict) -> None:
        if len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(event)

    @staticmethod
    def _us(seconds: float) -> float:
        # Chrome trace timestamps are microseconds; keep ns resolution.
        return round(seconds * 1e9) / 1000.0

    # ------------------------------------------------------------------
    # event kinds
    # ------------------------------------------------------------------
    def instant(self, name: str, lane: str = "sim", cat: str = "sim", **args: Any) -> None:
        """A point-in-time marker at the current simulated instant."""
        self._push(
            {
                "name": name,
                "cat": cat,
                "ph": "i",
                "s": "t",  # thread-scoped instant
                "ts": self._us(self._clock()),
                "pid": TRACE_PID,
                "tid": self._tid(lane),
                **({"args": args} if args else {}),
            }
        )

    def complete(
        self,
        name: str,
        start_s: float,
        duration_s: float,
        lane: str = "sim",
        cat: str = "sim",
        **args: Any,
    ) -> None:
        """A span with known start and duration (simulated seconds)."""
        self._push(
            {
                "name": name,
                "cat": cat,
                "ph": "X",
                "ts": self._us(start_s),
                "dur": max(0.0, self._us(start_s + duration_s) - self._us(start_s)),
                "pid": TRACE_PID,
                "tid": self._tid(lane),
                **({"args": args} if args else {}),
            }
        )

    def counter(self, name: str, lane: str = "sim", **values: float) -> None:
        """A sampled counter track (renders as a stacked area chart)."""
        self._push(
            {
                "name": name,
                "cat": "counter",
                "ph": "C",
                "ts": self._us(self._clock()),
                "pid": TRACE_PID,
                "tid": self._tid(lane),
                "args": values,
            }
        )

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def export(self) -> dict:
        """The full trace in Chrome JSON Object Format."""
        metadata = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": TRACE_PID,
                "args": {"name": "repro-sim"},
            }
        ]
        for lane, tid in self._tids.items():
            metadata.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": TRACE_PID,
                    "tid": tid,
                    "args": {"name": lane},
                }
            )
        return {
            "traceEvents": metadata + self.events,
            "displayTimeUnit": "ns",
            "otherData": {"clock": "simulated", "dropped_events": self.dropped},
        }

    def write(self, path: str, indent: Optional[int] = None) -> None:
        with open(path, "w") as fh:
            json.dump(self.export(), fh, indent=indent)

    def __len__(self) -> int:
        return len(self.events)
