"""Cipher suites: a uniform incremental AEAD interface.

The offload architecture (and kTLS) only require of the cipher what the
paper's Table 3 requires: size-preserving transformation, incremental
computability over arbitrary byte ranges given constant-size state, and
a fixed-size trailer (the tag).  Two suites implement that contract:

- :class:`AesGcmSuite` — the real AES-128-GCM built in this package,
  used by unit tests and small runs.
- :class:`XorGcmSuite` — a fast stand-in with a periodic key/nonce-
  derived keystream and a CRC-based 16-byte tag.  It detects
  corruption, wrong keys, and wrong nonces, and is seekable like CTR
  mode; it is obviously not secure.  Macro-benchmarks use it while the
  CPU model charges true AES-GCM cycle costs (DESIGN.md §2).  The
  keystream XOR runs as whole-buffer int-on-bytes operations (bytes
  repetition + one big-int XOR), which beats both the old per-byte
  generator and the numpy ``tile`` path it replaced — ``np.tile``'s
  Python-side setup cost per record was the hottest single line of the
  profiled iperf-TLS run.
"""

from __future__ import annotations

import struct
import zlib
from typing import Protocol

from repro.crypto.gcm import AesGcm, AuthenticationError
from repro.crypto.sha1 import sha1


class RecordEncryptor(Protocol):
    """Incrementally encrypts one record."""

    def update(self, plaintext: bytes) -> bytes: ...

    def finalize(self) -> bytes: ...


class RecordDecryptor(Protocol):
    """Incrementally decrypts one record."""

    def update(self, ciphertext: bytes) -> bytes: ...

    def finalize(self, tag: bytes) -> None: ...


class CipherSuite:
    """Factory for record encryptors/decryptors under a fixed algorithm."""

    name: str = "abstract"
    key_size: int = 16
    nonce_size: int = 12
    tag_size: int = 16

    def encryptor(self, key: bytes, nonce: bytes, aad: bytes = b"") -> RecordEncryptor:
        raise NotImplementedError

    def decryptor(self, key: bytes, nonce: bytes, aad: bytes = b"") -> RecordDecryptor:
        raise NotImplementedError

    # One-shot conveniences -------------------------------------------------
    def seal(self, key: bytes, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> tuple[bytes, bytes]:
        enc = self.encryptor(key, nonce, aad)
        ciphertext = enc.update(plaintext)
        return ciphertext, enc.finalize()

    def open(self, key: bytes, nonce: bytes, ciphertext: bytes, tag: bytes, aad: bytes = b"") -> bytes:
        dec = self.decryptor(key, nonce, aad)
        plaintext = dec.update(ciphertext)
        dec.finalize(tag)
        return plaintext


class AesGcmSuite(CipherSuite):
    """Real AES-128-GCM.  Contexts are cached per key: the key schedule
    and GHASH tables are per-connection state, exactly like the static
    part of the paper's HW context."""

    name = "aes-gcm"

    def __init__(self) -> None:
        self._contexts: dict[bytes, AesGcm] = {}

    def _context(self, key: bytes) -> AesGcm:
        ctx = self._contexts.get(key)
        if ctx is None:
            ctx = self._contexts[key] = AesGcm(key)
        return ctx

    def encryptor(self, key: bytes, nonce: bytes, aad: bytes = b"") -> RecordEncryptor:
        return self._context(key).encryptor(nonce, aad)

    def decryptor(self, key: bytes, nonce: bytes, aad: bytes = b"") -> RecordDecryptor:
        return self._context(key).decryptor(nonce, aad)


_PAD_PERIOD = 256


def _derive_pad(key: bytes) -> bytes:
    """A 256-byte pseudo-random pad derived from the key via SHA-1 chaining."""
    out = bytearray()
    state = key
    while len(out) < _PAD_PERIOD:
        state = sha1(state + key)
        out += state
    return bytes(out[:_PAD_PERIOD])


class _XorStream:
    """Shared keystream/tag machinery for the fast suite."""

    def __init__(self, pad: bytes, key: bytes, nonce: bytes, aad: bytes):
        nonce_pat = (nonce + nonce)[:16] * (_PAD_PERIOD // 16)
        # One 256-byte big-int XOR mixes the nonce into the per-key pad.
        self._pad = (int.from_bytes(pad, "big") ^ int.from_bytes(nonce_pat, "big")).to_bytes(
            _PAD_PERIOD, "big"
        )
        self._offset = 0
        self._ct_crc = zlib.crc32(aad)
        self._key_mix = zlib.crc32(key + nonce)
        self._length = 0

    def _keystream(self, n: int) -> bytes:
        start = self._offset % _PAD_PERIOD
        reps = (start + n + _PAD_PERIOD - 1) // _PAD_PERIOD
        # bytes repetition + slice: both C-speed, no per-record array setup.
        stream = (self._pad * reps)[start : start + n]
        self._offset += n
        return stream

    def _xor(self, data: bytes) -> bytes:
        n = len(data)
        ks = self._keystream(n)
        # Whole-buffer XOR via big ints (the PR 5 trick, now the only path).
        return (int.from_bytes(data, "big") ^ int.from_bytes(ks, "big")).to_bytes(n, "big")

    def _absorb_ciphertext(self, ciphertext: bytes) -> None:
        self._ct_crc = zlib.crc32(ciphertext, self._ct_crc)
        self._length += len(ciphertext)

    def _tag(self) -> bytes:
        return struct.pack(
            "<IIII",
            self._ct_crc & 0xFFFFFFFF,
            self._key_mix & 0xFFFFFFFF,
            self._length & 0xFFFFFFFF,
            (self._ct_crc ^ self._key_mix) & 0xFFFFFFFF,
        )


class _XorEncryptor(_XorStream):
    def update(self, plaintext: bytes) -> bytes:
        ciphertext = self._xor(plaintext)
        self._absorb_ciphertext(ciphertext)
        return ciphertext

    def absorb_ciphertext(self, ciphertext: bytes) -> None:
        """Advance the authenticator over already-encrypted bytes (see
        :meth:`repro.crypto.gcm.GcmEncryptor.absorb_ciphertext`)."""
        self._offset += len(ciphertext)
        self._absorb_ciphertext(ciphertext)

    def finalize(self) -> bytes:
        return self._tag()


class _XorDecryptor(_XorStream):
    def update(self, ciphertext: bytes) -> bytes:
        self._absorb_ciphertext(ciphertext)
        return self._xor(ciphertext)

    def skip(self, n: int) -> None:
        """Advance the keystream without output (fallback positioning);
        the authenticator is not advanced — do not finalize after."""
        self._offset += n

    def finalize(self, tag: bytes) -> None:
        if self._tag() != tag:
            raise AuthenticationError("fast-suite tag mismatch")


class XorGcmSuite(CipherSuite):
    """Fast GCM-shaped suite (see module docstring)."""

    name = "xor-gcm"

    def __init__(self) -> None:
        self._pads: dict[bytes, bytes] = {}

    def _pad(self, key: bytes) -> bytes:
        pad = self._pads.get(key)
        if pad is None:
            pad = self._pads[key] = _derive_pad(key)
        return pad

    def encryptor(self, key: bytes, nonce: bytes, aad: bytes = b"") -> RecordEncryptor:
        return _XorEncryptor(self._pad(key), key, nonce, aad)

    def decryptor(self, key: bytes, nonce: bytes, aad: bytes = b"") -> RecordDecryptor:
        return _XorDecryptor(self._pad(key), key, nonce, aad)


_SUITES = {"aes-gcm": AesGcmSuite, "xor-gcm": XorGcmSuite}


def get_cipher_suite(name: str) -> CipherSuite:
    """Instantiate a cipher suite by name (``"aes-gcm"`` or ``"xor-gcm"``)."""
    try:
        return _SUITES[name]()
    except KeyError:
        raise ValueError(f"unknown cipher suite {name!r}; choose from {sorted(_SUITES)}") from None
