"""Indexed O(1) flow tables for datacenter-scale flow counts.

A :class:`FlowTable` stores per-flow entries (HW contexts, scale-engine
flow records) in a *dense* array with a hash index on top:

- ``table[key] = entry`` / ``table.get(key)`` / ``table.pop(key)`` are
  O(1) dict-backed operations, so the table is a drop-in for the plain
  dicts the driver used to keep;
- entries live contiguously in a list with **swap-remove** deletion, so
  iteration touches no holes and ``entry_at(i)`` gives O(1) positional
  access — which is what lets a workload generator pick a uniformly
  random *active* flow among hundreds of thousands without building a
  list of keys per draw;
- install/remove totals are maintained inline, so churn statistics
  ("how many short connections lived here?") never require a scan.

The dense array is the "flow table" a NIC keeps in device memory (the
paper's 208 B per-flow contexts, §6.5); the dict is its hash index.
Order of iteration is insertion order *disturbed only by swap-remove*,
which is deterministic — same operation sequence, same layout — so
simulations that iterate the table stay reproducible.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

_MISSING = object()


class FlowTable:
    """Dense, dict-indexed store of per-flow entries (O(1) everything)."""

    __slots__ = ("_index", "_keys", "_entries", "installed_total", "removed_total")

    def __init__(self) -> None:
        self._index: dict = {}  # key -> position in the dense arrays
        self._keys: list = []
        self._entries: list = []
        self.installed_total = 0  # lifetime installs (churn accounting)
        self.removed_total = 0

    # ------------------------------------------------------------------
    # dict-shaped interface (drop-in for the driver's context dicts)
    # ------------------------------------------------------------------
    def __setitem__(self, key: Any, entry: Any) -> None:
        pos = self._index.get(key)
        if pos is not None:  # overwrite in place; not an install
            self._entries[pos] = entry
            return
        self._index[key] = len(self._entries)
        self._keys.append(key)
        self._entries.append(entry)
        self.installed_total += 1

    def __getitem__(self, key: Any) -> Any:
        return self._entries[self._index[key]]

    def get(self, key: Any, default: Any = None) -> Any:
        pos = self._index.get(key)
        return default if pos is None else self._entries[pos]

    def pop(self, key: Any, default: Any = _MISSING) -> Any:
        """Swap-remove: the last entry backfills the vacated slot."""
        pos = self._index.pop(key, None)
        if pos is None:
            if default is _MISSING:
                raise KeyError(key)
            return default
        entry = self._entries[pos]
        last_key = self._keys[-1]
        last_entry = self._entries[-1]
        if pos < len(self._entries) - 1:
            self._keys[pos] = last_key
            self._entries[pos] = last_entry
            self._index[last_key] = pos
        self._keys.pop()
        self._entries.pop()
        self.removed_total += 1
        return entry

    def __contains__(self, key: Any) -> bool:
        return key in self._index

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._keys)

    def keys(self) -> Iterator[Any]:
        return iter(self._keys)

    def values(self) -> Iterator[Any]:
        """Dense iteration: no holes, no per-key hashing."""
        return iter(self._entries)

    def items(self) -> Iterator[tuple]:
        return iter(zip(self._keys, self._entries))

    # ------------------------------------------------------------------
    # dense positional access (the scale engine's sampling path)
    # ------------------------------------------------------------------
    def entry_at(self, position: int) -> Any:
        """O(1) positional lookup into the dense array (0 <= i < len)."""
        return self._entries[position]

    def key_at(self, position: int) -> Any:
        return self._keys[position]

    @property
    def active(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FlowTable active={len(self._entries)} "
            f"installed={self.installed_total} removed={self.removed_total}>"
        )
