"""Failure injection across the stack: corrupted wire bytes must be
detected by every L5P, offloaded or not, and errors must surface."""

import pytest

from helpers import make_pair
from repro.l5p.nvme_tcp import NvmeConfig, NvmeTcpHost, NvmeTcpTarget
from repro.l5p.rpc import RpcClient, RpcConfig, RpcServer
from repro.l5p.tls import KtlsSocket, TlsConfig
from repro.nic import OffloadNic
from repro.storage.blockdev import BlockDevice


def corrupting_link(pair, side, predicate, mutate):
    """Wrap one link direction: packets matching predicate get mutated."""
    port = pair.link.ab if side == "b" else pair.link.ba
    original = port.receiver
    state = {"hits": 0}

    def wrapped(pkt):
        if predicate(pkt, state):
            mutate(pkt)
            state["hits"] += 1
        original(pkt)

    pair.link.attach(side, wrapped)
    return state


def flip_payload_byte(offset=50):
    def mutate(pkt):
        data = bytearray(pkt.payload)
        data[offset % len(data)] ^= 0xFF
        pkt.payload = bytes(data)

    return mutate


class TestTlsCorruption:
    @pytest.mark.parametrize("rx_offload", [False, True], ids=["software", "offloaded"])
    def test_corrupted_record_detected(self, rx_offload):
        pair = make_pair(client_nic=OffloadNic(), server_nic=OffloadNic())
        errors = []
        received = bytearray()

        def on_accept(conn):
            tls = KtlsSocket(pair.server, conn, "server", TlsConfig(rx_offload=rx_offload))
            tls.on_data = received.extend
            tls.on_error = errors.append

        pair.server.tcp.listen(443, on_accept)
        conn = pair.client.tcp.connect("server", 443)
        client = KtlsSocket(pair.client, conn, "client", TlsConfig(tx_offload=True))
        payload = b"sensitive!" * 2000
        client.on_ready = lambda: client.send(payload)

        # Corrupt the first full-size record-bearing packet.
        def first_big(pkt, state):
            if len(pkt.payload) > 900 and not state.get("hit"):
                state["hit"] = True
                return True
            return False

        state = corrupting_link(pair, "b", first_big, flip_payload_byte())
        pair.sim.run(until=1.0)
        assert state["hits"] == 1
        assert errors, "authentication failure must surface"
        assert bytes(received) != payload


class TestNvmeCorruption:
    def test_corrupted_read_payload_fails_request(self):
        pair = make_pair(client_nic=OffloadNic(), server_nic=OffloadNic())
        device = BlockDevice(pair.sim)
        NvmeTcpTarget(pair.server, device, config=NvmeConfig()).start()
        nvme = NvmeTcpHost(pair.client, config=NvmeConfig())
        nvme.connect("server")
        outcome = {}

        def go():
            nvme.read(0, 65536, lambda data, lat: outcome.setdefault("data", data))

        nvme.on_ready = go

        def first_big(pkt, state):
            if len(pkt.payload) > 1000 and not state.get("hit"):
                state["hit"] = True
                return True
            return False

        # Corrupt one C2HData-bearing packet toward the initiator.
        corrupting_link(pair, "a", first_big, flip_payload_byte())
        with pytest.raises(RuntimeError, match="failed"):
            pair.sim.run(until=2.0)
        assert "data" not in outcome
        assert nvme.stats.digest_failures > 0


class TestRpcCorruption:
    def test_corrupted_response_counted_not_delivered(self):
        pair = make_pair(client_nic=OffloadNic(), server_nic=OffloadNic())
        server = RpcServer(pair.server, port=7000)
        server.register(1, lambda args: b"\x5a" * 30_000)
        client = RpcClient(pair.client, "server", port=7000, config=RpcConfig())
        got = []
        client.call(1, {}, lambda v, lat: got.append(v))

        def first_big(pkt, state):
            if len(pkt.payload) > 1000 and not state.get("hit"):
                state["hit"] = True
                return True
            return False

        corrupting_link(pair, "a", first_big, flip_payload_byte())
        pair.sim.run(until=1.0)
        assert got == []  # corrupt response dropped
        assert client.stats["errors"] == 1
