"""HTTP/2 framing and the frame-CRC + placement offload adapter.

Standard 9-byte frame header (RFC 7540 §4.1)::

    length(3) | type(1) | flags(1) | R(1 bit) + stream_id(31)

plus one extension negotiated out of band: when a DATA frame carries
``FLAG_FCS``, the last 4 payload bytes are a CRC32C over the preceding
payload (a frame check sequence).  The length field still counts the
whole payload, so the transform is size-preserving and the NIC can
verify the FCS and place the data bytes into the response buffer
registered under the frame's ``stream_id`` — the same request/response
placement pattern as NVMe-TCP's CID map, keyed by stream instead.

Unlike TLS records (uniform, always trailered), HTTP/2 interleaves
trailerless control frames (HEADERS, SETTINGS, PING, WINDOW_UPDATE)
with DATA frames of non-uniform length on many concurrent streams —
the resync-speculation stress profile this plugin exists to produce.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from repro.core.types import Direction, L5pAdapter, MessageDesc, MsgTransform
from repro.crypto.crc import get_digest

HEADER_LEN = 9
FCS_LEN = 4
MAX_FRAME = 16384  # default SETTINGS_MAX_FRAME_SIZE

TYPE_DATA = 0x0
TYPE_HEADERS = 0x1
TYPE_PRIORITY = 0x2
TYPE_RST_STREAM = 0x3
TYPE_SETTINGS = 0x4
TYPE_PUSH_PROMISE = 0x5
TYPE_PING = 0x6
TYPE_GOAWAY = 0x7
TYPE_WINDOW_UPDATE = 0x8
TYPE_CONTINUATION = 0x9
MAX_TYPE = TYPE_CONTINUATION

FLAG_END_STREAM = 0x01
FLAG_END_HEADERS = 0x04
FLAG_ACK = 0x01
FLAG_FCS = 0x20  # extension: payload ends in a CRC32C frame check sequence

#: Flag bits defined per frame type (anything else fails the parse).
_VALID_FLAGS = {
    TYPE_DATA: FLAG_END_STREAM | FLAG_FCS,
    TYPE_HEADERS: FLAG_END_STREAM | FLAG_END_HEADERS,
    TYPE_SETTINGS: FLAG_ACK,
    TYPE_PING: FLAG_ACK,
}
#: Frame types that must (True) / must not (False) carry a stream id.
_NEEDS_STREAM = {
    TYPE_DATA: True,
    TYPE_HEADERS: True,
    TYPE_PRIORITY: True,
    TYPE_RST_STREAM: True,
    TYPE_PUSH_PROMISE: True,
    TYPE_CONTINUATION: True,
    TYPE_SETTINGS: False,
    TYPE_PING: False,
    TYPE_GOAWAY: False,
}


@dataclass
class Http2Config:
    digest_name: str = "crc32c"
    rx_offload_crc: bool = False
    rx_offload_copy: bool = False
    max_response: int = 1 << 20

    @property
    def rx_offload(self) -> bool:
        return self.rx_offload_crc or self.rx_offload_copy


def make_frame(ftype: int, flags: int, stream_id: int, payload: bytes, digest_cls=None) -> bytes:
    """Serialize one frame; ``FLAG_FCS`` appends the CRC32C trailer."""
    if flags & FLAG_FCS:
        if ftype != TYPE_DATA:
            raise ValueError("FCS is a DATA-frame extension")
        payload = payload + (digest_cls or get_digest("crc32c"))(payload).digest()
    if len(payload) > MAX_FRAME:
        raise ValueError(f"frame payload {len(payload)} exceeds MAX_FRAME")
    if stream_id >> 31:
        raise ValueError("reserved bit set in stream id")
    header = struct.pack(">I", len(payload))[1:] + struct.pack(">BBI", ftype, flags, stream_id)
    return header + payload


def parse_frame_header(header: bytes) -> Optional[tuple[int, int, int, int]]:
    """``(length, type, flags, stream_id)`` or None if implausible."""
    length = int.from_bytes(header[:3], "big")
    ftype, flags, stream_word = struct.unpack(">BBI", header[3:HEADER_LEN])
    if length > MAX_FRAME or ftype > MAX_TYPE:
        return None
    if stream_word >> 31:  # reserved bit must be zero
        return None
    if flags & ~_VALID_FLAGS.get(ftype, 0):
        return None
    needs_stream = _NEEDS_STREAM.get(ftype)
    if needs_stream is True and stream_word == 0:
        return None
    if needs_stream is False and stream_word != 0:
        return None
    if flags & FLAG_FCS and length < FCS_LEN:
        return None
    return length, ftype, flags, stream_word


class _Http2Transform(MsgTransform):
    """Digests FCS DATA payloads and places them per stream.

    State is one running CRC plus a write cursor — constant-size.  The
    per-stream destination lives in the context's ``rr_state`` under
    the stream id as ``{"buffer": bytearray, "offset": int}``; the
    offset is reserved up front so frames of one stream interleaved
    with other streams' land contiguously.
    """

    def __init__(self, adapter: "Http2Adapter", desc: MessageDesc, rr_state: Optional[dict]):
        self.adapter = adapter
        self.fcs = bool(desc.info["flags"] & FLAG_FCS)
        self.digest = adapter.digest_cls() if self.fcs else None
        self._offset = 0
        self._target = None
        self._start = 0
        if (
            self.fcs
            and adapter.config.rx_offload_copy
            and rr_state is not None
        ):
            entry = rr_state.get(desc.info["stream_id"])
            if entry is not None and entry["offset"] + desc.body_len <= len(entry["buffer"]):
                self._target = entry["buffer"]
                self._start = entry["offset"]
                entry["offset"] += desc.body_len
            else:
                adapter.note_place_failure()

    def process(self, data: bytes) -> bytes:
        if self.digest is not None:
            self.digest.update(data)
        if self._target is not None:
            self._target[self._start + self._offset : self._start + self._offset + len(data)] = data
        self._offset += len(data)
        return data

    def finalize_tx(self) -> bytes:
        return self.digest.digest() if self.digest is not None else b""

    def verify_rx(self, wire_trailer: bytes) -> bool:
        if self.digest is None:
            return True
        return wire_trailer == self.digest.digest()


class Http2Adapter(L5pAdapter):
    """One instance per flow direction (carries per-packet place bits)."""

    name = "http2"
    header_len = HEADER_LEN
    magic_len = HEADER_LEN

    def __init__(self, config: Optional[Http2Config] = None):
        self.config = config or Http2Config()
        self.digest_cls = get_digest(self.config.digest_name)
        self._pkt_place_ok = True
        self.place_failures = 0

    def note_place_failure(self) -> None:
        self._pkt_place_ok = False
        self.place_failures += 1

    def parse_header(self, header: bytes, static_state) -> Optional[MessageDesc]:
        parsed = parse_frame_header(header)
        if parsed is None:
            return None
        length, ftype, flags, stream_id = parsed
        fcs = bool(flags & FLAG_FCS)
        return MessageDesc(
            kind=str(ftype),
            header_len=HEADER_LEN,
            body_len=length - FCS_LEN if fcs else length,
            trailer_len=FCS_LEN if fcs else 0,
            raw_header=header,
            info={"type": ftype, "flags": flags, "stream_id": stream_id},
        )

    def check_magic(self, window: bytes, static_state) -> bool:
        return len(window) >= HEADER_LEN and parse_frame_header(window) is not None

    def begin_message(self, direction: Direction, static_state, desc, msg_index, rr_state=None):
        del direction, static_state, msg_index
        return _Http2Transform(self, desc, rr_state)

    def apply_packet_meta(self, meta, processed: bool, ok: bool, desc_kinds) -> None:
        if self.config.rx_offload_crc:
            meta.crc_ok = processed and ok
        if self.config.rx_offload_copy:
            meta.placed = processed and self._pkt_place_ok
        self._pkt_place_ok = True

    def software_cpb(self, model) -> float:
        return model.cpb_crc32c


from repro.l5p import plugin as _plugin

#: Necessary bits of the 9-byte header: length < 2^23 (top bit of the
#: 3-byte length must be clear for any length <= MAX_FRAME), frame type
#: high nibble zero (types are 0x0..0x9), reserved stream bit zero.
PLUGIN = _plugin.register(
    _plugin.L5Protocol(
        name="http2",
        header_len=HEADER_LEN,
        magic=_plugin.MagicSpec(
            pattern=b"\x00" * HEADER_LEN,
            mask=b"\x80\x00\x00\xf0\x00\x80\x00\x00\x00",
            confidence=1e-5,
        ),
        preconditions=_plugin.Table3Preconditions(
            size_preserving=True,
            incremental_constant_state=True,
            header_plaintext_length=True,
            magic_identifiable=True,
            state_from_msg_index=True,
            notes="RX-side FCS verify + stream-keyed DATA placement; control "
            "frames pass through untransformed",
        ),
        factory=Http2Adapter,
        upcalls=("l5o_get_tx_msgstate", "l5o_resync_rx_req", "l5o_offload_degraded"),
        description="HTTP/2 DATA-frame CRC (FCS extension) and per-stream placement",
        info={"trailer_len": FCS_LEN, "ops": ("crc", "place")},
    )
)
