"""Machine-readable benchmark output.

Every benchmark that reproduces a paper figure dual-emits: the
human-readable table text (unchanged) and a ``benchmarks/out/<name>.json``
file with named scalar series, via :func:`write_bench_json`.  The JSON
is what ``python -m repro.obs.regress`` diffs against
``benchmarks/baseline.json``.

Schema (version 1)::

    {
      "schema": 1,
      "name": "fig16_tx_loss",
      "metrics": {"loss0.tcp_gbps": 6.35, ...},   # flat scalars
      "meta": {...}                                # optional free-form
    }
"""

from __future__ import annotations

import json
import os
from typing import Any, Optional, Union

SCHEMA_VERSION = 1

Number = Union[int, float]


def bench_record(name: str, metrics: dict, meta: Optional[dict] = None) -> dict:
    """Validate and shape one benchmark's machine-readable record."""
    clean: dict[str, Number] = {}
    for key, value in metrics.items():
        if not isinstance(key, str):
            raise TypeError(f"{name}: metric names must be strings, got {key!r}")
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeError(f"{name}: metric {key!r} must be a number, got {value!r}")
        clean[key] = value
    record: dict[str, Any] = {"schema": SCHEMA_VERSION, "name": name, "metrics": clean}
    if meta:
        record["meta"] = meta
    return record


def write_bench_json(out_dir: str, name: str, metrics: dict, meta: Optional[dict] = None) -> str:
    """Write ``<out_dir>/<name>.json``; returns the path written."""
    record = bench_record(name, metrics, meta)
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"{name}.json")
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_bench_json(path: str) -> dict:
    """Load and validate one emitted benchmark record."""
    with open(path) as fh:
        record = json.load(fh)
    if record.get("schema") != SCHEMA_VERSION:
        raise ValueError(f"{path}: unsupported schema {record.get('schema')!r}")
    if not isinstance(record.get("metrics"), dict):
        raise ValueError(f"{path}: missing metrics mapping")
    return record
