"""DPI offload tests (§7): Aho-Corasick correctness, streaming across
packets, and NIC-side scanning with per-packet match metadata."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.context import HwContext
from repro.core.types import Direction
from repro.core.walker import walk
from repro.l5p.dpi import DpiAdapter, PatternSet, make_message
from repro.net.host import Host
from repro.net.packet import FlowKey, Packet
from repro.nic import OffloadNic
from repro.sim import Simulator

FLOW = FlowKey("src", 1, "dst", 2)


def naive_matches(patterns, data):
    found = set()
    for i, p in enumerate(patterns):
        if p in data:
            found.add(i)
    return found


class TestPatternSet:
    def test_single_pattern(self):
        ps = PatternSet([b"needle"])
        _, found = ps.scan(b"hay needle hay")
        assert found == {0}
        _, found = ps.scan(b"hay hay hay")
        assert found == set()

    def test_overlapping_patterns(self):
        ps = PatternSet([b"he", b"she", b"hers", b"his"])
        _, found = ps.scan(b"ushers")
        assert found == {0, 1, 2}  # classic Aho-Corasick example

    def test_streaming_equals_one_shot(self):
        ps = PatternSet([b"abcabd", b"cab"])
        data = b"xxabcabdyycabzz"
        state = 0
        found = set()
        for i in range(0, len(data), 3):
            state, out = ps.scan(data[i : i + 3], state)
            found |= out
        assert found == {0, 1}

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            PatternSet([b""])
        with pytest.raises(ValueError):
            PatternSet([])

    @settings(max_examples=50, deadline=None)
    @given(
        patterns=st.lists(st.binary(min_size=1, max_size=6), min_size=1, max_size=5, unique=True),
        data=st.binary(max_size=300),
        chop=st.integers(min_value=1, max_value=32),
    )
    def test_matches_naive_search(self, patterns, data, chop):
        ps = PatternSet(patterns)
        state = 0
        found = set()
        for i in range(0, len(data), chop):
            state, out = ps.scan(data[i : i + chop], state)
            found |= out
        assert found == naive_matches(patterns, data)


class DpiRxHarness:
    def __init__(self, patterns):
        self.sim = Simulator()
        self.nic = OffloadNic()
        self.host = Host(self.sim, "dst", nic=self.nic)
        self.delivered = []
        self.host.deliver = self.delivered.append
        self.adapter = DpiAdapter(PatternSet(patterns))
        self.ctx = self.nic.driver.l5o_create(
            _FakeConn(), self.adapter, None, tcpsn=0, direction=Direction.RX, l5p_ops=None
        )

    def rx(self, seq, payload):
        pkt = Packet(FLOW, seq=seq, payload=payload)
        self.nic.receive(pkt)
        return self.delivered[-1]


class _FakeConn:
    flow = FLOW.reversed()
    tx_ctx_id = None


class TestDpiOffload:
    def test_match_reported_in_packet_metadata(self):
        h = DpiRxHarness([b"malware-sig"])
        stream = make_message(b"clean " * 20) + make_message(b"... malware-sig ...")
        out1 = h.rx(0, stream[:100])
        out2 = h.rx(100, stream[100:])
        assert out1.meta.crc_ok and not out1.meta.placed  # scanned, no hit
        assert out2.meta.crc_ok and out2.meta.placed  # the hit packet

    def test_pattern_split_across_packets(self):
        h = DpiRxHarness([b"SPLITPATTERN"])
        msg = make_message(b"x" * 50 + b"SPLITPATTERN" + b"y" * 50)
        cut = 7 + 50 + 5  # mid-pattern
        first = h.rx(0, msg[:cut])
        second = h.rx(cut, msg[cut:])
        assert not first.meta.placed
        assert second.meta.placed  # completion packet reports the match

    def test_no_match_across_message_boundary(self):
        """Patterns never match across messages (§7): 'AB' ending one
        message and starting the next must not fire."""
        h = DpiRxHarness([b"ABAB"])
        stream = make_message(b"xxAB") + make_message(b"ABxx")
        out = h.rx(0, stream)
        assert not out.meta.placed

    def test_oos_packet_not_scanned(self):
        h = DpiRxHarness([b"evil"])
        stream = make_message(b"a" * 300 + b"evil" + b"b" * 300)
        h.rx(0, stream[:100])
        out = h.rx(200, stream[200:300])  # hole at 100..200
        assert not out.meta.crc_ok  # bypassed: software must scan
        assert not out.meta.offloaded

    def test_walker_counts_matches(self):
        adapter = DpiAdapter(PatternSet([b"hit"]))
        ctx = HwContext(1, FLOW, Direction.RX, adapter, None, tcpsn=0)
        stream = b"".join(make_message(b"hit me " * 3) for _ in range(4))
        result = walk(ctx, stream)
        assert result.completed == 4
        assert adapter.total_matches >= 4
