"""The parallel experiment-execution engine (`repro.exec`).

Locks the determinism contract of docs/performance.md: a parallel run
merges to output byte-identical to the serial path, and failures are
reported deterministically by point, loudly, without losing the other
points' work.
"""

import json
import os

import pytest

from repro.exec import (
    GridError,
    auto_chunksize,
    default_workers,
    min_parallel_points,
    point_seed,
    run_grid,
    run_grid_dict,
)
from repro.exec import engine
from repro.exec.engine import DEFAULT_MIN_PARALLEL_POINTS, MIN_POINTS_ENV, WORKERS_ENV
from repro.faults.chaos import chaos_point


# --- pure-function runners (module level: workers pickle them by name) ---

def square(point):
    return point * point


def fail_on_odd(point):
    if point % 2:
        raise ValueError(f"boom at {point}")
    return point


def chaos_tls_point(seed):
    # Armed FaultPlan + runtime sanitizer, derived from the seed alone
    # (the fig-sweep/chaos shape: a whole simulation per grid point).
    return chaos_point(workload="tls", seed=seed, duration=3e-3)


# --- engine unit behavior ------------------------------------------------

def test_results_are_point_ordered():
    points = list(range(10))
    assert run_grid(points, square, workers=1) == [p * p for p in points]
    assert run_grid(points, square, workers=3) == [p * p for p in points]


def test_run_grid_dict_keys_by_point():
    grid = run_grid_dict([3, 1, 2], square, workers=2)
    assert grid == {3: 9, 1: 1, 2: 4}


def test_run_grid_dict_rejects_duplicate_points():
    with pytest.raises(ValueError, match="unique"):
        run_grid_dict([1, 1], square, workers=1)


def test_default_workers_env(monkeypatch):
    monkeypatch.delenv(WORKERS_ENV, raising=False)
    assert default_workers() == 1
    monkeypatch.setenv(WORKERS_ENV, "4")
    assert default_workers() == 4
    monkeypatch.setenv(WORKERS_ENV, "0")
    with pytest.raises(ValueError):
        default_workers()
    monkeypatch.setenv(WORKERS_ENV, "many")
    with pytest.raises(ValueError):
        default_workers()


def test_point_seed_is_stable_and_distinct():
    a = point_seed(1, ("tls", 0.03))
    assert a == point_seed(1, ("tls", 0.03))  # pure function of inputs
    assert a != point_seed(2, ("tls", 0.03))  # base seed matters
    assert a != point_seed(1, ("tls", 0.05))  # point key matters


def test_unpicklable_grid_fails_fast(monkeypatch):
    monkeypatch.setenv(MIN_POINTS_ENV, "0")  # force the pool for a tiny grid
    points = [lambda: None, lambda: None]  # lambdas don't pickle
    with pytest.raises(GridError) as excinfo:
        run_grid(points, square, workers=2, force_pool=True)
    assert "<pickling>" in str(excinfo.value)


# --- the cheap-grid serial bypass ---------------------------------------

def test_min_parallel_points_env(monkeypatch):
    monkeypatch.delenv(MIN_POINTS_ENV, raising=False)
    assert min_parallel_points() == DEFAULT_MIN_PARALLEL_POINTS
    monkeypatch.setenv(MIN_POINTS_ENV, "8")
    assert min_parallel_points() == 8
    monkeypatch.setenv(MIN_POINTS_ENV, "-1")
    with pytest.raises(ValueError):
        min_parallel_points()
    monkeypatch.setenv(MIN_POINTS_ENV, "lots")
    with pytest.raises(ValueError):
        min_parallel_points()


def test_small_grid_bypasses_pool(monkeypatch, caplog):
    """A grid below the floor runs serially even with workers > 1: an
    unpicklable runner — which the pool cannot ship — still succeeds."""
    monkeypatch.delenv(MIN_POINTS_ENV, raising=False)
    runner = lambda p: p * p  # noqa: E731 - deliberately unpicklable
    with caplog.at_level("INFO", logger="repro.exec.engine"):
        assert run_grid([2, 3], runner, workers=4) == [4, 9]
    assert any("running serially" in rec.message for rec in caplog.records)


def test_bypass_disabled_honors_workers(monkeypatch):
    monkeypatch.setenv(MIN_POINTS_ENV, "0")
    assert run_grid([2, 3], square, workers=2) == [4, 9]


# --- the determinism contract -------------------------------------------

def test_serial_and_parallel_merge_byte_identical(monkeypatch):
    """workers=2 output is byte-for-byte the serial output, including a
    sweep whose points arm FaultPlans and run under the sanitizer."""
    monkeypatch.setenv(MIN_POINTS_ENV, "0")  # really exercise the pool
    seeds = [1, 2, 3]
    serial = run_grid(seeds, chaos_tls_point, workers=1)
    parallel = run_grid(seeds, chaos_tls_point, workers=2, force_pool=True)
    as_json = lambda results: json.dumps(results, sort_keys=True, indent=1)  # noqa: E731
    assert as_json(parallel) == as_json(serial)
    # The runs did something: fault plans armed, streams verified.
    assert all(r["plan"] for r in serial)


def test_workers_env_is_honored_by_default_path(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV, "2")
    points = list(range(6))
    assert run_grid(points, square) == [p * p for p in points]


def test_workers_env_auto(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV, "auto")
    assert default_workers() == (os.cpu_count() or 1)


# --- the persistent pool --------------------------------------------------

def test_pool_persists_across_consecutive_grids(monkeypatch):
    """Two back-to-back parallel grids reuse one pool, and the merged
    output is byte-identical to a fresh-pool run and to serial."""
    monkeypatch.setenv(MIN_POINTS_ENV, "0")
    engine.shutdown_pool()
    first = run_grid(list(range(8)), square, workers=2, force_pool=True)
    pool_after_first = engine._pool
    assert pool_after_first is not None
    second = run_grid(list(range(8, 16)), square, workers=2, force_pool=True)
    assert engine._pool is pool_after_first  # reused, not re-forked
    engine.shutdown_pool()  # force a fresh pool for the control run
    fresh = run_grid(list(range(8, 16)), square, workers=2, force_pool=True)
    serial = run_grid(list(range(8, 16)), square, workers=1)
    assert first == [p * p for p in range(8)]
    assert second == fresh == serial


def test_pool_reuse_with_armed_fault_plan(monkeypatch):
    """Worker reuse across grids whose points arm FaultPlans: the second
    grid on the warm pool matches fresh-pool and serial byte-for-byte."""
    monkeypatch.setenv(MIN_POINTS_ENV, "0")
    engine.shutdown_pool()
    run_grid([11, 12], chaos_tls_point, workers=2, force_pool=True)  # warm the pool
    warm = run_grid([13, 14], chaos_tls_point, workers=2, force_pool=True)
    engine.shutdown_pool()
    fresh = run_grid([13, 14], chaos_tls_point, workers=2, force_pool=True)
    serial = run_grid([13, 14], chaos_tls_point, workers=1)
    as_json = lambda results: json.dumps(results, sort_keys=True, indent=1)  # noqa: E731
    assert as_json(warm) == as_json(fresh) == as_json(serial)
    assert all(r["plan"] for r in serial)


def test_pool_rebuilt_on_worker_count_change(monkeypatch):
    monkeypatch.setenv(MIN_POINTS_ENV, "0")
    engine.shutdown_pool()
    run_grid([1, 2, 3], square, workers=2, force_pool=True)
    two_worker_pool = engine._pool
    run_grid([1, 2, 3], square, workers=3, force_pool=True)
    assert engine._pool is not two_worker_pool
    assert engine._pool_workers == 3
    engine.shutdown_pool()


def test_shutdown_pool_is_idempotent():
    engine.shutdown_pool()
    engine.shutdown_pool()
    assert engine._pool is None


def test_auto_chunksize():
    assert auto_chunksize(3, 2) == 1  # small grids: pure work stealing
    assert auto_chunksize(80, 2) == 10  # ~4 chunks per worker
    assert auto_chunksize(1000, 4) == 62
    assert auto_chunksize(0, 8) == 1  # never zero (imap requires >= 1)


# --- failure semantics ---------------------------------------------------

@pytest.mark.parametrize("workers", [1, 2])
def test_worker_crash_fails_loudly_with_point_id(workers):
    points = [0, 1, 2, 3, 4]
    with pytest.raises(GridError) as excinfo:
        run_grid(points, fail_on_odd, workers=workers)
    err = excinfo.value
    # Every failing point is named, in point order, traceback attached.
    assert [f.key for f in err.failures] == [1, 3]
    assert all("boom at" in f.worker_traceback for f in err.failures)
    assert "1" in str(err) and "3" in str(err)
    # The healthy points completed; their results are not lost.
    assert err.completed == 3
    assert err.total == 5


def test_custom_point_keys_in_errors():
    points = [0, 1]
    with pytest.raises(GridError) as excinfo:
        run_grid(points, fail_on_odd, workers=1, key=lambda p: f"loss={p}%")
    assert excinfo.value.failures[0].key == "loss=1%"
