"""wrk: HTTP benchmarking client (§6.3).

Maintains many persistent connections that repeatedly request files and
wait for the full response — the paper uses 16 threads / 1024 open
connections; here each connection is an event-driven request loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.apps.http import build_request, parse_response_header
from repro.apps.transport import Transport
from repro.l5p.tls.ktls import TlsConfig
from repro.net.host import Host


@dataclass
class WrkStats:
    requests: int = 0
    bytes_received: int = 0
    latencies: list = field(default_factory=list)

    @property
    def mean_latency(self) -> float:
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0.0


class WrkClient:
    """Drives ``connections`` persistent request loops."""

    def __init__(
        self,
        host: Host,
        server: str,
        port: int,
        paths: Sequence[str],
        connections: int = 16,
        tls: Optional[TlsConfig] = None,
        max_requests: Optional[int] = None,
        record_latencies: bool = True,
    ):
        if not paths:
            raise ValueError("wrk needs at least one path to request")
        self.host = host
        self.paths = list(paths)
        self.stats = WrkStats()
        self.max_requests = max_requests
        self.record_latencies = record_latencies
        self._issued = 0
        self._conns = [
            _WrkConn(self, host, server, port, tls, index=i) for i in range(connections)
        ]

    def next_path(self, index: int) -> Optional[str]:
        if self.max_requests is not None and self._issued >= self.max_requests:
            return None
        path = self.paths[(self._issued + index) % len(self.paths)]
        self._issued += 1
        return path

    @property
    def done(self) -> bool:
        return self.max_requests is not None and self.stats.requests >= self.max_requests


class _WrkConn:
    def __init__(self, wrk: WrkClient, host: Host, server: str, port: int, tls, index: int):
        self.wrk = wrk
        self.host = host
        self.index = index
        conn = host.tcp.connect(server, port)
        self.core = host.core_for_flow(conn.flow)
        self.transport = Transport(host, conn, "client", tls)
        self.transport.on_data = self._on_data
        # Stagger the first request per connection so all loops do not
        # run in lockstep (real clients arrive asynchronously); cap the
        # spread so huge connection counts still start promptly.
        self.transport.on_ready = lambda: host.sim.schedule((index % 64) * 50e-6, self._next_request)
        self._buffer = bytearray()
        self._body_remaining: Optional[int] = None
        self._body_total = 0
        self._sent_at = 0.0

    def _next_request(self) -> None:
        path = self.wrk.next_path(self.index)
        if path is None:
            return
        self.core.charge(self.host.model.cycles_syscall, "app")
        self._sent_at = self.host.sim.now
        request = build_request("/" + path)
        sent = self.transport.send(request)
        if sent != len(request):
            raise RuntimeError("request did not fit in the send buffer")

    def _on_data(self, data: bytes) -> None:
        self._buffer += data
        while True:
            if self._body_remaining is None:
                parsed = parse_response_header(bytes(self._buffer))
                if parsed is None:
                    return
                content_length, header_len = parsed
                del self._buffer[:header_len]
                self._body_remaining = content_length
                self._body_total = content_length
            take = min(self._body_remaining, len(self._buffer))
            del self._buffer[:take]
            self._body_remaining -= take
            if self._body_remaining > 0:
                return
            # Full response received.
            self._body_remaining = None
            self.wrk.stats.requests += 1
            self.wrk.stats.bytes_received += self._body_total
            if self.wrk.record_latencies:
                done_at = max(self.host.sim.now, self.core.busy_until)
                self.wrk.stats.latencies.append(done_at - self._sent_at)
            self._next_request()
