"""On-CPU vs off-CPU accelerator throughput models (paper §2.3, Table 1).

Table 1 compares OpenSSL ``speed`` throughput of Intel QuickAssist
(QAT, an off-CPU PCIe accelerator) against AES-NI (on-CPU instructions)
on a single 2.40 GHz core, for 16 KB blocks, with 1 or 128 threads.

The models capture the paper's argument:

- On-CPU instructions run at a per-byte cost; for AES-CBC-HMAC-SHA1 the
  un-accelerated SHA-1 dominates, for AES-GCM everything is accelerated.
- An off-CPU accelerator adds a fixed per-request latency (DMA, doorbell,
  completion) that a single blocking thread eats in full, while many
  threads overlap it — but each request still costs CPU cycles to submit
  and reap, so the core itself can become the bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AesNiModel:
    """Single-core throughput of CPU-instruction crypto."""

    freq_hz: float = 2.4e9
    cpb_aes_cbc: float = 1.25  # AES-NI CBC encrypt (serial chaining)
    cpb_sha1: float = 2.20  # SHA-1 without SHA extensions
    cpb_aes_gcm: float = 0.762  # fully accelerated GCM

    def throughput_mbs(self, cipher: str) -> float:
        """Single-thread throughput in MB/s for ``cipher``."""
        cpb = self._cpb(cipher)
        return self.freq_hz / cpb / 1e6

    def _cpb(self, cipher: str) -> float:
        if cipher == "aes-128-cbc-hmac-sha1":
            return self.cpb_aes_cbc + self.cpb_sha1
        if cipher == "aes-128-gcm":
            return self.cpb_aes_gcm
        raise ValueError(f"unknown cipher {cipher!r}")


@dataclass(frozen=True)
class QatModel:
    """Off-CPU accelerator: device bandwidth plus per-request costs."""

    freq_hz: float = 2.4e9
    device_mbs: float = 3200.0  # accelerator engine bandwidth, MB/s
    request_latency_s: float = 60e-6  # DMA + queueing + completion latency
    request_cpu_cycles: float = 12000.0  # submit + reap work on the core

    def throughput_mbs(self, cipher: str, block_bytes: int, threads: int) -> float:
        """Throughput in MB/s from one core driving the accelerator.

        One thread serializes: each block pays CPU time + latency +
        device time.  Many threads overlap latency and device time with
        submission work, leaving min(device bound, CPU submit bound).
        The cipher does not change the device's rate materially (QAT
        runs both), only the CPU-side comparison does.
        """
        del cipher  # the device processes both table ciphers at device_mbs
        cpu_s = self.request_cpu_cycles / self.freq_hz
        device_s = block_bytes / (self.device_mbs * 1e6)
        if threads <= 1:
            per_block = cpu_s + self.request_latency_s + device_s
            return block_bytes / per_block / 1e6
        # Enough threads to cover latency: bottleneck is the slower of the
        # device and the single core's submission path.
        cpu_bound = block_bytes / cpu_s / 1e6
        return min(self.device_mbs, cpu_bound)


def table1(block_bytes: int = 16 * 1024) -> dict[str, dict[str, float]]:
    """Reproduce Table 1: rows are ciphers, columns QAT-1/QAT-128/AES-NI-1."""
    aesni = AesNiModel()
    qat = QatModel()
    rows = {}
    for cipher in ("aes-128-cbc-hmac-sha1", "aes-128-gcm"):
        rows[cipher] = {
            "qat_1": qat.throughput_mbs(cipher, block_bytes, threads=1),
            "qat_128": qat.throughput_mbs(cipher, block_bytes, threads=128),
            "aesni_1": aesni.throughput_mbs(cipher),
        }
    return rows
