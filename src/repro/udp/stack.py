"""Per-host UDP: unreliable, unordered datagram delivery.

Exists to demonstrate §7's claim that autonomous offloading is
orthogonal to the layer-4 protocol — a datagram L5P (DTLS) needs none
of the TCP-side resynchronization machinery because every datagram is
self-contained.
"""

from __future__ import annotations

from typing import Callable

from repro.net.packet import FlowKey, Packet

MAX_DATAGRAM = 1452  # fits one MTU frame; no fragmentation modelled


class UdpStack:
    """Sockets are (port -> handler); datagrams carry (payload, peer)."""

    def __init__(self, host):
        self.host = host
        self._handlers: dict[int, Callable] = {}
        self._next_port = 50000
        self.datagrams_sent = 0
        self.datagrams_received = 0

    # ------------------------------------------------------------------
    def bind(self, port: int, on_datagram: Callable[[bytes, FlowKey, "Packet"], None]) -> int:
        """Receive datagrams on ``port``; the handler gets (payload,
        sender flow, packet) — the packet carries offload metadata."""
        if port in self._handlers:
            raise ValueError(f"UDP port {port} already bound")
        self._handlers[port] = on_datagram
        return port

    def bind_ephemeral(self, on_datagram: Callable) -> int:
        port = self._next_port
        self._next_port += 1
        return self.bind(port, on_datagram)

    def unbind(self, port: int) -> None:
        self._handlers.pop(port, None)

    # ------------------------------------------------------------------
    def sendto(self, dst: str, dport: int, payload: bytes, sport: int) -> None:
        """Emit one datagram (charged like a TX packet)."""
        if len(payload) > MAX_DATAGRAM:
            raise ValueError(f"datagram of {len(payload)}B exceeds {MAX_DATAGRAM}")
        flow = FlowKey(self.host.name, sport, dst, dport)
        pkt = Packet(flow, payload=payload, ack_flag=False, ipproto="udp")
        self.datagrams_sent += 1
        core = self.host.core_for_flow(flow)
        done = core.charge(self.host.model.cycles_tx_pkt, "stack")
        self.host.sim.at(done, self.host.nic.transmit_datagram, flow, pkt)

    def handle_packet(self, pkt: Packet) -> None:
        """Called by the host receive path (CPU already charged)."""
        handler = self._handlers.get(pkt.flow.dport)
        if handler is None:
            return  # no socket: drop
        self.datagrams_received += 1
        handler(pkt.payload, pkt.flow, pkt)
