"""The grid engine: fan independent simulator runs out over processes.

Model
-----
A *grid* is an ordered sequence of points; a *runner* is a module-level
callable ``runner(point) -> result``.  Each point describes one complete
simulation (typically a ``TestbedConfig``/``FaultPlan`` plus workload
parameters) and every stochastic draw inside it comes from the run seed
it carries — so a point's result is a pure function of the point, and
executing points concurrently in separate processes cannot change any
result.  :func:`run_grid` exploits exactly that: with ``workers > 1`` it
ships pickled points to a ``multiprocessing`` pool; with ``workers <= 1``
(the default, and whatever ``REPRO_EXEC_WORKERS`` forces) it calls the
runner in-process, in order — the old serial path.  Both paths return
results in point order, so merged output is bit-identical either way.

Failure contract
----------------
A raising point never poisons its siblings: every other point still
completes, and the run then fails loudly with a :class:`GridError`
listing each failed point's id and its full worker traceback.

Pickling contract
-----------------
``runner`` and every point must be picklable, which in practice means:
the runner is a top-level ``def`` in an importable module (no lambdas or
closures), and points are built from plain data — tuples, dicts,
dataclasses like ``TestbedConfig``/``FaultPlan``.  Violations surface as
an immediate ``GridError`` naming the offending point, not a hang.

Pool reuse and the cost model
-----------------------------
Forking a pool costs tens of milliseconds; the engine therefore keeps
ONE process pool alive for the whole parent process and reuses it for
every grid (``shutdown_pool`` tears it down; ``atexit`` does so on
interpreter exit).  The pool is transparently rebuilt when the worker
count changes, when a runner or point type lives in a module imported
*after* the last fork (fresh forks inherit the parent's imports), or
when a previous parallel run broke it.  A small cost model additionally
bypasses the pool whenever parallelism provably cannot win — fewer
points than ``REPRO_EXEC_MIN_POINTS``, or a single-CPU host where fork
and IPC overhead is pure loss — so ``workers > 1`` never runs slower
than serial.  ``force_pool=True`` defeats the bypass for tests that must
exercise the worker path itself.
"""

from __future__ import annotations

import atexit
import logging
import multiprocessing
import os
import pickle
import sys
import traceback
from typing import Any, Callable, Optional, Sequence

logger = logging.getLogger(__name__)

#: Environment knob: default worker count for every grid in the process.
WORKERS_ENV = "REPRO_EXEC_WORKERS"

#: Environment knob: grids smaller than this run serially even when
#: ``workers > 1`` — pool fork/teardown costs tens of milliseconds, which
#: dwarfs any speedup on a handful of sub-millisecond points.
MIN_POINTS_ENV = "REPRO_EXEC_MIN_POINTS"
DEFAULT_MIN_PARALLEL_POINTS = 4


def min_parallel_points() -> int:
    """Grid-size floor for the pool from ``REPRO_EXEC_MIN_POINTS``.

    Below the floor :func:`run_grid` bypasses the pool entirely (results
    are bit-identical either way, so only wall-clock is at stake).  Set
    to ``0`` or ``1`` to disable the bypass and always honor ``workers``.
    """
    raw = os.environ.get(MIN_POINTS_ENV, "").strip()
    if not raw:
        return DEFAULT_MIN_PARALLEL_POINTS
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{MIN_POINTS_ENV} must be an integer, got {raw!r}") from None
    if value < 0:
        raise ValueError(f"{MIN_POINTS_ENV} must be >= 0, got {value}")
    return value


def default_workers() -> int:
    """Worker count from ``REPRO_EXEC_WORKERS``; 1 (serial) when unset.

    ``auto`` means one worker per CPU.  Anything else must be a positive
    integer — a typo'd value fails loudly here rather than silently
    running serial (the interaction with ``REPRO_EXEC_MIN_POINTS`` and
    the single-CPU bypass is documented in docs/performance.md).
    """
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if not raw:
        return 1
    if raw.lower() == "auto":
        return os.cpu_count() or 1
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{WORKERS_ENV} must be a positive integer or 'auto', got {raw!r}"
        ) from None
    if value < 1:
        raise ValueError(f"{WORKERS_ENV} must be >= 1, got {value}")
    return value


def point_seed(base_seed: int, key: Any) -> int:
    """A stable per-point seed substream, mirroring ``Simulator.substream``.

    Derived from the textual form of ``(base_seed, key)`` so the same
    point gets the same seed in any process, any worker count, any run.
    """
    import hashlib

    digest = hashlib.sha256(f"{base_seed}:{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class PointFailure(RuntimeError):
    """One grid point's runner raised (or could not be shipped)."""

    def __init__(self, key: Any, worker_traceback: str):
        self.key = key
        self.worker_traceback = worker_traceback
        super().__init__(f"grid point {key!r} failed:\n{worker_traceback}")


class GridError(RuntimeError):
    """One or more grid points failed; every other point completed."""

    def __init__(self, failures: Sequence[PointFailure], completed: int, total: int):
        self.failures = list(failures)
        self.completed = completed
        self.total = total
        keys = ", ".join(repr(f.key) for f in self.failures)
        detail = "\n\n".join(f.worker_traceback.rstrip() for f in self.failures)
        super().__init__(
            f"{len(self.failures)}/{total} grid point(s) failed "
            f"({completed} completed): {keys}\n{detail}"
        )


def _call_point(task: tuple) -> tuple:
    """Worker-side wrapper: never raises, always reports the index."""
    index, runner, point = task
    try:
        return index, "ok", runner(point)
    except BaseException:  # noqa: B036 - a crashing point must not kill the pool
        return index, "err", traceback.format_exc()


def _point_key(point: Any, index: int, key: Optional[Callable[[Any], Any]]) -> Any:
    if key is not None:
        return key(point)
    return point if isinstance(point, (str, int, float, tuple, frozenset)) else index


# ----------------------------------------------------------------------
# persistent worker pool
# ----------------------------------------------------------------------
#: The one process pool for this parent, plus what it was forked with:
#: worker count and the module names alive at fork time.  ``None`` until
#: the first parallel grid; rebuilt (never duplicated) on mismatch.
_pool: Optional[Any] = None
_pool_workers: int = 0
_pool_modules: frozenset = frozenset()
_pool_pid: int = 0


def shutdown_pool() -> None:
    """Tear down the persistent worker pool (idempotent).

    Registered with ``atexit``; also useful in tests.  A forked child
    that inherited the handle only drops its reference — terminating
    from a non-owner would tear down the *parent's* workers.
    """
    global _pool, _pool_workers, _pool_modules
    pool, _pool = _pool, None
    owner = _pool_pid == os.getpid()
    _pool_workers = 0
    _pool_modules = frozenset()
    if pool is not None and owner:
        try:
            pool.terminate()
            pool.join()
        except Exception:  # pragma: no cover - teardown best effort
            pass


atexit.register(shutdown_pool)


def _pool_for(workers: int, needed_modules: set) -> Any:
    """The persistent pool, rebuilt if stale for this grid.

    Stale means: different worker count, or the grid references modules
    (runner / point classes) imported after the last fork — fork children
    resolve pickled references against the modules they inherited, so a
    fresh fork is the only way to see new ones.
    """
    global _pool, _pool_workers, _pool_modules, _pool_pid
    if _pool is not None and (
        _pool_pid != os.getpid() or _pool_workers != workers or not needed_modules <= _pool_modules
    ):
        shutdown_pool()
    if _pool is None:
        # fork: workers inherit the parent's imported modules, so runners
        # defined in pytest-loaded benchmark modules resolve by name.
        ctx = multiprocessing.get_context("fork")
        modules = frozenset(sys.modules)
        _pool = ctx.Pool(processes=workers)
        _pool_workers = workers
        _pool_modules = modules
        _pool_pid = os.getpid()
    return _pool


def auto_chunksize(npoints: int, workers: int) -> int:
    """Points dispatched per IPC round-trip.

    ~4 chunks per worker balances dispatch overhead against stealing:
    big grids amortize the pickling/IPC cost over many points per
    message, while heterogeneous-cost points can still rebalance across
    the last few chunks.  Small grids degrade to chunksize 1 (pure
    work-stealing), which is what they had before.
    """
    return max(1, npoints // (workers * 4))


def _run_serial(points: list, runner: Callable[[Any], Any]) -> list:
    """The plain in-process path; returns raw (index, status, payload)."""
    return [_call_point((index, runner, point)) for index, point in enumerate(points)]


def _run_pooled(points: list, runner: Callable[[Any], Any], workers: int) -> list:
    """Dispatch the grid to the persistent pool in auto-sized chunks.

    A broken pool (a worker was killed, or a stale fork cannot resolve a
    pickled reference) is rebuilt and the whole grid retried once —
    points are pure functions of themselves, so re-running them cannot
    change any result.
    """
    tasks = [(index, runner, point) for index, point in enumerate(points)]
    needed = {type(point).__module__ for point in points}
    needed.add(getattr(runner, "__module__", "__main__"))
    chunksize = auto_chunksize(len(points), workers)
    for attempt in (1, 2):
        pool = _pool_for(workers, needed)
        try:
            return list(pool.imap_unordered(_call_point, tasks, chunksize=chunksize))
        except Exception:
            shutdown_pool()
            if attempt == 2:
                raise
            logger.warning(
                "run_grid: worker pool failed mid-grid; rebuilding and retrying once",
                exc_info=True,
            )
    raise AssertionError("unreachable")  # pragma: no cover


def run_grid(
    points: Sequence[Any],
    runner: Callable[[Any], Any],
    workers: Optional[int] = None,
    key: Optional[Callable[[Any], Any]] = None,
    force_pool: bool = False,
) -> list:
    """Run ``runner`` over every point; returns results in point order.

    ``workers=None`` reads ``REPRO_EXEC_WORKERS`` (default 1 = serial);
    ``workers=1`` is the plain sequential path, guaranteed unchanged from
    pre-engine behavior.  With ``workers > 1`` the cost model still takes
    the serial path whenever the pool provably cannot win — fewer points
    than ``REPRO_EXEC_MIN_POINTS`` (default 4), or a single-CPU host —
    with an INFO log noting the bypass; results are bit-identical either
    way, so only wall-clock is at stake.  ``force_pool=True`` skips the
    cost model (tests that must cover the worker path).  Parallel grids
    reuse one persistent forked pool across calls and dispatch in
    :func:`auto_chunksize` batches.  ``key`` labels points in failure
    reports (the point itself is used when it is primitive/tuple, else
    its index).  Raises :class:`GridError` after all points have been
    attempted if any failed.
    """
    points = list(points)
    if workers is None:
        workers = default_workers()
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    workers = min(workers, max(1, len(points)))
    if workers > 1 and not force_pool:
        if len(points) < min_parallel_points():
            logger.info(
                "run_grid: %d point(s) < %s=%d; running serially (pool startup "
                "would cost more than it saves; results are identical either way)",
                len(points),
                MIN_POINTS_ENV,
                min_parallel_points(),
            )
            workers = 1
        elif (os.cpu_count() or 1) < 2:
            logger.info(
                "run_grid: single-CPU host; running %d point(s) serially "
                "(fork+IPC overhead is pure loss with nothing to overlap)",
                len(points),
            )
            workers = 1

    if workers == 1:
        raw = _run_serial(points, runner)
    else:
        try:
            pickle.dumps([(index, runner, point) for index, point in enumerate(points)])
        except Exception as exc:
            raise GridError(
                [PointFailure("<pickling>", f"grid is not picklable: {exc!r}")], 0, len(points)
            ) from exc
        raw = _run_pooled(points, runner, workers)

    failed: dict[int, PointFailure] = {}
    results: list[Any] = [None] * len(points)
    for index, status, payload in raw:
        if status == "ok":
            results[index] = payload
        else:
            failed[index] = PointFailure(_point_key(points[index], index, key), payload)
    if failed:
        # Report in point order regardless of completion order.
        failures = [failed[index] for index in sorted(failed)]
        raise GridError(failures, completed=len(points) - len(failures), total=len(points))
    return results


def run_grid_dict(
    points: Sequence[Any],
    runner: Callable[[Any], Any],
    workers: Optional[int] = None,
    force_pool: bool = False,
) -> dict:
    """:func:`run_grid`, merged as ``{point: result}`` in point order.

    Points must be hashable and unique; the mapping's insertion order is
    the grid order, so downstream serialization (bench JSON, reports) is
    identical between serial and parallel runs.
    """
    points = list(points)
    if len(set(points)) != len(points):
        raise ValueError("grid points must be unique to key a result dict")
    results = run_grid(points, runner, workers=workers, force_pool=force_pool)
    return dict(zip(points, results))
