"""fio cycle-breakdown experiments (Figures 2 and 10).

Random reads (or writes) over NVMe-TCP with one DUT core; reports
per-request cycles split into crc / copy / other / idle, where idle is
wall-cycles minus busy cycles — exactly Figure 10's stacking.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.fio import FioJob
from repro.harness.testbed import Testbed, TestbedConfig
from repro.l5p.nvme_tcp import NvmeConfig, NvmeTcpHost, NvmeTcpTarget
from repro.storage.blockdev import BlockDevice


@dataclass
class FioPoint:
    block_size: int
    iodepth: int
    requests: int
    cycles_crc: float
    cycles_copy: float
    cycles_other: float
    cycles_idle: float
    iops: float
    mean_latency: float
    offloaded_pdus: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def cycles_total(self) -> float:
        return self.cycles_crc + self.cycles_copy + self.cycles_other + self.cycles_idle

    @property
    def offloadable_fraction(self) -> float:
        """copy+crc out of the total — the figure's "%" right axis."""
        total = self.cycles_total
        return (self.cycles_crc + self.cycles_copy) / total if total else 0.0

    @property
    def busy_fraction(self) -> float:
        total = self.cycles_total
        return 1.0 - self.cycles_idle / total if total else 0.0


def run_fio_point(
    block_size: int,
    iodepth: int,
    mode: str = "randread",
    offload: bool = False,
    warmup: float = 2e-3,
    measure: float = 10e-3,
    seed: int = 0,
    digest_name: str = "fast",
    queue_depth_margin: int = 2,
) -> FioPoint:
    """One (block size, I/O depth) cell of Figure 10."""
    # Deep queues need a longer ramp: cwnd must grow to cover the whole
    # in-flight working set before steady state.
    warmup = max(warmup, 2e-3 + iodepth * 4e-5)
    tb = Testbed(TestbedConfig(seed=seed, server_cores=1, generator_cores=12))
    device = BlockDevice(tb.sim)
    target_cfg = NvmeConfig(digest_name=digest_name, tx_offload=True)
    NvmeTcpTarget(tb.generator, device, config=target_cfg).start()
    host_cfg = NvmeConfig(
        digest_name=digest_name,
        rx_offload_crc=offload,
        rx_offload_copy=offload,
        tx_offload=offload,
        queue_depth=iodepth * queue_depth_margin,
    )
    nvme = NvmeTcpHost(tb.server, config=host_cfg)
    nvme.connect("generator")
    job = FioJob(nvme, block_size=block_size, iodepth=iodepth, mode=mode, seed=seed)
    job.start()

    tb.run(until=warmup)
    tb.server.cpu.reset_stats()
    done_before = job.stats.completed
    placed_before = nvme.stats.pdus_placed
    latencies_mark = len(job.stats.latencies)

    tb.run(until=warmup + measure)
    job.stop()
    requests = job.stats.completed - done_before
    cats = tb.server.cpu.cycles_by_category()
    busy = sum(cats.values())
    wall_cycles = measure * tb.server.model.freq_hz
    idle = max(0.0, wall_cycles - busy)
    n = max(1, requests)
    crc = cats.get("crc", 0.0)
    copy = cats.get("copy", 0.0)
    other = busy - crc - copy
    window_lat = job.stats.latencies[latencies_mark:]
    return FioPoint(
        block_size=block_size,
        iodepth=iodepth,
        requests=requests,
        cycles_crc=crc / n,
        cycles_copy=copy / n,
        cycles_other=other / n,
        cycles_idle=idle / n,
        iops=requests / measure,
        mean_latency=sum(window_lat) / len(window_lat) if window_lat else 0.0,
        offloaded_pdus=nvme.stats.pdus_placed - placed_before,
    )
