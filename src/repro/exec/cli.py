"""Ad-hoc parallel sweeps from the command line.

    python -m repro.exec iperf --vary loss=0,0.01,0.03 --vary mode=tcp,tls-offload \
        --fix direction=tx --fix streams=16 --workers 4 --json sweep.json

The positional argument picks a registered experiment runner; every
``--vary key=v1,v2,...`` contributes one grid axis (Cartesian product,
axes in the order given); ``--fix key=value`` pins a parameter for all
points.  Values are coerced ``int`` → ``float`` → ``bool`` → ``str``.
Results print as one line per point and, with ``--json``, are written
keyed and ordered by point — identical for any worker count.

Registered experiments::

    iperf   repro.experiments.iperf_tls.run_iperf     (figs 11, 16-18)
    scale   repro.experiments.scalability.run_scale_point  (fig 19)
    mix     repro.experiments.scale_mix.run_mix_point (fig 19 XL)
    nginx   repro.experiments.nginx_bench.run_nginx   (figs 12-14)
    chaos   repro.faults.chaos.chaos_point            (fault soaks)
"""

from __future__ import annotations

import argparse
import dataclasses
import itertools
import json
import sys
from typing import Any, Optional

from repro.exec.engine import GridError, default_workers, run_grid

#: experiment name -> "module:callable" (resolved lazily, also in workers).
EXPERIMENTS = {
    "iperf": "repro.experiments.iperf_tls:run_iperf",
    "scale": "repro.experiments.scalability:run_scale_point",
    "mix": "repro.experiments.scale_mix:run_mix_point",
    "nginx": "repro.experiments.nginx_bench:run_nginx",
    "chaos": "repro.faults.chaos:chaos_point",
    "l5p": "repro.experiments.l5p_plugins:run_l5p_point",
}


def _resolve(name: str):
    target = EXPERIMENTS[name]
    module_name, _, attr = target.partition(":")
    module = __import__(module_name, fromlist=[attr])
    return getattr(module, attr)


def coerce(raw: str) -> Any:
    """``int`` → ``float`` → ``bool`` → ``str``, the narrowest that parses."""
    for cast in (int, float):
        try:
            return cast(raw)
        except ValueError:
            pass
    if raw.lower() in ("true", "false"):
        return raw.lower() == "true"
    return raw


def parse_axis(spec: str) -> tuple[str, list]:
    """``key=v1,v2,...`` -> ``(key, [values])``."""
    key, sep, values = spec.partition("=")
    if not sep or not key or not values:
        raise ValueError(f"expected key=v1,v2,..., got {spec!r}")
    return key, [coerce(v) for v in values.split(",")]


def build_points(axes: list, fixed: dict) -> list:
    """Cartesian product of the vary axes over the fixed parameters.

    Each point is ``(("key", value), ...)`` — a hashable, picklable,
    deterministic identity used for ordering, merging, and failure
    reports.
    """
    keys = [key for key, _ in axes]
    dupes = set(keys) & set(fixed)
    if dupes:
        raise ValueError(f"parameter(s) both varied and fixed: {', '.join(sorted(dupes))}")
    points = []
    for combo in itertools.product(*(values for _, values in axes)):
        params = dict(fixed)
        params.update(zip(keys, combo))
        points.append(tuple(sorted(params.items())))
    return points


def _jsonable(value: Any) -> Any:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return dataclasses.asdict(value)
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def run_point(task: tuple) -> dict:
    """Module-level runner (picklable): ``(experiment, point) -> dict``."""
    name, point = task
    result = _resolve(name)(**dict(point))
    return _jsonable(result)


def _summarize(result: dict) -> str:
    """First few scalar fields of a result, for the per-point line."""
    parts = []
    for key, value in result.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        parts.append(f"{key}={value:.4g}" if isinstance(value, float) else f"{key}={value}")
        if len(parts) == 4:
            break
    return " ".join(parts) or "(no scalar fields)"


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exec",
        description="Run an experiment grid, optionally over parallel workers.",
    )
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS), help="registered runner")
    parser.add_argument(
        "--vary",
        action="append",
        default=None,
        metavar="KEY=V1,V2,...",
        help="grid axis (repeatable; Cartesian product in the order given)",
    )
    parser.add_argument(
        "--fix",
        action="append",
        default=None,
        metavar="KEY=VALUE",
        help="pinned parameter applied to every point (repeatable)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=f"process count (default: $REPRO_EXEC_WORKERS or 1; currently {default_workers()})",
    )
    parser.add_argument("--json", metavar="PATH", help="write full results keyed by point")
    args = parser.parse_args(argv)

    try:
        axes = [parse_axis(spec) for spec in args.vary or []]
        fixed = dict(parse_axis(spec) for spec in args.fix or [])
        fixed = {key: values[0] if len(values) == 1 else values for key, values in fixed.items()}
        points = build_points(axes, fixed)
    except ValueError as exc:
        print(f"exec: {exc}", file=sys.stderr)
        return 2

    tasks = [(args.experiment, point) for point in points]
    try:
        results = run_grid(tasks, run_point, workers=args.workers, key=lambda t: t[1])
    except GridError as exc:
        print(f"exec: {exc}", file=sys.stderr)
        return 1

    merged = {}
    for point, result in zip(points, results):
        label = ", ".join(f"{k}={v}" for k, v in point) or "(defaults)"
        merged[label] = result
        print(f"[{label}] {_summarize(result)}")
    print(f"== {len(points)} point(s), workers={args.workers or default_workers()}")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"experiment": args.experiment, "points": merged}, fh, indent=2, sort_keys=False)
            fh.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
