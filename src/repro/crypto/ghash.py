"""GHASH — the GF(2^128) universal hash underlying AES-GCM (NIST SP 800-38D).

Field elements are held as 128-bit Python ints in the NIST byte order:
``int.from_bytes(block, "big")``, where the *most significant* bit of the
integer is the coefficient of x^0.

For speed we precompute, per hash key H, a Shoup-style table
``T[k][b]`` = (byte value ``b`` at byte position ``k``) x H, so a block
multiplication is 16 table lookups and XORs instead of a 128-step shift
loop.  Tables are shared across *all* connections keyed by the same H
through a small LRU cache (:func:`precompute_table`), mirroring how the
paper's HW context caches the per-key static state (§3.2), and whole
records are absorbed with the 16 lookups unrolled inline per block
rather than a per-block method call.
"""

from __future__ import annotations

from collections import OrderedDict

# x^128 + x^7 + x^2 + x + 1, in the right-shift (reflected) representation.
_R = 0xE1000000000000000000000000000000


def gf128_mul(x: int, y: int) -> int:
    """Bitwise GF(2^128) multiplication, straight from the spec.

    Slow; used to validate the table-driven path and to build tables.
    """
    z = 0
    v = x
    for i in range(127, -1, -1):
        if (y >> i) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


def _mul_x(v: int) -> int:
    """Multiply a field element by x (one step of the shift loop)."""
    if v & 1:
        return (v >> 1) ^ _R
    return v >> 1


def _build_table(h: int) -> list[list[int]]:
    """Byte-position tables for multiplication by H.

    ``powers[j]`` is H*x^j.  A set integer bit i of the operand carries
    coefficient x^(127-i); for byte k (0 = most significant) and bit t
    (LSB-first within the byte) that exponent is 8k + 7 - t.
    """
    powers = [h]
    for _ in range(127):
        powers.append(_mul_x(powers[-1]))
    table: list[list[int]] = []
    for k in range(16):
        row = [0] * 256
        for t in range(8):
            row[1 << t] = powers[8 * k + 7 - t]
        for b in range(1, 256):
            if b & (b - 1):  # not a power of two: combine smaller entries
                row[b] = row[b & (b - 1)] ^ row[b & -b]
        table.append(row)
    return table


#: Per-key LRU of Shoup tables, shared across connections: many flows
#: under one key (or one re-keyed connection) pay the ~100-multiply
#: table build once.  Tables are pure functions of H, so the cache can
#: never affect results — only how fast they compute.
_TABLE_CACHE: OrderedDict[int, list[list[int]]] = OrderedDict()
_TABLE_CACHE_SIZE = 128


def precompute_table(h: int) -> list[list[int]]:
    """The multiplication-by-H table for reuse across many
    :class:`Ghash` instances keyed by the same H (the per-connection key
    schedule the paper's HW context caches, §3.2).  Backed by a process-
    wide per-key LRU shared across connections."""
    table = _TABLE_CACHE.get(h)
    if table is None:
        table = _build_table(h)
        _TABLE_CACHE[h] = table
        if len(_TABLE_CACHE) > _TABLE_CACHE_SIZE:
            _TABLE_CACHE.popitem(last=False)
    else:
        _TABLE_CACHE.move_to_end(h)
    return table


class Ghash:
    """Incremental GHASH over a byte stream.

    Input is consumed in 16-byte blocks; a trailing partial block is
    zero-padded at :meth:`digest` time, matching how GCM pads the AAD
    and ciphertext segments separately (the caller — GCM — is
    responsible for segment padding, so :meth:`pad_to_block` is exposed).
    """

    def __init__(self, h: int, table: list[list[int]] | None = None):
        self.h = h
        # Building the Shoup table costs ~100x one block multiply; it is
        # fetched from (and retained in) the shared per-key LRU, so many
        # GCM records — and many connections — under one H build it once.
        self._table = precompute_table(h) if table is None else table
        self._y = 0
        self._buf = b""

    def _mul_h(self, y: int) -> int:
        table = self._table
        z = 0
        for k, byte in enumerate(y.to_bytes(16, "big")):
            z ^= table[k][byte]
        return z

    def update(self, data: bytes) -> None:
        buf = self._buf + data if self._buf else data
        full = len(buf) - (len(buf) % 16)
        y = self._y
        # Batched block absorption: the whole record's full blocks are
        # folded in one loop with the 16 byte-position lookups unrolled
        # inline — no per-block method call, one bytes round-trip per
        # block.  Identical math to _mul_h(y ^ block), block by block.
        t0, t1, t2, t3, t4, t5, t6, t7, t8, t9, t10, t11, t12, t13, t14, t15 = self._table
        from_bytes = int.from_bytes
        for off in range(0, full, 16):
            y ^= from_bytes(buf[off : off + 16], "big")
            b = y.to_bytes(16, "big")
            y = (
                t0[b[0]]
                ^ t1[b[1]]
                ^ t2[b[2]]
                ^ t3[b[3]]
                ^ t4[b[4]]
                ^ t5[b[5]]
                ^ t6[b[6]]
                ^ t7[b[7]]
                ^ t8[b[8]]
                ^ t9[b[9]]
                ^ t10[b[10]]
                ^ t11[b[11]]
                ^ t12[b[12]]
                ^ t13[b[13]]
                ^ t14[b[14]]
                ^ t15[b[15]]
            )
        self._y = y
        self._buf = buf[full:]

    def pad_to_block(self) -> None:
        """Zero-pad the pending partial block, closing a GCM segment."""
        if self._buf:
            self.update(b"\x00" * (16 - len(self._buf)))

    def digest_int(self) -> int:
        """Current hash value; pending partial input is zero-padded."""
        if self._buf:
            block = int.from_bytes(self._buf.ljust(16, b"\x00"), "big")
            return self._mul_h(self._y ^ block)
        return self._y

    def digest(self) -> bytes:
        return self.digest_int().to_bytes(16, "big")
