"""A compact TLV serializer (mini Thrift-compact-style), from scratch.

Supported values: None, bool, int, float, bytes, str, list, dict.
Integers use zigzag + varint; containers carry element counts.
"""

from __future__ import annotations

import struct
from typing import Any

_T_NONE = 0
_T_FALSE = 1
_T_TRUE = 2
_T_INT = 3
_T_FLOAT = 4
_T_BYTES = 5
_T_STR = 6
_T_LIST = 7
_T_DICT = 8


def _zigzag(n: int) -> int:
    return (n << 1) if n >= 0 else ((-n) << 1) - 1


def _unzigzag(z: int) -> int:
    return (z >> 1) if (z & 1) == 0 else -((z + 1) >> 1)


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise ValueError("varint must be non-negative")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, pos: int) -> tuple[int, int]:
    shift = 0
    value = 0
    while True:
        if pos >= len(data):
            raise ValueError("truncated varint")
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
        if shift > 2048:  # arbitrary-precision ints, but bounded sanity
            raise ValueError("varint too long")


def _encode_into(out: bytearray, value: Any) -> None:
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif isinstance(value, int):
        out.append(_T_INT)
        _write_varint(out, _zigzag(value))
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out += struct.pack(">d", value)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        out.append(_T_BYTES)
        raw = bytes(value)
        _write_varint(out, len(raw))
        out += raw
    elif isinstance(value, str):
        out.append(_T_STR)
        raw = value.encode("utf-8")
        _write_varint(out, len(raw))
        out += raw
    elif isinstance(value, (list, tuple)):
        out.append(_T_LIST)
        _write_varint(out, len(value))
        for item in value:
            _encode_into(out, item)
    elif isinstance(value, dict):
        out.append(_T_DICT)
        _write_varint(out, len(value))
        for key, item in value.items():
            _encode_into(out, key)
            _encode_into(out, item)
    else:
        raise TypeError(f"cannot serialize {type(value).__name__}")


def encode(value: Any) -> bytes:
    """Serialize ``value`` to TLV bytes."""
    out = bytearray()
    _encode_into(out, value)
    return bytes(out)


def _decode_from(data: bytes, pos: int) -> tuple[Any, int]:
    if pos >= len(data):
        raise ValueError("truncated value")
    tag = data[pos]
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_INT:
        z, pos = _read_varint(data, pos)
        return _unzigzag(z), pos
    if tag == _T_FLOAT:
        if pos + 8 > len(data):
            raise ValueError("truncated float")
        return struct.unpack(">d", data[pos : pos + 8])[0], pos + 8
    if tag in (_T_BYTES, _T_STR):
        length, pos = _read_varint(data, pos)
        if pos + length > len(data):
            raise ValueError("truncated string/bytes")
        raw = data[pos : pos + length]
        pos += length
        return (bytes(raw) if tag == _T_BYTES else raw.decode("utf-8")), pos
    if tag == _T_LIST:
        count, pos = _read_varint(data, pos)
        items = []
        for _ in range(count):
            item, pos = _decode_from(data, pos)
            items.append(item)
        return items, pos
    if tag == _T_DICT:
        count, pos = _read_varint(data, pos)
        mapping = {}
        for _ in range(count):
            key, pos = _decode_from(data, pos)
            item, pos = _decode_from(data, pos)
            mapping[key] = item
        return mapping, pos
    raise ValueError(f"unknown TLV tag {tag}")


def decode(data: bytes) -> Any:
    """Deserialize one TLV value; rejects trailing garbage."""
    value, pos = _decode_from(data, 0)
    if pos != len(data):
        raise ValueError(f"{len(data) - pos} trailing bytes after value")
    return value
