"""Plugin-protocol experiments: HTTP/2 frame placement and Redis RESP
inline steering on the two-machine testbed.

Both protocols enter the simulator through the :mod:`repro.l5p.plugin`
registry (``TestbedConfig(protocols=...)`` resolves them before the
first packet moves), making this the template experiment for any L5P
added by declaration rather than by editing the core:

- ``proto="http2"``: the DUT is the *client* fetching responses whose
  DATA frames carry a CRC trailer; the NIC verifies the FCS and places
  frame bodies directly into per-stream buffers.  Chunk lengths are
  deliberately non-uniform (977 B .. 16380 B cycling), so a loss-induced
  resync can never ride a fixed record cadence — the speculation engine
  has to find real frame boundaries.
- ``proto="resp"``: the DUT is the *server*; clients pipeline short
  inline commands, many per packet, and the NIC steers each packet to
  the receive queue owning the first command's key shard.  Dispatch on
  a steered packet skips the software parse+hash.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.harness.testbed import Testbed, TestbedConfig
from repro.util.units import gbps

#: Non-uniform HTTP/2 response lengths, cycled by the closed-loop client.
HTTP2_LENGTHS = (48_000, 9_000, 120_000, 3_000)
#: Commands per pipelined RESP batch (several frames share each packet).
RESP_BATCH = 8


@dataclass
class L5pRun:
    proto: str
    offload: bool
    loss: float
    completed: int  # fetches (http2) or batches (resp)
    bytes_moved: int
    dut_cycles: dict = field(default_factory=dict)
    #: Protocol-level offload outcome counters (placed/steered vs software).
    app_stats: dict = field(default_factory=dict)
    #: DUT NIC resync machinery deltas over the run.
    nic_stats: dict = field(default_factory=dict)
    duration: float = 0.0

    @property
    def goodput_gbps(self) -> float:
        return gbps(max(self.bytes_moved, 1), self.duration) if self.duration else 0.0

    @property
    def offloaded_fraction(self) -> float:
        """Fraction of frames (http2) or commands (resp) that rode the
        offloaded path instead of the software fallback."""
        if self.proto == "http2":
            done = self.app_stats.get("placed_frames", 0)
            total = self.app_stats.get("data_frames", 0)
        else:
            done = self.app_stats.get("steered", 0)
            total = self.app_stats.get("commands", 0)
        return done / total if total else 0.0


_NIC_KEYS = ("resync_requests", "resyncs_completed", "boundary_resyncs", "resync_failures")


def run_l5p_point(
    proto: str = "http2",
    offload: bool = True,
    loss: float = 0.0,
    ops: int = 40,
    seed: int = 0,
    until: float = 0.5,
) -> L5pRun:
    """One (protocol, offload, loss) point; closed-loop ``ops`` operations."""
    if proto == "http2":
        return _run_http2(offload, loss, ops, seed, until)
    if proto == "resp":
        return _run_resp(offload, loss, ops, seed, until)
    raise ValueError(f"proto must be http2/resp, got {proto!r}")


def _run_http2(offload: bool, loss: float, ops: int, seed: int, until: float) -> L5pRun:
    from repro.l5p.http2 import Http2Client, Http2Config, Http2Server

    tb = Testbed(
        TestbedConfig(seed=seed, loss_to_server=loss, protocols=("http2",))
    )
    Http2Server(tb.generator, port=8080)
    config = Http2Config(rx_offload_crc=offload, rx_offload_copy=offload)
    client = Http2Client(tb.server, "generator", port=8080, config=config)
    before = {k: tb.server.nic.offload_stats()[k] for k in _NIC_KEYS}

    done = {"count": 0, "bytes": 0}

    def issue(i: int) -> None:
        if i >= ops:
            return

        def finished(body, latency, i=i):
            done["count"] += 1
            done["bytes"] += len(body)
            issue(i + 1)

        client.fetch(HTTP2_LENGTHS[i % len(HTTP2_LENGTHS)], finished)

    issue(0)
    tb.run(until=until)
    after = tb.server.nic.offload_stats()
    return L5pRun(
        proto="http2",
        offload=offload,
        loss=loss,
        completed=done["count"],
        bytes_moved=done["bytes"],
        dut_cycles=tb.server.cpu.cycles_by_category(),
        app_stats=dict(client.stats),
        nic_stats={k: after[k] - before[k] for k in _NIC_KEYS},
        duration=until,
    )


def _run_resp(offload: bool, loss: float, ops: int, seed: int, until: float) -> L5pRun:
    from repro.l5p.resp import RespClient, RespConfig, RespServer

    tb = Testbed(
        TestbedConfig(seed=seed, loss_to_server=loss, protocols=("resp",))
    )
    server = RespServer(
        tb.server, port=6379, config=RespConfig(rx_offload_steer=offload, steer_queues=4)
    )
    client = RespClient(tb.generator, "server", port=6379)
    before = {k: tb.server.nic.offload_stats()[k] for k in _NIC_KEYS}

    done = {"count": 0, "bytes": 0}

    def issue(batch: int) -> None:
        if batch >= ops:
            return
        commands = [b"SET shard%d:%d value-%d" % (batch % 7, i, i) for i in range(RESP_BATCH)]
        commands[-1] = b"GET shard%d:0" % (batch % 7)
        wire_bytes = sum(len(c) for c in commands)

        def finished(replies, latency, batch=batch, wire_bytes=wire_bytes):
            done["count"] += 1
            done["bytes"] += wire_bytes
            issue(batch + 1)

        client.pipeline(commands, finished)

    issue(0)
    tb.run(until=until)
    after = tb.server.nic.offload_stats()
    return L5pRun(
        proto="resp",
        offload=offload,
        loss=loss,
        completed=done["count"],
        bytes_moved=done["bytes"],
        dut_cycles=tb.server.cpu.cycles_by_category(),
        app_stats=dict(server.stats),
        nic_stats={k: after[k] - before[k] for k in _NIC_KEYS},
        duration=until,
    )
