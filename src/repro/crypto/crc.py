"""CRC32 and CRC32C (Castagnoli), from scratch.

NVMe-TCP protects PDUs with CRC32C data/header digests (RFC 3385); the
paper's NIC computes/verifies them inline.  We implement the reflected
table-driven algorithm and validate against published check values
(``crc32c(b"123456789") == 0xE3069283``) and against :mod:`zlib` for the
IEEE polynomial.

The hot entry points (:func:`crc32c`, :func:`crc32`) use slicing-by-8:
eight 256-entry tables consume eight message bytes per loop iteration
(one 64-bit little-endian load, eight independent table lookups) instead
of one byte per iteration.  The one-byte-at-a-time loop is kept as
:func:`_crc_bytewise`, the reference the property tests compare against.

:class:`FastCrc` offers the same incremental interface backed by
``zlib.crc32`` for macro-benchmarks, where digest *cycles* are charged
by the CPU model rather than spent in Python.
"""

from __future__ import annotations

import struct as _struct
import zlib

CRC32C_POLY = 0x82F63B78  # Castagnoli, reflected
CRC32_POLY = 0xEDB88320  # IEEE 802.3, reflected


def _build_table(poly: int) -> list[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ poly
            else:
                crc >>= 1
        table.append(crc)
    return table


def _build_slice8(table0: list[int]) -> list[list[int]]:
    """Slicing-by-8 table set: ``tables[k][b]`` is the CRC of byte ``b``
    followed by ``k`` zero bytes, so eight lookups — one per table —
    fold eight message bytes into the running remainder at once."""
    tables = [table0]
    for _ in range(7):
        prev = tables[-1]
        tables.append([table0[v & 0xFF] ^ (v >> 8) for v in prev])
    return tables


_TABLE_C = _build_table(CRC32C_POLY)
_TABLE_IEEE = _build_table(CRC32_POLY)
_SLICE8_C = _build_slice8(_TABLE_C)
_SLICE8_IEEE = _build_slice8(_TABLE_IEEE)


def _crc_bytewise(table: list[int], data: bytes, crc: int) -> int:
    """Reference one-byte-at-a-time CRC (slow; kept for validation)."""
    crc ^= 0xFFFFFFFF
    for byte in data:  # sim: noqa[SIM013] - reference implementation
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def _crc_slice8(tables: list[list[int]], data: bytes, crc: int) -> int:
    """Slicing-by-8 CRC: 8 table lookups per 8 bytes of input.

    The buffer is unpacked to 64-bit little-endian words in one C call
    so the Python loop runs once per *word*, not once per byte.
    """
    crc ^= 0xFFFFFFFF
    n = len(data)
    t0, t1, t2, t3, t4, t5, t6, t7 = tables
    nwords = n >> 3
    if nwords:
        for w in _struct.unpack_from(f"<{nwords}Q", data):
            x = crc ^ (w & 0xFFFFFFFF)
            hi = w >> 32
            crc = (
                t7[x & 0xFF]
                ^ t6[(x >> 8) & 0xFF]
                ^ t5[(x >> 16) & 0xFF]
                ^ t4[x >> 24]
                ^ t3[hi & 0xFF]
                ^ t2[(hi >> 8) & 0xFF]
                ^ t1[(hi >> 16) & 0xFF]
                ^ t0[hi >> 24]
            )
    for i in range(nwords << 3, n):
        crc = t0[(crc ^ data[i]) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def crc32c(data: bytes, crc: int = 0) -> int:
    """CRC32C of ``data``; pass a previous value to continue a stream."""
    return _crc_slice8(_SLICE8_C, data, crc)


def crc32(data: bytes, crc: int = 0) -> int:
    """IEEE CRC32 of ``data`` (zlib-compatible)."""
    return _crc_slice8(_SLICE8_IEEE, data, crc)


class Crc32c:
    """Incremental CRC32C digest with the interface the NIC model uses."""

    digest_size = 4
    name = "crc32c"

    def __init__(self, data: bytes = b""):
        self._crc = 0
        if data:
            self.update(data)

    def update(self, data: bytes) -> None:
        self._crc = crc32c(data, self._crc)

    def intdigest(self) -> int:
        return self._crc

    def digest(self) -> bytes:
        return self._crc.to_bytes(4, "little")

    def copy(self) -> "Crc32c":
        clone = Crc32c()
        clone._crc = self._crc
        return clone


class FastCrc:
    """zlib-backed 4-byte digest used as a stand-in during macro-benchmarks.

    It is *not* CRC32C — it is the IEEE polynomial computed in C — but it
    has identical length, incrementality, and corruption-detection
    behaviour, which is all the protocol machinery observes.  See
    DESIGN.md §2 for the substitution rationale.
    """

    digest_size = 4
    name = "fast-crc32"

    def __init__(self, data: bytes = b""):
        self._crc = zlib.crc32(data) if data else 0

    def update(self, data: bytes) -> None:
        self._crc = zlib.crc32(data, self._crc)

    def intdigest(self) -> int:
        return self._crc & 0xFFFFFFFF

    def digest(self) -> bytes:
        return self.intdigest().to_bytes(4, "little")

    def copy(self) -> "FastCrc":
        clone = FastCrc()
        clone._crc = self._crc
        return clone


_DIGESTS = {"crc32c": Crc32c, "fast": FastCrc}


def get_digest(name: str):
    """Digest factory by name: ``"crc32c"`` (real) or ``"fast"``."""
    try:
        return _DIGESTS[name]
    except KeyError:
        raise ValueError(f"unknown digest {name!r}; choose from {sorted(_DIGESTS)}") from None
