"""Markdown doc checker: dead links and stale code anchors.

The docs (docs/*.md, README.md, EXPERIMENTS.md, ...) cite code as
``path/to/file.py:123`` and cross-link each other with relative
markdown links.  Both rot silently; this tool makes the rot loud:

- every relative markdown link ``[text](target)`` must resolve to an
  existing file (external ``http(s)://``/``mailto:`` targets and
  pure ``#fragment`` links are skipped — CI has no network);
- every backticked repo path ``src/.../x.py`` must exist, and when it
  carries a ``:line`` suffix the file must be at least that long.

Run with ``python -m repro.analysis.doccheck [files...]`` (default:
``*.md`` at the repo root plus ``docs/``).  Exit status mirrors
``repro.analysis.lint``: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Iterator, Optional, Sequence

#: ``[text](target)`` — non-greedy, single-line targets without spaces.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Backticked repo-relative code anchor with optional :line suffix.
_ANCHOR_RE = re.compile(
    r"`((?:src|docs|benchmarks|tests|examples)/[\w./-]+\.(?:py|md|json|yml|yaml|toml|txt))(?::(\d+))?`"
)

_EXTERNAL = ("http://", "https://", "mailto:")

#: Generated at run time (gitignored) — referenced by docs, never present in CI.
_GENERATED = ("benchmarks/out/",)


def _iter_markdown(paths: Sequence[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.md"))
        else:
            yield path


def _check_file(md: Path, root: Path) -> list[str]:
    problems: list[str] = []
    text = md.read_text(encoding="utf-8")
    in_code_block = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_code_block = not in_code_block
        if not in_code_block:
            for match in _LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(_EXTERNAL) or target.startswith("#"):
                    continue
                rel = target.split("#", 1)[0]
                if not rel:
                    continue
                resolved = (root / rel) if rel.startswith("/") else (md.parent / rel)
                if not resolved.exists():
                    problems.append(f"{md}:{lineno}: dead link `{target}`")
        for match in _ANCHOR_RE.finditer(line):
            rel, line_no = match.group(1), match.group(2)
            if rel.startswith(_GENERATED):
                continue
            resolved = root / rel
            if not resolved.is_file():
                problems.append(f"{md}:{lineno}: stale code anchor `{rel}` (no such file)")
            elif line_no is not None:
                total = resolved.read_text(encoding="utf-8").count("\n") + 1
                if int(line_no) > total:
                    problems.append(
                        f"{md}:{lineno}: stale code anchor `{rel}:{line_no}` "
                        f"(file has {total} lines)"
                    )
    return problems


def default_targets(root: Path) -> list[Path]:
    targets = sorted(root.glob("*.md"))
    docs = root / "docs"
    if docs.is_dir():
        targets.append(docs)
    return targets


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.doccheck",
        description="Check markdown links and file:line code anchors in the docs.",
    )
    parser.add_argument("paths", nargs="*", type=Path, help="markdown files/dirs (default: *.md + docs/)")
    parser.add_argument("--root", type=Path, default=Path.cwd(), help="repo root for code anchors (default: cwd)")
    args = parser.parse_args(argv)

    root = args.root.resolve()
    paths = list(args.paths) or default_targets(root)
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"no such path: {', '.join(map(str, missing))}", file=sys.stderr)
        return 2

    problems: list[str] = []
    checked = 0
    for md in _iter_markdown(paths):
        checked += 1
        problems.extend(_check_file(md, root))
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} problem(s) in {checked} file(s)", file=sys.stderr)
        return 1
    print(f"{checked} markdown file(s) clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
