"""The project lint: every rule fires on a crafted bad snippet, stays
silent on the real tree, and the CLI reports rule code + file:line with
the right exit status."""

import textwrap
from pathlib import Path


from repro.analysis.lint import default_target, load_module, main, run_rules
from repro.analysis.rules import all_rules
from repro.analysis.rules.adapter_protocol import AdapterProtocolRule
from repro.analysis.rules.mutable_defaults import MutableDefaultsRule
from repro.analysis.rules.pkg_docstrings import PackageDocstringRule
from repro.analysis.rules.seqarith import SeqArithmeticRule
from repro.analysis.rules.wallclock import WallClockRule


def write(tmp_path: Path, name: str, body: str) -> Path:
    path = tmp_path / name
    path.write_text(textwrap.dedent(body))
    return path


def codes_for(path: Path) -> list:
    return [f.code for f in run_rules([path])]


def rule_findings(rule, path: Path) -> list:
    return list(rule.check(load_module(path)))


# ----------------------------------------------------------------------
# SIM001: wall clock / global randomness
# ----------------------------------------------------------------------
class TestWallClock:
    def test_time_time_fires(self, tmp_path):
        path = write(tmp_path, "bad.py", """\
            import time

            def stamp():
                return time.time()
            """)
        findings = rule_findings(WallClockRule(), path)
        assert [f.code for f in findings] == ["SIM001"]
        assert findings[0].line == 4

    def test_datetime_now_fires(self, tmp_path):
        path = write(tmp_path, "bad.py", """\
            import datetime
            from datetime import datetime as dt

            a = datetime.datetime.now()
            b = dt.utcnow()
            """)
        assert [f.code for f in rule_findings(WallClockRule(), path)] == ["SIM001", "SIM001"]

    def test_global_random_fires(self, tmp_path):
        path = write(tmp_path, "bad.py", """\
            import random
            from random import randint

            def roll():
                return random.random() + randint(1, 6)
            """)
        assert len(rule_findings(WallClockRule(), path)) == 2

    def test_unseeded_random_instance_fires_seeded_does_not(self, tmp_path):
        path = write(tmp_path, "mixed.py", """\
            import random

            bad = random.Random()
            good = random.Random(42)
            named = random.Random("0:loss")
            """)
        findings = rule_findings(WallClockRule(), path)
        assert [f.line for f in findings] == [3]

    def test_instance_methods_are_fine(self, tmp_path):
        path = write(tmp_path, "good.py", """\
            def pick(sim):
                rng = sim.substream("pick")
                return rng.random()
            """)
        assert rule_findings(WallClockRule(), path) == []


# ----------------------------------------------------------------------
# SIM002: raw sequence arithmetic
# ----------------------------------------------------------------------
class TestSeqArithmetic:
    def test_inline_mod_fires(self, tmp_path):
        path = write(tmp_path, "bad.py", "def f(x):\n    return x * 31 % (1 << 32)\n")
        findings = rule_findings(SeqArithmeticRule(), path)
        assert [f.code for f in findings] == ["SIM002"]

    def test_mask_on_seq_fires(self, tmp_path):
        path = write(tmp_path, "bad.py", "def f(pkt, n):\n    return (pkt.seq + n) & 0xFFFFFFFF\n")
        codes = [f.code for f in rule_findings(SeqArithmeticRule(), path)]
        assert "SIM002" in codes

    def test_bare_plus_on_seq_name_fires(self, tmp_path):
        path = write(tmp_path, "bad.py", "def f(expected_seq, take):\n    return expected_seq + take\n")
        assert [f.code for f in rule_findings(SeqArithmeticRule(), path)] == ["SIM002"]

    def test_crypto_word_masks_are_fine(self, tmp_path):
        path = write(tmp_path, "good.py", """\
            def rotl(value, amount):
                return ((value << amount) | (value >> (32 - amount))) & 0xFFFFFFFF
            """)
        assert rule_findings(SeqArithmeticRule(), path) == []

    def test_record_counter_increment_is_fine(self, tmp_path):
        path = write(tmp_path, "good.py", """\
            class Records:
                def bump(self):
                    self.tx_record_seq += 1
            """)
        assert rule_findings(SeqArithmeticRule(), path) == []

    def test_seq_home_module_is_exempt(self, tmp_path):
        home = tmp_path / "repro" / "tcp"
        home.mkdir(parents=True)
        path = home / "seq.py"
        path.write_text("def add(seq, delta):\n    return (seq + delta) % (1 << 32)\n")
        assert rule_findings(SeqArithmeticRule(), path) == []


# ----------------------------------------------------------------------
# SIM003: mutable defaults
# ----------------------------------------------------------------------
class TestMutableDefaults:
    def test_list_and_dict_defaults_fire(self, tmp_path):
        path = write(tmp_path, "bad.py", """\
            def f(items=[], table={}):
                return items, table

            def g(pool=list()):
                return pool
            """)
        assert [f.code for f in rule_findings(MutableDefaultsRule(), path)] == ["SIM003"] * 3

    def test_none_default_is_fine(self, tmp_path):
        path = write(tmp_path, "good.py", """\
            def f(items=None, count=0, name="x"):
                items = items if items is not None else []
                return items, count, name
            """)
        assert rule_findings(MutableDefaultsRule(), path) == []


# ----------------------------------------------------------------------
# SIM004: adapter protocol surface
# ----------------------------------------------------------------------
class TestAdapterProtocol:
    def test_incomplete_adapter_fires(self, tmp_path):
        path = write(tmp_path, "bad.py", """\
            from repro.core.types import L5pAdapter

            class HalfAdapter(L5pAdapter):
                name = "half"
                header_len = 5

                def parse_header(self, header, static_state):
                    return None
            """)
        findings = rule_findings(AdapterProtocolRule(), path)
        assert len(findings) == 1
        assert findings[0].code == "SIM004"
        for member in ("magic_len", "check_magic", "begin_message", "apply_packet_meta"):
            assert member in findings[0].message

    def test_complete_adapter_is_fine(self, tmp_path):
        path = write(tmp_path, "good.py", """\
            from repro.core.types import L5pAdapter

            class FullAdapter(L5pAdapter):
                name = "full"
                header_len = 5
                magic_len = 2

                def parse_header(self, header, static_state):
                    return None

                def check_magic(self, window, static_state):
                    return False

                def begin_message(self, direction, static_state, desc, msg_index, rr_state=None):
                    raise NotImplementedError

                def apply_packet_meta(self, meta, processed, ok, desc_kinds):
                    pass
            """)
        assert rule_findings(AdapterProtocolRule(), path) == []

    def test_indirect_subclass_not_rechecked(self, tmp_path):
        path = write(tmp_path, "good.py", """\
            from repro.l5p.tls.record import TlsAdapter

            class StackedAdapter(TlsAdapter):
                def begin_message(self, direction, static_state, desc, msg_index, rr_state=None):
                    raise NotImplementedError
            """)
        assert rule_findings(AdapterProtocolRule(), path) == []


# ----------------------------------------------------------------------
# SIM005: package docstrings
# ----------------------------------------------------------------------
class TestPackageDocstrings:
    def test_missing_init_docstring_fires(self, tmp_path):
        path = write(tmp_path, "__init__.py", "from . import something\n")
        findings = rule_findings(PackageDocstringRule(), path)
        assert [f.code for f in findings] == ["SIM005"]
        assert findings[0].line == 1

    def test_blank_init_docstring_fires(self, tmp_path):
        path = write(tmp_path, "__init__.py", '"""   """\n')
        assert [f.code for f in rule_findings(PackageDocstringRule(), path)] == ["SIM005"]

    def test_documented_package_is_fine(self, tmp_path):
        path = write(tmp_path, "__init__.py", '"""The widget package."""\n')
        assert rule_findings(PackageDocstringRule(), path) == []

    def test_plain_module_without_docstring_is_fine(self, tmp_path):
        path = write(tmp_path, "module.py", "x = 1\n")
        assert rule_findings(PackageDocstringRule(), path) == []


# ----------------------------------------------------------------------
# suppression, the real tree, and the CLI
# ----------------------------------------------------------------------
class TestRunner:
    def test_noqa_suppresses_specific_code(self, tmp_path):
        path = write(tmp_path, "waived.py", """\
            import time

            def stamp():
                return time.time()  # noqa: SIM001
            """)
        assert codes_for(path) == []

    def test_bare_noqa_suppresses_everything(self, tmp_path):
        path = write(tmp_path, "waived.py", "def f(items=[]):  # noqa\n    return items\n")
        assert codes_for(path) == []

    def test_noqa_for_other_code_does_not_suppress(self, tmp_path):
        path = write(tmp_path, "bad.py", "def f(items=[]):  # noqa: SIM001\n    return items\n")
        assert codes_for(path) == ["SIM003"]

    def test_real_tree_is_clean(self):
        findings = run_rules([default_target()])
        assert findings == [], "\n".join(f.format() for f in findings)

    def test_all_rules_registered(self):
        assert sorted(rule.code for rule in all_rules()) == [
            "SIM001",
            "SIM002",
            "SIM003",
            "SIM004",
            "SIM005",
        ]

    def test_cli_exit_zero_on_clean_tree(self, capsys):
        assert main([]) == 0
        assert capsys.readouterr().out == ""

    def test_cli_reports_code_and_location(self, tmp_path, capsys):
        path = write(tmp_path, "seeded.py", """\
            import time

            def f(a_seq, items=[]):
                return time.time(), a_seq + 1, a_seq % (1 << 32), items
            """)
        assert main([str(path)]) == 1
        out = capsys.readouterr().out
        for code in ("SIM001", "SIM002", "SIM003"):
            assert code in out
        assert f"{path}:4" in out

    def test_cli_select_runs_only_chosen_rules(self, tmp_path, capsys):
        body = "import time\nx = time.time()\n\ndef f(i=[]):\n    return i\n"
        path = write(tmp_path, "seeded.py", body)
        assert main(["--select", "SIM001", str(path)]) == 1
        out = capsys.readouterr().out
        assert "SIM001" in out and "SIM003" not in out

    def test_cli_rejects_unknown_rule_and_missing_path(self, tmp_path, capsys):
        assert main(["--select", "SIM042"]) == 2
        assert main([str(tmp_path / "nope.py")]) == 2

    def test_cli_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("SIM001", "SIM002", "SIM003", "SIM004"):
            assert code in out

    def test_syntax_error_reported_not_crash(self, tmp_path):
        path = write(tmp_path, "broken.py", "def f(:\n")
        assert codes_for(path) == ["SIM999"]
