"""TLS: record layer, autonomous-offload adapter, and kernel-TLS socket."""

from repro.l5p.tls.record import (
    HEADER_LEN,
    MAX_PLAINTEXT,
    TAG_LEN,
    TlsAdapter,
    TlsDirectionState,
    record_nonce,
)
from repro.l5p.tls.ktls import KtlsSocket, TlsConfig

__all__ = [
    "HEADER_LEN",
    "MAX_PLAINTEXT",
    "TAG_LEN",
    "TlsAdapter",
    "TlsDirectionState",
    "record_nonce",
    "KtlsSocket",
    "TlsConfig",
]
