"""SIM002 — 32-bit TCP sequence arithmetic lives in ``repro/tcp/seq.py``.

Sequence numbers inhabit a mod-2^32 space where "before/after" is only
meaningful through the RFC 793 signed-difference comparisons.  Inline
``% (1 << 32)``, ``& 0xFFFFFFFF`` on sequence values, or bare ``+``/``-``
on ``*seq``-named operands re-implements that space ad hoc — the exact
class of bug the paper's offload correctness argument (monotonic
``expected_seq`` advance, §4.1) cannot tolerate.  Use ``sq.add``,
``sq.sub``, ``sq.wrap`` and the ``sq.lt/le/gt/ge`` comparisons.

Deliberately out of scope: augmented increments (``x_seq += 1``) —
those are 64-bit record counters (TLS/DTLS record sequence numbers)
that must *not* wrap at 2^32 — and 32-bit word masks in the crypto
primitives, which never touch sequence names.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.analysis.lint import Finding, LintRule, SourceModule

_MOD_2_32 = 1 << 32
_MASK_2_32 = 0xFFFFFFFF

#: Non-``*seq`` identifiers that still denote TCP sequence positions.
_SEQ_NAMES = {"tcpsn", "snd_una", "snd_nxt", "rcv_nxt", "iss", "irs", "isn"}

#: The one module allowed to do raw modular arithmetic.
_HOME = "repro/tcp/seq.py"


def _terminal_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_seq_name(name: Optional[str]) -> bool:
    if not name:
        return False
    return name.endswith("seq") or name in _SEQ_NAMES


def _mentions_seq(node: ast.AST) -> bool:
    return any(_is_seq_name(_terminal_name(child)) for child in ast.walk(node))


def _is_mod_2_32_literal(node: ast.AST) -> bool:
    """Matches ``(1 << 32)`` and the literal ``4294967296``."""
    if isinstance(node, ast.Constant) and node.value == _MOD_2_32:
        return True
    return (
        isinstance(node, ast.BinOp)
        and isinstance(node.op, ast.LShift)
        and isinstance(node.left, ast.Constant)
        and node.left.value == 1
        and isinstance(node.right, ast.Constant)
        and node.right.value == 32
    )


class SeqArithmeticRule(LintRule):
    code = "SIM002"
    name = "seq-arithmetic"
    description = (
        "raw 32-bit sequence arithmetic outside repro/tcp/seq.py; "
        "use the sq.add/sq.sub/sq.wrap wraparound helpers"
    )

    def check(self, module: SourceModule) -> Iterable[Finding]:
        if module.posix_path.endswith(_HOME):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.BinOp):
                continue
            if isinstance(node.op, ast.Mod) and _is_mod_2_32_literal(node.right):
                yield module.finding(
                    node, self.code, "inline `% (1 << 32)` wraparound; use `sq.wrap()`/`sq.add()`"
                )
            elif (
                isinstance(node.op, ast.BitAnd)
                and isinstance(node.right, ast.Constant)
                and node.right.value == _MASK_2_32
                and _mentions_seq(node.left)
            ):
                yield module.finding(
                    node, self.code, "`& 0xFFFFFFFF` mask on a sequence value; use `sq.add()`/`sq.wrap()`"
                )
            elif isinstance(node.op, (ast.Add, ast.Sub)):
                for operand in (node.left, node.right):
                    name = _terminal_name(operand)
                    if _is_seq_name(name):
                        op = "+" if isinstance(node.op, ast.Add) else "-"
                        yield module.finding(
                            node,
                            self.code,
                            f"bare `{op}` on sequence operand `{name}`; "
                            "use `sq.add()`/`sq.sub()` (mod-2^32 space)",
                        )
                        break
