"""Figure 4 / Table 2 dataset: ConnectX generations, offloads, prices.

The paper's §2.5 argument: list prices track throughput and port count,
not offload capability, so clients get new ASIC offloads "essentially
for free".  Prices are representative points read off the March 2020
Mellanox list (Figure 4); offload capabilities are Table 2 verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass

CONNECTX_OFFLOADS: dict[int, tuple[int, list[str]]] = {
    3: (2011, ["stateless checksum", "LSO for TCP over VXLAN and NVGRE"]),
    4: (
        2014,
        [
            "LRO",
            "RSS",
            "VLAN insertion/stripping",
            "accelerated receive flow steering",
            "on-demand paging",
            "T10-DIF signature offload",
        ],
    ),
    5: (
        2016,
        [
            "header rewrite",
            "adaptive routing for RDMA",
            "NVMe over fabric",
            "host chaining",
            "MPI tag matching and rendezvous",
            "UDP segmentation offload",
        ],
    ),
    6: (2019, ["block-level AES-XTS 256/512 bit"]),
}


@dataclass(frozen=True)
class NicPrice:
    generation: int
    model: str
    speed_gbps: int
    ports: int
    price_usd: float


# Representative points from the March 2020 price list (Figure 4).
CONNECTX_PRICES: list[NicPrice] = [
    NicPrice(3, "3EN", 10, 1, 190),
    NicPrice(3, "3EN", 10, 2, 260),
    NicPrice(4, "4LX", 10, 1, 180),
    NicPrice(4, "4LX", 10, 2, 250),
    NicPrice(4, "4LX", 25, 1, 250),
    NicPrice(4, "4LX", 25, 2, 320),
    NicPrice(5, "5EN", 25, 1, 260),
    NicPrice(5, "5EN", 25, 2, 330),
    NicPrice(3, "3VPI", 40, 1, 370),
    NicPrice(3, "3VPI", 40, 2, 450),
    NicPrice(4, "4VPI", 40, 1, 360),
    NicPrice(4, "4VPI", 50, 1, 420),
    NicPrice(4, "4VPI", 50, 2, 530),
    NicPrice(5, "5VPI", 50, 1, 430),
    NicPrice(5, "5VPI", 50, 2, 540),
    NicPrice(4, "4VPI", 100, 1, 630),
    NicPrice(4, "4VPI", 100, 2, 800),
    NicPrice(5, "5VPI", 100, 1, 640),
    NicPrice(5, "5VPI", 100, 2, 810),
    NicPrice(6, "6VPI", 100, 1, 660),
    NicPrice(6, "6VPI", 100, 2, 830),
]


def price_spread_by_class() -> dict[tuple[int, int], tuple[float, float]]:
    """For each (speed, ports) class sold across several generations,
    return (min, max) price — the spread is small although offload
    capability differs greatly."""
    classes: dict[tuple[int, int], list[float]] = {}
    for nic in CONNECTX_PRICES:
        classes.setdefault((nic.speed_gbps, nic.ports), []).append(nic.price_usd)
    return {
        cls: (min(prices), max(prices))
        for cls, prices in classes.items()
        if len(prices) > 1
    }


def price_determinants_hold() -> bool:
    """True if price grows with speed and ports but not generation."""
    spread_ok = all(hi <= lo * 1.2 for lo, hi in price_spread_by_class().values())
    one_port_100g = [n.price_usd for n in CONNECTX_PRICES if n.speed_gbps == 100 and n.ports == 1]
    one_port_10g = [n.price_usd for n in CONNECTX_PRICES if n.speed_gbps == 10 and n.ports == 1]
    speed_ok = min(one_port_100g) > max(one_port_10g)
    return spread_ok and speed_ok
