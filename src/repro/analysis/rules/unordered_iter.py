"""SIM007 — unordered iteration must not feed scheduling or metrics.

``dict`` iteration follows insertion order and ``set`` iteration is
arbitrary (and, for strings, hash-randomized across interpreter runs).
When the loop body schedules simulator events or emits metric samples,
that ordering becomes part of the run's observable behavior: two hosts
inserting flows in different orders fire same-timestamp events in
different orders, and the 162-metric regress gate can no longer prove
bit-identity.  Any such loop must iterate a ``sorted(...)`` view (or
another explicitly ordered sequence).

The rule is deliberately narrow: plain bookkeeping loops over dict
views are fine; only loops whose body reaches an *order-sensitive
sink* — ``schedule``/``at``/``call_soon``/``heappush`` (event order) or
``inc``/``dec``/``observe``/``emit`` (metric emission) — are flagged.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from repro.analysis.lint import Finding, LintRule, SourceModule

#: Method/function names whose call order is observable run output.
_SCHEDULING_SINKS = {"schedule", "at", "call_soon", "heappush"}
_METRIC_SINKS = {"inc", "dec", "observe", "emit"}
_SINKS = _SCHEDULING_SINKS | _METRIC_SINKS


def _unordered_iterable(node: ast.expr) -> Optional[str]:
    """A human label when ``node`` iterates an unordered/fragile view."""
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in ("keys", "values", "items"):
            return f".{func.attr}()"
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return f"{func.id}(...)"
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    return None


def _sink_in(nodes: Iterable[ast.AST]) -> Optional[str]:
    for root in nodes:
        for node in ast.walk(root):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = None
            if isinstance(func, ast.Attribute):
                name = func.attr
            elif isinstance(func, ast.Name):
                name = func.id
            if name in _SINKS:
                return name
    return None


class UnorderedIterRule(LintRule):
    code = "SIM007"
    name = "unordered-iteration"
    description = "dict/set iteration feeding event scheduling or metric emission needs an explicit sort"
    family = "determinism"

    def check(self, module: SourceModule) -> Iterable[Finding]:
        yield from self._loops(module)
        yield from self._comprehensions(module)

    def _loops(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            label = _unordered_iterable(node.iter)
            if label is None:
                continue
            sink = _sink_in(node.body)
            if sink is None:
                continue
            kind = "event scheduling" if sink in _SCHEDULING_SINKS else "metric emission"
            yield module.finding(
                node,
                self.code,
                f"iterating {label} feeds {kind} (`{sink}`) in container order; "
                "wrap the iterable in `sorted(...)` with an explicit key",
            )

    def _comprehensions(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                continue
            for gen in node.generators:
                label = _unordered_iterable(gen.iter)
                if label is None:
                    continue
                elements = [node.key, node.value] if isinstance(node, ast.DictComp) else [node.elt]
                sink = _sink_in(elements)
                if sink is None:
                    continue
                kind = "event scheduling" if sink in _SCHEDULING_SINKS else "metric emission"
                yield module.finding(
                    node,
                    self.code,
                    f"comprehension over {label} feeds {kind} (`{sink}`) in container order; "
                    "wrap the iterable in `sorted(...)` with an explicit key",
                )
