"""SHA-1 (RFC 3174) and HMAC-SHA1 (RFC 2104), from scratch.

Used by the Table 1 reproduction (AES-CBC-HMAC-SHA1 vs QAT) and by the
fast cipher suite's key-derivation, and validated against published test
vectors.
"""

from __future__ import annotations

import struct


def _rotl(value: int, amount: int) -> int:
    return ((value << amount) | (value >> (32 - amount))) & 0xFFFFFFFF


def _compress(state: tuple[int, ...], block: bytes) -> tuple[int, ...]:
    w = list(struct.unpack(">16I", block))
    for i in range(16, 80):
        w.append(_rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1))
    a, b, c, d, e = state
    for i in range(80):
        if i < 20:
            f, k = (b & c) | (~b & d), 0x5A827999
        elif i < 40:
            f, k = b ^ c ^ d, 0x6ED9EBA1
        elif i < 60:
            f, k = (b & c) | (b & d) | (c & d), 0x8F1BBCDC
        else:
            f, k = b ^ c ^ d, 0xCA62C1D6
        a, b, c, d, e = (
            (_rotl(a, 5) + f + e + k + w[i]) & 0xFFFFFFFF,
            a,
            _rotl(b, 30),
            c,
            d,
        )
    return tuple((s + v) & 0xFFFFFFFF for s, v in zip(state, (a, b, c, d, e)))


_IV = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)


def sha1(data: bytes) -> bytes:
    """SHA-1 digest of ``data`` (20 bytes)."""
    length = len(data)
    data = data + b"\x80"
    data += b"\x00" * ((56 - len(data)) % 64)
    data += struct.pack(">Q", length * 8)
    state = _IV
    for off in range(0, len(data), 64):
        state = _compress(state, data[off : off + 64])
    return struct.pack(">5I", *state)


def hmac_sha1(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA1 of ``message`` under ``key`` (20 bytes)."""
    if len(key) > 64:
        key = sha1(key)
    key = key.ljust(64, b"\x00")
    inner = sha1(bytes(k ^ 0x36 for k in key) + message)
    return sha1(bytes(k ^ 0x5C for k in key) + inner)
