"""Transmit-side autonomous offload (§4.2).

The L5P "skips" its data-intensive operation and hands TCP the *wrong*
bytes (plaintext bodies, dummy trailers); the NIC transforms every
outgoing packet so correct bytes hit the wire.  The driver detects
out-of-sequence transmissions (retransmits, or new data after a
retransmit) by comparing against its shadow of the context, asks the
L5P for the covering message's state (``l5o_get_tx_msgstate``), and the
NIC re-derives mid-message state by re-reading the message bytes over
PCIe — the interconnect overhead measured in Figure 16b.
"""

from __future__ import annotations

from repro.analysis.sanitizer import active as _sanitizer_active, allow_rewind
from repro.core.context import HwContext
from repro.core.types import ProtocolError
from repro.core.walker import replay, walk
from repro.net.packet import Packet
from repro.tcp import seq as sq


class TxEngine:
    """Per-NIC transmit offload engine."""

    def __init__(self, nic):
        self.nic = nic

    def process(self, ctx: HwContext, conn, pkt: Packet) -> None:
        """Transform one outgoing packet in place."""
        if not pkt.payload:
            return
        self.nic.cache.access(ctx)
        self.nic.pcie.count("tx-packet", len(pkt.payload))
        seq, payload = pkt.seq, pkt.payload
        prefix = b""
        if sq.lt(seq, ctx.created_seq):
            # Bytes queued before the offload existed (e.g. a
            # retransmitted TLS handshake record) pass through raw.
            split = sq.sub(ctx.created_seq, seq)
            if split >= len(payload):
                return
            prefix, payload = payload[:split], payload[split:]
            seq = ctx.created_seq
        san = _sanitizer_active()
        sw_fallback = False
        if seq != ctx.expected_seq:
            with allow_rewind(ctx):
                outcome = self._recover(ctx, conn, seq, sq.add(seq, len(payload)))
            if outcome == "stale":
                # Stale retransmission of fully-acknowledged bytes whose
                # message state the L5P already released: the receiver
                # will discard it as a duplicate, so content is moot.
                ctx.pkts_bypassed += 1
                pkt.payload = prefix + b"\x00" * len(payload)
                return
            sw_fallback = outcome == "sw-fallback"
            if san is not None:
                san.tx_recovered(ctx, seq)
        result = walk(ctx, payload, emit=True)
        if result.desynced:
            raise ProtocolError(
                f"{ctx.adapter.name}: transmit stream does not parse as L5P "
                f"messages at seq {seq}"
            )
        pkt.payload = prefix + result.out
        ctx.expected_seq = sq.add(seq, len(payload))
        if sw_fallback:
            # The PCIe re-read failed, so the NIC could not rebuild the
            # context: this packet's bytes were produced by the host's
            # software data path instead (charged below) and it does not
            # count as offloaded.
            ctx.pkts_bypassed += 1
            ctx.tx_sw_fallbacks += 1
            obs = self.nic.obs
            if obs is not None:
                obs.count("nic.tx.sw_fallback_pkts")
                obs.count("nic.tx.sw_fallback_bytes", len(payload))
            host = self.nic.host
            if host is not None:
                core = host.core_for_flow(conn.flow)
                cpb = ctx.adapter.software_cpb(host.model)
                core.charge(host.model.cycles_crypto_setup + len(payload) * cpb, "crypto")
            return
        ctx.pkts_offloaded += 1
        pkt.meta.offloaded = True

    # ------------------------------------------------------------------
    def process_software(self, ctx: HwContext, conn, pkt: Packet) -> None:
        """Transform one outgoing packet on the *host* while the NIC is
        down (lifecycle fallback).  Same wire bytes as :meth:`process`,
        but: no cache access, no PCIe traffic, cycles charged to the
        flow's core as software crypto, and the packet is never marked
        offloaded — a hung/resetting NIC completes nothing."""
        if not pkt.payload:
            return
        seq, payload = pkt.seq, pkt.payload
        prefix = b""
        if sq.lt(seq, ctx.created_seq):
            split = sq.sub(ctx.created_seq, seq)
            if split >= len(payload):
                return
            prefix, payload = payload[:split], payload[split:]
            seq = ctx.created_seq
        if seq != ctx.expected_seq:
            # Host-side reposition from the L5P's message state: the
            # shadow walks the prefix itself (no device to DMA into).
            if ctx.l5p_ops is None:
                raise ProtocolError("TX context has no L5P ops for recovery")
            state = ctx.l5p_ops.l5o_get_tx_msgstate(seq)
            if state is None:
                if conn is not None and sq.le(sq.add(seq, len(payload)), conn.snd_una):
                    ctx.pkts_bypassed += 1
                    pkt.payload = prefix + b"\x00" * len(payload)
                    return
                raise ProtocolError(
                    f"{ctx.adapter.name}: L5P has no message state covering "
                    f"seq {seq} (released too early?)"
                )
            offset = sq.sub(seq, state.start_seq)
            with allow_rewind(ctx):
                ctx.reset_to_header()
                ctx.msg_index = state.msg_index
                ctx.expected_seq = state.start_seq
                ctx.adapter.prepare_tx_recovery(ctx, state)
                if offset:
                    replay(ctx, state.wire_bytes[:offset])
                    ctx.expected_seq = seq
        result = walk(ctx, payload, emit=True)
        if result.desynced:
            raise ProtocolError(
                f"{ctx.adapter.name}: transmit stream does not parse as L5P "
                f"messages at seq {seq}"
            )
        pkt.payload = prefix + result.out
        ctx.expected_seq = sq.add(seq, len(payload))
        ctx.pkts_bypassed += 1
        ctx.tx_sw_fallbacks += 1
        host = self.nic.host
        if host is not None:
            core = host.core_for_flow(conn.flow)
            cpb = ctx.adapter.software_cpb(host.model)
            core.charge(host.model.cycles_crypto_setup + len(payload) * cpb, "crypto")

    # ------------------------------------------------------------------
    def _recover(self, ctx: HwContext, conn, tcpsn: int, end_seq: int) -> str:
        """Reposition the context at ``tcpsn`` (driver-led, §4.2).

        Returns ``"recovered"`` on the normal PCIe re-read path,
        ``"stale"`` for a retransmission of fully-acknowledged bytes
        whose message state the L5P already released (the ACK raced a
        queued retransmission — the packet can never be consumed), or
        ``"sw-fallback"`` when an injected PCIe read failure forces the
        packet through the host's software data path."""
        if ctx.l5p_ops is None:
            raise ProtocolError("TX context has no L5P ops for recovery")
        state = ctx.l5p_ops.l5o_get_tx_msgstate(tcpsn)
        if state is None:
            if conn is not None and sq.le(end_seq, conn.snd_una):
                return "stale"
            raise ProtocolError(
                f"{ctx.adapter.name}: L5P has no message state covering "
                f"seq {tcpsn} (released too early?)"
            )
        offset = sq.sub(tcpsn, state.start_seq)
        if offset < 0 or offset > len(state.wire_bytes):
            raise ProtocolError(
                f"{ctx.adapter.name}: message state for seq {tcpsn} covers "
                f"[{state.start_seq}, +{len(state.wire_bytes)})"
            )
        host = self.nic.host
        obs = self.nic.obs
        faults = getattr(self.nic, "faults", None)
        failed = False
        if faults is not None:
            rng = self.nic.fault_rng
            if faults.pcie_stall_prob and rng.random() < faults.pcie_stall_prob:
                # The re-read DMA stalls (e.g. congested root complex):
                # recovery still succeeds, but the flow's core burns the
                # stall waiting on the descriptor completion.
                self.nic.pcie.stalls += 1
                if obs is not None:
                    obs.count("nic.pcie.fault.stalls")
                if host is not None:
                    host.core_for_flow(conn.flow).charge(faults.pcie_stall_cycles, "offload-mgmt")
            if faults.pcie_fail_prob and rng.random() < faults.pcie_fail_prob:
                failed = True
        ctx.reset_to_header()
        ctx.msg_index = state.msg_index
        ctx.expected_seq = state.start_seq
        ctx.adapter.prepare_tx_recovery(ctx, state)
        if offset:
            replay(ctx, state.wire_bytes[:offset])
            ctx.expected_seq = tcpsn
        if failed:
            # The PCIe re-read failed: the NIC never rebuilds the
            # context, so the *driver* performed the repositioning above
            # in software and the packet will be sent un-offloaded.  The
            # replayed bytes are digested on the host CPU, not DMA-ed.
            ctx.tx_recovery_failures += 1
            self.nic.pcie.read_failures += 1
            if obs is not None:
                obs.count("nic.pcie.fault.read_failures")
                obs.event("tx-recovery-failed", lane=f"ctx/{ctx.ctx_id}", cat="recovery", tcpsn=tcpsn)
            self.nic.pcie.count("descriptor", 64)
            if host is not None:
                core = host.core_for_flow(conn.flow)
                cpb = ctx.adapter.software_cpb(host.model)
                core.charge(host.model.cycles_syscall + offset * cpb, "crypto")
            return "sw-fallback"
        # The driver passes the replayed bytes to the NIC via DMA; the
        # driver-side upcall work is charged to the flow's core.
        ctx.tx_recoveries += 1
        ctx.tx_recovery_bytes += offset
        if obs is not None:
            obs.count("nic.tx.recoveries")
            obs.count("nic.tx.recovery_dma_bytes", offset)
            obs.event(
                "tx-recovery", lane=f"ctx/{ctx.ctx_id}", cat="recovery", tcpsn=tcpsn, replayed_bytes=offset
            )
        self.nic.pcie.count("recovery", offset)
        self.nic.pcie.count("descriptor", 64)
        if host is not None:
            core = host.core_for_flow(conn.flow)
            core.charge(host.model.cycles_syscall, "offload-mgmt")
        return "recovered"
