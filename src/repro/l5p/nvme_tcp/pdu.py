"""NVMe/TCP PDU formats and the NVMe-TCP autonomous-offload adapter (§5.1).

PDUs follow the NVMe/TCP binding's shape (simplified sizes):

    CH (8B): type | flags | hlen | pdo | plen(4)
    PSH    : per-type submission/completion/data header
    data   : optional payload (in-capsule for writes, C2HData for reads)
    DDGST  : optional CRC32C over the data portion

The offloaded operations are the paper's: data-digest computation and
verification (TX and RX) and direct data placement of C2HData payloads
into pre-registered block-layer buffers keyed by CID (RX zero-copy,
Figure 9).  The magic pattern is the CH's constrained fields: a valid
type, the type's fixed hlen, a sane pdo, and a bounded plen.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from repro.core.types import Direction, L5pAdapter, MessageDesc, MsgTransform
from repro.crypto.crc import get_digest

CH_LEN = 8
DDGST_LEN = 4

TYPE_CAPSULE_CMD = 0x04
TYPE_CAPSULE_RESP = 0x05
TYPE_H2C_DATA = 0x06
TYPE_C2H_DATA = 0x07
TYPE_R2T = 0x09

PSH_LEN = {
    TYPE_CAPSULE_CMD: 64,  # SQE
    TYPE_CAPSULE_RESP: 16,  # CQE
    TYPE_H2C_DATA: 16,
    TYPE_C2H_DATA: 16,
    TYPE_R2T: 16,
}

FLAG_DDGST = 0x01

MAX_PLEN = 1 << 22  # 4 MiB bound used by the magic check

OPC_READ = 0x02
OPC_WRITE = 0x01


@dataclass
class NvmeConfig:
    """NVMe-TCP datapath configuration for one queue pair."""

    digest_name: str = "crc32c"  # "crc32c" (real) or "fast" (bench mode)
    data_digest: bool = True
    tx_offload: bool = False  # NIC fills outgoing DDGSTs
    rx_offload_crc: bool = False  # NIC verifies incoming DDGSTs
    rx_offload_copy: bool = False  # NIC places C2HData payloads (zero-copy)
    queue_depth: int = 64
    inline_write_limit: int = 8192  # larger writes go via R2T + H2CData

    @property
    def rx_offload(self) -> bool:
        return self.rx_offload_crc or self.rx_offload_copy


def make_ch(pdu_type: int, plen: int, ddgst: bool) -> bytes:
    hlen = CH_LEN + PSH_LEN[pdu_type]
    flags = FLAG_DDGST if ddgst else 0
    return struct.pack(">BBBBI", pdu_type, flags, hlen, hlen, plen)


def make_sqe(opcode: int, cid: int, slba: int, length: int) -> bytes:
    return struct.pack(">BxHxxxxQI", opcode, cid, slba, length).ljust(PSH_LEN[TYPE_CAPSULE_CMD], b"\x00")


def parse_sqe(psh: bytes) -> tuple[int, int, int, int]:
    opcode, cid, slba, length = struct.unpack(">BxHxxxxQI", psh[:20])
    return opcode, cid, slba, length


def make_cqe(cid: int, status: int) -> bytes:
    return struct.pack(">HH", cid, status).ljust(PSH_LEN[TYPE_CAPSULE_RESP], b"\x00")


def parse_cqe(psh: bytes) -> tuple[int, int]:
    cid, status = struct.unpack(">HH", psh[:4])
    return cid, status


def make_data_psh(cid: int, data_offset: int, data_len: int) -> bytes:
    return struct.pack(">HxxII", cid, data_offset, data_len).ljust(PSH_LEN[TYPE_C2H_DATA], b"\x00")


def parse_data_psh(psh: bytes) -> tuple[int, int, int]:
    cid, data_offset, data_len = struct.unpack(">HxxII", psh[:12])
    return cid, data_offset, data_len


def make_r2t_psh(cid: int, offset: int, length: int) -> bytes:
    """Ready-to-Transfer: the target solicits ``length`` write bytes."""
    return struct.pack(">HxxII", cid, offset, length).ljust(PSH_LEN[TYPE_R2T], b"\x00")


def parse_r2t_psh(psh: bytes) -> tuple[int, int, int]:
    cid, offset, length = struct.unpack(">HxxII", psh[:12])
    return cid, offset, length


def build_pdu(pdu_type: int, psh: bytes, data: bytes, digest_cls, ddgst: bool, dummy_digest: bool = False) -> bytes:
    """Assemble a full PDU; ``dummy_digest`` leaves the DDGST zeroed for
    the NIC to fill (the offloaded TX path)."""
    if len(psh) != PSH_LEN[pdu_type]:
        raise ValueError(f"PSH length {len(psh)} wrong for type {pdu_type:#x}")
    has_digest = ddgst and data
    plen = CH_LEN + len(psh) + len(data) + (DDGST_LEN if has_digest else 0)
    out = make_ch(pdu_type, plen, bool(has_digest)) + psh + data
    if has_digest:
        out += b"\x00" * DDGST_LEN if dummy_digest else digest_cls(data).digest()
    return out


def pdu_total_len(ch: bytes) -> int:
    """Total PDU length from a CH (for the stream assembler); raises
    ValueError for junk."""
    pdu_type, flags, hlen, pdo, plen = struct.unpack(">BBBBI", ch)
    if pdu_type not in PSH_LEN:
        raise ValueError(f"bad PDU type {pdu_type:#x}")
    if hlen != CH_LEN + PSH_LEN[pdu_type]:
        raise ValueError(f"bad hlen {hlen} for type {pdu_type:#x}")
    if plen < hlen or plen > MAX_PLEN:
        raise ValueError(f"bad plen {plen}")
    return plen


class _NvmeTransform(MsgTransform):
    """Per-PDU digest + placement engine."""

    def __init__(self, adapter: "NvmeAdapter", desc: MessageDesc, rr_state: Optional[dict]):
        self.adapter = adapter
        self.desc = desc
        self.rr_state = rr_state if rr_state is not None else {}
        self.digest = adapter.digest_cls()
        self._psh_need = desc.info["psh_len"]
        self._psh = bytearray()
        self._data_pos = 0
        self._target = None  # (buffer, base_offset) once PSH parsed

    def _resolve_placement(self) -> None:
        if not self.adapter.place or self.desc.info["type"] != TYPE_C2H_DATA:
            return
        cid, data_offset, data_len = parse_data_psh(bytes(self._psh))
        buffer = self.rr_state.get(cid)
        if buffer is None or data_offset + data_len > len(buffer):
            self.adapter.note_place_failure()
            return
        self._target = (buffer, data_offset)

    def process(self, data: bytes) -> bytes:
        i = 0
        if self._psh_need:
            take = min(self._psh_need, len(data))
            self._psh += data[:take]
            self._psh_need -= take
            i = take
            if self._psh_need == 0:
                self._resolve_placement()
        chunk = data[i:]
        if chunk:
            self.digest.update(chunk)
            if self._target is not None:
                buffer, base = self._target
                buffer[base + self._data_pos : base + self._data_pos + len(chunk)] = chunk
            self._data_pos += len(chunk)
        return data  # digests/copies never alter the stream bytes

    def finalize_tx(self) -> bytes:
        return self.digest.digest()

    def verify_rx(self, wire_trailer: bytes) -> bool:
        return wire_trailer == self.digest.digest()


class NvmeAdapter(L5pAdapter):
    """What the NIC knows about NVMe-TCP.  One instance per flow
    direction (it carries per-flow placement status)."""

    name = "nvme-tcp"
    header_len = CH_LEN
    magic_len = CH_LEN

    def __init__(self, config: NvmeConfig, place: bool = False):
        self.config = config
        self.digest_cls = get_digest(config.digest_name)
        self.place = place
        self._place_ok = True
        self.placed_pdus = 0
        self.place_failures = 0

    def note_place_failure(self) -> None:
        self._place_ok = False
        self.place_failures += 1

    def software_cpb(self, model) -> float:
        # Degraded NVMe/TCP sends only recompute the CRC32C data digest.
        return model.cpb_crc32c

    def parse_header(self, header: bytes, static_state) -> Optional[MessageDesc]:
        try:
            total = pdu_total_len(header)
        except ValueError:
            return None
        pdu_type, flags, hlen, pdo, plen = struct.unpack(">BBBBI", header)
        has_digest = bool(flags & FLAG_DDGST)
        trailer = DDGST_LEN if has_digest else 0
        body = total - CH_LEN - trailer
        if body < PSH_LEN[pdu_type]:
            return None
        return MessageDesc(
            kind=f"{pdu_type:#x}",
            header_len=CH_LEN,
            body_len=body,
            trailer_len=trailer,
            raw_header=header,
            info={"type": pdu_type, "psh_len": PSH_LEN[pdu_type]},
        )

    def check_magic(self, window: bytes, static_state) -> bool:
        if len(window) < CH_LEN:
            return False
        try:
            pdu_total_len(window[:CH_LEN])
            return True
        except ValueError:
            return False

    def begin_message(self, direction: Direction, static_state, desc, msg_index, rr_state=None):
        del direction, static_state, msg_index  # digests are stateless per PDU
        return _NvmeTransform(self, desc, rr_state)

    def apply_packet_meta(self, meta, processed: bool, ok: bool, desc_kinds) -> None:
        if self.config.rx_offload_crc:
            meta.crc_ok = processed and ok
        if self.place:
            meta.placed = processed and self._place_ok
        self._place_ok = True


from repro.l5p import plugin as _plugin

#: NVMe/TCP common-header magic: PDU type in 0x04..0x09 (high nibble
#: zero via the mask; exact membership and HLEN/PLEN checks live in
#: check_magic).
PLUGIN = _plugin.register(
    _plugin.L5Protocol(
        name="nvme-tcp",
        header_len=CH_LEN,
        magic=_plugin.MagicSpec(
            pattern=b"\x00" * CH_LEN,
            mask=b"\xf0" + b"\x00" * (CH_LEN - 1),
            confidence=1e-4,
        ),
        preconditions=_plugin.Table3Preconditions(
            size_preserving=True,
            incremental_constant_state=True,
            header_plaintext_length=True,
            magic_identifiable=True,
            state_from_msg_index=True,
            notes="CRC32C digests + CID-keyed data placement (§5.1)",
        ),
        factory=lambda config=None, **kw: NvmeAdapter(config or NvmeConfig(), **kw),
        upcalls=("l5o_get_tx_msgstate", "l5o_resync_rx_req", "l5o_offload_degraded"),
        description="NVMe-TCP HDGST/DDGST CRC offload and direct data placement",
        info={"ops": ("crc", "place")},
    )
)
