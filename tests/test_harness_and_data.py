"""Tests for the harness (testbed, reporting) and embedded datasets."""

import pytest

from repro.data.linux_loc import modified_by_year, modified_fraction_range, totals_by_year
from repro.data.nic_prices import CONNECTX_OFFLOADS, price_determinants_hold, price_spread_by_class
from repro.harness.report import Table, ratio_label, series
from repro.harness.testbed import Testbed, TestbedConfig


class TestTestbed:
    def test_builds_and_runs(self):
        tb = Testbed(TestbedConfig(seed=5, server_cores=2))
        assert len(tb.server.cpu.cores) == 2
        assert len(tb.generator.cpu.cores) == 12
        tb.run(until=0.001)
        assert tb.sim.now == pytest.approx(0.001)

    def test_traffic_flows_between_hosts(self):
        tb = Testbed(TestbedConfig())
        got = []
        tb.generator.tcp.listen(80, lambda conn: setattr(conn, "on_data", lambda skb: got.append(skb.data)))
        conn = tb.server.tcp.connect("generator", 80)
        conn.on_established = lambda: conn.send(b"ping")
        tb.run(until=0.01)
        assert b"".join(got) == b"ping"

    def test_reset_measurement_clears_counters(self):
        tb = Testbed(TestbedConfig())
        tb.server.cpu.cores[0].charge(1000, "x")
        tb.server.nic.pcie.count("recovery", 10)
        tb.reset_measurement()
        assert tb.server.cpu.total_cycles == 0
        assert tb.server.nic.pcie.total_bytes() == 0

    def test_fault_injection_configured_per_direction(self):
        tb = Testbed(TestbedConfig(loss_to_server=0.5))
        assert tb.link.ba.config.loss == 0.5
        assert tb.link.ab.config.loss == 0.0


class TestReport:
    def test_table_renders_aligned(self):
        t = Table(["a", "bbbb"], title="T")
        t.row(1, 2.5)
        t.row("xx", 123456.0)
        out = t.render()
        lines = out.split("\n")
        assert lines[0] == "T"
        assert len({len(line) for line in lines[1:]}) == 1

    def test_table_rejects_wrong_arity(self):
        with pytest.raises(ValueError):
            Table(["a"]).row(1, 2)

    def test_ratio_label(self):
        assert ratio_label(144, 100) == "+44%"
        assert ratio_label(270, 100) == "2.7x"
        assert ratio_label(90, 100) == "-10%"
        assert ratio_label(1, 0) == "n/a"

    def test_series(self):
        assert series("s", [1, 2], [3.0, 4.0]) == "s: 1:3  2:4"


class TestDatasets:
    def test_linux_loc_shapes(self):
        totals = totals_by_year()
        modified = modified_by_year()
        assert len(totals) == len(modified) == 10
        assert all(m < t for (_, t), (_, m) in zip(totals, modified))
        lo, hi = modified_fraction_range()
        assert 0.05 <= lo < hi <= 0.25

    def test_nic_price_claims(self):
        assert price_determinants_hold()
        spread = price_spread_by_class()
        assert spread  # several classes span generations
        assert all(hi >= lo for lo, hi in spread.values())

    def test_offload_table_generations_ordered(self):
        gens = sorted(CONNECTX_OFFLOADS)
        years = [CONNECTX_OFFLOADS[g][0] for g in gens]
        assert years == sorted(years)
