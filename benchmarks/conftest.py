"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables or figures: it
runs the matching experiment on the simulated testbed, prints the same
rows/series the paper reports, and saves them under benchmarks/out/ so
EXPERIMENTS.md can be cross-checked against fresh runs.

Benchmarks that pass ``metrics=`` to the ``emit`` fixture dual-emit: the
human-readable text plus a machine-readable ``out/<name>.json`` (schema
in :mod:`repro.obs.bench`), which ``python -m repro.obs.regress`` gates
against ``benchmarks/baseline.json``.  ``REPRO_BENCH_QUICK=1`` switches
the sweeps to the reduced-scale grids CI runs (see ``benchlib``).
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from benchlib import bench_name  # noqa: E402 (path set up above)
from repro.obs.bench import write_bench_json  # noqa: E402

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


@pytest.fixture
def emit():
    """Print a figure/table reproduction and persist it to out/.

    ``metrics`` (optional) is a flat ``name -> number`` mapping written
    alongside as ``out/<name>.json`` for the perf-regression gate.
    """

    def _emit(name: str, text: str, metrics=None, meta=None) -> None:
        name = bench_name(name)
        os.makedirs(OUT_DIR, exist_ok=True)
        print()
        print(f"=== {name} ===")
        print(text)
        with open(os.path.join(OUT_DIR, f"{name}.txt"), "w") as fh:
            fh.write(text + "\n")
        if metrics is not None:
            write_bench_json(OUT_DIR, name, metrics, meta)

    return _emit
