"""Unit tests for the stacked NVMe-TLS adapter (§5.3)."""


from repro.core.context import HwContext
from repro.core.types import Direction, TxMsgState
from repro.core.walker import walk
from repro.crypto.crc import Crc32c
from repro.l5p.nvme_tcp import pdu as P
from repro.l5p.nvme_tcp.pdu import NvmeConfig
from repro.l5p.nvme_tls import NvmeTlsAdapter, PlainTxMap
from repro.l5p.tls.record import TAG_LEN, TlsDirectionState, make_header
from repro.crypto.suite import XorGcmSuite
from repro.net.packet import FlowKey, SkbMeta

STATE = TlsDirectionState(suite=XorGcmSuite(), key=b"\x07" * 16, iv=b"\x08" * 12)
FLOW = FlowKey("a", 1, "b", 2)


def nvme_cfg(**kw):
    defaults = dict(digest_name="crc32c", tx_offload=True, rx_offload_crc=True, rx_offload_copy=True)
    defaults.update(kw)
    return NvmeConfig(**defaults)


def build_pdu(data: bytes, cid=1, offset=0, dummy=False) -> bytes:
    return P.build_pdu(
        P.TYPE_C2H_DATA, P.make_data_psh(cid, offset, len(data)), data, Crc32c, True, dummy_digest=dummy
    )


def tls_wrap_plain(body: bytes) -> bytes:
    """A plaintext record with dummy tag, as kTLS hands down in offload
    mode (record body carries the inner NVMe bytes)."""
    return make_header(23, len(body) + TAG_LEN) + body + b"\x00" * TAG_LEN


class TestStackedTx:
    def test_tx_fills_inner_crc_then_encrypts(self):
        adapter = NvmeTlsAdapter(nvme_cfg())
        ctx = HwContext(1, FLOW, Direction.TX, adapter, STATE, tcpsn=0)
        data = b"D" * 300
        pdu = build_pdu(data, dummy=True)  # CRC left for the NIC
        record = tls_wrap_plain(pdu)
        result = walk(ctx, record)
        assert result.completed == 1

        # Decrypt what went on the wire and check the inner CRC is real.
        rx_adapter = NvmeTlsAdapter(nvme_cfg())
        rx_ctx = HwContext(2, FLOW, Direction.RX, rx_adapter, STATE, tcpsn=0)
        rx = walk(rx_ctx, result.out)
        assert rx.all_ok
        inner_plain = rx.out[5 : 5 + len(pdu)]
        assert inner_plain[-4:] == Crc32c(data).digest()

    def test_tx_recovery_repositions_inner(self):
        adapter = NvmeTlsAdapter(nvme_cfg())
        tx_map = PlainTxMap()
        adapter.inner_tx_ops = tx_map
        ctx = HwContext(1, FLOW, Direction.TX, adapter, STATE, tcpsn=0)
        data = b"E" * 500
        pdu = build_pdu(data, dummy=True)
        tx_map.track(0, pdu)
        record = tls_wrap_plain(pdu)
        full = walk(ctx, record).out

        # Recover as the TX engine would: reposition at the record start
        # and replay a prefix, then produce the rest.
        ctx2 = HwContext(3, FLOW, Direction.TX, adapter, STATE, tcpsn=0)
        adapter2 = adapter  # same adapter instance owns the inner walker
        ctx2.adapter = adapter2
        state = TxMsgState(start_seq=0, msg_index=0, wire_bytes=record, info={"plain_offset": 0})
        adapter2.prepare_tx_recovery(ctx2, state)
        out = walk(ctx2, record).out
        assert out == full

    def test_missing_inner_map_disables_inner(self):
        adapter = NvmeTlsAdapter(nvme_cfg())
        ctx = HwContext(1, FLOW, Direction.TX, adapter, STATE, tcpsn=0)
        state = TxMsgState(start_seq=0, msg_index=0, wire_bytes=b"", info={"plain_offset": 7})
        adapter.prepare_tx_recovery(ctx, state)  # no inner_tx_ops set
        assert not adapter.inner_enabled(Direction.TX)
        assert adapter.inner_disables == 1


class TestStackedRx:
    def encrypt_record(self, pdu: bytes, msg_index=0) -> bytes:
        tx = NvmeTlsAdapter(nvme_cfg())
        ctx = HwContext(9, FLOW, Direction.TX, tx, STATE, tcpsn=0)
        ctx.msg_index = msg_index
        return walk(ctx, tls_wrap_plain(pdu)).out

    def test_rx_decrypts_verifies_and_places(self):
        data = b"F" * 400
        buffer = bytearray(400)
        wire = self.encrypt_record(build_pdu(data, cid=3, dummy=True))
        adapter = NvmeTlsAdapter(nvme_cfg())
        ctx = HwContext(4, FLOW, Direction.RX, adapter, STATE, tcpsn=0)
        ctx.rr_state[3] = buffer
        result = walk(ctx, wire)
        assert result.all_ok
        assert bytes(buffer) == data  # placed by the inner walker
        meta = SkbMeta()
        adapter.apply_packet_meta(meta, processed=True, ok=True, desc_kinds=[])
        assert meta.decrypted and meta.crc_ok and meta.placed

    def test_disruption_disables_inner_but_tls_continues(self):
        data = b"G" * 200
        wire1 = self.encrypt_record(build_pdu(data, cid=1, dummy=True), msg_index=0)
        adapter = NvmeTlsAdapter(nvme_cfg())
        ctx = HwContext(5, FLOW, Direction.RX, adapter, STATE, tcpsn=0)
        adapter.on_disruption(ctx)
        assert not adapter.inner_enabled(Direction.RX)
        result = walk(ctx, wire1)
        assert result.all_ok  # TLS still verifies
        meta = SkbMeta()
        adapter.apply_packet_meta(meta, processed=True, ok=True, desc_kinds=[])
        assert meta.decrypted
        assert not meta.crc_ok and not meta.placed  # inner is off

    def test_pdu_spanning_records(self):
        data = b"H" * 3000
        pdu = build_pdu(data, cid=2, dummy=True)
        adapter_tx = NvmeTlsAdapter(nvme_cfg())
        ctx_tx = HwContext(6, FLOW, Direction.TX, adapter_tx, STATE, tcpsn=0)
        # Split the PDU across two TLS records.
        half = len(pdu) // 2
        stream = tls_wrap_plain(pdu[:half]) + tls_wrap_plain(pdu[half:])
        wire = walk(ctx_tx, stream).out

        buffer = bytearray(3000)
        adapter_rx = NvmeTlsAdapter(nvme_cfg())
        ctx_rx = HwContext(7, FLOW, Direction.RX, adapter_rx, STATE, tcpsn=0)
        ctx_rx.rr_state[2] = buffer
        result = walk(ctx_rx, wire)
        assert result.all_ok
        assert result.completed == 2
        assert bytes(buffer) == data


class TestPlainTxMap:
    def test_lookup_and_prune(self):
        m = PlainTxMap()
        m.track(0, b"a" * 100)
        m.track(100, b"b" * 50)
        assert m.nvme_get_tx_msgstate(120).start_seq == 100
        assert m.nvme_get_tx_msgstate(99).msg_index == 0
        assert m.nvme_get_tx_msgstate(150) is None
        m.prune(100)
        assert m.nvme_get_tx_msgstate(50) is None
        assert m.nvme_get_tx_msgstate(120) is not None
