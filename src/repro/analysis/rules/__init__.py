"""Rule registry for the project lint.

Each rule module defines one :class:`~repro.analysis.lint.LintRule`
subclass; register new rules here so both the CLI and the tests pick
them up.
"""

from __future__ import annotations

from repro.analysis.lint import LintRule
from repro.analysis.rules.adapter_protocol import AdapterProtocolRule
from repro.analysis.rules.mutable_defaults import MutableDefaultsRule
from repro.analysis.rules.pkg_docstrings import PackageDocstringRule
from repro.analysis.rules.seqarith import SeqArithmeticRule
from repro.analysis.rules.wallclock import WallClockRule


def all_rules() -> list[LintRule]:
    return [
        WallClockRule(),
        SeqArithmeticRule(),
        MutableDefaultsRule(),
        AdapterProtocolRule(),
        PackageDocstringRule(),
    ]
