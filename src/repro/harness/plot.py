"""ASCII chart rendering for benchmark output.

The paper's figures are line/bar charts; the benchmarks print their
numeric rows, and these helpers add a quick visual of the same series
so shapes (crossovers, cliffs, saturation) are visible in the logs.
"""

from __future__ import annotations

from typing import Optional, Sequence

_BARS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line bar rendering of a series."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return _BARS[4] * len(values)
    return "".join(_BARS[1 + round((v - lo) / span * (len(_BARS) - 2))] for v in values)


def line_chart(
    series: dict[str, Sequence[float]],
    x_labels: Sequence,
    height: int = 10,
    title: Optional[str] = None,
    y_max: Optional[float] = None,
) -> str:
    """Multi-series ASCII chart; one mark column per x position."""
    if not series:
        raise ValueError("no series to plot")
    widths = {len(v) for v in series.values()}
    if widths != {len(x_labels)}:
        raise ValueError("all series must match x_labels in length")
    marks = "*o+x#@%&"
    top = y_max if y_max is not None else max(max(v) for v in series.values())
    top = top or 1.0
    grid = [[" "] * len(x_labels) for _ in range(height)]
    for index, values in enumerate(series.values()):
        mark = marks[index % len(marks)]
        for x, value in enumerate(values):
            row = height - 1 - min(height - 1, int(value / top * (height - 1) + 0.5))
            if grid[row][x] == " ":
                grid[row][x] = mark
            else:
                grid[row][x] = "#"  # overlapping series
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        y_value = top * (height - 1 - i) / (height - 1)
        lines.append(f"{y_value:10.3g} |" + " ".join(row))
    lines.append(" " * 10 + "-" * (2 * len(x_labels) + 1))
    lines.append(" " * 11 + " ".join(str(x)[0] for x in x_labels))
    legend = "  ".join(f"{marks[i % len(marks)]}={name}" for i, name in enumerate(series))
    lines.append("legend: " + legend + "  (# = overlap)")
    return "\n".join(lines)
