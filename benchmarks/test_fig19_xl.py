"""Figure 19 XL: the context-cache eviction cliff at datacenter flow
counts (16 K..128 K concurrent flows against the full 4 MiB cache).

Unlike test_fig19_scalability (real TCP+TLS, both axes scaled down 16x),
this sweep keeps the cache at paper scale and drives it with the
heavy-tailed multi-tenant flow mix of repro.experiments.scale_mix: the
miss rate falls off a cliff once the concurrent set outgrows ~20 K
flows, while goodput degrades gently because only a burst's first
packet pays the miss.
"""

from benchlib import QUICK
from repro.exec import run_grid_dict
from repro.experiments.scale_mix import run_mix_point
from repro.harness.report import Table

# Quick keeps the two sides of the cliff (16 K fits, 64 K thrashes);
# the full sweep adds the shoulder and the 128 K far side.
FLOWS = (16384, 65536) if QUICK else (16384, 32768, 65536, 131072)
VARIANTS = ("offload+zc", "https")


def run_point(point):
    flows, variant = point
    return run_mix_point(flows, variant=variant)


def sweep():
    points = [(flows, variant) for flows in FLOWS for variant in VARIANTS]
    return run_grid_dict(points, run_point)


def test_fig19_xl(benchmark, emit):
    grid = benchmark.pedantic(sweep, rounds=1, iterations=1)
    cache_flows = grid[(FLOWS[0], "offload+zc")].cache_capacity_flows
    table = Table(
        ["flows", "variant", "Gbps", "mean burst", "ctx miss %", "ctx DMA MB"],
        title=f"Figure 19 XL: datacenter flow mix (NIC cache ~{cache_flows} flows)",
    )
    metrics = {}
    for flows in FLOWS:
        for variant in VARIANTS:
            p = grid[(flows, variant)]
            table.row(
                flows,
                variant,
                p.goodput_gbps,
                p.mean_burst,
                f"{100 * p.cache_miss_rate:.1f}%",
                f"{p.miss_dma_mb:.1f}",
            )
            key = f"f{flows}.{variant}"
            metrics[f"{key}.gbps"] = p.goodput_gbps
            metrics[f"{key}.miss_rate"] = p.cache_miss_rate
            metrics[f"{key}.mean_burst"] = p.mean_burst
            metrics[f"{key}.dma_mb"] = p.miss_dma_mb
    emit(
        "fig19_xl",
        table.render(),
        metrics=metrics,
        meta={"cache_capacity_flows": cache_flows, "scheduler": grid[(FLOWS[0], "offload+zc")].scheduler},
    )

    few = grid[(FLOWS[0], "offload+zc")]
    many = grid[(FLOWS[-1], "offload+zc")]
    # The sweep actually crosses the cache capacity...
    assert FLOWS[0] < few.cache_capacity_flows < FLOWS[-1]
    # ...and past it the cache *does* cliff: the mix's re-access
    # distance exceeds capacity for all but the hottest flows.
    assert few.cache_miss_rate < 0.15
    assert many.cache_miss_rate > 0.5
    # Yet goodput does not cliff (the miss is per burst, not per packet)
    # and offload still beats software TLS by a wide margin everywhere.
    assert many.goodput_gbps > 0.5 * few.goodput_gbps
    for flows in FLOWS:
        assert grid[(flows, "offload+zc")].goodput_gbps > 5 * grid[(flows, "https")].goodput_gbps
    # Same seed, same mix: the traffic process is identical across
    # variants (the cache never influences the generator's draws).
    for flows in FLOWS:
        assert grid[(flows, "offload+zc")].events_fired == grid[(flows, "https")].events_fired
