"""Deterministic fault injection and graceful offload degradation.

Split in two halves:

- :mod:`repro.faults.plan` — frozen, declarative :class:`FaultPlan`
  (wire faults, NIC/driver faults, degradation policy) attached to
  ``TestbedConfig(faults=...)``.
- :mod:`repro.faults.inject` — the stateful injectors and packet
  mutators that implement the wire half.

``python -m repro.faults.chaos`` runs multi-seed TLS / NVMe-TCP soaks
under randomized fault mixes with the runtime sanitizer enabled,
asserting end-to-end byte-stream / CRC integrity.
"""

from repro.faults.inject import LinkFaultInjector, corrupting_link, flip_payload_byte
from repro.faults.plan import (
    DegradePolicy,
    FaultPlan,
    GilbertElliott,
    LinkFaultProfile,
    NicFaultProfile,
    NicLifecycleProfile,
)

__all__ = [
    "DegradePolicy",
    "FaultPlan",
    "GilbertElliott",
    "LinkFaultInjector",
    "LinkFaultProfile",
    "NicFaultProfile",
    "NicLifecycleProfile",
    "corrupting_link",
    "flip_payload_byte",
]
