"""Workload applications: iperf, fio, nginx/wrk, Redis-on-Flash/memtier.

These model the traffic generators of the paper's evaluation (§6): each
app drives sockets on a :class:`~repro.harness.Testbed` host and reports
the numbers its real counterpart prints (goodput, op/s, latency
percentiles).  They contain no offload logic — the NIC never sees an
"application", only the byte streams these produce.
"""

from repro.apps.iperf import IperfClient, IperfServer
from repro.apps.fio import FioJob
from repro.apps.nginx import NginxServer
from repro.apps.wrk import WrkClient
from repro.apps.rof import MemtierClient, RofServer

__all__ = [
    "IperfClient",
    "IperfServer",
    "FioJob",
    "NginxServer",
    "WrkClient",
    "RofServer",
    "MemtierClient",
]
