"""The formal L5Protocol plugin contract and registry.

The paper's Table 3 offloadability preconditions are an *interface*,
not a property of TLS and NVMe-TCP specifically.  This module is that
interface's executable form: a protocol joins the simulator by
declaring an :class:`L5Protocol` — its magic-pattern spec, fixed header
length, adapter factory, Table-3 precondition checklist, and the
Listing-2 upcalls its endpoints answer — and calling :func:`register`.
Everything downstream resolves protocols through the registry:

- the driver refuses ``l5o_create`` for adapters whose ``name`` was
  never registered (a silicon image only contains parsers it was built
  with), see ``src/repro/core/driver.py``;
- endpoints construct adapters with :func:`make_adapter` instead of
  importing concrete classes;
- ``TestbedConfig(protocols=...)`` resolves and validates the set of
  protocols a scenario uses before the first packet moves.

Registration is *loud*: duplicate names, unsatisfied preconditions,
malformed magic specs, or factories whose adapters disagree with the
declaration all raise :class:`PluginError` at import time rather than
misparsing bytes at simulation time.  The companion static pass is the
SIM014 lint rule (``repro.analysis.rules.l5p_contract``); the
plugin-author guide is ``docs/l5p-plugins.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.types import L5pAdapter


class PluginError(Exception):
    """An L5Protocol declaration or lookup is invalid."""


@dataclass(frozen=True)
class MagicSpec:
    """The §3.3 magic pattern as the NIC's first-pass filter.

    ``pattern``/``mask`` describe a TCAM-style match over the first
    ``len(pattern)`` header bytes: a window ``w`` is a candidate when
    ``w[i] & mask[i] == pattern[i] & mask[i]`` for every position.  The
    mask is a *necessary* condition of the adapter's full
    ``check_magic`` (which may add range checks a mask cannot express),
    so it may accept a superset — never a subset — of real headers.

    ``confidence`` is the declared upper bound on the false-positive
    rate of the *full* ``check_magic`` against uniform random bytes;
    the seeded study in ``benchmarks/test_fig_l5p_plugins.py`` measures
    the actual rate and gates it against this bound.
    """

    pattern: bytes
    mask: bytes
    confidence: float

    def __post_init__(self):
        if not self.pattern:
            raise PluginError("MagicSpec.pattern must be non-empty")
        if len(self.pattern) != len(self.mask):
            raise PluginError(
                f"MagicSpec pattern/mask length mismatch: {len(self.pattern)} != {len(self.mask)}"
            )
        if not any(self.mask):
            raise PluginError("MagicSpec.mask matches everything (all zero bytes)")
        if not 0.0 < self.confidence <= 1.0:
            raise PluginError(f"MagicSpec.confidence must be in (0, 1], got {self.confidence}")

    def matches(self, window: bytes) -> bool:
        """TCAM match: True when ``window`` could start a header."""
        if len(window) < len(self.pattern):
            return False
        return all(
            window[i] & self.mask[i] == self.pattern[i] & self.mask[i]
            for i in range(len(self.pattern))
        )


@dataclass(frozen=True)
class Table3Preconditions:
    """The paper's Table 3 checklist, one field per row.

    Every field defaults to ``False`` so a plugin author must *assert*
    each precondition explicitly; :func:`register` rejects any protocol
    with an unsatisfied row — an L5P that fails Table 3 is not
    autonomously offloadable and has no business in the registry.
    """

    #: The transform neither inflates nor deflates message bytes, and
    #: trailers are replaced in place, never inserted (Table 3 row 1).
    size_preserving: bool = False
    #: The transform consumes arbitrary in-order byte ranges with
    #: constant-size per-message state (Table 3 row 2).
    incremental_constant_state: bool = False
    #: The full message length is derivable from a fixed-size plaintext
    #: header — the "length field" (Table 3 row 3).
    header_plaintext_length: bool = False
    #: Candidate headers are recognizable mid-stream via a magic
    #: pattern, enabling receive-side resynchronization (Table 3 row 3).
    magic_identifiable: bool = False
    #: Per-message dynamic state is derivable from the message ordinal
    #: (or explicit request/response state), so a lost context can be
    #: reconstructed from the upcalls (§3.2, §4.1).
    state_from_msg_index: bool = False
    #: Free-form qualifications ("RX only", "steering, not transform").
    notes: str = ""

    def missing(self) -> list[str]:
        """Names of unsatisfied preconditions (empty when offloadable)."""
        return [
            name
            for name in (
                "size_preserving",
                "incremental_constant_state",
                "header_plaintext_length",
                "magic_identifiable",
                "state_from_msg_index",
            )
            if not getattr(self, name)
        ]


#: Upcalls (Listing 2) every stream endpoint must answer at minimum.
REQUIRED_UPCALLS = ("l5o_get_tx_msgstate", "l5o_resync_rx_req")


@dataclass(frozen=True)
class L5Protocol:
    """One registered layer-5 protocol: the full plugin declaration."""

    name: str
    header_len: int
    magic: MagicSpec
    preconditions: Table3Preconditions
    #: Zero-arg-callable (kwargs optional) returning a fresh adapter.
    factory: Callable[..., L5pAdapter]
    #: Listing-2 upcalls this protocol's endpoints implement.
    upcalls: tuple = REQUIRED_UPCALLS
    description: str = ""
    #: Extra declaration data (e.g. trailer length, offloaded ops).
    info: dict = field(default_factory=dict, compare=False)

    def validate(self) -> None:
        """Check internal consistency; raises :class:`PluginError`."""
        if not self.name or self.name != self.name.lower():
            raise PluginError(f"protocol name must be non-empty lowercase, got {self.name!r}")
        bad = self.preconditions.missing()
        if bad:
            raise PluginError(
                f"protocol {self.name!r} does not satisfy Table 3: {', '.join(bad)} "
                "unsatisfied — it is not autonomously offloadable"
            )
        if self.header_len < len(self.magic.pattern):
            raise PluginError(
                f"protocol {self.name!r}: magic pattern ({len(self.magic.pattern)}B) "
                f"exceeds header_len ({self.header_len}B)"
            )
        for upcall in REQUIRED_UPCALLS:
            if upcall not in self.upcalls:
                raise PluginError(f"protocol {self.name!r} must declare upcall {upcall!r}")
        probe = self.factory()
        if not isinstance(probe, L5pAdapter):
            raise PluginError(f"protocol {self.name!r}: factory returned {type(probe).__name__}")
        if probe.name != self.name:
            raise PluginError(
                f"protocol {self.name!r}: factory adapter is named {probe.name!r}"
            )
        if probe.header_len != self.header_len:
            raise PluginError(
                f"protocol {self.name!r}: declared header_len {self.header_len} but "
                f"adapter has {probe.header_len}"
            )
        if not 0 < probe.magic_len <= probe.header_len:
            raise PluginError(
                f"protocol {self.name!r}: adapter magic_len {probe.magic_len} outside "
                f"(0, header_len]"
            )
        if len(self.magic.pattern) != probe.magic_len:
            raise PluginError(
                f"protocol {self.name!r}: magic spec covers {len(self.magic.pattern)}B "
                f"but adapter scans {probe.magic_len}B windows"
            )


_REGISTRY: dict[str, L5Protocol] = {}

#: Modules whose import registers the built-in protocols.  Lazy so that
#: ``repro.core`` can import this module without dragging in every L5P.
_BUILTIN_MODULES = (
    "repro.l5p.tls.record",
    "repro.l5p.nvme_tcp.pdu",
    "repro.l5p.nvme_tls",
    "repro.l5p.rpc.frame",
    "repro.l5p.decomp",
    "repro.l5p.dpi",
    "repro.l5p.http2.frame",
    "repro.l5p.resp.frame",
)


def register(proto: L5Protocol) -> L5Protocol:
    """Validate and add ``proto``; duplicate names fail loudly."""
    proto.validate()
    if proto.name in _REGISTRY:
        raise PluginError(f"protocol {proto.name!r} is already registered")
    _REGISTRY[proto.name] = proto
    return proto


def unregister(name: str) -> None:
    """Remove a registration (test support); unknown names fail loudly."""
    if name not in _REGISTRY:
        raise PluginError(f"cannot unregister unknown protocol {name!r}")
    del _REGISTRY[name]


def ensure_builtins() -> None:
    """Import every built-in protocol module (each registers itself)."""
    import importlib

    for module in _BUILTIN_MODULES:
        importlib.import_module(module)


def get(name: str) -> L5Protocol:
    """Look up a protocol; unknown names raise with the known set."""
    ensure_builtins()
    proto = _REGISTRY.get(name)
    if proto is None:
        raise PluginError(
            f"unknown L5 protocol {name!r}; registered: {', '.join(sorted(_REGISTRY))}"
        )
    return proto


def require(name: str) -> L5Protocol:
    """Alias of :func:`get` used at driver context-install time."""
    return get(name)


def names() -> list[str]:
    ensure_builtins()
    return sorted(_REGISTRY)


def registered() -> list[L5Protocol]:
    ensure_builtins()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def make_adapter(name: str, **kwargs: Any) -> L5pAdapter:
    """Construct a fresh adapter for ``name`` through its factory."""
    return get(name).factory(**kwargs)


def resolve(protocols) -> dict[str, L5Protocol]:
    """Resolve an iterable of names (``TestbedConfig.protocols``)."""
    out: dict[str, L5Protocol] = {}
    for name in protocols:
        if name in out:
            raise PluginError(f"protocol {name!r} listed twice")
        out[name] = get(name)
    return out


def magic_spec(name: str) -> Optional[MagicSpec]:
    """The registered magic spec, or None if the name is unknown (the
    RX walker uses this for per-protocol scan accounting without making
    registration a hard datapath dependency)."""
    proto = _REGISTRY.get(name)
    return proto.magic if proto is not None else None
