"""Receive-side autonomous offload (§4.3, Figures 7–8).

In-sequence packets are transformed by the walker.  Out-of-sequence
packets are never offloaded and never buffered; instead the NIC tries
to regain the stream:

- a packet from the "past" (retransmission) is bypassed;
- a packet containing the *next message boundary* (derived from the
  current message's length field) lets the NIC deterministically re-lock
  mid-packet (Figure 8b);
- otherwise the NIC enters the hardware-driven recovery of Figure 7:
  **searching** for the L5P magic pattern, asking the L5P to confirm the
  speculated header sequence number, **tracking** subsequent headers via
  length fields while the confirmation is in flight, and resuming
  offload at the next boundary once software says yes (Figure 8c).
"""

from __future__ import annotations

from repro.analysis.sanitizer import active as _sanitizer_active
from repro.core.context import HwContext, RxState
from repro.core.walker import walk
from repro.net.packet import Packet
from repro.tcp import seq as sq

#: Per-state packet-counter names, precomputed: formatting an f-string
#: per received packet is measurable at datacenter flow counts.
_RX_STATE_COUNTERS = {state: f"nic.rx.pkts.{state.value}" for state in RxState}


class RxEngine:
    """Per-NIC receive offload engine.

    The two ablation knobs correspond to the design choices DESIGN.md
    calls out: ``enable_boundary_resync`` is the deterministic Figure-8b
    re-lock; ``enable_speculation`` is the Figure-7 searching/tracking
    machinery.  With both off, any out-of-sequence packet permanently
    stops offloading for the flow (the strawman).
    """

    def __init__(self, nic):
        self.nic = nic
        self.enable_boundary_resync = True
        self.enable_speculation = True
        # Per-state packet counters as epoch-batched cells, resolved once
        # per engine: the steady-state cost per packet is one dict lookup
        # and an integer add (flushed at every snapshot — PR 7 contract).
        self._state_cells = None

    # ------------------------------------------------------------------
    def process(self, ctx: HwContext, pkt: Packet) -> None:
        if not pkt.payload:
            return
        self.nic.cache.access(ctx)
        self.nic.pcie.count("rx-packet", len(pkt.payload))
        obs = self.nic.obs
        if obs is not None:
            cells = self._state_cells
            if cells is None:
                cells = self._state_cells = {
                    state: obs.cell(name) for state, name in _RX_STATE_COUNTERS.items()
                }
            cells[ctx.rx_state].value += 1
        if ctx.rx_state == RxState.OFFLOADING:
            self._offloading(ctx, pkt)
        elif ctx.rx_state == RxState.SEARCHING:
            ctx.pkts_bypassed += 1
            self._search(ctx, pkt)
        else:  # TRACKING
            ctx.pkts_bypassed += 1
            self._track(ctx, pkt)

    # ------------------------------------------------------------------
    # Figure 7: the offloading state
    # ------------------------------------------------------------------
    def _offloading(self, ctx: HwContext, pkt: Packet) -> None:
        end = sq.add(pkt.seq, len(pkt.payload))
        if pkt.seq == ctx.expected_seq:
            result = walk(ctx, pkt.payload, emit=True)
            san = _sanitizer_active()
            if san is not None:
                san.rx_walk(ctx, len(pkt.payload), len(result.out))
            if result.desynced:
                # The stream no longer parses: lose the flow and recover.
                ctx.pkts_bypassed += 1
                ctx.adapter.on_disruption(ctx)
                ctx.enter_searching()
                return
            pkt.payload = result.out
            ctx.expected_seq = end
            ctx.pkts_offloaded += 1
            pkt.meta.offloaded = True
            ctx.adapter.apply_packet_meta(pkt.meta, processed=True, ok=result.all_ok, desc_kinds=[])
            return
        if sq.lt(pkt.seq, ctx.expected_seq):
            ctx.pkts_bypassed += 1
            if sq.le(end, ctx.expected_seq):
                # Retransmission of the past (Figure 8a): bypass entirely.
                return
            # Partially past: the tail beyond expected_seq is *new* stream
            # bytes (e.g. a retransmission cut at a different boundary, or
            # the packet across a post-resync resume point).  Walk just
            # that suffix in tracking mode so the context keeps pace; the
            # packet itself is not offloaded (its metadata covers stale
            # bytes too).
            ctx.adapter.on_disruption(ctx)
            skip = sq.sub(ctx.expected_seq, pkt.seq)
            result = walk(ctx, pkt.payload[skip:], emit=False)
            if result.desynced:
                ctx.enter_searching()
                return
            ctx.expected_seq = end
            return
        boundary = ctx.next_boundary_seq() if self.enable_boundary_resync else None
        if boundary is not None and sq.le(pkt.seq, boundary) and sq.lt(boundary, end):
            # Figure 8b: this packet contains the next message header —
            # re-lock deterministically. Bytes of the current (torn)
            # message are skipped; the new message is walked in tracking
            # mode so *later* packets can be offloaded mid-message.
            ctx.pkts_bypassed += 1
            ctx.boundary_resyncs += 1
            obs = self.nic.obs
            if obs is not None:
                obs.count("nic.rx.boundary_resyncs")
                obs.event("boundary-resync", lane=f"ctx/{ctx.ctx_id}", cat="resync", boundary=boundary)
            ctx.adapter.on_disruption(ctx)
            skip = sq.sub(boundary, pkt.seq)
            ctx.msg_index += 1  # the torn message still counts as "previous"
            ctx.reset_to_header()
            result = walk(ctx, pkt.payload[skip:], emit=False)
            if result.desynced:
                ctx.enter_searching()
                return
            ctx.expected_seq = end
            return
        if boundary is not None and sq.lt(pkt.seq, boundary):
            # Hole within the current message, boundary still ahead
            # (Figure 8b's P2-missing case before the header shows up):
            # ignore and keep waiting for the boundary.
            ctx.pkts_bypassed += 1
            ctx.adapter.on_disruption(ctx)
            return
        # The stream jumped past the known boundary (Figure 8c): recover.
        ctx.pkts_bypassed += 1
        ctx.adapter.on_disruption(ctx)
        ctx.enter_searching()
        self._search(ctx, pkt)

    # ------------------------------------------------------------------
    # Figure 7: speculative searching
    # ------------------------------------------------------------------
    def _search(self, ctx: HwContext, pkt: Packet) -> None:
        if not self.enable_speculation:
            return  # ablation: the flow stays un-offloaded forever
        end = sq.add(pkt.seq, len(pkt.payload))
        if sq.le(end, ctx.expected_seq):
            # Retransmission entirely from the known past (Figure 8a
            # applies in every state): bypass without scanning.  Those
            # bytes were already delivered; speculating on them could get
            # a stale header position confirmed and rewind the context.
            return
        base, buffer = ctx.scan_buffer_for(pkt.seq, pkt.payload)
        # A packet straddling expected_seq is scanned only from the first
        # byte the context has not yet accounted for, for the same reason.
        start = sq.sub(ctx.expected_seq, base)
        self._scan_from(ctx, base, buffer, end, start_at=max(start, 0))

    def _scan_from(self, ctx: HwContext, base: int, buffer: bytes, pkt_end: int, start_at: int) -> None:
        adapter = ctx.adapter
        i = start_at
        limit = len(buffer)
        while i + adapter.magic_len <= limit:
            window = buffer[i : i + adapter.magic_len]
            if not adapter.check_magic(window, ctx.static_state):
                i += 1
                continue
            if i + adapter.header_len > limit:
                # Candidate straddles the packet edge: carry the tail and
                # resume if the next packet is contiguous.
                ctx.save_scan_tail(pkt_end, buffer, keep=limit - i)
                return
            desc = adapter.parse_header(buffer[i : i + adapter.header_len], ctx.static_state)
            if desc is None:
                i += 1
                continue
            # Speculation: ask software to confirm this header position.
            spec_seq = sq.add(base, i)
            ctx.rx_state = RxState.TRACKING
            ctx.speculation_seq = spec_seq
            ctx.track_next = sq.add(spec_seq, desc.total_len)
            ctx.tracked_msgs = 1
            self.nic.driver.request_resync(ctx, spec_seq)
            # Keep tracking inside the same buffer.
            self._track_in_buffer(ctx, base, buffer, pkt_end)
            return
        ctx.save_scan_tail(pkt_end, buffer, keep=adapter.magic_len - 1)

    # ------------------------------------------------------------------
    # Figure 7: tracking while waiting for software confirmation
    # ------------------------------------------------------------------
    def _track(self, ctx: HwContext, pkt: Packet) -> None:
        base, buffer = ctx.scan_buffer_for(pkt.seq, pkt.payload)
        end = sq.add(pkt.seq, len(pkt.payload))
        if sq.le(end, ctx.track_next):
            # Entirely before the next expected header: a retransmission
            # of already-tracked bytes; nothing to verify.  The saved
            # cross-packet tail (if any) must survive this packet.
            return
        if sq.gt(base, ctx.track_next):
            # We missed the bytes where the next header should have been:
            # the speculation chain is broken (d1).
            ctx.enter_searching()
            self._search_buffer(ctx, base, buffer, end)
            return
        self._track_in_buffer(ctx, base, buffer, end)

    def _track_in_buffer(self, ctx: HwContext, base: int, buffer: bytes, pkt_end: int) -> None:
        adapter = ctx.adapter
        while True:
            offset = sq.sub(ctx.track_next, base)
            if offset >= len(buffer):
                tail_from = max(0, len(buffer) - (adapter.header_len - 1))
                ctx.save_scan_tail(pkt_end, buffer, keep=len(buffer) - tail_from)
                return
            if offset + adapter.header_len > len(buffer):
                ctx.save_scan_tail(pkt_end, buffer, keep=len(buffer) - offset)
                return
            header = buffer[offset : offset + adapter.header_len]
            desc = None
            if adapter.check_magic(header[: adapter.magic_len], ctx.static_state):
                desc = adapter.parse_header(header, ctx.static_state)
            if desc is None:
                # Unexpected pattern at a tracked boundary (d1).
                ctx.enter_searching()
                self._scan_from(ctx, base, buffer, pkt_end, start_at=offset + 1)
                return
            ctx.track_next = sq.add(ctx.track_next, desc.total_len)
            ctx.tracked_msgs += 1

    def _search_buffer(self, ctx: HwContext, base: int, buffer: bytes, pkt_end: int) -> None:
        self._scan_from(ctx, base, buffer, pkt_end, start_at=0)

    # ------------------------------------------------------------------
    # Figure 7: software confirmation (c -> d1/d2)
    # ------------------------------------------------------------------
    def resync_response(self, ctx: HwContext, tcpsn: int, result: bool, msg_index: int) -> str:
        """Apply a software confirmation; returns the outcome —
        ``"stale"`` / ``"denied"`` / ``"confirmed"`` — so the driver's
        degradation logic can count failures without peeking at state."""
        if ctx.rx_state != RxState.TRACKING or ctx.speculation_seq != tcpsn:
            return "stale"  # the machine has moved on
        if not result:
            ctx.enter_searching()
            return "denied"
        # d2: resume offloading from the next tracked message boundary.
        ctx.expected_seq = ctx.track_next
        ctx.msg_index = msg_index + ctx.tracked_msgs
        ctx.rx_state = RxState.OFFLOADING
        ctx.speculation_seq = None
        ctx.track_next = None
        ctx.tracked_msgs = 0
        ctx.reset_to_header()
        ctx.resyncs_completed += 1
        return "confirmed"
