"""PCIe/DMA byte accounting.

Figure 16b reports the interconnect bandwidth the NIC spends re-reading
message bytes to reconstruct transmit contexts, as a percentage of the
total PCIe gen3 x16 budget.  We count bytes per category; utilization is
computed against elapsed simulated time.
"""

from __future__ import annotations

from collections import defaultdict

from repro.util.units import GBPS

PCIE_GEN3_X16_BPS = 126 * GBPS  # ~15.75 GB/s usable


class PcieModel:
    """Byte counters per traffic category on the NIC's PCIe link."""

    CATEGORIES = ("tx-packet", "rx-packet", "context", "recovery", "descriptor")

    def __init__(self, capacity_bps: float = PCIE_GEN3_X16_BPS):
        self.capacity_bps = capacity_bps
        self.bytes_by_category: dict[str, int] = defaultdict(int)
        # Injected-fault outcomes (repro.faults NicFaultProfile): stalled
        # and failed reads on the TX-recovery DMA path.
        self.stalls = 0
        self.read_failures = 0

    def count(self, category: str, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("negative PCIe byte count")
        self.bytes_by_category[category] += nbytes

    def total_bytes(self) -> int:
        return sum(self.bytes_by_category.values())

    def utilization(self, category: str, interval_s: float) -> float:
        """Fraction of PCIe capacity consumed by ``category``."""
        if interval_s <= 0:
            return 0.0
        bps = self.bytes_by_category[category] * 8 / interval_s
        return bps / self.capacity_bps

    def reset_stats(self) -> None:
        self.bytes_by_category.clear()
        self.stalls = 0
        self.read_failures = 0
