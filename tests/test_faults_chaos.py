"""Chaos harness smoke: determinism for fixed seeds, the heavy
scenario's guaranteed auto-disable, and a clean (OK) verdict."""

import json

from repro.faults.chaos import HEAVY_PLAN, main, run_chaos, run_tls


class TestChaosDeterminism:
    def test_identical_seeds_identical_summaries(self):
        a = run_chaos(seeds=2, workloads=("tls", "nvme"), duration=6e-3, heavy=False)
        b = run_chaos(seeds=2, workloads=("tls", "nvme"), duration=6e-3, heavy=False)
        assert a == b

    def test_different_seeds_differ(self):
        a = run_chaos(seeds=1, workloads=("tls",), duration=6e-3, heavy=False, base_seed=1)
        b = run_chaos(seeds=1, workloads=("tls",), duration=6e-3, heavy=False, base_seed=2)
        assert a["runs"][0]["link_to_server"] != b["runs"][0]["link_to_server"]


class TestChaosVerdicts:
    def test_soak_is_clean_and_verifies_content(self):
        report = run_chaos(seeds=2, workloads=("tls", "nvme"), duration=8e-3, heavy=True)
        assert report["ok"]
        totals = report["totals"]
        assert totals["runs"] == 8  # 2 seeds x 2 workloads + 2 heavy + 2 storm
        assert totals["verified"] > 0
        assert totals["mismatches"] == 0
        assert totals["sanitizer_violations"] == 0
        # The reset-storm scenario really reset the NIC, and recovery held.
        assert totals["nic_resets"] > 0

    def test_storm_scenario_survives_resets(self):
        from repro.faults.chaos import chaos_point

        result = chaos_point("tls", seed=777, duration=8e-3, storm=True)
        assert result["storm"] is True
        assert result["lifecycle"]["resets"] >= 1
        assert result["lifecycle"]["reinstalls"] > 0
        assert result["mismatches"] == 0
        assert result["sanitizer_violations"] == 0
        assert result["verified"] > 0

    def test_heavy_scenario_fires_auto_disable(self):
        from repro.analysis import sanitizer
        from repro.faults.chaos import HEAVY_SEED

        with sanitizer.enabled():
            result = run_tls(HEAVY_SEED, HEAVY_PLAN, duration=10e-3)
        assert result["auto_disabled"] > 0
        assert result["offload_degraded"] > 0
        assert result["mismatches"] == 0


class TestChaosConnections:
    """The --connections knob: the scale-soak lane's elevated flow count."""

    def test_elevated_connections_verify_cleanly(self):
        from repro.faults.chaos import chaos_point

        result = chaos_point("tls", seed=2, duration=8e-3, connections=8)
        assert result["connections"] == 8
        assert result["verified"] > 0
        assert result["mismatches"] == 0
        assert result["sanitizer_violations"] == 0

    def test_default_summary_has_no_connections_key(self):
        from repro.faults.chaos import chaos_point

        result = chaos_point("tls", seed=2, duration=6e-3)
        assert "connections" not in result

    def test_connections_flow_through_run_chaos(self):
        report = run_chaos(
            seeds=1, workloads=("tls",), duration=6e-3, heavy=False, connections=4
        )
        assert report["ok"]
        assert all(r["connections"] == 4 for r in report["runs"])


class TestChaosCli:
    def test_main_writes_json_and_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main(
            ["--seeds", "1", "--workloads", "tls", "--duration", "6e-3", "--json", str(out)]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "-> OK" in text
        report = json.loads(out.read_text())
        assert report["ok"] is True
        assert report["totals"]["runs"] == 3  # one seeded + one heavy + one storm

    def test_max_seconds_deadline_fails_loudly(self, tmp_path, capsys):
        crash = tmp_path / "crash.json"
        code = main(
            [
                "--seeds", "2", "--workloads", "tls", "--duration", "6e-3",
                "--max-seconds", "0", "--crash-report", str(crash),
            ]
        )
        assert code == 1
        text = capsys.readouterr().out
        assert "deadline" in text
        assert "-> FAIL" in text
        # The crash-report artifact records the wedge even when no run
        # failed on correctness: CI uploads it on any red soak.
        report = json.loads(crash.read_text())
        assert report["deadline_exceeded"] is True
        assert report["failing_runs"] == []

    def test_no_storm_flag_drops_storm_points(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main(
            ["--seeds", "1", "--workloads", "tls", "--duration", "6e-3",
             "--no-heavy", "--no-storm", "--json", str(out)]
        )
        assert code == 0
        capsys.readouterr()
        report = json.loads(out.read_text())
        assert report["totals"]["runs"] == 1

    def test_main_rejects_unknown_workload(self, capsys):
        import pytest

        with pytest.raises(SystemExit):
            main(["--workloads", "bogus"])
        assert "unknown workloads" in capsys.readouterr().err
