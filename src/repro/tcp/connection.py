"""The TCP connection state machine.

Implements enough of RFC 793/5681/6298 to generate realistic traffic
under loss and reordering: three-way handshake, cumulative ACKs with
delayed-ACK coalescing, duplicate-ACK generation on out-of-order
arrivals, fast retransmit/recovery (NewReno), retransmission timeouts
with exponential backoff, and flow control against the peer's window.

The connection knows nothing about offloads except that it carries an
optional ``tx_ctx_id`` tag on outgoing packets (set by the L5P through
the NIC driver, §4.2) and preserves per-packet ``SkbMeta`` on the
receive path.
"""

from __future__ import annotations

import zlib
from typing import Callable, Optional

from repro.net.packet import FlowKey, MSS, Packet
from repro.sim.event import Event
from repro.tcp import seq as sq
from repro.tcp.buffer import ReassemblyQueue, SendBuffer, Skb
from repro.tcp.cc import RenoCc, RttEstimator, make_cc

# Connection states (subset of RFC 793).
CLOSED = "closed"
SYN_SENT = "syn-sent"
SYN_RECEIVED = "syn-received"
ESTABLISHED = "established"
FIN_WAIT = "fin-wait"
CLOSE_WAIT = "close-wait"

_DELAYED_ACK_S = 200e-6
_MAX_SYN_RETRIES = 6

#: Knuth's multiplicative-hash constant (2^32 / phi), used to spread
#: CRC-adjacent flows across the sequence space.
_ISS_HASH_MULTIPLIER = 2654435761


def _iss_for_flow(flow: FlowKey) -> int:
    """Deterministic initial sequence number derived from the 4-tuple."""
    return sq.wrap(zlib.crc32(repr(flow).encode()) * _ISS_HASH_MULTIPLIER)


class TcpConnection:
    """One direction-pair of a TCP conversation on a host."""

    def __init__(self, host, flow: FlowKey, passive: bool = False, iss: Optional[int] = None):
        self.host = host
        self.sim = host.sim
        self.flow = flow
        self.passive = passive
        self.state = CLOSED

        # --- send state ---
        self.iss = iss if iss is not None else _iss_for_flow(flow)
        self.snd_una = self.iss
        self.snd_nxt = self.iss
        self.send_buffer = SendBuffer(self.iss, limit=host.tcp_send_buffer)
        cc_name = getattr(host, "tcp_congestion_control", "reno")
        self.cc = make_cc(cc_name, mss=MSS, clock=lambda: self.sim.now)
        self.rtt = RttEstimator()
        self.peer_wnd = 1 << 30
        self.dup_acks = 0
        self._sacked: list[tuple[int, int]] = []  # SACK scoreboard, merged
        self._high_rxt = self.iss  # highest seq retransmitted via SACK
        self._rto_timer: Optional[Event] = None
        self._rtt_probe: Optional[tuple[int, float]] = None  # (end_seq, sent_at)
        self._probe_valid = True
        self._fin_queued = False
        self._fin_sent = False

        # --- receive state ---
        self.irs = 0
        self.reassembly: Optional[ReassemblyQueue] = None
        self._ack_pending = 0
        self._ack_timer: Optional[Event] = None
        self._syn_retries = 0
        self._fin_received = False

        # --- offload hooks (set by the NIC driver on behalf of the L5P) ---
        self.tx_ctx_id: Optional[int] = None

        # --- application callbacks ---
        self.on_established: Optional[Callable[[], None]] = None
        self.on_data: Optional[Callable[[Skb], None]] = None
        self.on_writable: Optional[Callable[[], None]] = None
        self.on_close: Optional[Callable[[], None]] = None

        # --- stats ---
        self.bytes_sent = 0
        self.bytes_acked = 0
        self.bytes_received = 0
        self.retransmitted_packets = 0
        self.data_packets_sent = 0

    # ------------------------------------------------------------------
    # opening
    # ------------------------------------------------------------------
    def open(self) -> None:
        """Active open: send SYN."""
        if self.state != CLOSED:
            raise RuntimeError(f"open() in state {self.state}")
        self.state = SYN_SENT
        self._send_syn()

    def _send_syn(self, synack: bool = False) -> None:
        pkt = Packet(self.flow, seq=self.iss, syn=True, ack_flag=synack)
        if synack:
            pkt.ack = self.rcv_nxt
        self.snd_nxt = sq.add(self.iss, 1)
        self.snd_una = self.iss
        self._transmit(pkt)
        self._arm_rto()

    def _accept_syn(self, pkt: Packet) -> None:
        """Passive side: record peer's ISS and answer SYN-ACK."""
        self.irs = pkt.seq
        self.reassembly = ReassemblyQueue(sq.add(pkt.seq, 1), window=self.host.tcp_recv_window)
        self.state = SYN_RECEIVED
        self._send_syn(synack=True)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    @property
    def rcv_nxt(self) -> int:
        return self.reassembly.rcv_nxt if self.reassembly else 0

    @property
    def flight(self) -> int:
        """Bytes in flight (sent but not cumulatively ACKed)."""
        return sq.sub(self.snd_nxt, self.snd_una)

    @property
    def send_space(self) -> int:
        return self.send_buffer.space

    def send(self, data: bytes) -> int:
        """Queue bytes for transmission; returns how many were accepted."""
        if self.state not in (ESTABLISHED, CLOSE_WAIT):
            raise RuntimeError(f"send() in state {self.state}")
        if self._fin_queued:
            raise RuntimeError("send() after close()")
        accepted = self.send_buffer.append(data)
        if accepted:
            self.pump()
        return accepted

    def pump(self) -> None:
        """Emit as many segments as congestion and flow control allow."""
        if self.state not in (ESTABLISHED, CLOSE_WAIT, FIN_WAIT):
            return
        window = min(self.cc.cwnd, self.peer_wnd)
        while True:
            unsent = sq.sub(self.send_buffer.end_seq, self.snd_nxt)
            budget = window - self.flight
            size = min(MSS, unsent, budget)
            if size <= 0:
                break
            payload = self.send_buffer.peek(self.snd_nxt, size)
            self._emit_data(self.snd_nxt, payload)
            self.snd_nxt = sq.add(self.snd_nxt, size)
        if self._fin_queued and not self._fin_sent and len(self.send_buffer) == 0 and self.flight == 0:
            self._emit_fin()
        if self.flight:
            self._arm_rto(only_if_unarmed=True)

    def _emit_data(self, seg_seq: int, payload: bytes, retransmit: bool = False) -> None:
        pkt = Packet(
            self.flow,
            seq=seg_seq,
            ack=self.rcv_nxt,
            payload=payload,
            wnd=self._advertised_window(),
        )
        pkt.tx_ctx_id = self.tx_ctx_id
        self.bytes_sent += len(payload)
        self.data_packets_sent += 1
        if retransmit:
            self.retransmitted_packets += 1
            self._probe_valid = False
            obs = self.sim.obs
            if obs is not None:
                obs.count("tcp.retransmits")
                obs.count("tcp.retransmit_bytes", len(payload))
                obs.event(
                    "retransmit",
                    lane=f"tcp/{self.host.name}",
                    cat="tcp",
                    seq=seg_seq,
                    bytes=len(payload),
                )
        elif self._rtt_probe is None:
            self._rtt_probe = (sq.add(seg_seq, len(payload)), self.sim.now)
            self._probe_valid = True
        self._ack_sent()
        self._transmit(pkt)

    def _emit_fin(self) -> None:
        pkt = Packet(self.flow, seq=self.snd_nxt, ack=self.rcv_nxt, fin=True, wnd=self._advertised_window())
        self._fin_sent = True
        self.snd_nxt = sq.add(self.snd_nxt, 1)
        self.state = FIN_WAIT if self.state == ESTABLISHED else self.state
        self._ack_sent()
        self._transmit(pkt)
        self._arm_rto(only_if_unarmed=True)

    def _transmit(self, pkt: Packet) -> None:
        self.host.transmit_segment(self, pkt)

    def close(self) -> None:
        """Half-close after all queued data is sent and acknowledged."""
        if self.state in (CLOSED,):
            return
        self._fin_queued = True
        self.pump()

    # ------------------------------------------------------------------
    # retransmission
    # ------------------------------------------------------------------
    def _arm_rto(self, only_if_unarmed: bool = False) -> None:
        if self._rto_timer is not None:
            if only_if_unarmed:
                return
            self._rto_timer.cancel()
        self._rto_timer = self.sim.schedule(self.rtt.rto, self._on_rto)

    def _cancel_rto(self) -> None:
        if self._rto_timer is not None:
            self._rto_timer.cancel()
            self._rto_timer = None

    def _on_rto(self) -> None:
        self._rto_timer = None
        if self.state == SYN_SENT or self.state == SYN_RECEIVED:
            self._syn_retries += 1
            if self._syn_retries > _MAX_SYN_RETRIES:
                self._abort()
                return
            self.rtt.backoff()
            self._send_syn(synack=self.state == SYN_RECEIVED)
            return
        if self.flight == 0:
            return
        obs = self.sim.obs
        if obs is not None:
            obs.count("tcp.timeouts")
            obs.event("rto", lane=f"tcp/{self.host.name}", cat="tcp", una=self.snd_una)
        self.cc.on_timeout(self.flight)
        self.rtt.backoff()
        self.dup_acks = 0
        self._sacked = []
        self._high_rxt = self.snd_una
        self._retransmit_head()
        self._arm_rto()

    def _retransmit_head(self) -> None:
        """Retransmit one MSS (or the FIN) from snd_una."""
        resend = min(MSS, sq.sub(self.send_buffer.end_seq, self.snd_una))
        if resend > 0:
            payload = self.send_buffer.peek(self.snd_una, resend)
            self._emit_data(self.snd_una, payload, retransmit=True)
        elif self._fin_sent and sq.lt(self.snd_una, self.snd_nxt):
            pkt = Packet(self.flow, seq=self.snd_una, ack=self.rcv_nxt, fin=True, wnd=self._advertised_window())
            self.retransmitted_packets += 1
            self._transmit(pkt)

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def on_segment(self, pkt: Packet) -> None:
        """Process one arriving packet (already charged to the CPU)."""
        if pkt.rst:
            self._abort()
            return
        if self.state == SYN_SENT:
            if pkt.syn:
                self.irs = pkt.seq
                self.reassembly = ReassemblyQueue(sq.add(pkt.seq, 1), window=self.host.tcp_recv_window)
                if pkt.ack_flag and pkt.ack == self.snd_nxt:
                    self.snd_una = pkt.ack
                    self._established()
                    self._send_ack()
                else:  # simultaneous open (not exercised, but stay sane)
                    self.state = SYN_RECEIVED
                    self._send_ack()
            return
        if self.state == SYN_RECEIVED:
            if pkt.syn and not pkt.ack_flag:
                # Retransmitted SYN from the peer: re-answer.
                self._send_syn(synack=True)
                return
            if pkt.ack_flag and pkt.ack == self.snd_nxt:
                self.snd_una = pkt.ack
                self._established()
                # fall through: the ACK may carry data
            else:
                return
        if self.state == CLOSED:
            return
        if pkt.syn:
            # Stale SYN for an established connection: re-ACK.
            self._send_ack()
            return

        self._process_ack(pkt)
        if pkt.payload or pkt.fin:
            self._process_data(pkt)

    def _established(self) -> None:
        self.state = ESTABLISHED
        self._cancel_rto()
        # Re-base the send buffer past the SYN's phantom sequence byte.
        self.send_buffer = SendBuffer(self.snd_nxt, limit=self.host.tcp_send_buffer)
        self.peer_wnd = max(self.peer_wnd, 1)
        if self.on_established:
            self.on_established()

    # --- SACK scoreboard (simplified RFC 6675) ---
    def _update_scoreboard(self, blocks) -> None:
        ranges = list(self._sacked)
        for start, end in blocks:
            if sq.lt(start, self.snd_una):
                start = self.snd_una
            if sq.gt(end, start):
                ranges.append((start, end))
        ranges.sort(key=lambda r: sq.sub(r[0], self.snd_una))
        merged: list[tuple[int, int]] = []
        for start, end in ranges:
            if sq.le(end, self.snd_una):
                continue
            if merged and sq.le(start, merged[-1][1]):
                if sq.gt(end, merged[-1][1]):
                    merged[-1] = (merged[-1][0], end)
            else:
                merged.append((start, end))
        self._sacked = merged

    def _retransmit_holes(self) -> None:
        """Retransmit the next un-SACKed hole (one segment per ACK)."""
        if not self._sacked:
            self._retransmit_head()
            return
        start = self._high_rxt if sq.gt(self._high_rxt, self.snd_una) else self.snd_una
        for s_start, s_end in self._sacked:
            if sq.ge(start, s_start) and sq.lt(start, s_end):
                start = s_end  # inside a SACKed run: jump past it
        highest = self._sacked[-1][1]
        if sq.ge(start, highest):
            return  # no known hole left below the highest SACKed byte
        hole_end = highest
        for s_start, _s_end in self._sacked:
            if sq.gt(s_start, start):
                hole_end = s_start
                break
        size = min(MSS, sq.sub(hole_end, start), sq.sub(self.send_buffer.end_seq, start))
        if size <= 0:
            return
        payload = self.send_buffer.peek(start, size)
        self._high_rxt = sq.add(start, size)
        self._emit_data(start, payload, retransmit=True)

    # --- ACK clock ---
    def _process_ack(self, pkt: Packet) -> None:
        if not pkt.ack_flag:
            return
        self.peer_wnd = pkt.wnd
        if pkt.sack:
            self._update_scoreboard(pkt.sack)
        ack = pkt.ack
        if sq.gt(ack, self.snd_nxt):
            return  # acks data we never sent; ignore
        acked = sq.sub(ack, self.snd_una)
        if acked > 0:
            self.dup_acks = 0
            # A FIN occupies one phantom sequence byte past the buffer.
            fin_phantom = 1 if (self._fin_sent and ack == self.snd_nxt) else 0
            self.send_buffer.ack_to(sq.add(ack, -fin_phantom))
            self.snd_una = ack
            self.bytes_acked += acked
            if sq.lt(self._high_rxt, ack):
                self._high_rxt = ack
            self._sacked = [(s, e) for s, e in self._sacked if sq.gt(e, ack)]
            self._sample_rtt(ack)
            if self.cc.in_recovery:
                if sq.ge(ack, self.cc.recovery_point):
                    self.cc.exit_recovery()
                else:
                    self.cc.on_partial_ack(acked)
                    self._retransmit_holes()  # next hole (SACK-aware)
            else:
                self.cc.on_ack(acked)
            if self.flight == 0:
                self._cancel_rto()
            else:
                self._arm_rto()
            self.pump()
            if self.send_buffer.space > 0 and self.on_writable:
                self.on_writable()
            if self._fin_sent and ack == self.snd_nxt and self.state == FIN_WAIT:
                self._maybe_finished()
        elif acked == 0 and not pkt.payload and not pkt.syn and not pkt.fin and self.flight > 0:
            self.dup_acks += 1
            if self.cc.in_recovery:
                self.cc.on_dup_ack_in_recovery()
                self._retransmit_holes()
                self.pump()
            elif self.dup_acks == RenoCc.DUP_ACK_THRESHOLD:
                obs = self.sim.obs
                if obs is not None:
                    obs.count("tcp.fast_retransmits")
                self.cc.enter_recovery(self.flight, self.snd_nxt)
                self._retransmit_holes()
                self.pump()

    def _sample_rtt(self, ack: int) -> None:
        if self._rtt_probe is None:
            return
        end_seq, sent_at = self._rtt_probe
        if sq.ge(ack, end_seq):
            if self._probe_valid:
                self.rtt.sample(self.sim.now - sent_at)
            self._rtt_probe = None

    # --- data path ---
    def _process_data(self, pkt: Packet) -> None:
        if self.reassembly is None:
            return
        in_order = pkt.seq == self.reassembly.rcv_nxt
        ready = self.reassembly.insert(pkt.seq, pkt.payload, pkt.meta)
        for skb in ready:
            self.bytes_received += len(skb)
            if self.on_data:
                self.on_data(skb)
        if pkt.fin and not self._fin_received:
            fin_seq = sq.add(pkt.seq, len(pkt.payload))
            if fin_seq == self.reassembly.rcv_nxt and not self.reassembly.has_gap_data:
                self._fin_received = True
                self.reassembly.rcv_nxt = sq.add(self.reassembly.rcv_nxt, 1)
                if self.state == ESTABLISHED:
                    self.state = CLOSE_WAIT
                elif self._fin_sent and sq.ge(self.snd_una, self.snd_nxt):
                    self.state = CLOSED
                self._send_ack()
                if self.on_close:
                    self.on_close()
                return
        if not in_order or self.reassembly.has_gap_data:
            # Out-of-order or hole-filling arrival: immediate (dup) ACK.
            if not in_order:
                obs = self.sim.obs
                if obs is not None:
                    obs.count("tcp.ooo_arrivals")
            self._send_ack()
        else:
            self._ack_pending += 1
            if self._ack_pending >= 2:
                self._send_ack()
            elif self._ack_timer is None:
                self._ack_timer = self.sim.schedule(_DELAYED_ACK_S, self._on_ack_timer)

    def _maybe_finished(self) -> None:
        if self._fin_received:
            self.state = CLOSED
        self._cancel_rto()

    def abort(self) -> None:
        """Kill the connection immediately (no FIN exchange).  Used by
        the TOE-personality NIC reset: connection state that lived on
        the device is simply gone, so the connection dies with it."""
        if self.state == CLOSED:
            return
        self._abort()

    def _abort(self) -> None:
        self.state = CLOSED
        self._cancel_rto()
        if self._ack_timer:
            self._ack_timer.cancel()
            self._ack_timer = None
        if self.on_close:
            self.on_close()

    # --- ACK transmission ---
    def _advertised_window(self) -> int:
        if self.reassembly is None:
            return self.host.tcp_recv_window
        return max(0, self.reassembly.window - self.reassembly.buffered_bytes)

    def _send_ack(self) -> None:
        pkt = Packet(self.flow, seq=self.snd_nxt, ack=self.rcv_nxt, wnd=self._advertised_window())
        if self.reassembly is not None and self.reassembly.has_gap_data:
            pkt.sack = self.reassembly.sack_blocks()
        self._ack_sent()
        self._transmit(pkt)

    def _on_ack_timer(self) -> None:
        self._ack_timer = None
        if self._ack_pending:
            self._send_ack()

    def _ack_sent(self) -> None:
        self._ack_pending = 0
        if self._ack_timer is not None:
            self._ack_timer.cancel()
            self._ack_timer = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TcpConnection {self.flow.src}:{self.flow.sport}->{self.flow.dst}:{self.flow.dport} "
            f"{self.state} una={self.snd_una} nxt={self.snd_nxt} rcv={self.rcv_nxt}>"
        )
