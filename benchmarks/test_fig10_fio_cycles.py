"""Figure 10: NVMe-TCP/fio cycles per random read vs I/O depth, for
4 KiB and 256 KiB requests; copy+crc share of the total, with the LLC
cliff once the in-flight working set exceeds 32 MiB."""

import pytest

from repro.experiments.fio_cycles import run_fio_point
from repro.harness.report import Table

DEPTHS = (1, 4, 16, 64, 256)


def sweep(block_size):
    return [run_fio_point(block_size, depth, measure=8e-3) for depth in DEPTHS]


@pytest.mark.parametrize("block_size,label", [(4 * 1024, "4KiB"), (256 * 1024, "256KiB")])
def test_fig10(benchmark, emit, block_size, label):
    points = benchmark.pedantic(sweep, args=(block_size,), rounds=1, iterations=1)
    table = Table(
        ["depth", "crc", "copy", "other", "idle", "total", "copy+crc %", "IOPS"],
        title=f"Figure 10 ({label}): cycles per random read on the server",
    )
    for p in points:
        table.row(
            p.iodepth,
            p.cycles_crc,
            p.cycles_copy,
            p.cycles_other,
            p.cycles_idle,
            p.cycles_total,
            f"{100 * p.offloadable_fraction:.1f}%",
            p.requests and p.iops,
        )
    emit(f"fig10_fio_{label}", table.render())

    fractions = [p.offloadable_fraction for p in points]
    if block_size == 4 * 1024:
        # Small requests: modest potential (paper: 2-8%).
        assert all(f < 0.20 for f in fractions)
    else:
        # Big requests: 25%+ at low depth; the LLC spill at depth >= 128
        # pushes the copy share up further (paper: 25% -> 55%).
        assert fractions[0] > 0.15
        assert max(fractions) > 0.30
        assert fractions[-1] > fractions[1]
    # Deeper queues amortize idle time.
    assert points[-1].cycles_idle < points[0].cycles_idle


def test_fig10_offload_removes_copy_crc(benchmark, emit):
    """Sanity companion: with the NVMe offloads on, the copy+crc cycles
    vanish from the same workload."""
    base = benchmark.pedantic(run_fio_point, args=(256 * 1024, 16), kwargs={"measure": 6e-3}, rounds=1, iterations=1)
    offl = run_fio_point(256 * 1024, 16, offload=True, measure=6e-3)
    table = Table(
        ["config", "crc", "copy", "other", "IOPS"],
        title="Figure 10 companion: NVMe-TCP offload removes copy+crc",
    )
    table.row("baseline", base.cycles_crc, base.cycles_copy, base.cycles_other, base.iops)
    table.row("offload", offl.cycles_crc, offl.cycles_copy, offl.cycles_other, offl.iops)
    emit("fig10_offload_companion", table.render())
    assert offl.cycles_crc + offl.cycles_copy < 0.1 * (base.cycles_crc + base.cycles_copy)
    assert offl.offloaded_pdus > 0
