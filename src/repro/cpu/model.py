"""Calibrated cycle cost constants.

The evaluation machine in the paper is a 2.0 GHz Xeon E5-2660 v4 (14
cores, 32 MiB LLC).  Per-byte costs come from public throughput numbers
for AES-NI GCM, SSE4.2 CRC32C and ``memcpy``; per-packet costs are
calibrated so the instrumented cycle breakdowns reproduce the paper's
Figure 2 (46–49% copy+crc for NVMe-TCP, 60–74% crypto for TLS) and
Figure 11.  DESIGN.md §5 records the calibration.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostModel:
    """Cycle costs charged by the simulated software stack and NIC."""

    freq_hz: float = 2.0e9
    llc_bytes: int = 32 * 1024 * 1024

    # --- per-byte data-manipulation costs (software, accelerated by CPU
    # instructions where available; these are what the NIC offloads) ---
    # In-kernel AES-NI GCM (scatter-gather crypto API) is slower than raw
    # OpenSSL AES-NI; 2.4 c/B reproduces both Fig 11's crypto shares
    # (70-74% tx, ~60% rx at 16 KiB) and §6.1's 3.3x/2.2x single-core gains.
    cpb_aes_gcm: float = 2.40
    cpb_crc32c: float = 0.40  # SSE4.2 CRC32C
    cpb_copy: float = 0.50  # memcpy, LLC-resident
    cpb_copy_dram: float = 1.50  # memcpy when the working set spills to DRAM
    cpb_sha1: float = 2.20  # SHA-1, no SHA extensions
    cpb_aes_cbc: float = 1.25  # AES-NI CBC (serial chaining)
    cpb_compress: float = 6.00  # LZ-class compression (per input byte)
    cpb_decompress: float = 1.80  # LZ-class decompression (per output byte)
    cpb_serialize: float = 1.20  # RPC TLV encode (per output byte)
    cpb_deserialize: float = 1.40  # RPC TLV decode (per input byte)

    # --- per-record / per-message costs ---
    cycles_crypto_setup: float = 2000.0  # kernel crypto API per-record overhead
    cycles_record_rx: float = 1500.0  # kTLS per-record receive bookkeeping
    cycles_record_tx: float = 900.0  # kTLS per-record transmit bookkeeping
    cycles_pdu: float = 600.0  # NVMe-TCP per-PDU bookkeeping

    # --- per-packet stack costs (the part that stays on the CPU) ---
    cycles_tx_pkt: float = 640.0  # qdisc + driver + doorbell, amortized
    cycles_rx_pkt: float = 1200.0  # NAPI + IP/TCP receive + SKB bookkeeping
    cycles_rx_batch: float = 2500.0  # per-NAPI-poll fixed cost (amortized over batch)
    cycles_ack_rx: float = 150.0  # processing a pure ACK at the sender

    # --- per-syscall / per-request costs ---
    cycles_syscall: float = 1400.0  # enter/exit + sockfd lookup
    cycles_block_io: float = 12000.0  # block layer + NVMe queueing per request
    cycles_http_req: float = 9000.0  # nginx parse/route/log per request
    cycles_kv_req: float = 5000.0  # Redis command dispatch per request
    cycles_sendfile_page: float = 250.0  # page cache lookup per 4 KiB page
    cycles_page_alloc: float = 450.0  # allocating a bounce page (non-zc kTLS)
    cycles_tls_handshake: float = 300_000.0  # userspace handshake (per side)

    # --- device constants used for sanity/limits ---
    pcie_gbps: float = 126.0  # PCIe gen3 x16 usable (~15.75 GB/s)

    @property
    def cycle_time(self) -> float:
        return 1.0 / self.freq_hz

    def seconds(self, cycles: float) -> float:
        """Convert a cycle count to seconds at this core frequency."""
        return cycles / self.freq_hz

    def copy_cpb(self, working_set_bytes: float) -> float:
        """Per-byte copy cost given the current working-set footprint.

        A smooth LLC model: the resident fraction of the working set is
        copied at LLC cost, the spilled fraction at DRAM cost.  This
        reproduces Figure 10's gradual 25%→55% climb as fio's I/O depth
        pushes the footprint past the 32 MiB LLC.
        """
        if working_set_bytes <= 0:
            return self.cpb_copy
        resident = min(1.0, self.llc_bytes / working_set_bytes)
        return resident * self.cpb_copy + (1.0 - resident) * self.cpb_copy_dram

    def touch_cpb(self, base_cpb: float, working_set_bytes: float) -> float:
        """Per-byte cost of a streaming read (CRC, crypto) under the same
        LLC model; the DRAM penalty is additive over the base cost."""
        if working_set_bytes <= 0:
            return base_cpb
        resident = min(1.0, self.llc_bytes / working_set_bytes)
        penalty = (1.0 - resident) * (self.cpb_copy_dram - self.cpb_copy)
        return base_cpb + penalty

    def scaled(self, **overrides: float) -> "CostModel":
        """A copy of the model with some constants replaced."""
        return replace(self, **overrides)


DEFAULT_COST_MODEL = CostModel()
