"""Experiment runners behind every table and figure of the evaluation.

Each module builds the §6 testbed, drives the matching workload, and
returns the rows/series the paper reports.  The ``benchmarks/`` tree
prints them; EXPERIMENTS.md records paper-vs-measured.
"""

from repro.experiments.iperf_tls import IperfRun, run_iperf
from repro.experiments.fio_cycles import FioPoint, run_fio_point
from repro.experiments.nginx_bench import NginxRun, run_nginx
from repro.experiments.latency import run_latency_table
from repro.experiments.rof_bench import RofRun, run_rof
from repro.experiments.scalability import ScalePoint, run_scale_point
from repro.experiments.scale_mix import MixPoint, run_mix_point

__all__ = [
    "IperfRun",
    "run_iperf",
    "FioPoint",
    "run_fio_point",
    "NginxRun",
    "run_nginx",
    "run_latency_table",
    "RofRun",
    "run_rof",
    "ScalePoint",
    "run_scale_point",
    "MixPoint",
    "run_mix_point",
]
