"""A host: CPU cores, LLC, TCP stack, a NIC, and the driver receive path.

The receive path models NAPI polling: packets that arrive while the
steered core is busy accumulate and are processed as one batch when the
core frees up.  This organic batching is what §6.5 credits for the
offload's scalability (only the first packet of a batch misses the NIC
context cache), so we model the mechanism rather than its effect.

Timing convention: CPU work is charged inline (extending the core's
``busy_until``), and externally visible outputs — packets leaving the
host — are released at the charge's completion time.  Application-level
latency measurements should use :meth:`Host.cpu_time`.
"""

from __future__ import annotations

import zlib
from collections import deque
from typing import Optional

from repro.cpu import Cpu, LlcModel
from repro.cpu.core import Core
from repro.cpu.model import CostModel, DEFAULT_COST_MODEL
from repro.net.device import PassthroughNic
from repro.net.link import Link
from repro.net.packet import FlowKey, Packet
from repro.sim import Simulator
from repro.tcp.stack import TcpStack

_MAX_RX_BATCH = 64  # NAPI poll budget


def flow_hash(flow: FlowKey) -> int:
    """Deterministic, direction-symmetric flow hash (RSS-style)."""
    ends = sorted([(flow.src, flow.sport), (flow.dst, flow.dport)])
    return zlib.crc32(repr(ends).encode())


class Host:
    """One machine in the testbed."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        model: CostModel = DEFAULT_COST_MODEL,
        cores: int = 1,
        nic: Optional[PassthroughNic] = None,
        tcp_send_buffer: int = 4 * 1024 * 1024,
        tcp_recv_window: int = 96 * 1024 * 1024,
        tcp_congestion_control: str = "reno",
    ):
        self.sim = sim
        self.name = name
        self.model = model
        self.cpu = Cpu(sim, model, cores=cores)
        self.llc = LlcModel(model)
        self.tcp = TcpStack(self)
        from repro.udp.stack import UdpStack  # local import: udp builds on net

        self.udp = UdpStack(self)
        self.tcp_send_buffer = tcp_send_buffer
        self.tcp_recv_window = tcp_recv_window
        self.tcp_congestion_control = tcp_congestion_control
        self.nic = nic or PassthroughNic()
        self.nic.bind(self)
        # Per-core NAPI state.
        self._rx_queues: dict[int, deque[Packet]] = {c.index: deque() for c in self.cpu.cores}
        self._polling: dict[int, bool] = {c.index: False for c in self.cpu.cores}
        self.rx_batch_sizes: list[int] = []
        # flow -> steered core, memoized: core_for_flow runs once per
        # packet on both paths, and the CRC-of-repr RSS hash dominates it.
        self._flow_cores: dict[FlowKey, Core] = {}

    # ------------------------------------------------------------------
    def attach_link(self, link: Link, side: str) -> None:
        self.nic.attach_link(link, side)

    def core_for_flow(self, flow: FlowKey) -> Core:
        core = self._flow_cores.get(flow)
        if core is None:
            core = self._flow_cores[flow] = self.cpu.core_for_flow(flow_hash(flow))
        return core

    def cpu_time(self, flow: FlowKey) -> float:
        """Time at which CPU work already charged for this flow completes."""
        core = self.core_for_flow(flow)
        return max(self.sim.now, core.busy_until)

    # ------------------------------------------------------------------
    # transmit path
    # ------------------------------------------------------------------
    def transmit_segment(self, conn, pkt: Packet) -> None:
        """Called by TCP to emit one segment.

        Charges the per-packet stack cost and releases the packet to the
        NIC when the charge (plus everything before it) completes.
        """
        core = self.core_for_flow(conn.flow)
        done = core.charge(self.model.cycles_tx_pkt, "stack")
        self.sim.at(done, self.nic.transmit, conn, pkt)

    # ------------------------------------------------------------------
    # receive path (driver + NAPI)
    # ------------------------------------------------------------------
    def deliver(self, pkt: Packet) -> None:
        """Called by the NIC for every received packet."""
        core = self.core_for_flow(pkt.flow)
        self._rx_queues[core.index].append(pkt)
        if not self._polling[core.index]:
            self._polling[core.index] = True
            core.when_free(self._poll, core)

    def _poll(self, core: Core) -> None:
        queue = self._rx_queues[core.index]
        self._polling[core.index] = False
        if not queue:
            return
        poll_start = self.sim.now
        batch = 0
        core.charge(self.model.cycles_rx_batch, "stack")
        while queue and batch < _MAX_RX_BATCH:
            pkt = queue.popleft()
            batch += 1
            if pkt.payload:
                core.charge(self.model.cycles_rx_pkt, "stack")
            else:
                core.charge(self.model.cycles_ack_rx, "stack")
            if pkt.ipproto == "udp":
                self.udp.handle_packet(pkt)
            else:
                self.tcp.handle_packet(pkt)
        self.rx_batch_sizes.append(batch)
        obs = self.sim.obs
        if obs is not None:
            obs.observe(f"host.{self.name}.rx_batch", batch)
            obs.span(
                "napi-poll",
                poll_start,
                max(0.0, core.busy_until - poll_start),
                lane=f"{self.name}/core{core.index}",
                batch=batch,
            )
        if queue:  # budget exhausted: re-arm immediately
            self._polling[core.index] = True
            core.when_free(self._poll, core)

    # ------------------------------------------------------------------
    @property
    def mean_rx_batch(self) -> float:
        if not self.rx_batch_sizes:
            return 0.0
        return sum(self.rx_batch_sizes) / len(self.rx_batch_sizes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Host {self.name} cores={len(self.cpu.cores)}>"
