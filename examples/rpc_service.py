#!/usr/bin/env python3
"""Scenario: an RPC service with response copy+CRC offload (paper §1/§3).

gRPC/Thrift-class protocols qualify for autonomous offloading via their
copy operation: the client registers each call's response buffer under
the rpc_id (like NVMe-TCP's CID), and the NIC places the response
payload and checks the frame CRC inline.  Run a blob store service and
compare client-side cycles with and without the offload.

Run:  python examples/rpc_service.py
"""

from repro.harness.report import Table
from repro.harness.testbed import Testbed, TestbedConfig
from repro.l5p.rpc import RpcClient, RpcConfig, RpcServer


def run(offload: bool, calls: int = 40, blob: int = 128 * 1024):
    tb = Testbed(TestbedConfig(seed=3, server_cores=2, generator_cores=2))
    service = RpcServer(tb.generator, port=7000)
    blobs = {i: bytes([i]) * blob for i in range(8)}
    service.register(1, lambda args: blobs[args["key"] % 8])

    cfg = RpcConfig(rx_offload_crc=offload, rx_offload_copy=offload, max_response=256 * 1024)
    client = RpcClient(tb.server, "generator", port=7000, config=cfg)
    latencies = []
    for i in range(calls):
        client.call(1, {"key": i}, lambda v, lat: latencies.append(lat))
    tb.run(until=1.0)
    assert len(latencies) == calls, "all calls must complete"
    cats = tb.server.cpu.cycles_by_category()
    return {
        "placed": client.stats["placed"],
        "software": client.stats["software"],
        "copy_mcycles": cats.get("copy", 0) / 1e6,
        "crc_mcycles": cats.get("crc", 0) / 1e6,
        "mean_latency_us": 1e6 * sum(latencies) / len(latencies),
    }


def main() -> None:
    base = run(offload=False)
    off = run(offload=True)
    table = Table(
        ["config", "NIC-placed", "software", "copy Mcyc", "crc Mcyc", "latency (us)"],
        title="RPC blob fetches, 128KiB responses (client side)",
    )
    for label, stats in (("software", base), ("offload", off)):
        table.row(
            label,
            stats["placed"],
            stats["software"],
            stats["copy_mcycles"],
            stats["crc_mcycles"],
            stats["mean_latency_us"],
        )
    table.show()
    print()
    print("The response payloads landed directly in the call's registered")
    print("buffers; the client's copy and CRC cycles disappeared while the")
    print("TCP stack below stayed untouched.")


if __name__ == "__main__":
    main()
