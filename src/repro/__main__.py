"""Command-line entry point: run individual experiments.

    python -m repro list
    python -m repro iperf --mode tls-offload --direction rx --loss 0.02
    python -m repro nginx --variant offload+zc --storage c2 --size 262144
    python -m repro fio --block-size 262144 --iodepth 64
    python -m repro rof --variant offload --size 65536
    python -m repro table1
"""

from __future__ import annotations

import argparse
import sys

from repro.harness.report import Table
from repro.util.units import parse_size


def _cmd_iperf(args) -> None:
    from repro.experiments.iperf_tls import run_iperf

    run = run_iperf(
        args.mode,
        direction=args.direction,
        streams=args.streams,
        loss=args.loss,
        reorder=args.reorder,
        seed=args.seed,
    )
    table = Table(["metric", "value"], title=f"iperf {args.mode} ({args.direction})")
    table.row("goodput (Gbps)", run.goodput_gbps)
    table.row("crypto share", f"{100 * run.crypto_fraction:.1f}%")
    table.row("records full/partial/none", "/".join(str(run.records.get(k, 0)) for k in ("full", "partial", "none")))
    table.row("tx recoveries", run.tx_recoveries)
    table.row("resyncs completed", run.resyncs)
    table.row("PCIe recovery share", f"{100 * run.pcie_recovery_fraction:.2f}%")
    table.show()


def _cmd_nginx(args) -> None:
    from repro.experiments.nginx_bench import run_nginx

    run = run_nginx(
        args.variant,
        storage=args.storage,
        file_size=args.size,
        server_cores=args.cores,
        connections=args.connections,
        nvme_offload=args.nvme_offload,
        storage_tls=args.storage_tls,
        seed=args.seed,
    )
    table = Table(["metric", "value"], title=f"nginx {args.variant} ({args.storage})")
    table.row("goodput (Gbps)", run.goodput_gbps)
    table.row("busy cores", run.busy_cores)
    table.row("requests", run.requests)
    table.show()


def _cmd_fio(args) -> None:
    from repro.experiments.fio_cycles import run_fio_point

    p = run_fio_point(args.block_size, args.iodepth, offload=args.offload, seed=args.seed)
    table = Table(["metric", "value"], title=f"fio randread {args.block_size}B depth={args.iodepth}")
    table.row("IOPS", p.iops)
    table.row("cycles/request (crc)", p.cycles_crc)
    table.row("cycles/request (copy)", p.cycles_copy)
    table.row("cycles/request (other)", p.cycles_other)
    table.row("cycles/request (idle)", p.cycles_idle)
    table.row("copy+crc share", f"{100 * p.offloadable_fraction:.1f}%")
    table.show()


def _cmd_rof(args) -> None:
    from repro.experiments.rof_bench import run_rof

    run = run_rof(args.variant, value_size=args.size, server_cores=args.cores, seed=args.seed)
    table = Table(["metric", "value"], title=f"Redis-on-Flash {args.variant}")
    table.row("goodput (Gbps)", run.goodput_gbps)
    table.row("busy cores", run.busy_cores)
    table.row("gets", run.gets)
    table.show()


def _cmd_table1(args) -> None:
    del args
    from repro.cpu.accel import table1

    table = Table(["cipher", "QAT 1", "QAT 128", "AES-NI 1"], title="Table 1 (MB/s)")
    for cipher, cells in table1().items():
        table.row(cipher, cells["qat_1"], cells["qat_128"], cells["aesni_1"])
    table.show()


def _size(text: str) -> int:
    return parse_size(text)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description="Autonomous NIC offloads reproduction")
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list available experiments")

    p = sub.add_parser("iperf", help="TLS/TCP bulk transfer (Figs 11, 16-18)")
    p.add_argument("--mode", default="tls-sw", choices=["tcp", "tls-sw", "tls-offload"])
    p.add_argument("--direction", default="tx", choices=["tx", "rx"])
    p.add_argument("--streams", type=int, default=8)
    p.add_argument("--loss", type=float, default=0.0)
    p.add_argument("--reorder", type=float, default=0.0)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("nginx", help="HTTPS file server (Figs 12-14)")
    p.add_argument("--variant", default="https", choices=["http", "https", "offload", "offload+zc"])
    p.add_argument("--storage", default="c2", choices=["c1", "c2"])
    p.add_argument("--size", type=_size, default=256 * 1024)
    p.add_argument("--cores", type=int, default=1)
    p.add_argument("--connections", type=int, default=24)
    p.add_argument("--nvme-offload", action="store_true")
    p.add_argument("--storage-tls", default=None, choices=[None, "sw", "offload"])
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("fio", help="NVMe-TCP random reads (Fig 10)")
    p.add_argument("--block-size", type=_size, default=256 * 1024)
    p.add_argument("--iodepth", type=int, default=16)
    p.add_argument("--offload", action="store_true")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("rof", help="Redis-on-Flash over NVMe-TLS (Fig 15)")
    p.add_argument("--variant", default="baseline", choices=["baseline", "offload"])
    p.add_argument("--size", type=_size, default=64 * 1024)
    p.add_argument("--cores", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)

    sub.add_parser("table1", help="AES-NI vs QAT model (Table 1)")

    args = parser.parse_args(argv)
    if args.command in (None, "list"):
        parser.parse_args(["--help"] if args.command is None else [])
        print("experiments: iperf, nginx, fio, rof, table1")
        return 0
    handlers = {
        "iperf": _cmd_iperf,
        "nginx": _cmd_nginx,
        "fio": _cmd_fio,
        "rof": _cmd_rof,
        "table1": _cmd_table1,
    }
    handlers[args.command](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
