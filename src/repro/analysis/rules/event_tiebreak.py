"""SIM008 — same-timestamp events need a deterministic tiebreaker.

``repro.sim`` orders events by ``(time, seq)``: the monotonically
increasing scheduling ordinal breaks ties between events scheduled for
the same instant, so run order is a pure function of scheduling order.
A priority queue ordered by time *alone* falls back on the payload's
``__lt__`` (or raises) when timestamps collide — and with float
timestamps from rate arithmetic, they collide constantly.  Two such
sites are flagged:

- ``heappush(q, (time, payload))`` — a bare 2-tuple with no sequence
  tiebreaker between the timestamp and the payload;
- an ``__lt__`` that compares a single time-like attribute
  (``self.time < other.time``) instead of a ``(time, seq)`` tuple.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from repro.analysis.lint import Finding, LintRule, SourceModule

#: Names that plausibly carry a scheduling ordinal or tie-break key.
_TIEBREAK_RE = re.compile(r"(seq|ordinal|order|count|counter|tie|index|idx|prio)", re.IGNORECASE)
#: Attribute names that read as a timestamp.
_TIME_RE = re.compile(r"^(time|t|now|when|deadline|timestamp|ts|at)$", re.IGNORECASE)


def _terminal_name(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _is_tiebreaker(node: ast.expr) -> bool:
    """Calls (``next(counter)``), int constants, and seq-ish names pass."""
    if isinstance(node, ast.Call):
        return True
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return True
    if isinstance(node, ast.UnaryOp):
        return _is_tiebreaker(node.operand)
    return bool(_TIEBREAK_RE.search(_terminal_name(node)))


class EventTiebreakRule(LintRule):
    code = "SIM008"
    name = "event-tiebreak"
    description = "same-timestamp event ordering must carry an explicit sequence tiebreaker"
    family = "determinism"

    def check(self, module: SourceModule) -> Iterable[Finding]:
        yield from self._heappush_tuples(module)
        yield from self._lt_single_attr(module)

    def _heappush_tuples(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
            if name != "heappush" or len(node.args) != 2:
                continue
            entry = node.args[1]
            if not isinstance(entry, ast.Tuple) or len(entry.elts) != 2:
                continue
            if _is_tiebreaker(entry.elts[1]):
                continue
            yield module.finding(
                node,
                self.code,
                "heap entry `(time, payload)` has no tiebreaker: same-timestamp pops "
                "fall back on payload comparison (or raise); push "
                "`(time, seq, payload)` with a monotonically increasing seq",
            )

    def _lt_single_attr(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for stmt in node.body:
                if not isinstance(stmt, ast.FunctionDef) or stmt.name != "__lt__":
                    continue
                body = [s for s in stmt.body if not _is_docstring(s)]
                if len(body) != 1 or not isinstance(body[0], ast.Return):
                    continue
                compare = body[0].value
                if not isinstance(compare, ast.Compare) or len(compare.ops) != 1:
                    continue
                if not isinstance(compare.ops[0], (ast.Lt, ast.LtE)):
                    continue
                left, right = compare.left, compare.comparators[0]
                if not (isinstance(left, ast.Attribute) and isinstance(right, ast.Attribute)):
                    continue
                if left.attr != right.attr or not _TIME_RE.match(left.attr):
                    continue
                yield module.finding(
                    stmt,
                    self.code,
                    f"`{node.name}.__lt__` orders by `{left.attr}` alone: events at the same "
                    "timestamp have no stable order; compare `(time, seq)` tuples like "
                    "`repro.sim.event.Event`",
                )


def _is_docstring(stmt: ast.stmt) -> bool:
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Constant)
        and isinstance(stmt.value.value, str)
    )
