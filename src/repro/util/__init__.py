"""Shared utilities: unit constants, statistics, byte-stream helpers.

Deliberately boring and dependency-free: everything else in ``repro``
may import from here, never the reverse.
"""

from repro.util.units import GBPS, GIB, KIB, MIB, gbps, parse_size
from repro.util.stats import Summary, trimmed_mean

__all__ = [
    "GBPS",
    "GIB",
    "KIB",
    "MIB",
    "gbps",
    "parse_size",
    "Summary",
    "trimmed_mean",
]
