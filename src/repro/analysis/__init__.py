"""Static analysis and runtime sanitizers for the reproduction.

Two halves keep the simulation honest while the codebase is refactored
aggressively (see ROADMAP.md):

- :mod:`repro.analysis.lint` + :mod:`repro.analysis.pipeline` — a
  multi-pass static-analysis framework (``SIM001``-``SIM012``) run via
  ``python -m repro.analysis``.  Four pass families encode source-level
  invariants: *core* hygiene (wall clock/global randomness, centralized
  32-bit sequence arithmetic, mutable defaults, adapter surface,
  package docstrings), *determinism* dataflow (shared RNG streams,
  unordered iteration feeding scheduling/metrics, missing
  same-timestamp tiebreakers), the *contract* checker for the paper's
  Table-3 offloadability preconditions over ``repro.l5p`` plugins, and
  *consistency* between emitted metric names and
  ``benchmarks/baseline.json``.  Output formats: text, JSON, SARIF
  (:mod:`repro.analysis.sarif`); an mtime+hash findings cache keeps the
  full run inside the CI budget.
- :mod:`repro.analysis.sanitizer` — an opt-in runtime invariant checker
  (``SAN*`` codes) that validates, per packet, the paper's Table 3
  preconditions and the Figure 7 resynchronization state machine.

Keep this module import-light: :mod:`repro.core.context` imports the
sanitizer on its hot path.
"""

__all__ = ["lint", "sanitizer"]
