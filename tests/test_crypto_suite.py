"""Cipher-suite abstraction tests: both suites honor the same contract."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import AuthenticationError
from repro.crypto.suite import AesGcmSuite, XorGcmSuite, get_cipher_suite

SUITES = [AesGcmSuite, XorGcmSuite]


@pytest.fixture(params=SUITES, ids=lambda cls: cls.name)
def suite(request):
    return request.param()


KEY = b"\x11" * 16
NONCE = b"\x22" * 12


class TestContract:
    def test_round_trip(self, suite):
        data = b"the quick brown fox" * 20
        ct, tag = suite.seal(KEY, NONCE, data, aad=b"hdr")
        assert len(ct) == len(data)  # size-preserving
        assert len(tag) == suite.tag_size
        assert suite.open(KEY, NONCE, ct, tag, aad=b"hdr") == data

    def test_ciphertext_differs_from_plaintext(self, suite):
        data = b"a" * 64
        ct, _ = suite.seal(KEY, NONCE, data)
        assert ct != data

    def test_incremental_matches_one_shot(self, suite):
        data = bytes(range(256)) * 8
        one_ct, one_tag = suite.seal(KEY, NONCE, data)
        enc = suite.encryptor(KEY, NONCE)
        ct = b"".join(enc.update(data[i : i + 333]) for i in range(0, len(data), 333))
        assert ct == one_ct
        assert enc.finalize() == one_tag

    def test_incremental_decrypt(self, suite):
        data = b"record contents" * 50
        ct, tag = suite.seal(KEY, NONCE, data)
        dec = suite.decryptor(KEY, NONCE)
        pt = b"".join(dec.update(ct[i : i + 100]) for i in range(0, len(ct), 100))
        dec.finalize(tag)
        assert pt == data

    def test_corruption_detected(self, suite):
        ct, tag = suite.seal(KEY, NONCE, b"payload" * 10)
        corrupted = bytes([ct[5] ^ 0xFF]) + ct[1:5] + bytes([ct[0]]) + ct[6:]
        with pytest.raises(AuthenticationError):
            suite.open(KEY, NONCE, corrupted, tag)

    def test_wrong_key_detected(self, suite):
        ct, tag = suite.seal(KEY, NONCE, b"payload" * 10)
        with pytest.raises(AuthenticationError):
            suite.open(b"\x99" * 16, NONCE, ct, tag)

    def test_wrong_nonce_detected(self, suite):
        ct, tag = suite.seal(KEY, NONCE, b"payload" * 10)
        with pytest.raises(AuthenticationError):
            suite.open(KEY, b"\x33" * 12, ct, tag)

    def test_nonce_changes_ciphertext(self, suite):
        data = b"\x00" * 128
        ct1, _ = suite.seal(KEY, b"\x01" * 12, data)
        ct2, _ = suite.seal(KEY, b"\x02" * 12, data)
        assert ct1 != ct2

    @settings(max_examples=20, deadline=None)
    @given(data=st.binary(min_size=0, max_size=400))
    def test_round_trip_property(self, data):
        for suite in (AesGcmSuite(), XorGcmSuite()):
            ct, tag = suite.seal(KEY, NONCE, data)
            assert suite.open(KEY, NONCE, ct, tag) == data


class TestRegistry:
    def test_get_by_name(self):
        assert isinstance(get_cipher_suite("aes-gcm"), AesGcmSuite)
        assert isinstance(get_cipher_suite("xor-gcm"), XorGcmSuite)

    def test_unknown_suite(self):
        with pytest.raises(ValueError):
            get_cipher_suite("rot13")


class TestSuiteEquivalence:
    """The fast suite must be interchangeable with the real one from the
    protocol machinery's point of view."""

    def test_same_interface_shape(self):
        real, fast = AesGcmSuite(), XorGcmSuite()
        for s in (real, fast):
            assert s.tag_size == 16
            assert s.nonce_size == 12
            assert s.key_size == 16
