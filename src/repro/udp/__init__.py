"""UDP substrate (paper §7): datagram transport for DTLS-class L5Ps.

Datagrams make offload *easier* than TCP — no byte-stream resegmentation,
so every message boundary is a packet boundary; the §7 discussion
reduces to the TX path plus per-record replay protection.
"""

from repro.udp.stack import UdpStack

__all__ = ["UdpStack"]
