"""Table 1: AES-NI (on-CPU) vs QAT (off-CPU) encryption bandwidth,
16 KB blocks, one 2.40 GHz core, 1 vs 128 threads."""

from repro.cpu.accel import table1
from repro.harness.report import Table

PAPER = {
    "aes-128-cbc-hmac-sha1": {"qat_1": 249, "qat_128": 3144, "aesni_1": 695},
    "aes-128-gcm": {"qat_1": 249, "qat_128": 3109, "aesni_1": 3150},
}


def test_tab01(benchmark, emit):
    rows = benchmark.pedantic(table1, rounds=1, iterations=1)
    table = Table(
        ["cipher", "QAT 1", "QAT 128", "AES-NI 1", "paper QAT1/128/AESNI"],
        title="Table 1: encryption bandwidth (MB/s), 16KB blocks, single core",
    )
    for cipher, cells in rows.items():
        paper = PAPER[cipher]
        table.row(
            cipher,
            cells["qat_1"],
            cells["qat_128"],
            cells["aesni_1"],
            f"{paper['qat_1']}/{paper['qat_128']}/{paper['aesni_1']}",
        )
    emit("tab01_qat_vs_aesni", table.render())

    cbc, gcm = rows["aes-128-cbc-hmac-sha1"], rows["aes-128-gcm"]
    # The paper's qualitative claims:
    assert cbc["qat_1"] < cbc["aesni_1"]  # 1-thread QAT loses to AES-NI
    assert cbc["qat_128"] > 4 * cbc["aesni_1"]  # threaded QAT wins CBC-HMAC
    assert 0.8 < gcm["qat_128"] / gcm["aesni_1"] < 1.25  # GCM: only parity
    assert gcm["qat_1"] * 10 < gcm["aesni_1"]  # 12.5x gap, 1 thread
