"""CRC32/CRC32C and SHA-1/HMAC validated against published vectors."""

import hashlib
import hmac as std_hmac
import zlib

import pytest
from hypothesis import given, strategies as st

from repro.crypto.crc import Crc32c, FastCrc, crc32, crc32c, get_digest
from repro.crypto.sha1 import hmac_sha1, sha1


class TestCrc32c:
    def test_check_value(self):
        # The canonical CRC32C check value (RFC 3720 appendix / catalog).
        assert crc32c(b"123456789") == 0xE3069283

    def test_iscsi_all_zero_vector(self):
        # RFC 3720 B.4: 32 bytes of zero -> 0x8A9136AA.
        assert crc32c(b"\x00" * 32) == 0x8A9136AA

    def test_iscsi_all_ff_vector(self):
        assert crc32c(b"\xff" * 32) == 0x62A8AB43

    def test_iscsi_incrementing_vector(self):
        assert crc32c(bytes(range(32))) == 0x46DD794E

    def test_empty(self):
        assert crc32c(b"") == 0

    @given(data=st.binary(max_size=500), split=st.integers(min_value=0, max_value=500))
    def test_streaming_equals_one_shot(self, data, split):
        split = min(split, len(data))
        assert crc32c(data[split:], crc32c(data[:split])) == crc32c(data)

    def test_incremental_class(self):
        d = Crc32c()
        d.update(b"12345")
        d.update(b"6789")
        assert d.intdigest() == 0xE3069283
        assert d.digest() == (0xE3069283).to_bytes(4, "little")

    def test_copy_is_independent(self):
        d = Crc32c(b"1234")
        clone = d.copy()
        d.update(b"junk")
        clone.update(b"56789")
        assert clone.intdigest() == 0xE3069283


class TestCrc32:
    @given(data=st.binary(max_size=500))
    def test_matches_zlib(self, data):
        assert crc32(data) == zlib.crc32(data)


class TestSlice8Property:
    """The slicing-by-8 hot path is bit-identical to the one-byte
    reference and to zlib, for any stream chunking (docs/performance.md:
    vectorization must never change a digest)."""

    @given(
        data=st.binary(max_size=2000),
        splits=st.lists(st.integers(min_value=0, max_value=2000), max_size=6),
    )
    def test_chunked_crc32c_equals_one_shot_equals_reference(self, data, splits):
        from repro.crypto.crc import _SLICE8_C, _TABLE_C, _crc_bytewise

        one_shot = crc32c(data)
        assert one_shot == _crc_bytewise(_TABLE_C, data, 0)
        crc = 0
        last = 0
        for split in sorted(min(s, len(data)) for s in splits) + [len(data)]:
            crc = crc32c(data[last:split], crc)
            last = split
        assert crc == one_shot
        assert _SLICE8_C[0] is _TABLE_C  # slice table 0 IS the bytewise table

    @given(
        data=st.binary(max_size=2000),
        splits=st.lists(st.integers(min_value=0, max_value=2000), max_size=6),
    )
    def test_chunked_crc32_equals_one_shot_equals_zlib_fastcrc(self, data, splits):
        from repro.crypto.crc import _TABLE_IEEE, _crc_bytewise

        one_shot = crc32(data)
        assert one_shot == zlib.crc32(data)
        assert one_shot == _crc_bytewise(_TABLE_IEEE, data, 0)
        crc = 0
        fast = FastCrc()
        last = 0
        for split in sorted(min(s, len(data)) for s in splits) + [len(data)]:
            crc = crc32(data[last:split], crc)
            fast.update(data[last:split])
            last = split
        # streaming slice-8 == one-shot == the zlib-backed FastCrc digest
        assert crc == one_shot == fast.intdigest()

    @given(data=st.binary(min_size=1, max_size=64))
    def test_word_boundary_tails(self, data):
        # Lengths straddling the 8-byte word boundary exercise the
        # scalar tail loop; every length must agree with the reference.
        from repro.crypto.crc import _TABLE_C, _crc_bytewise

        for end in range(len(data) + 1):
            assert crc32c(data[:end]) == _crc_bytewise(_TABLE_C, data[:end], 0)


class TestFastCrc:
    def test_matches_zlib(self):
        d = FastCrc()
        d.update(b"hello ")
        d.update(b"world")
        assert d.intdigest() == zlib.crc32(b"hello world")

    def test_detects_corruption(self):
        good = FastCrc(b"payload")
        bad = FastCrc(b"paYload")
        assert good.intdigest() != bad.intdigest()


class TestDigestRegistry:
    def test_lookup(self):
        assert get_digest("crc32c") is Crc32c
        assert get_digest("fast") is FastCrc

    def test_unknown(self):
        with pytest.raises(ValueError):
            get_digest("md5")


class TestSha1:
    def test_rfc3174_vectors(self):
        assert sha1(b"abc").hex() == "a9993e364706816aba3e25717850c26c9cd0d89d"
        assert (
            sha1(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").hex()
            == "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        )

    def test_empty(self):
        assert sha1(b"").hex() == "da39a3ee5e6b4b0d3255bfef95601890afd80709"

    @given(data=st.binary(max_size=300))
    def test_matches_hashlib(self, data):
        assert sha1(data) == hashlib.sha1(data).digest()

    @given(key=st.binary(max_size=100), msg=st.binary(max_size=200))
    def test_hmac_matches_stdlib(self, key, msg):
        assert hmac_sha1(key, msg) == std_hmac.new(key, msg, hashlib.sha1).digest()
