"""SIM006 — RNG streams must not be shared across components.

The determinism contract (docs/performance.md) hangs on substream
discipline: every component draws from its *own* ``random.Random``
derived via ``Simulator.substream(name)``, so enabling or reordering
one component can never perturb another's draw sequence.  Three
patterns break that silently and are flagged here by a small dataflow
walk over each module:

- a **module-level** ``random.Random(...)`` instance: global state
  shared by every importer, in every test, in every process;
- passing the simulator's **master stream** (``sim.random``) into
  another component (as a call argument or stored onto an object) —
  consumers must derive a named substream instead;
- binding one substream (``rng = sim.substream(...)`` or a seeded
  ``Random``) and handing it to **two or more** callees: both now
  interleave draws, so adding a draw in one changes the other's
  sequence (the ``repro.faults`` substream discipline, generalized).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Union

from repro.analysis.lint import Finding, LintRule, SourceModule

#: The module that legitimately owns the master stream.
_HOME = "repro/sim/simulator.py"

_FuncScope = Union[ast.Module, ast.FunctionDef, ast.AsyncFunctionDef]


def _random_module_names(tree: ast.AST) -> tuple[set, set]:
    """Names bound to the ``random`` module / its ``Random`` class."""
    modules: set = set()
    classes: set = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    modules.add(alias.asname or alias.name)
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module == "random":
            for alias in node.names:
                if alias.name == "Random":
                    classes.add(alias.asname or alias.name)
    return modules, classes


def _is_rng_factory(call: ast.Call, modules: set, classes: set) -> bool:
    """``random.Random(...)`` / ``Random(...)`` / ``<x>.substream(...)``."""
    func = call.func
    if isinstance(func, ast.Attribute):
        if func.attr == "Random" and isinstance(func.value, ast.Name) and func.value.id in modules:
            return True
        if func.attr == "substream":
            return True
    elif isinstance(func, ast.Name) and func.id in classes:
        return True
    return False


def _is_master_stream(node: ast.AST, modules: set) -> bool:
    """``<obj>.random`` where ``<obj>`` is not the stdlib ``random``."""
    if not isinstance(node, ast.Attribute) or node.attr != "random":
        return False
    if isinstance(node.value, ast.Name) and node.value.id in modules:
        return False  # `random.random` is the stdlib module (SIM001's beat)
    return True


def _function_scopes(tree: ast.AST) -> Iterator[_FuncScope]:
    yield tree  # module scope first
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _direct_statements(scope: _FuncScope) -> Iterator[ast.stmt]:
    """Statements of ``scope`` excluding nested function/class bodies."""
    stack = list(scope.body)
    while stack:
        stmt = stack.pop(0)
        yield stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for field_name in ("body", "orelse", "finalbody", "handlers"):
            children = getattr(stmt, field_name, None)
            if children:
                for child in children:
                    if isinstance(child, ast.ExceptHandler):
                        stack.extend(child.body)
                    elif isinstance(child, ast.stmt):
                        stack.append(child)


class RngSharingRule(LintRule):
    code = "SIM006"
    name = "rng-sharing"
    description = "RNG streams must not be shared across components; derive one substream per consumer"
    family = "determinism"

    def check(self, module: SourceModule) -> Iterable[Finding]:
        if module.posix_path.endswith(_HOME):
            return
        modules, classes = _random_module_names(module.tree)
        yield from self._module_level_rng(module, modules, classes)
        yield from self._master_stream_leaks(module, modules)
        yield from self._shared_substreams(module, modules, classes)

    # ------------------------------------------------------------------
    def _module_level_rng(self, module: SourceModule, modules: set, classes: set) -> Iterator[Finding]:
        assert isinstance(module.tree, ast.Module)
        for stmt in module.tree.body:
            targets: list = []
            value = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if not isinstance(value, ast.Call) or not _is_rng_factory(value, modules, classes):
                continue
            names = ", ".join(t.id for t in targets if isinstance(t, ast.Name)) or "<rng>"
            yield module.finding(
                stmt,
                self.code,
                f"module-level RNG `{names}` is shared by every importer; "
                "construct per-run streams via `Simulator.substream()` instead",
            )

    def _master_stream_leaks(self, module: SourceModule, modules: set) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    if _is_master_stream(arg, modules):
                        yield module.finding(
                            arg,
                            self.code,
                            "passing the simulator's master stream (`.random`) into another "
                            "component couples its draws to everyone else's; pass "
                            "`sim.substream(<name>)` instead",
                        )
            elif isinstance(node, ast.Assign) and _is_master_stream(node.value, modules):
                yield module.finding(
                    node,
                    self.code,
                    "storing the simulator's master stream (`.random`) shares one draw "
                    "sequence across components; store `sim.substream(<name>)` instead",
                )

    def _shared_substreams(self, module: SourceModule, modules: set, classes: set) -> Iterator[Finding]:
        for scope in _function_scopes(module.tree):
            bindings: dict = {}  # name -> binding stmt
            for stmt in _direct_statements(scope):
                if (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and isinstance(stmt.value, ast.Call)
                    and _is_rng_factory(stmt.value, modules, classes)
                ):
                    bindings[stmt.targets[0].id] = stmt
            if not bindings:
                continue
            passed: dict = {name: [] for name in bindings}
            for stmt in _direct_statements(scope):
                for node in ast.walk(stmt):
                    if not isinstance(node, ast.Call):
                        continue
                    for arg in list(node.args) + [kw.value for kw in node.keywords]:
                        if isinstance(arg, ast.Name) and arg.id in passed:
                            passed[arg.id].append(node)
            for name, calls in passed.items():
                if len(calls) >= 2:
                    lines = ", ".join(str(c.lineno) for c in calls)
                    yield module.finding(
                        bindings[name],
                        self.code,
                        f"RNG stream `{name}` is handed to {len(calls)} callees (lines {lines}); "
                        "components sharing one stream interleave draws — derive a dedicated "
                        "substream per consumer",
                    )
