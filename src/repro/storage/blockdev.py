"""Block device model (Intel Optane DC P4800X class).

The paper's remote drive delivers ~2.67 GB/s of read bandwidth
(§6.3, "the drive's optimal read bandwidth: 2.67 GB/s ≈ 21.38 Gbps")
with ~10 µs access latency.  Content is generated deterministically per
LBA unless explicitly written, so multi-GiB address spaces cost no host
memory.
"""

from __future__ import annotations

from typing import Callable

from repro.sim import Simulator

BLOCK_SIZE = 4096


def _pattern_block(lba: int) -> bytes:
    """Deterministic content for never-written blocks."""
    stamp = lba.to_bytes(8, "little")
    return (stamp * (BLOCK_SIZE // 8 + 1))[:BLOCK_SIZE]


class BlockDevice:
    """A bandwidth/latency-modelled NVMe SSD."""

    def __init__(
        self,
        sim: Simulator,
        capacity_bytes: int = 1 << 40,
        read_bw_bytes_per_s: float = 2.67e9,
        write_bw_bytes_per_s: float = 2.2e9,
        access_latency_s: float = 10e-6,
    ):
        self.sim = sim
        self.capacity_bytes = capacity_bytes
        self.read_bw = read_bw_bytes_per_s
        self.write_bw = write_bw_bytes_per_s
        self.access_latency_s = access_latency_s
        self._written: dict[int, bytes] = {}
        self._busy_until = 0.0
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0

    # ------------------------------------------------------------------
    def _check(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.capacity_bytes:
            raise ValueError(f"I/O [{offset}, +{length}) outside device capacity")

    def _content(self, offset: int, length: int) -> bytes:
        out = bytearray()
        lba = offset // BLOCK_SIZE
        skip = offset % BLOCK_SIZE
        while length > 0:
            block = self._written.get(lba) or _pattern_block(lba)
            chunk = block[skip : skip + length]
            out += chunk
            length -= len(chunk)
            skip = 0
            lba += 1
        return bytes(out)

    def _schedule(self, length: int, bandwidth: float, fn: Callable, *args) -> None:
        """Serialize the transfer through the device's internal channel."""
        start = max(self.sim.now, self._busy_until)
        self._busy_until = start + length / bandwidth
        self.sim.at(self._busy_until + self.access_latency_s, fn, *args)

    # ------------------------------------------------------------------
    def read(self, offset: int, length: int, on_complete: Callable[[bytes], None]) -> None:
        """Asynchronously read ``length`` bytes at ``offset``."""
        self._check(offset, length)
        self.reads += 1
        self.bytes_read += length
        data = self._content(offset, length)
        self._schedule(length, self.read_bw, on_complete, data)

    def write(self, offset: int, data: bytes, on_complete: Callable[[], None]) -> None:
        """Asynchronously write ``data`` at ``offset``."""
        self._check(offset, len(data))
        self.writes += 1
        self.bytes_written += len(data)
        self._store(offset, data)
        self._schedule(len(data), self.write_bw, on_complete)

    def _store(self, offset: int, data: bytes) -> None:
        pos = 0
        while pos < len(data):
            lba = (offset + pos) // BLOCK_SIZE
            skip = (offset + pos) % BLOCK_SIZE
            take = min(BLOCK_SIZE - skip, len(data) - pos)
            block = bytearray(self._written.get(lba) or _pattern_block(lba))
            block[skip : skip + take] = data[pos : pos + take]
            self._written[lba] = bytes(block)
            pos += take

    def peek(self, offset: int, length: int) -> bytes:
        """Synchronous content inspection (tests only; no timing)."""
        self._check(offset, length)
        return self._content(offset, length)
