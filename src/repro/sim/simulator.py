"""The simulator: a clock plus an event queue.

The simulator also owns the run's random source so that every stochastic
decision (loss, reordering, workload think times) is reproducible from a
single seed, and carries the run's optional observability handle
(``sim.obs``, a :class:`repro.obs.Obs`): components reach their metrics
and tracer through the simulator they already hold.

The event queue itself is pluggable (:mod:`repro.sim.wheel`): the
default slotted timing wheel schedules in O(1) for datacenter-scale
flow counts, while ``scheduler="heap"`` selects the single binary heap
the reproduction originally shipped with.  Both fire events in exactly
the same ``(time, seq)`` order, so the choice can never change a
simulation result — only how fast it computes.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Optional

from repro.sim.event import Event
from repro.sim.wheel import make_scheduler


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulation-wide random source.  Sub-components that
        need their own stream should call :meth:`substream`.
    scheduler:
        Event-queue backend: ``"wheel"`` (slotted timing wheel, the
        default) or ``"heap"`` (single binary heap).  ``None`` reads the
        ``REPRO_SIM_SCHEDULER`` environment knob.  Event order is
        identical either way (proven by ``tests/test_sim_wheel.py``).
    """

    def __init__(self, seed: int = 0, scheduler: Optional[str] = None):
        self.now: float = 0.0
        self.seed = seed
        self.random = random.Random(seed)
        self._queue = make_scheduler(scheduler)
        self._seq = 0
        self._events_fired = 0
        self._pending = 0  # live non-canceled count; no queue scans
        # Observability handle (repro.obs.Obs) or None = off.  Set it
        # before constructing hosts so caching components see it.
        self.obs = None

    @property
    def now_ns(self) -> int:
        """The current simulated time in integer nanoseconds."""
        return round(self.now * 1e9)

    @property
    def scheduler_name(self) -> str:
        """The active event-queue backend (``"wheel"`` or ``"heap"``)."""
        return self._queue.name

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        return self.at(self.now + delay, fn, *args)

    def at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        self._seq += 1
        event = Event(time, self._seq, fn, args)
        event._sim = self
        self._queue.push(event)
        self._pending += 1
        return event

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at the current time, after pending events."""
        return self.at(self.now, fn, *args)

    def substream(self, name: str) -> random.Random:
        """A named, independent random stream derived from the run seed."""
        return random.Random(f"{self.seed}:{name}")

    def _note_canceled(self) -> None:
        """A queued event was canceled (called by :meth:`Event.cancel`)."""
        self._pending -= 1

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event.  Returns False if none remain."""
        event = self._queue.pop()
        if event is None:
            return False
        event._sim = None
        self._pending -= 1
        self.now = event.time
        self._events_fired += 1
        event.fire()
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or the event
        budget ``max_events`` is exhausted."""
        fired = 0
        while True:
            if max_events is not None and fired >= max_events:
                return
            head = self._queue.peek()
            if head is None:
                break
            if until is not None and head.time > until:
                self.now = until
                return
            self.step()
            fired += 1
        if until is not None and until > self.now:
            self.now = until

    @property
    def pending(self) -> int:
        """Number of pending (non-canceled) events — a live counter, so
        observability probes stay O(1) at any flow count."""
        return self._pending

    @property
    def events_fired(self) -> int:
        return self._events_fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self.now:.9f} pending={self._pending}>"
