"""nginx model: an HTTP(S) file server over FlatFs (§6.3).

Serves GET requests from the filesystem through the page cache; bodies
go out via sendfile.  Configurations map to the paper's bars: plain
http, https (software kTLS), offload, and offload+zc are all just
transport/TlsConfig choices.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.apps.http import build_response_header, parse_request
from repro.apps.transport import Transport
from repro.l5p.tls.ktls import TlsConfig
from repro.net.host import Host
from repro.storage.fs import FlatFs


class NginxServer:
    """Event-driven static file server."""

    def __init__(self, host: Host, fs: FlatFs, port: int = 80, tls: Optional[TlsConfig] = None):
        self.host = host
        self.fs = fs
        self.port = port
        self.tls_config = tls
        self.requests_served = 0
        self.bytes_served = 0
        host.tcp.listen(port, self._accept)

    def _accept(self, conn) -> None:
        _NginxConn(self, conn)


class _NginxConn:
    def __init__(self, server: NginxServer, conn):
        self.server = server
        self.host = server.host
        self.core = self.host.core_for_flow(conn.flow)
        self.transport = Transport(self.host, conn, "server", server.tls_config)
        self.transport.on_data = self._on_data
        self.transport.on_writable = self._flush
        self.transport.on_ready = self._flush
        self._buffer = bytearray()
        self._outq: deque[tuple[bytes, bool]] = deque()  # (bytes, via_sendfile)
        self._busy = False  # a request is being served (file read pending)
        self._pipeline: deque[str] = deque()

    # ------------------------------------------------------------------
    def _on_data(self, data: bytes) -> None:
        self._buffer += data
        while True:
            parsed = parse_request(bytes(self._buffer))
            if parsed is None:
                return
            path, consumed = parsed
            del self._buffer[:consumed]
            self._pipeline.append(path.lstrip("/"))
            self._serve_next()

    def _serve_next(self) -> None:
        if self._busy or not self._pipeline:
            return
        name = self._pipeline.popleft()
        self._busy = True
        self.core.charge(self.host.model.cycles_http_req, "app")
        try:
            extent = self.server.fs.stat(name)
        except FileNotFoundError:
            self._queue(build_response_header(0, status="404 Not Found"), sendfile=False)
            self._busy = False
            self._serve_next()
            return
        self.server.fs.read(name, 0, extent.size, self._respond)

    def _respond(self, body: bytes) -> None:
        self.server.requests_served += 1
        self.server.bytes_served += len(body)
        self._queue(build_response_header(len(body)), sendfile=False)
        if body:
            self._queue(body, sendfile=True)
        self._busy = False
        self._serve_next()

    # ------------------------------------------------------------------
    def _queue(self, data: bytes, sendfile: bool) -> None:
        self._outq.append((data, sendfile))
        self._flush()

    def _flush(self) -> None:
        if not self.transport.ready:
            return
        while self._outq:
            data, via_sendfile = self._outq[0]
            sent = self.transport.sendfile(data) if via_sendfile else self.transport.send(data)
            if sent == len(data):
                self._outq.popleft()
                continue
            self._outq[0] = (data[sent:], via_sendfile)
            return
