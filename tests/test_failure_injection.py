"""Failure injection across the stack: corrupted wire bytes must be
detected by every L5P, offloaded or not, and errors must surface.

Uses the public ``repro.faults`` helpers (``corrupting_link`` /
``flip_payload_byte``) that grew out of this file's original ad-hoc
versions."""

import pytest

from helpers import make_pair
from repro.faults import corrupting_link, flip_payload_byte
from repro.l5p.nvme_tcp import NvmeConfig, NvmeTcpHost, NvmeTcpTarget
from repro.l5p.rpc import RpcClient, RpcConfig, RpcServer
from repro.l5p.tls import KtlsSocket, TlsConfig
from repro.nic import OffloadNic
from repro.storage.blockdev import BlockDevice


def first_bigger_than(threshold):
    """One-shot predicate: the first packet with a payload above
    ``threshold`` bytes matches; everything after passes clean."""
    fired = []

    def predicate(pkt):
        if len(pkt.payload) > threshold and not fired:
            fired.append(True)
            return True
        return False

    return predicate


class TestTlsCorruption:
    @pytest.mark.parametrize("rx_offload", [False, True], ids=["software", "offloaded"])
    def test_corrupted_record_detected(self, rx_offload):
        pair = make_pair(client_nic=OffloadNic(), server_nic=OffloadNic())
        errors = []
        received = bytearray()

        def on_accept(conn):
            tls = KtlsSocket(pair.server, conn, "server", TlsConfig(rx_offload=rx_offload))
            tls.on_data = received.extend
            tls.on_error = errors.append

        pair.server.tcp.listen(443, on_accept)
        conn = pair.client.tcp.connect("server", 443)
        client = KtlsSocket(pair.client, conn, "client", TlsConfig(tx_offload=True))
        payload = b"sensitive!" * 2000
        client.on_ready = lambda: client.send(payload)

        # Corrupt the first full-size record-bearing packet.
        state = corrupting_link(pair.link, "b", first_bigger_than(900), flip_payload_byte())
        pair.sim.run(until=1.0)
        assert state["hits"] == 1
        assert errors, "authentication failure must surface"
        assert bytes(received) != payload


class TestNvmeCorruption:
    def test_corrupted_read_payload_fails_request(self):
        pair = make_pair(client_nic=OffloadNic(), server_nic=OffloadNic())
        device = BlockDevice(pair.sim)
        NvmeTcpTarget(pair.server, device, config=NvmeConfig()).start()
        nvme = NvmeTcpHost(pair.client, config=NvmeConfig())
        nvme.connect("server")
        outcome = {}

        def go():
            nvme.read(0, 65536, lambda data, lat: outcome.setdefault("data", data))

        nvme.on_ready = go

        # Corrupt one C2HData-bearing packet toward the initiator.
        corrupting_link(pair.link, "a", first_bigger_than(1000), flip_payload_byte())
        with pytest.raises(RuntimeError, match="failed"):
            pair.sim.run(until=2.0)
        assert "data" not in outcome
        assert nvme.stats.digest_failures > 0

    def test_on_error_hook_reports_instead_of_raising(self):
        pair = make_pair(client_nic=OffloadNic(), server_nic=OffloadNic())
        device = BlockDevice(pair.sim)
        NvmeTcpTarget(pair.server, device, config=NvmeConfig()).start()
        nvme = NvmeTcpHost(pair.client, config=NvmeConfig())
        errors = []
        nvme.on_error = errors.append
        nvme.connect("server")
        outcome = {}

        def go():
            nvme.read(0, 65536, lambda data, lat: outcome.setdefault("bad", data))
            nvme.read(131072, 4096, lambda data, lat: outcome.setdefault("good", data))

        nvme.on_ready = go
        corrupting_link(pair.link, "a", first_bigger_than(1000), flip_payload_byte())
        pair.sim.run(until=2.0)  # must not raise
        assert errors and "failed" in errors[0]
        assert nvme.stats.io_failures == 1
        assert "bad" not in outcome
        # The queue pair survives the failed request and keeps serving.
        assert outcome["good"] == device.peek(131072, 4096)


class TestRpcCorruption:
    def test_corrupted_response_counted_not_delivered(self):
        pair = make_pair(client_nic=OffloadNic(), server_nic=OffloadNic())
        server = RpcServer(pair.server, port=7000)
        server.register(1, lambda args: b"\x5a" * 30_000)
        client = RpcClient(pair.client, "server", port=7000, config=RpcConfig())
        got = []
        client.call(1, {}, lambda v, lat: got.append(v))

        corrupting_link(pair.link, "a", first_bigger_than(1000), flip_payload_byte())
        pair.sim.run(until=1.0)
        assert got == []  # corrupt response dropped
        assert client.stats["errors"] == 1
