"""Datacenter-scale multi-tenant flow mix (Figure 19 XL).

The paper's Figure 19 sweeps 64 K..128 K persistent connections against
the NIC's 4 MiB context cache (~20 K flows at 208 B each).  The default
reproduction (:mod:`repro.experiments.scalability`) carries real TCP+TLS
state per connection and therefore scales *both* axes down 16x.  This
module keeps the cache at **full scale** and abstracts the transport
instead: each flow is one context entry in a :class:`~repro.nic.FlowTable`,
driven by a heavy-tailed multi-tenant burst process through the
simulator's timing wheel.  The context cache, the PCIe byte accounting,
the flow table, and the event scheduler are the real components; only
per-packet TCP/TLS processing is summarized into per-burst packet/byte
counts — which is exactly the level at which §6.5 reasons about cache
behavior ("only a batch's first packet misses").

The mix is deliberately adversarial to the LRU: tenants get Zipf-skewed
activity, per-flow burst cadence is Pareto-tailed, and a churn fraction
of bursts closes the flow and installs a fresh context.  Below cache
capacity the miss rate is cold-misses only; past ~20 K concurrent flows
the working set no longer fits and the miss rate jumps off a cliff,
while goodput degrades only gently because the miss is paid once per
burst, not once per packet.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.context import CONTEXT_BYTES
from repro.nic.cache import ContextCache
from repro.nic.flow_table import FlowTable
from repro.nic.pcie import PcieModel
from repro.sim import Simulator

#: Per-packet wire payload (standard MSS with TLS record framing).
MSS_BYTES = 1448
#: NIC pipeline time per offloaded packet (~100 Gb/s line rate).
OFFLOAD_PKT_NS = 120
#: Host-memory context fetch on a cache miss (PCIe round trip), paid
#: once per burst when the first packet misses.
MISS_FETCH_NS = 1000
#: Software (https) per-packet cost: ~3.2 cycles/B crypto+copy at 2 GHz.
SW_PKT_NS = int(MSS_BYTES * 3.2 / 2.0)

VARIANTS = ("offload+zc", "https")


class MixFlow:
    """One live flow of the mix: a 208 B NIC context stand-in."""

    __slots__ = ("ctx_id", "tenant", "interval")

    def __init__(self, ctx_id: int, tenant: int, interval: float):
        self.ctx_id = ctx_id
        self.tenant = tenant
        self.interval = interval


@dataclass
class MixPoint:
    """One (flows, variant) point of the fig19_xl sweep."""

    flows: int
    variant: str
    tenants: int
    bursts: int
    pkts: int
    mean_burst: float
    goodput_gbps: float
    cache_miss_rate: float
    miss_dma_mb: float
    churn_installs: int
    cache_capacity_flows: int
    events_fired: int
    scheduler: str


def _tenant_intervals(tenants: int, base: float) -> list:
    """Zipf-skewed per-tenant mean burst intervals: tenant 0 is the
    hottest, the tail barely speaks.  Normalized so the *mix-wide* mean
    interval stays ``base`` regardless of tenant count."""
    weights = [(t + 1) ** -1.1 for t in range(tenants)]
    mean_w = sum(weights) / tenants
    return [base * mean_w / w for w in weights]


def run_mix_point(
    flows: int,
    variant: str = "offload+zc",
    tenants: int = 32,
    bursts_per_flow: float = 4.0,
    churn: float = 0.02,
    duration: float = 20e-3,
    cache_bytes: int = 4 * 1024 * 1024,
    seed: int = 0,
    scheduler=None,
) -> MixPoint:
    """Drive ``flows`` concurrent flows for ``duration`` simulated
    seconds and report cache/goodput behavior.

    ``variant="offload+zc"`` runs every burst's first packet through the
    real :class:`ContextCache`; ``"https"`` models the software path
    (no NIC context state, per-packet crypto cost instead).
    """
    if variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r} (one of {VARIANTS})")
    sim = Simulator(seed=seed, scheduler=scheduler)
    pcie = PcieModel()
    cache = ContextCache(pcie, capacity_bytes=cache_bytes) if variant == "offload+zc" else None
    table: FlowTable = FlowTable()
    layout = sim.substream("mix:layout")
    traffic = sim.substream("mix:traffic")

    base_interval = duration / bursts_per_flow
    tenant_interval = _tenant_intervals(tenants, base_interval)
    tenant_of = layout.choices(
        range(tenants), weights=[(t + 1) ** -1.1 for t in range(tenants)], k=flows
    )

    stats = {"bursts": 0, "pkts": 0, "bytes": 0, "service_ns": 0}
    next_ctx_id = flows  # fresh IDs for churn-installed replacements

    def new_flow(ctx_id: int, tenant: int) -> MixFlow:
        # Pareto-tailed per-flow cadence around the tenant mean: a few
        # hot flows burst constantly, a long tail is nearly idle (the
        # normalization keeps the per-flow mean at the tenant mean).
        interval = tenant_interval[tenant] * layout.paretovariate(4.0) * 0.75
        flow = MixFlow(ctx_id, tenant, interval)
        table[ctx_id] = flow
        return flow

    def burst(flow: MixFlow) -> None:
        nonlocal next_ctx_id
        # Heavy-tailed batch size (paper: 8..48 packets per batch).
        size = min(64, int(4 * traffic.paretovariate(1.5)))
        stats["bursts"] += 1
        stats["pkts"] += size
        stats["bytes"] += size * MSS_BYTES
        if cache is not None:
            # Batching is the §6.5 argument: only the burst's first
            # packet can miss; the rest find the context resident.
            hit = cache.access(flow)
            stats["service_ns"] += size * OFFLOAD_PKT_NS + (0 if hit else MISS_FETCH_NS)
        else:
            stats["service_ns"] += size * SW_PKT_NS
        if churn and traffic.random() < churn:
            # Flow closes; a fresh context (new tenant draw kept — the
            # tenant keeps its connection count) replaces it.
            table.pop(flow.ctx_id)
            if cache is not None:
                cache.evict(flow)
            replacement = new_flow(next_ctx_id, flow.tenant)
            next_ctx_id += 1
            sim.schedule(replacement.interval * traffic.uniform(0.8, 1.2), burst, replacement)
            return
        # Jittered-regular cadence: a persistent connection serves
        # requests at a steady clip, it does not arrive Poisson.  This
        # is what makes the sweep honest about the cliff — once the
        # concurrent set outgrows the cache, re-access distance exceeds
        # capacity for *every* non-hot flow and the LRU thrashes.
        sim.schedule(flow.interval * traffic.uniform(0.8, 1.2), burst, flow)

    for ctx_id in range(flows):
        flow = new_flow(ctx_id, tenant_of[ctx_id])
        sim.at(layout.uniform(0.0, flow.interval), burst, flow)

    # A telemetry scanner sampling random *positions* — the dense-array
    # access pattern FlowTable.entry_at exists for (O(1) per draw, no
    # key-list materialization at 128 K flows).
    sampled = {"flows": 0, "pkts_estimate": 0}

    def scan() -> None:
        for _ in range(32):
            table.entry_at(traffic.randrange(len(table)))
            sampled["flows"] += 1
        sim.schedule(duration / 16, scan)

    sim.schedule(duration / 16, scan)
    sim.run(until=duration)

    misses = cache.misses if cache is not None else 0
    accesses = (cache.hits + cache.misses) if cache is not None else 0
    service_s = stats["service_ns"] * 1e-9
    goodput_gbps = stats["bytes"] * 8 / service_s / 1e9 if service_s else 0.0
    return MixPoint(
        flows=flows,
        variant=variant,
        tenants=tenants,
        bursts=stats["bursts"],
        pkts=stats["pkts"],
        mean_burst=stats["pkts"] / stats["bursts"] if stats["bursts"] else 0.0,
        goodput_gbps=goodput_gbps,
        cache_miss_rate=misses / accesses if accesses else 0.0,
        miss_dma_mb=pcie.bytes_by_category["context"] / 1e6,
        churn_installs=table.installed_total - flows,
        cache_capacity_flows=(cache_bytes // CONTEXT_BYTES),
        events_fired=sim.events_fired,
        scheduler=sim.scheduler_name,
    )
