"""Evaluation harness: testbed topology builder and result reporting.

:class:`Testbed` assembles the paper's two-machine setup (§6: hosts,
100 Gb/s link, offload-capable NICs, CPU cost model) from one
:class:`TestbedConfig`; :class:`Table` renders the figure tables the
``benchmarks/`` tree prints.  Experiment runners in
:mod:`repro.experiments` are thin compositions of these pieces.
"""

from repro.harness.testbed import Testbed, TestbedConfig
from repro.harness.report import Table

__all__ = ["Testbed", "TestbedConfig", "Table"]
