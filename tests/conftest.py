"""Test configuration: make the tests directory importable for helpers,
and run the whole suite under the runtime invariant sanitizer so every
end-to-end scenario doubles as an invariant regression net
(REPRO_SANITIZE=0 opts back out)."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
sys.path.insert(0, os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir, "src")))

from repro.analysis import sanitizer  # noqa: E402

if os.environ.get("REPRO_SANITIZE", "1").lower() not in ("0", "false", "off", "no"):
    sanitizer.enable()
