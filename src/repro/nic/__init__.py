"""NIC hardware model: context cache, PCIe/DMA accounting, and the
offload-capable NIC device (a ConnectX-6 Dx stand-in)."""

from repro.nic.cache import ContextCache
from repro.nic.pcie import PcieModel
from repro.nic.nic import OffloadNic

__all__ = ["ContextCache", "PcieModel", "OffloadNic"]
