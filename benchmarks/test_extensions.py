"""Extension benchmarks — §7 applicability, beyond the paper's own
evaluation: the datagram (DTLS) offload, inline decompression, the RPC
copy offload, and the magic-pattern false-positive analysis."""

import random

from repro.harness.report import Table
from repro.harness.testbed import Testbed, TestbedConfig
from repro.l5p.nvme_tcp.pdu import NvmeAdapter, NvmeConfig
from repro.l5p.rpc import RpcClient, RpcConfig, RpcServer
from repro.l5p.tls.record import TlsAdapter
from repro.util.units import gbps


def test_ext_rpc_copy_offload(benchmark, emit):
    def run(offload):
        tb = Testbed(TestbedConfig(seed=3, server_cores=1, generator_cores=4))
        service = RpcServer(tb.generator, port=7000)
        blob = bytes(128 * 1024)
        service.register(1, lambda args: blob)
        cfg = RpcConfig(rx_offload_crc=offload, rx_offload_copy=offload)
        client = RpcClient(tb.server, "generator", port=7000, config=cfg)
        done = []
        outstanding = 8

        def issue():
            client.call(1, {}, finish)

        def finish(value, lat):
            done.append(lat)
            issue()

        def start():
            for _ in range(outstanding):
                issue()

        tb.server.sim.call_soon(start)
        tb.run(until=30e-3)
        moved = len(done) * len(blob)
        return {
            "gbps": gbps(max(moved, 1), 30e-3),
            "placed": client.stats["placed"],
            "cycles": tb.server.cpu.total_cycles,
            "calls": len(done),
        }

    results = benchmark.pedantic(lambda: (run(False), run(True)), rounds=1, iterations=1)
    base, off = results
    table = Table(
        ["config", "Gbps", "calls", "NIC-placed", "client Mcycles"],
        title="Extension: RPC response copy+CRC offload (128KiB blobs)",
    )
    table.row("software", base["gbps"], base["calls"], base["placed"], base["cycles"] / 1e6)
    table.row("offload", off["gbps"], off["calls"], off["placed"], off["cycles"] / 1e6)
    emit(
        "ext_rpc_offload",
        table.render(),
        metrics={
            "sw.gbps": base["gbps"],
            "sw.calls": base["calls"],
            "sw.mcycles": base["cycles"] / 1e6,
            "offload.gbps": off["gbps"],
            "offload.calls": off["calls"],
            "offload.placed": off["placed"],
            "offload.mcycles": off["cycles"] / 1e6,
        },
    )

    assert off["placed"] == off["calls"] > 0
    assert off["gbps"] > base["gbps"]


def test_ext_magic_false_positives(benchmark, emit):
    """DESIGN.md ablation: how often does each L5P's magic pattern match
    random payload bytes?  Rarely enough that speculative tracking (which
    verifies chained headers) converges quickly."""

    def scan():
        rng = random.Random(7)
        data = rng.randbytes(2_000_000)
        tls = TlsAdapter()
        nvme = NvmeAdapter(NvmeConfig())
        hits = {"tls": 0, "nvme": 0}
        for i in range(len(data) - 16):
            if tls.check_magic(data[i : i + tls.magic_len], None):
                hits["tls"] += 1
            if nvme.check_magic(data[i : i + nvme.magic_len], None):
                hits["nvme"] += 1
        return len(data), hits

    total, hits = benchmark.pedantic(scan, rounds=1, iterations=1)
    table = Table(
        ["adapter", "candidates / MB", "false-positive rate"],
        title="Extension: magic-pattern false positives on random bytes",
    )
    metrics = {"windows": total}
    for name in ("tls", "nvme"):
        rate = hits[name] / total
        table.row(name, hits[name] / (total / 1e6), f"{rate:.2e}")
        metrics[f"{name}.hits"] = hits[name]
    emit("ext_magic_false_positives", table.render(), metrics=metrics)

    # TLS: 6 valid types x 1 version x ~16K lengths out of 2^40 ~ 1e-7;
    # NVMe's CH constraints are similarly tight.  Either way far below
    # one candidate per packet, so tracking converges.
    assert hits["tls"] / total < 1e-4
    assert hits["nvme"] / total < 1e-4
