#!/usr/bin/env python3
"""Scenario: remote block storage over NVMe-TCP with inline CRC + data
placement offload (the paper's §5.1).

Mounts a remote Optane-class drive over NVMe-TCP, runs random reads at
increasing queue depth, and shows the zero-copy effect: with the offload
the NIC DMA-writes payloads straight into block-layer buffers and checks
the CRC32C digests inline, so the host's copy+crc cycles vanish.

Run:  python examples/remote_block_storage.py
"""

from repro.apps.fio import FioJob
from repro.harness.report import Table
from repro.harness.testbed import Testbed, TestbedConfig
from repro.l5p.nvme_tcp import NvmeConfig, NvmeTcpHost, NvmeTcpTarget
from repro.storage.blockdev import BlockDevice


def run(offload: bool, iodepth: int = 32, block_size: int = 256 * 1024):
    tb = Testbed(TestbedConfig(seed=2, server_cores=1, generator_cores=8))
    device = BlockDevice(tb.sim)
    NvmeTcpTarget(tb.generator, device, config=NvmeConfig(digest_name="fast", tx_offload=True)).start()
    nvme = NvmeTcpHost(
        tb.server,
        config=NvmeConfig(
            digest_name="fast",
            rx_offload_crc=offload,
            rx_offload_copy=offload,
            queue_depth=iodepth * 2,
        ),
    )
    nvme.connect("generator")
    job = FioJob(nvme, block_size=block_size, iodepth=iodepth)
    job.start()
    tb.run(until=0.004)
    tb.server.cpu.reset_stats()
    before = job.stats.completed
    tb.run(until=0.014)
    cats = tb.server.cpu.cycles_by_category()
    requests = job.stats.completed - before
    return {
        "iops": requests / 0.010,
        "gbps": requests * block_size * 8 / 0.010 / 1e9,
        "copy": cats.get("copy", 0) / max(1, requests),
        "crc": cats.get("crc", 0) / max(1, requests),
        "placed": nvme.stats.pdus_placed,
    }


def main() -> None:
    base = run(offload=False)
    off = run(offload=True)
    table = Table(
        ["config", "Gbps", "IOPS", "copy cyc/req", "crc cyc/req", "NIC-placed PDUs"],
        title="Random 256KiB reads from a remote NVMe-TCP drive (1 core)",
    )
    table.row("software", base["gbps"], base["iops"], base["copy"], base["crc"], base["placed"])
    table.row("offload", off["gbps"], off["iops"], off["copy"], off["crc"], off["placed"])
    table.show()
    print()
    print("With the autonomous offload, C2HData payloads land directly in")
    print("their block-layer buffers (memcpy src == dst is skipped) and the")
    print("CRC32C data digests are verified by the NIC as packets fly by.")


if __name__ == "__main__":
    main()
