"""Shared benchmark-suite knobs.

``REPRO_BENCH_QUICK=1`` selects the reduced-scale sweeps the CI
bench-smoke job runs: same experiments and assertions, smaller grids.
Quick runs emit under a ``_quick``-suffixed name so their JSON compares
against the quick entries of ``benchmarks/baseline.json`` and never
collides with full-scale results.
"""

import os

QUICK = os.environ.get("REPRO_BENCH_QUICK", "").lower() in ("1", "true", "yes", "on")


def bench_name(name: str) -> str:
    """The emission name for the current scale."""
    return f"{name}_quick" if QUICK else name


def loss_pct(loss: float) -> str:
    """Stable metric-key fragment for a loss point (``loss3`` for 3%)."""
    return f"loss{round(100 * loss)}"
