"""AES block cipher (FIPS 197), from scratch.

Supports 128-, 192- and 256-bit keys.  The S-box is derived from the
GF(2^8) multiplicative inverse rather than pasted in, so the whole
construction is self-contained and checkable.

Only the forward cipher is needed by GCM (CTR mode), but the inverse
cipher is provided too and exercised by the test suite.
"""

from __future__ import annotations


def _xtime(a: int) -> int:
    """Multiply by x in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8)."""
    out = 0
    while b:
        if b & 1:
            out ^= a
        a = _xtime(a)
        b >>= 1
    return out


def _build_sbox() -> tuple[bytes, bytes]:
    """Compute the AES S-box and its inverse from first principles."""
    # Multiplicative inverses via exponentiation: a^254 = a^-1 in GF(2^8).
    inv = [0] * 256
    for a in range(1, 256):
        x = a
        for _ in range(6):  # a^(2^k) chain computing a^254
            x = _gf_mul(x, x)
            x = _gf_mul(x, a)
        inv[a] = _gf_mul(x, x)
    sbox = bytearray(256)
    for a in range(256):
        b = inv[a]
        # Affine transformation over GF(2).
        res = 0
        for i in range(8):
            bit = (
                (b >> i)
                ^ (b >> ((i + 4) % 8))
                ^ (b >> ((i + 5) % 8))
                ^ (b >> ((i + 6) % 8))
                ^ (b >> ((i + 7) % 8))
                ^ (0x63 >> i)
            ) & 1
            res |= bit << i
        sbox[a] = res
    inv_sbox = bytearray(256)
    for a, s in enumerate(sbox):
        inv_sbox[s] = a
    return bytes(sbox), bytes(inv_sbox)


SBOX, INV_SBOX = _build_sbox()

_RCON = [0x01]
while len(_RCON) < 14:
    _RCON.append(_xtime(_RCON[-1]))

# T-tables for the fused SubBytes+ShiftRows+MixColumns round, built once.
_T0 = []
for _s in SBOX:
    _t = (_gf_mul(_s, 2) << 24) | (_s << 16) | (_s << 8) | _gf_mul(_s, 3)
    _T0.append(_t)
_T1 = [((t >> 8) | ((t & 0xFF) << 24)) & 0xFFFFFFFF for t in _T0]
_T2 = [((t >> 16) | ((t & 0xFFFF) << 16)) & 0xFFFFFFFF for t in _T0]
_T3 = [((t >> 24) | ((t & 0xFFFFFF) << 8)) & 0xFFFFFFFF for t in _T0]


class AES:
    """The AES block cipher for a fixed key."""

    BLOCK_SIZE = 16

    def __init__(self, key: bytes):
        if len(key) not in (16, 24, 32):
            raise ValueError(f"invalid AES key length {len(key)}")
        self.key = bytes(key)
        self.rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(self.key)

    def _expand_key(self, key: bytes) -> list[int]:
        """Key schedule, returned as a flat list of 32-bit words."""
        nk = len(key) // 4
        words = [int.from_bytes(key[4 * i : 4 * i + 4], "big") for i in range(nk)]
        total = 4 * (self.rounds + 1)
        for i in range(nk, total):
            temp = words[i - 1]
            if i % nk == 0:
                temp = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF  # RotWord
                temp = (
                    (SBOX[(temp >> 24) & 0xFF] << 24)
                    | (SBOX[(temp >> 16) & 0xFF] << 16)
                    | (SBOX[(temp >> 8) & 0xFF] << 8)
                    | SBOX[temp & 0xFF]
                )
                temp ^= _RCON[i // nk - 1] << 24
            elif nk > 6 and i % nk == 4:
                temp = (
                    (SBOX[(temp >> 24) & 0xFF] << 24)
                    | (SBOX[(temp >> 16) & 0xFF] << 16)
                    | (SBOX[(temp >> 8) & 0xFF] << 8)
                    | SBOX[temp & 0xFF]
                )
            words.append(words[i - nk] ^ temp)
        return words

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt a single 16-byte block."""
        if len(block) != 16:
            raise ValueError("AES block must be 16 bytes")
        rk = self._round_keys
        s0 = int.from_bytes(block[0:4], "big") ^ rk[0]
        s1 = int.from_bytes(block[4:8], "big") ^ rk[1]
        s2 = int.from_bytes(block[8:12], "big") ^ rk[2]
        s3 = int.from_bytes(block[12:16], "big") ^ rk[3]
        t0 = t1 = t2 = t3 = 0
        for rnd in range(1, self.rounds):
            k = 4 * rnd
            t0 = _T0[s0 >> 24] ^ _T1[(s1 >> 16) & 0xFF] ^ _T2[(s2 >> 8) & 0xFF] ^ _T3[s3 & 0xFF] ^ rk[k]
            t1 = _T0[s1 >> 24] ^ _T1[(s2 >> 16) & 0xFF] ^ _T2[(s3 >> 8) & 0xFF] ^ _T3[s0 & 0xFF] ^ rk[k + 1]
            t2 = _T0[s2 >> 24] ^ _T1[(s3 >> 16) & 0xFF] ^ _T2[(s0 >> 8) & 0xFF] ^ _T3[s1 & 0xFF] ^ rk[k + 2]
            t3 = _T0[s3 >> 24] ^ _T1[(s0 >> 16) & 0xFF] ^ _T2[(s1 >> 8) & 0xFF] ^ _T3[s2 & 0xFF] ^ rk[k + 3]
            s0, s1, s2, s3 = t0, t1, t2, t3
        k = 4 * self.rounds
        out = bytearray(16)
        # Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
        cols = (s0, s1, s2, s3)
        for c in range(4):
            word = (
                (SBOX[cols[c] >> 24] << 24)
                | (SBOX[(cols[(c + 1) % 4] >> 16) & 0xFF] << 16)
                | (SBOX[(cols[(c + 2) % 4] >> 8) & 0xFF] << 8)
                | SBOX[cols[(c + 3) % 4] & 0xFF]
            ) ^ rk[k + c]
            out[4 * c : 4 * c + 4] = word.to_bytes(4, "big")
        return bytes(out)

    def ctr_keystream(self, counter: int, nblocks: int) -> bytes:
        """Keystream for ``nblocks`` consecutive CTR blocks.

        ``counter`` is the 128-bit counter block as an int; successive
        blocks increment its low 32 bits modulo 2^32 (GCM's ``inc32``).
        Byte-identical to concatenating :meth:`encrypt_block` over the
        same counter sequence, but the whole batch is expanded in one
        call: no per-block bytes round-trips, and the 12 first-round
        table lookups that depend only on the constant 96-bit nonce
        prefix are hoisted out of the block loop.
        """
        rk = self._round_keys
        rounds = self.rounds
        T0, T1, T2, T3 = _T0, _T1, _T2, _T3
        sbox = SBOX
        out = bytearray(16 * nblocks)
        low = counter & 0xFFFFFFFF
        s0 = ((counter >> 96) & 0xFFFFFFFF) ^ rk[0]
        s1 = ((counter >> 64) & 0xFFFFFFFF) ^ rk[1]
        s2 = ((counter >> 32) & 0xFFFFFFFF) ^ rk[2]
        rk3 = rk[3]
        # First-round contributions from the constant counter prefix.
        c0 = T0[s0 >> 24] ^ T1[(s1 >> 16) & 0xFF] ^ T2[(s2 >> 8) & 0xFF] ^ rk[4]
        c1 = T0[s1 >> 24] ^ T1[(s2 >> 16) & 0xFF] ^ T3[s0 & 0xFF] ^ rk[5]
        c2 = T0[s2 >> 24] ^ T2[(s0 >> 8) & 0xFF] ^ T3[s1 & 0xFF] ^ rk[6]
        c3 = T1[(s0 >> 16) & 0xFF] ^ T2[(s1 >> 8) & 0xFF] ^ T3[s2 & 0xFF] ^ rk[7]
        klast = 4 * rounds
        pos = 0
        for _ in range(nblocks):
            s3 = low ^ rk3
            t0 = c0 ^ T3[s3 & 0xFF]
            t1 = c1 ^ T2[(s3 >> 8) & 0xFF]
            t2 = c2 ^ T1[(s3 >> 16) & 0xFF]
            t3 = c3 ^ T0[s3 >> 24]
            for rnd in range(2, rounds):
                k = 4 * rnd
                u0 = T0[t0 >> 24] ^ T1[(t1 >> 16) & 0xFF] ^ T2[(t2 >> 8) & 0xFF] ^ T3[t3 & 0xFF] ^ rk[k]
                u1 = T0[t1 >> 24] ^ T1[(t2 >> 16) & 0xFF] ^ T2[(t3 >> 8) & 0xFF] ^ T3[t0 & 0xFF] ^ rk[k + 1]
                u2 = T0[t2 >> 24] ^ T1[(t3 >> 16) & 0xFF] ^ T2[(t0 >> 8) & 0xFF] ^ T3[t1 & 0xFF] ^ rk[k + 2]
                u3 = T0[t3 >> 24] ^ T1[(t0 >> 16) & 0xFF] ^ T2[(t1 >> 8) & 0xFF] ^ T3[t2 & 0xFF] ^ rk[k + 3]
                t0, t1, t2, t3 = u0, u1, u2, u3
            w0 = (
                (sbox[t0 >> 24] << 24) | (sbox[(t1 >> 16) & 0xFF] << 16) | (sbox[(t2 >> 8) & 0xFF] << 8) | sbox[t3 & 0xFF]
            ) ^ rk[klast]
            w1 = (
                (sbox[t1 >> 24] << 24) | (sbox[(t2 >> 16) & 0xFF] << 16) | (sbox[(t3 >> 8) & 0xFF] << 8) | sbox[t0 & 0xFF]
            ) ^ rk[klast + 1]
            w2 = (
                (sbox[t2 >> 24] << 24) | (sbox[(t3 >> 16) & 0xFF] << 16) | (sbox[(t0 >> 8) & 0xFF] << 8) | sbox[t1 & 0xFF]
            ) ^ rk[klast + 2]
            w3 = (
                (sbox[t3 >> 24] << 24) | (sbox[(t0 >> 16) & 0xFF] << 16) | (sbox[(t1 >> 8) & 0xFF] << 8) | sbox[t2 & 0xFF]
            ) ^ rk[klast + 3]
            out[pos : pos + 16] = ((w0 << 96) | (w1 << 64) | (w2 << 32) | w3).to_bytes(16, "big")
            pos += 16
            low = (low + 1) & 0xFFFFFFFF
        return bytes(out)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt a single 16-byte block (straightforward, non-table)."""
        if len(block) != 16:
            raise ValueError("AES block must be 16 bytes")
        state = [[block[r + 4 * c] for c in range(4)] for r in range(4)]
        rk = self._round_keys

        def add_round_key(rnd: int) -> None:
            for c in range(4):
                word = rk[4 * rnd + c]
                for r in range(4):
                    state[r][c] ^= (word >> (24 - 8 * r)) & 0xFF

        def inv_shift_rows() -> None:
            for r in range(1, 4):
                state[r] = state[r][-r:] + state[r][:-r]

        def inv_sub_bytes() -> None:
            for r in range(4):
                for c in range(4):
                    state[r][c] = INV_SBOX[state[r][c]]

        def inv_mix_columns() -> None:
            for c in range(4):
                col = [state[r][c] for r in range(4)]
                state[0][c] = _gf_mul(col[0], 14) ^ _gf_mul(col[1], 11) ^ _gf_mul(col[2], 13) ^ _gf_mul(col[3], 9)
                state[1][c] = _gf_mul(col[0], 9) ^ _gf_mul(col[1], 14) ^ _gf_mul(col[2], 11) ^ _gf_mul(col[3], 13)
                state[2][c] = _gf_mul(col[0], 13) ^ _gf_mul(col[1], 9) ^ _gf_mul(col[2], 14) ^ _gf_mul(col[3], 11)
                state[3][c] = _gf_mul(col[0], 11) ^ _gf_mul(col[1], 13) ^ _gf_mul(col[2], 9) ^ _gf_mul(col[3], 14)

        add_round_key(self.rounds)
        for rnd in range(self.rounds - 1, 0, -1):
            inv_shift_rows()
            inv_sub_bytes()
            add_round_key(rnd)
            inv_mix_columns()
        inv_shift_rows()
        inv_sub_bytes()
        add_round_key(0)
        return bytes(state[r + 0][c] for c in range(4) for r in range(4))
