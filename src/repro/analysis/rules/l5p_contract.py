"""SIM009–SIM011 — the Table-3 offloadability contract, machine-checked.

The paper's Table 3 names the preconditions an L5P must satisfy before
its data-intensive operation can ride the NIC: a plaintext magic
pattern plus length field for receive resynchronization (§3.3), an
incrementally computable transform with constant-size state (§3.2),
and recovery/degradation upcalls so software can take over when the
offload loses its place (§4, §5.3).  ``repro.l5p`` is growing into a
generic plugin surface; these rules make the preconditions structural
properties of the code, checked on every class that claims the
surface, instead of conventions a new plugin can silently skip:

- **SIM009** (magic-framing): a direct ``L5pAdapter`` subclass must
  declare a non-trivial magic pattern (``magic_len``/``header_len``
  not literal zero), ``check_magic`` must be able to say *no* (not a
  bare ``return True``), and ``parse_header`` must have a rejection
  path (``return None`` or ``raise``) — otherwise speculative resync
  locks onto garbage.
- **SIM010** (incremental-transform): a ``MsgTransform.process`` that
  accumulates the raw ``data`` into instance state while returning
  nothing derived from it is whole-message buffering — the state the
  NIC would need grows with the message, violating the constant-size
  context budget (208 B/flow, §6.4).
- **SIM011** (upcall-wiring): a class implementing any of the Listing-2
  upcalls (``l5o_get_tx_msgstate``/``l5o_resync_rx_req``) must
  implement the full set including ``l5o_offload_degraded``, so the
  driver's §5.3 graceful-degradation path (``repro.faults``) always
  has someone to notify.
- **SIM014** (plugin-declaration): literal ``L5Protocol`` /
  ``MagicSpec`` / ``Table3Preconditions`` declarations (the
  ``repro.l5p.plugin`` registry surface) must be statically coherent:
  pattern/mask lengths agree, the mask is not all-zero, ``confidence``
  lies in (0, 1], the protocol name is lowercase, and every Table-3
  row is asserted ``True`` explicitly — a literal ``False`` (or an
  omitted row, which defaults ``False``) means the protocol is not
  autonomously offloadable and the declaration would be rejected at
  import time anyway; the lint moves that failure to review time.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from repro.analysis.lint import Finding, LintRule, SourceModule

_ADAPTER_BASE = "L5pAdapter"
_TRANSFORM_BASE = "MsgTransform"
#: Modules defining the abstract surfaces themselves.
_TYPES_HOME = "repro/core/types.py"
_DRIVER_HOME = "repro/core/driver.py"

_UPCALLS = ("l5o_get_tx_msgstate", "l5o_resync_rx_req")
_DEGRADE_UPCALL = "l5o_offload_degraded"
#: Module defining the plugin declaration surface itself.
_PLUGIN_HOME = "repro/l5p/plugin.py"

_TABLE3_ROWS = (
    "size_preserving",
    "incremental_constant_state",
    "header_plaintext_length",
    "magic_identifiable",
    "state_from_msg_index",
)


def _base_names(node: ast.ClassDef) -> set:
    names = set()
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


def _class_attr_value(node: ast.ClassDef, name: str) -> Optional[ast.expr]:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return stmt.value
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if stmt.target.id == name:
                return stmt.value
    return None


def _method(node: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) and stmt.name == name:
            return stmt
    return None


def _method_names(node: ast.ClassDef) -> set:
    return {
        stmt.name
        for stmt in node.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _body_sans_docstring(fn: ast.FunctionDef) -> list:
    body = list(fn.body)
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        body = body[1:]
    return body


class MagicFramingRule(LintRule):
    code = "SIM009"
    name = "l5p-magic-framing"
    description = "L5P adapters must declare a discriminating magic pattern and rejectable header framing"
    family = "contract"

    def check(self, module: SourceModule) -> Iterable[Finding]:
        if module.posix_path.endswith(_TYPES_HOME):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef) or _ADAPTER_BASE not in _base_names(node):
                continue
            yield from self._check_adapter(module, node)

    def _check_adapter(self, module: SourceModule, node: ast.ClassDef) -> Iterator[Finding]:
        for attr in ("magic_len", "header_len"):
            value = _class_attr_value(node, attr)
            if isinstance(value, ast.Constant) and value.value == 0:
                yield module.finding(
                    value,
                    self.code,
                    f"adapter `{node.name}` declares `{attr} = 0`: without a plaintext "
                    "magic/length pattern the NIC cannot resynchronize after a drop (Table 3)",
                )
        check_magic = _method(node, "check_magic")
        if check_magic is not None:
            body = _body_sans_docstring(check_magic)
            if (
                len(body) == 1
                and isinstance(body[0], ast.Return)
                and isinstance(body[0].value, ast.Constant)
                and body[0].value.value is True
            ):
                yield module.finding(
                    check_magic,
                    self.code,
                    f"`{node.name}.check_magic` accepts every window: a magic pattern must be "
                    "able to reject a candidate header, or speculation locks onto garbage (§3.3)",
                )
        parse_header = _method(node, "parse_header")
        if parse_header is not None and not self._can_reject(parse_header):
            yield module.finding(
                parse_header,
                self.code,
                f"`{node.name}.parse_header` has no rejection path (`return None` or `raise`): "
                "length framing requires the header validator to refuse garbage (Table 3)",
            )

    @staticmethod
    def _can_reject(fn: ast.FunctionDef) -> bool:
        for node in ast.walk(fn):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Return):
                if node.value is None:
                    return True
                if isinstance(node.value, ast.Constant) and node.value.value is None:
                    return True
                # Delegation (`return other_parse(...)` / conditional exprs)
                # can carry the rejection; accept any non-constructor call.
                if isinstance(node.value, ast.IfExp):
                    return True
                if isinstance(node.value, ast.Call):
                    name = (
                        node.value.func.attr
                        if isinstance(node.value.func, ast.Attribute)
                        else getattr(node.value.func, "id", "")
                    )
                    if name not in ("MessageDesc",):
                        return True
        return False


class IncrementalTransformRule(LintRule):
    code = "SIM010"
    name = "l5p-incremental-transform"
    description = "MsgTransform.process must stay incremental, not buffer the whole message"
    family = "contract"

    def check(self, module: SourceModule) -> Iterable[Finding]:
        if module.posix_path.endswith(_TYPES_HOME):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef) or _TRANSFORM_BASE not in _base_names(node):
                continue
            process = _method(node, "process")
            if process is None or not process.args.args or len(process.args.args) < 2:
                continue
            data_param = process.args.args[1].arg  # (self, data, ...)
            if self._buffers_whole_payload(process, data_param) and not self._returns_payload(
                process, data_param
            ):
                yield module.finding(
                    process,
                    self.code,
                    f"`{node.name}.process` accumulates `{data_param}` into instance state and "
                    "returns nothing derived from it: that is whole-message buffering, not an "
                    "incremental transform (Table 3: constant-size per-message state)",
                )

    @staticmethod
    def _buffers_whole_payload(fn: ast.FunctionDef, data_param: str) -> bool:
        """``self.X += data`` / ``self.X.append(data)`` with the raw param."""
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.AugAssign)
                and isinstance(node.target, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == data_param
            ):
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("append", "extend")
                and isinstance(node.func.value, ast.Attribute)
                and len(node.args) == 1
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id == data_param
            ):
                return True
        return False

    @staticmethod
    def _returns_payload(fn: ast.FunctionDef, data_param: str) -> bool:
        """Any return whose value is not a trivial empty constant."""
        for node in ast.walk(fn):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            if isinstance(node.value, ast.Constant) and node.value.value in (None, b"", ""):
                continue
            return True
        return False


class UpcallWiringRule(LintRule):
    code = "SIM011"
    name = "l5p-upcall-wiring"
    description = "Listing-2 implementors must wire the full upcall set incl. l5o_offload_degraded"
    family = "contract"

    def check(self, module: SourceModule) -> Iterable[Finding]:
        if module.posix_path.endswith(_DRIVER_HOME):
            return  # the L5pOps Protocol definition itself
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            defined = _method_names(node)
            if not defined.intersection(_UPCALLS):
                continue
            required = set(_UPCALLS) | {_DEGRADE_UPCALL}
            missing = sorted(required - defined)
            if missing:
                yield module.finding(
                    node,
                    self.code,
                    f"`{node.name}` implements the Listing-2 upcall surface but is missing "
                    f"{', '.join(missing)}: the driver's graceful-degradation path (§5.3) "
                    "must be able to notify every L5P endpoint",
                )


def _call_name(node: ast.Call) -> str:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return getattr(node.func, "id", "")


def _kwarg(node: ast.Call, name: str) -> Optional[ast.expr]:
    for kw in node.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _literal(value: Optional[ast.expr]):
    """The constant behind ``value``, or None when not a plain literal."""
    if isinstance(value, ast.Constant):
        return value.value
    return None


class PluginDeclarationRule(LintRule):
    code = "SIM014"
    name = "l5p-plugin-declaration"
    description = "Literal L5Protocol/MagicSpec/Table3Preconditions declarations must be coherent"
    family = "contract"

    def check(self, module: SourceModule) -> Iterable[Finding]:
        if module.posix_path.endswith(_PLUGIN_HOME):
            return  # the declaration surface itself
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name == "MagicSpec":
                yield from self._check_magic_spec(module, node)
            elif name == "L5Protocol":
                yield from self._check_protocol(module, node)

    def _check_magic_spec(self, module: SourceModule, node: ast.Call) -> Iterator[Finding]:
        pattern = _literal(_kwarg(node, "pattern"))
        mask = _literal(_kwarg(node, "mask"))
        if isinstance(pattern, bytes) and isinstance(mask, bytes):
            if len(pattern) != len(mask):
                yield module.finding(
                    node,
                    self.code,
                    f"MagicSpec pattern ({len(pattern)}B) and mask ({len(mask)}B) lengths "
                    "disagree: the TCAM match is positional, so every pattern byte needs a "
                    "mask byte (§3.3)",
                )
            if pattern == b"":
                yield module.finding(
                    node, self.code, "MagicSpec.pattern is empty: nothing for resync to match on"
                )
            if mask and not any(mask):
                yield module.finding(
                    node,
                    self.code,
                    "MagicSpec.mask is all zeroes: it matches every window, so speculative "
                    "search degenerates to confirming every byte position (§3.3)",
                )
        confidence = _literal(_kwarg(node, "confidence"))
        if isinstance(confidence, (int, float)) and not 0.0 < float(confidence) <= 1.0:
            yield module.finding(
                node,
                self.code,
                f"MagicSpec.confidence {confidence!r} outside (0, 1]: it is a declared "
                "false-positive-rate bound, gated by the fig_l5p_plugins study",
            )

    def _check_protocol(self, module: SourceModule, node: ast.Call) -> Iterator[Finding]:
        proto_name = _literal(_kwarg(node, "name"))
        label = proto_name if isinstance(proto_name, str) else "<dynamic>"
        if isinstance(proto_name, str) and (not proto_name or proto_name != proto_name.lower()):
            yield module.finding(
                node,
                self.code,
                f"L5Protocol name {proto_name!r} must be non-empty lowercase: registry "
                "lookups are exact-match",
            )
        pre = _kwarg(node, "preconditions")
        if isinstance(pre, ast.Call) and _call_name(pre) == "Table3Preconditions":
            given = {kw.arg: _literal(kw.value) for kw in pre.keywords}
            for row in _TABLE3_ROWS:
                if row not in given:
                    yield module.finding(
                        pre,
                        self.code,
                        f"protocol {label!r} omits Table-3 row `{row}` (defaults False): "
                        "every precondition must be asserted explicitly, or the protocol "
                        "is declaring itself non-offloadable",
                    )
                elif given[row] is False:
                    yield module.finding(
                        pre,
                        self.code,
                        f"protocol {label!r} declares Table-3 row `{row}=False`: an L5P "
                        "failing Table 3 is not autonomously offloadable and register() "
                        "will reject it at import time",
                    )
        magic = _kwarg(node, "magic")
        header_len = _literal(_kwarg(node, "header_len"))
        if isinstance(magic, ast.Call) and _call_name(magic) == "MagicSpec":
            pattern = _literal(_kwarg(magic, "pattern"))
            if isinstance(pattern, bytes) and isinstance(header_len, int):
                if len(pattern) > header_len:
                    yield module.finding(
                        node,
                        self.code,
                        f"protocol {label!r}: magic pattern ({len(pattern)}B) exceeds "
                        f"header_len ({header_len}B) — the NIC only has the header to "
                        "match against (§3.3)",
                    )
