"""Wall-clock probe for the parallel experiment-execution engine.

Runs the Figure 19 scalability grid twice — serially and through
``repro.exec.run_grid`` with N workers — times both, verifies the merged
results are identical, and writes ``benchmarks/out/exec_speedup.json``.

This is a *probe*, not a pytest benchmark: it measures wall-clock (host
time, not simulated time), so it lives outside ``src/repro`` where the
SIM001 lint rule forbids wall-clock reads.  Speedup depends on the host:
with ``cpu_count`` cores, expect roughly ``min(workers, cpu_count)``×
minus merge overhead (≥1.8× at 4 workers on a 4-core host); on a 1-core
host the parallel run is slightly *slower* and the JSON records that
honestly.  See docs/performance.md.

Usage::

    PYTHONPATH=src python benchmarks/exec_speedup.py [--workers 4] [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.exec import run_grid
from repro.experiments.scalability import run_scale_point

# The full Figure 19 grid (benchmarks/test_fig19_scalability.py).
CONNECTIONS = (64, 512, 2048)
QUICK_CONNECTIONS = (64, 2048)
VARIANTS = ("https", "offload+zc", "http")


def run_point(point):
    conns, variant = point
    return run_scale_point(conns, variant=variant, measure=8e-3)


def measure(points, workers):
    # Wall-clock on purpose: this probe measures host time, not sim time
    # (see module docstring).
    start = time.perf_counter()  # sim: noqa[SIM001]
    results = run_grid(points, run_point, workers=workers)
    return time.perf_counter() - start, results  # sim: noqa[SIM001]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=4, help="parallel worker count (default 4)")
    parser.add_argument("--quick", action="store_true", help="use the quick (2-connection) grid")
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(__file__), "out", "exec_speedup.json"),
        help="output JSON path",
    )
    args = parser.parse_args(argv)

    conns = QUICK_CONNECTIONS if args.quick else CONNECTIONS
    points = [(c, v) for c in conns for v in VARIANTS]
    print(f"grid: fig19 ({len(points)} points), workers={args.workers}, cpu_count={os.cpu_count()}")

    serial_s, serial_results = measure(points, workers=1)
    print(f"serial:   {serial_s:.2f}s")
    parallel_s, parallel_results = measure(points, workers=args.workers)
    print(f"parallel: {parallel_s:.2f}s  ({serial_s / parallel_s:.2f}x)")

    identical = serial_results == parallel_results
    if not identical:
        print("ERROR: serial and parallel merged results differ (determinism contract broken)")

    report = {
        "grid": "fig19_quick" if args.quick else "fig19",
        "points": len(points),
        "workers": args.workers,
        "cpu_count": os.cpu_count(),
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 3),
        "identical": identical,
    }
    os.makedirs(os.path.dirname(args.out), exist_ok=True)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 0 if identical else 1


if __name__ == "__main__":
    raise SystemExit(main())
