"""NIC lifecycle fault domain: crash, reset, and hot recovery (§2).

The paper's central robustness argument is *offload dependence*: because
every byte of TCP/L5P state is host-owned, a NIC crash or firmware reset
can only cost performance, never correctness.  This module makes that
claim executable.  Each :class:`~repro.nic.nic.OffloadNic` owns a
dormant :class:`NicLifecycle`; arming it with a
:class:`repro.faults.plan.NicLifecycleProfile` drives the state machine

    RUNNING -> HUNG -> RESETTING -> REATTACHING -> RUNNING

- **HUNG** — the firmware stops responding (scripted hang window or the
  seeded-random crash hazard).  Offload engines go dark immediately;
  packets still flow, produced by the *driver's context shadow* in
  software (TX) or handled by the L5P's software receive path (RX).
- **RESETTING** — the driver's watchdog missed enough heartbeats and
  initiated a reset: every HW context is torn down (context cache
  flushed, flow tables drained, in-flight DMA walks aborted) while
  traffic keeps riding the software fallback.
- **REATTACHING** — the function came back; the driver re-installs
  contexts from host-owned connection state via ``l5o_create`` in paced
  batches (no thundering herd on the context cache), and each flow
  resynchronizes through the standard Figure 7 / §4.2 machinery.
- Back in **RUNNING**, the outage duration is recorded and offloaded
  completions are legal again (sanitizer rule ``SAN-NIC-LIFE``).

The ``toe`` personality models the rival full-TCP-offload design
(*PnO-TCP* / *FlexiNS*): connection state lived on the NIC, so a reset
aborts every offloaded connection instead of recovering it — the
head-to-head contrast in ``benchmarks/test_fig_reset_recovery.py``.

Armed-but-idle is metrics-neutral by construction: heartbeat and hazard
ticks draw from a dedicated rng substream, charge no CPU cycles, and
touch no packet, so every baseline number reproduces exactly.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

from repro.analysis.sanitizer import active as _sanitizer_active

#: Histogram buckets (seconds) for outage duration and per-context
#: reinstall latency — reset latencies are sub-millisecond to tens of ms.
OUTAGE_BUCKETS = (2.5e-4, 5e-4, 1e-3, 2e-3, 4e-3, 8e-3, 1.6e-2, 3.2e-2, 1e-1)


class NicState(Enum):
    RUNNING = "running"
    HUNG = "hung"
    RESETTING = "resetting"
    REATTACHING = "reattaching"


class NicLifecycle:
    """Per-NIC lifecycle state machine; dormant until :meth:`arm`."""

    def __init__(self, nic):
        self.nic = nic
        self.state = NicState.RUNNING
        self.profile = None  # NicLifecycleProfile-shaped, set by arm()
        self.rng = None  # dedicated substream, set by arm()
        # Counters mirrored as plain attributes so metrics-less runs and
        # white-box tests can assert without an Obs registry.
        self.hangs = 0
        self.resets = 0
        self.contexts_lost = 0
        self.dma_aborts = 0
        self.cache_flushed = 0
        self.reinstalls = 0
        self.reinstall_unsupported = 0
        self.fallback_tx_pkts = 0
        self.fallback_rx_pkts = 0
        self.toe_connections_lost = 0
        self.last_outage_s = 0.0
        self._outage_start = 0.0
        # RX flows whose torn-down contexts ride the software path; TX
        # contexts are parked whole (the driver shadow keeps producing
        # correct wire bytes for the queued "wrong bytes", §4.2).
        self._parked_tx: dict[int, object] = {}
        self._fallback_rx_flows: set = set()

    # ------------------------------------------------------------------
    @property
    def armed(self) -> bool:
        return self.profile is not None

    @property
    def running(self) -> bool:
        return self.state is NicState.RUNNING

    def _sim(self):
        return self.nic.host.sim

    def arm(self, profile, rng) -> None:
        """Arm lifecycle faults from a NicLifecycleProfile-shaped object.

        ``rng`` must be a dedicated substream: lifecycle draws must never
        perturb the simulation's other sequences (armed-but-idle runs
        reproduce every baseline metric exactly)."""
        self.profile = profile
        self.rng = rng
        sim = self._sim()
        for start, _end in profile.hang_windows:
            if start >= sim.now:
                sim.at(start, self._on_hang_window, start)
        if profile.crash_prob_per_s > 0:
            sim.schedule(profile.hazard_tick_s, self._hazard_tick)
        self.nic.driver.start_watchdog(profile)

    # ------------------------------------------------------------------
    # state machine
    # ------------------------------------------------------------------
    def _set_state(self, new: NicState, reason: str) -> None:
        old = self.state
        if old is new:
            return
        san = _sanitizer_active()
        if san is not None:
            san.nic_state_edge(self.nic, old.value, new.value)
        self.state = new
        obs = self.nic.obs
        if obs is not None:
            obs.count(f"nic.lifecycle.state.{old.value}->{new.value}")
            obs.event(
                f"nic-{new.value}", lane="nic/lifecycle", cat="lifecycle", reason=reason
            )

    def _on_hang_window(self, start: float) -> None:
        self.inject_hang("hang-window")

    def _hazard_tick(self) -> None:
        profile = self.profile
        if profile is None:
            return
        p = min(1.0, profile.crash_prob_per_s * profile.hazard_tick_s)
        if self.state is NicState.RUNNING and self.rng.random() < p:
            self.inject_hang("crash")
        self._sim().schedule(profile.hazard_tick_s, self._hazard_tick)

    def inject_hang(self, reason: str) -> None:
        """The firmware stops responding.  Offloads go dark at once —
        a hung NIC processes nothing — but contexts are not torn down
        until the watchdog notices and initiates the reset."""
        if self.state is not NicState.RUNNING:
            return  # already down; overlapping triggers are no-ops
        self.hangs += 1
        self._outage_start = self._sim().now
        obs = self.nic.obs
        if obs is not None:
            obs.count("nic.lifecycle.hangs")
        self._set_state(NicState.HUNG, reason)
        self.nic._offloads_online = False

    def begin_reset(self, reason: str) -> None:
        """Tear the device down and schedule the function-level reset
        (called by the driver's watchdog, or directly for a scripted
        admin reset)."""
        if self.state in (NicState.RESETTING, NicState.REATTACHING):
            return
        if self.state is NicState.RUNNING:
            # Direct admin reset: the outage starts now.
            self._outage_start = self._sim().now
            self.nic._offloads_online = False
        self.resets += 1
        obs = self.nic.obs
        if obs is not None:
            obs.count("nic.lifecycle.resets")
        self._set_state(NicState.RESETTING, reason)
        profile = self.profile
        personality = getattr(profile, "personality", "autonomous") if profile else "autonomous"
        requests = self.nic.driver.nic_reset_teardown(personality)
        self.cache_flushed += self.nic.cache.flush()
        lo, hi = profile.reset_latency_s if profile is not None else (5e-4, 1.5e-3)
        latency = lo if hi <= lo or self.rng is None else lo + self.rng.random() * (hi - lo)
        self._sim().schedule(latency, self._reset_complete, requests)

    def _reset_complete(self, requests: list) -> None:
        self._set_state(NicState.REATTACHING, "reset-complete")
        self.nic.driver.begin_reattach(requests, self.profile)

    def reattach_complete(self) -> None:
        """The driver drained its re-install queue: back to RUNNING."""
        self._parked_tx.clear()
        self._fallback_rx_flows.clear()
        self._set_state(NicState.RUNNING, "reattach-complete")
        self.nic._offloads_online = True
        outage = self._sim().now - self._outage_start
        self.last_outage_s = outage
        obs = self.nic.obs
        if obs is not None:
            obs.observe("nic.lifecycle.outage_s", outage, buckets=OUTAGE_BUCKETS)

    # ------------------------------------------------------------------
    # teardown bookkeeping (called by the driver)
    # ------------------------------------------------------------------
    def park_tx(self, ctx) -> None:
        """Keep a torn-down TX context as the driver's software shadow:
        already-queued records carry the L5P's "wrong bytes", so the
        host must keep transforming them until the re-installed context
        takes over (otherwise retransmits would hit the wire raw)."""
        self._parked_tx[ctx.ctx_id] = ctx

    def track_rx_fallback(self, flow) -> None:
        self._fallback_rx_flows.add(flow)

    def note_context_lost(self, mid_walk: bool) -> None:
        self.contexts_lost += 1
        if mid_walk:
            self.dma_aborts += 1
        obs = self.nic.obs
        if obs is not None:
            obs.count("nic.lifecycle.contexts_lost")
            if mid_walk:
                obs.count("nic.lifecycle.dma_aborts")

    def note_toe_connection_lost(self) -> None:
        self.toe_connections_lost += 1
        obs = self.nic.obs
        if obs is not None:
            obs.count("nic.lifecycle.toe.connections_lost")

    def note_reinstall(self) -> None:
        self.reinstalls += 1
        obs = self.nic.obs
        if obs is not None:
            obs.count("nic.lifecycle.reinstalls")
            obs.observe(
                "nic.lifecycle.reinstall_latency_s",
                self._sim().now - self._outage_start,
                buckets=OUTAGE_BUCKETS,
            )

    def note_reinstall_unsupported(self) -> None:
        self.reinstall_unsupported += 1
        obs = self.nic.obs
        if obs is not None:
            obs.count("nic.lifecycle.reinstall_unsupported")

    # ------------------------------------------------------------------
    # offline datapath (the NIC is not RUNNING)
    # ------------------------------------------------------------------
    def fallback_tx_ctx(self, ctx_id: Optional[int]):
        """The context shadow covering ``ctx_id`` during the outage:
        parked (post-teardown) or still-installed (hung, pre-teardown)."""
        if ctx_id is None:
            return None
        driver = self.nic.driver
        ctx_id = driver._ctx_aliases.get(ctx_id, ctx_id)
        ctx = self._parked_tx.get(ctx_id)
        if ctx is None:
            ctx = driver.tx_contexts.get(ctx_id)
        if ctx is not None and ctx.offload_disabled:
            return None
        return ctx

    def transmit_offline(self, conn, pkt) -> None:
        """TX while not RUNNING: the host produces correct wire bytes
        from the driver's shadow (software crypto), and nothing is ever
        marked offloaded (SAN-NIC-LIFE)."""
        ctx = self.fallback_tx_ctx(pkt.tx_ctx_id)
        san = _sanitizer_active()
        entry_offloaded = pkt.meta.offloaded
        if ctx is not None:
            in_len = len(pkt.payload)
            self.nic.tx_engine.process_software(ctx, conn, pkt)
            self.fallback_tx_pkts += 1
            obs = self.nic.obs
            if obs is not None:
                obs.count("nic.lifecycle.fallback_pkts.tx")
            if san is not None:
                san.tx_packet(ctx, pkt.seq, in_len, len(pkt.payload))
        if san is not None:
            san.lifecycle_packet(self.state.value, pkt, entry_offloaded)

    def receive_offline(self, pkt) -> None:
        """RX while not RUNNING: packets pass through untouched; the
        L5P's software receive path (full-record decrypt, software CRC
        + memcpy) consumes them.  No context state is advanced."""
        flow = pkt.flow
        if flow in self._fallback_rx_flows or self.nic.driver.rx_contexts.get(flow) is not None:
            self.fallback_rx_pkts += 1
            obs = self.nic.obs
            if obs is not None:
                obs.count("nic.lifecycle.fallback_pkts.rx")
        san = _sanitizer_active()
        if san is not None:
            san.lifecycle_packet(self.state.value, pkt, pkt.meta.offloaded)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "state": self.state.value,
            "hangs": self.hangs,
            "resets": self.resets,
            "contexts_lost": self.contexts_lost,
            "dma_aborts": self.dma_aborts,
            "cache_flushed": self.cache_flushed,
            "reinstalls": self.reinstalls,
            "reinstall_unsupported": self.reinstall_unsupported,
            "fallback_tx_pkts": self.fallback_tx_pkts,
            "fallback_rx_pkts": self.fallback_rx_pkts,
            "toe_connections_lost": self.toe_connections_lost,
            "last_outage_s": self.last_outage_s,
        }
