"""SIM013 — no per-byte Python loops in hot modules.

The vectorized hot path (docs/performance.md) exists because a Python
``for byte in data:`` loop pays interpreter dispatch per *byte* while
the batched rewrites (slicing-by-8 CRC, whole-record GHASH, multi-block
CTR, big-int XOR) pay it per 8–16 bytes or per record.  A per-byte loop
creeping back into ``crypto/``, ``net/``, or ``core/`` is how the 2x
iperf-TLS win silently erodes, so this rule flags the idiom in those
packages.

Detection is a heuristic tuned to the codebase: a ``for`` statement
whose iterable is a plain name or attribute (i.e. an existing buffer —
not ``range()``, ``enumerate()``, or an unpacked-words call) and whose
loop variable feeds bitwise arithmetic or a table subscript in the body.
Deliberate reference implementations (kept for validating the fast
paths) carry ``# sim: noqa[SIM013]``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.lint import Finding, LintRule, SourceModule

#: Package directories whose inner loops run per packet or per record.
_HOT_DIRS = ("repro/crypto/", "repro/net/", "repro/core/")

#: Operators that mark byte-at-a-time arithmetic on the loop variable.
_BITWISE_OPS = (ast.BitXor, ast.BitAnd, ast.BitOr, ast.LShift, ast.RShift)


def _in_hot_package(module: SourceModule) -> bool:
    posix = module.posix_path
    return any(f"/{d}" in posix or posix.startswith(d) for d in _HOT_DIRS)


def _loop_var_names(target: ast.AST) -> set[str]:
    """Names bound by the loop target (handles tuple targets)."""
    return {n.id for n in ast.walk(target) if isinstance(n, ast.Name)}


def _uses_bytewise_arith(body: list[ast.stmt], names: set[str]) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.BinOp) and isinstance(node.op, _BITWISE_OPS):
                for side in (node.left, node.right):
                    if isinstance(side, ast.Name) and side.id in names:
                        return True
            elif isinstance(node, ast.Subscript):
                # table[byte] / table[byte & 0xFF]-style lookups
                idx = node.slice
                if isinstance(idx, ast.Name) and idx.id in names:
                    return True
    return False


class HotLoopRule(LintRule):
    code = "SIM013"
    name = "no-per-byte-hot-loop"
    description = (
        "per-byte `for byte in data:` loops in hot modules (crypto/, net/, "
        "core/) defeat the vectorized hot path; batch with struct/int-on-bytes"
    )

    def check(self, module: SourceModule) -> Iterable[Finding]:
        if not _in_hot_package(module):
            return
        yield from self._check_loops(module)

    def _check_loops(self, module: SourceModule) -> Iterator[Finding]:
        # Module-level loops run once at import (sbox/table builds) — only
        # loops inside functions can sit on the per-packet path.
        funcs = [
            n for n in ast.walk(module.tree) if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for func in funcs:
            yield from self._check_function(module, func)

    def _check_function(self, module: SourceModule, func: ast.AST) -> Iterator[Finding]:
        for node in ast.walk(func):
            if not isinstance(node, ast.For):
                continue
            # Only direct iteration over a held buffer: `for b in data` /
            # `for b in self._buf`.  Calls (range, enumerate, unpack) and
            # literals are not the per-byte idiom this rule polices.
            if not isinstance(node.iter, (ast.Name, ast.Attribute)):
                continue
            names = _loop_var_names(node.target)
            if not names or not _uses_bytewise_arith(node.body, names):
                continue
            iter_src = ast.unparse(node.iter)
            yield module.finding(
                node,
                self.code,
                f"per-byte loop over `{iter_src}` in a hot module; process 8+ "
                "bytes per iteration (struct unpack, int.from_bytes) or move "
                "the loop off the hot path",
            )
