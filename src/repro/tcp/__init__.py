"""A software TCP implementation (the stack that stays on the CPU).

The paper's whole point is that the NIC does *not* implement TCP; this
package is the OS stack the autonomous offloads leave intact.  It
implements connection setup/teardown, cumulative ACKs, Reno congestion
control with fast retransmit/recovery, RTO with exponential backoff,
delayed ACKs, and receive-side reassembly that preserves per-packet
offload metadata on its way to the L5P.
"""

from repro.tcp.buffer import ReassemblyQueue, SendBuffer, Skb
from repro.tcp.cc import RenoCc
from repro.tcp.connection import TcpConnection
from repro.tcp.stack import TcpStack

__all__ = ["ReassemblyQueue", "SendBuffer", "Skb", "RenoCc", "TcpConnection", "TcpStack"]
