"""Wall-clock probe for the parallel experiment-execution engine.

Runs the Figure 19 scalability grid twice — serially and through
``repro.exec.run_grid`` with N workers — times both, verifies the merged
results are identical, and writes ``benchmarks/out/exec_speedup.json``.

This is a *probe*, not a pytest benchmark: it measures wall-clock (host
time, not simulated time), so it lives outside ``src/repro`` where the
SIM001 lint rule forbids wall-clock reads.  Speedup depends on the host:
with ``cpu_count`` cores, expect roughly ``min(workers, cpu_count)``×
minus merge overhead (≥1.8× at 4 workers on a 4-core host).  On a
1-core host the engine's cost model routes ``workers > 1`` through the
serial path (fork+IPC is pure loss with nothing to overlap), so the
measured speedup is ~1.0× — parallel never loses — and the JSON records
the bypass honestly in ``pool_bypassed``.  See docs/performance.md.

Usage::

    PYTHONPATH=src python benchmarks/exec_speedup.py [--workers 4] [--quick]
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import time

from repro.exec import min_parallel_points, run_grid
from repro.experiments.scalability import run_scale_point

# The full Figure 19 grid (benchmarks/test_fig19_scalability.py).
CONNECTIONS = (64, 512, 2048)
# The quick probe drops the 2048-connection points: their per-point
# connection setup dominates the window, and the probe measures engine
# dispatch overhead, not figure content.
QUICK_CONNECTIONS = (64, 512)
VARIANTS = ("https", "offload+zc", "http")
MEASURE = 8e-3
QUICK_MEASURE = 3e-3  # shorter windows: 5 ABBA+warm-up passes must fit CI


def run_point(point):
    conns, variant, measure = point
    return run_scale_point(conns, variant=variant, measure=measure)


def measure(points, workers):
    # Wall-clock on purpose: this probe measures host time, not sim time
    # (see module docstring).  Collect before the window so neither mode
    # is charged for the garbage the previous window left behind — the
    # serial and "parallel" windows must see equivalent heap state.
    gc.collect()
    start = time.perf_counter()  # sim: noqa[SIM001]
    results = run_grid(points, run_point, workers=workers)
    return time.perf_counter() - start, results  # sim: noqa[SIM001]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=4, help="parallel worker count (default 4)")
    parser.add_argument("--quick", action="store_true", help="use the quick (2-connection) grid")
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(__file__), "out", "exec_speedup.json"),
        help="output JSON path",
    )
    args = parser.parse_args(argv)

    conns = QUICK_CONNECTIONS if args.quick else CONNECTIONS
    sim_window = QUICK_MEASURE if args.quick else MEASURE
    points = [(c, v, sim_window) for c in conns for v in VARIANTS]
    print(f"grid: fig19 ({len(points)} points), workers={args.workers}, cpu_count={os.cpu_count()}")

    # Untimed warm-up pass: imports, crypto table builds, and allocator
    # growth all land here instead of skewing whichever window runs first.
    warm_s, _ = measure(points, workers=1)
    print(f"warm-up:  {warm_s:.2f}s (untimed)")

    # ABBA ordering: the process slows by ~1-2% per successive window
    # (monotonic heap growth), so a single serial-then-parallel pair
    # systematically penalizes whichever mode runs second.  Averaging
    # serial windows 1+4 against parallel windows 2+3 cancels linear
    # drift exactly.
    s1, serial_results = measure(points, workers=1)
    print(f"serial[1]:   {s1:.2f}s")
    p1, parallel_results = measure(points, workers=args.workers)
    print(f"parallel[1]: {p1:.2f}s")
    p2, parallel_results_2 = measure(points, workers=args.workers)
    print(f"parallel[2]: {p2:.2f}s")
    s2, serial_results_2 = measure(points, workers=1)
    print(f"serial[2]:   {s2:.2f}s")
    serial_s = (s1 + s2) / 2
    parallel_s = (p1 + p2) / 2
    print(f"serial:   {serial_s:.2f}s")
    print(f"parallel: {parallel_s:.2f}s  ({serial_s / parallel_s:.2f}x)")

    identical = serial_results == parallel_results == parallel_results_2 == serial_results_2
    if not identical:
        print("ERROR: serial and parallel merged results differ (determinism contract broken)")

    report = {
        "grid": "fig19_quick" if args.quick else "fig19",
        "points": len(points),
        "workers": args.workers,
        "cpu_count": os.cpu_count(),
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 3),
        "identical": identical,
        # True when the engine's cost model took the serial path for the
        # "parallel" run (1-CPU host or sub-floor grid): the guarantee
        # being probed is then "parallel never loses", not raw speedup.
        "pool_bypassed": (os.cpu_count() or 1) < 2 or len(points) < min_parallel_points(),
    }
    os.makedirs(os.path.dirname(args.out), exist_ok=True)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 0 if identical else 1


if __name__ == "__main__":
    raise SystemExit(main())
