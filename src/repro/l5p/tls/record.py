"""TLS record layer and the TLS autonomous-offload adapter (§5.2).

Records are ``type(1) | version(2) | length(2) | ciphertext | tag(16)``,
at most 16 KiB of plaintext per record.  The adapter's magic pattern is
the paper's: record type (six valid values), the post-handshake version
constant, and a sane length field.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from repro.core.types import Direction, L5pAdapter, MessageDesc, MsgTransform
from repro.crypto.gcm import AuthenticationError
from repro.crypto.suite import CipherSuite

HEADER_LEN = 5
TAG_LEN = 16
MAX_PLAINTEXT = 16 * 1024
VERSION = 0x0303  # TLS 1.2 wire version, as TLS 1.3 records use

CONTENT_CCS = 20
CONTENT_ALERT = 21
CONTENT_HANDSHAKE = 22
CONTENT_APPDATA = 23
VALID_TYPES = (CONTENT_CCS, CONTENT_ALERT, CONTENT_HANDSHAKE, CONTENT_APPDATA)


def make_header(content_type: int, payload_len: int) -> bytes:
    """Record header; ``payload_len`` covers ciphertext + tag."""
    return struct.pack(">BHH", content_type, VERSION, payload_len)


def record_nonce(iv: bytes, record_seq: int) -> bytes:
    """TLS 1.3 per-record nonce: the static IV XORed with the record
    sequence number — exactly the "dynamic state is a function of the
    number of previous messages" property the offload requires."""
    seq_bytes = record_seq.to_bytes(12, "big")
    return bytes(a ^ b for a, b in zip(iv, seq_bytes))


@dataclass
class TlsDirectionState:
    """Static HW-context state for one direction (Table: cipher keys)."""

    suite: CipherSuite
    key: bytes
    iv: bytes


class _TlsTxTransform(MsgTransform):
    def __init__(self, state: TlsDirectionState, desc: MessageDesc, msg_index: int):
        nonce = record_nonce(state.iv, msg_index)
        self._enc = state.suite.encryptor(state.key, nonce, aad=desc.raw_header)

    def process(self, data: bytes) -> bytes:
        return self._enc.update(data)

    def finalize_tx(self) -> bytes:
        return self._enc.finalize()


class _TlsRxTransform(MsgTransform):
    def __init__(self, state: TlsDirectionState, desc: MessageDesc, msg_index: int):
        nonce = record_nonce(state.iv, msg_index)
        self._dec = state.suite.decryptor(state.key, nonce, aad=desc.raw_header)

    def process(self, data: bytes) -> bytes:
        return self._dec.update(data)

    def verify_rx(self, wire_trailer: bytes) -> bool:
        try:
            self._dec.finalize(wire_trailer)
            return True
        except AuthenticationError:
            return False


class TlsAdapter(L5pAdapter):
    """What the NIC knows about TLS (cast into ConnectX-6 Dx silicon)."""

    name = "tls"
    header_len = HEADER_LEN
    magic_len = HEADER_LEN  # type + version + length: the §5.2 pattern

    def parse_header(self, header: bytes, static_state) -> Optional[MessageDesc]:
        content_type, version, length = struct.unpack(">BHH", header)
        if content_type not in VALID_TYPES:
            return None
        if version != VERSION:
            return None
        if not TAG_LEN <= length <= MAX_PLAINTEXT + TAG_LEN:
            return None
        return MessageDesc(
            kind=str(content_type),
            header_len=HEADER_LEN,
            body_len=length - TAG_LEN,
            trailer_len=TAG_LEN,
            raw_header=header,
        )

    def check_magic(self, window: bytes, static_state) -> bool:
        return self.parse_header(window, static_state) is not None

    def begin_message(self, direction: Direction, static_state, desc, msg_index, rr_state=None):
        if direction == Direction.TX:
            return _TlsTxTransform(static_state, desc, msg_index)
        return _TlsRxTransform(static_state, desc, msg_index)

    def apply_packet_meta(self, meta, processed: bool, ok: bool, desc_kinds) -> None:
        # One bit, set iff all ICVs within the packet passed (§5.2).
        meta.decrypted = processed and ok


from repro.l5p import plugin as _plugin

#: TLS record magic: content type 20..23 (0b000101xx), version 0x0303,
#: length unconstrained by the mask (check_magic adds the range check).
PLUGIN = _plugin.register(
    _plugin.L5Protocol(
        name="tls",
        header_len=HEADER_LEN,
        magic=_plugin.MagicSpec(
            pattern=b"\x14\x03\x03\x00\x00",
            mask=b"\xfc\xff\xff\x00\x00",
            confidence=1e-4,
        ),
        preconditions=_plugin.Table3Preconditions(
            size_preserving=True,
            incremental_constant_state=True,
            header_plaintext_length=True,
            magic_identifiable=True,
            state_from_msg_index=True,
            notes="AES-GCM record crypto; per-record nonce from msg_index (§5.2)",
        ),
        factory=TlsAdapter,
        upcalls=("l5o_get_tx_msgstate", "l5o_resync_rx_req", "l5o_offload_degraded",
                 "l5o_nic_reattach"),
        description="Kernel TLS 1.3-style record encryption/decryption offload",
        info={"trailer_len": TAG_LEN, "ops": ("encrypt", "decrypt")},
    )
)
