"""End-to-end kTLS tests: software mode, offloaded mode, fault injection,
partial-record fallback, and resynchronization over real TCP."""

import pytest

from helpers import make_pair
from repro.l5p.tls import KtlsSocket, TlsConfig
from repro.nic import OffloadNic


def tls_pair(
    seed=0,
    client_cfg=None,
    server_cfg=None,
    loss_to_server=0.0,
    reorder_to_server=0.0,
    loss_to_client=0.0,
    reorder_to_client=0.0,
    offload_nics=True,
):
    pair = make_pair(
        seed=seed,
        loss_to_server=loss_to_server,
        reorder_to_server=reorder_to_server,
        loss_to_client=loss_to_client,
        reorder_to_client=reorder_to_client,
        client_nic=OffloadNic() if offload_nics else None,
        server_nic=OffloadNic() if offload_nics else None,
    )
    return pair


def run_tls_transfer(pair, payload, client_cfg, server_cfg, until=20.0, server_echo=0):
    """Client streams ``payload`` to server; returns (received, client_tls,
    server_tls)."""
    received = bytearray()
    echoed = bytearray()
    sockets = {}
    progress = {"sent": 0}

    def on_accept(conn):
        tls = KtlsSocket(pair.server, conn, "server", server_cfg)
        sockets["server"] = tls
        tls.on_data = received.extend

    pair.server.tcp.listen(443, on_accept)
    conn = pair.client.tcp.connect("server", 443)
    client = KtlsSocket(pair.client, conn, "client", client_cfg)
    sockets["client"] = client
    client.on_data = echoed.extend

    def feed():
        while progress["sent"] < len(payload):
            sent = client.send(payload[progress["sent"] : progress["sent"] + 64 * 1024])
            if sent == 0:
                return
            progress["sent"] += sent

    client.on_ready = feed
    client.on_writable = feed
    pair.sim.run(until=until)
    return bytes(received), sockets["client"], sockets["server"]


SOFT = TlsConfig()
OFFLOAD_TX = TlsConfig(tx_offload=True)
OFFLOAD_RX = TlsConfig(rx_offload=True)
OFFLOAD_BOTH = TlsConfig(tx_offload=True, rx_offload=True)


class TestSoftwareTls:
    def test_handshake_and_transfer(self):
        pair = tls_pair(offload_nics=False)
        payload = bytes(i % 256 for i in range(200_000))
        received, client, server = run_tls_transfer(pair, payload, SOFT, SOFT)
        assert received == payload
        assert server.stats.records_rx_none == server.stats.records_rx
        assert server.stats.records_rx_full == 0

    def test_real_aes_gcm_suite(self):
        cfg = TlsConfig(suite_name="aes-gcm")
        pair = tls_pair(offload_nics=False)
        payload = bytes(i % 256 for i in range(20_000))
        received, _, _ = run_tls_transfer(pair, payload, cfg, cfg)
        assert received == payload

    def test_wire_bytes_are_ciphertext(self):
        """Sniff the link: application bytes must not appear in cleartext."""
        pair = tls_pair(offload_nics=False)
        needle = b"TOP-SECRET-NEEDLE-VALUE" * 10
        sniffed = []
        original = pair.link.ab.receiver

        def sniff(pkt):
            sniffed.append(bytes(pkt.payload))
            original(pkt)

        # Attach after hosts: wrap the server-side receive.
        pair.link.attach("b", sniff)
        payload = needle * 50
        received, _, _ = run_tls_transfer(pair, payload, SOFT, SOFT)
        assert received == payload
        assert needle not in b"".join(sniffed)


class TestOffloadedTls:
    def test_tx_offload_transfers_correctly(self):
        pair = tls_pair()
        payload = bytes(i % 251 for i in range(300_000))
        received, client, server = run_tls_transfer(pair, payload, OFFLOAD_TX, SOFT)
        assert received == payload
        # The NIC performed the encryption for every data packet.
        stats = pair.client.nic.offload_stats()
        assert stats["pkts_offloaded"] > 0
        # Receiver decrypted in software (its NIC has no RX context).
        assert server.stats.records_rx_none == server.stats.records_rx

    def test_rx_offload_transfers_correctly(self):
        pair = tls_pair()
        payload = bytes(i % 253 for i in range(300_000))
        received, client, server = run_tls_transfer(pair, payload, OFFLOAD_TX, OFFLOAD_RX)
        assert received == payload
        # Loss-free run: every record fully offloaded at the receiver.
        assert server.stats.records_rx_full == server.stats.records_rx
        assert server.stats.records_rx_none == 0

    def test_offload_avoids_crypto_cycles(self):
        payload = bytes(500_000)

        def crypto_cycles(cfg_c, cfg_s):
            pair = tls_pair()
            run_tls_transfer(pair, payload, cfg_c, cfg_s)
            return (
                pair.client.cpu.cycles_by_category().get("crypto", 0),
                pair.server.cpu.cycles_by_category().get("crypto", 0),
            )

        soft_c, soft_s = crypto_cycles(SOFT, SOFT)
        off_c, off_s = crypto_cycles(OFFLOAD_BOTH, OFFLOAD_BOTH)
        # Only the handshake's fixed cost remains when offloaded.
        from repro.cpu.model import DEFAULT_COST_MODEL

        handshake = DEFAULT_COST_MODEL.cycles_tls_handshake
        assert off_c == pytest.approx(handshake)
        assert off_s == pytest.approx(handshake)
        assert soft_c > handshake * 2
        assert soft_s > handshake * 2

    def test_tx_offload_wire_identical_to_software(self):
        """The NIC must produce byte-identical ciphertext to software kTLS
        (the receiver cannot tell who encrypted)."""
        payload = bytes(i % 256 for i in range(100_000))
        outs = []
        for cfg in (SOFT, OFFLOAD_TX):
            pair = tls_pair(seed=42)
            received, _, _ = run_tls_transfer(pair, payload, cfg, SOFT)
            outs.append(received)
        assert outs[0] == outs[1] == payload


class TestTlsUnderFaults:
    @pytest.mark.parametrize("loss", [0.01, 0.03])
    def test_rx_offload_survives_loss(self, loss):
        pair = tls_pair(seed=9, loss_to_server=loss)
        payload = bytes(i % 256 for i in range(400_000))
        received, _, server = run_tls_transfer(pair, payload, OFFLOAD_BOTH, OFFLOAD_BOTH, until=60.0)
        assert received == payload
        # Loss causes software fallbacks but offload must still engage.
        assert server.stats.records_rx_none + server.stats.records_rx_partial > 0

    def test_rx_offload_survives_reordering(self):
        pair = tls_pair(seed=10, reorder_to_server=0.03)
        payload = bytes(i % 256 for i in range(400_000))
        received, _, server = run_tls_transfer(pair, payload, OFFLOAD_BOTH, OFFLOAD_BOTH, until=60.0)
        assert received == payload

    def test_resync_engages_and_recovers(self):
        pair = tls_pair(seed=11, loss_to_server=0.05)
        payload = bytes(i % 256 for i in range(600_000))
        received, _, server = run_tls_transfer(pair, payload, OFFLOAD_BOTH, OFFLOAD_BOTH, until=60.0)
        assert received == payload
        stats = pair.server.nic.offload_stats()
        # With 5% loss the NIC must have exercised recovery machinery.
        assert stats["boundary_resyncs"] + stats["resyncs_completed"] > 0
        # And offloading kept working after recoveries.
        assert server.stats.records_rx_full > 0

    def test_tx_recovery_on_retransmissions(self):
        pair = tls_pair(seed=12, loss_to_server=0.03)
        payload = bytes(i % 256 for i in range(400_000))
        received, _, _ = run_tls_transfer(pair, payload, OFFLOAD_TX, SOFT, until=60.0)
        assert received == payload
        stats = pair.client.nic.offload_stats()
        assert stats["tx_recoveries"] > 0
        assert pair.client.nic.pcie.bytes_by_category["recovery"] > 0

    def test_ack_loss_with_tx_offload(self):
        pair = tls_pair(seed=13, loss_to_client=0.05)
        payload = bytes(i % 256 for i in range(200_000))
        received, _, _ = run_tls_transfer(pair, payload, OFFLOAD_TX, SOFT, until=60.0)
        assert received == payload


class TestSendfileVariants:
    def test_zerocopy_sendfile_cheaper_than_copy(self):
        payload = bytes(1_000_000)

        def cycles(cfg):
            pair = tls_pair()
            received = bytearray()

            def on_accept(conn):
                tls = KtlsSocket(pair.server, conn, "server", SOFT)
                tls.on_data = received.extend

            pair.server.tcp.listen(443, on_accept)
            conn = pair.client.tcp.connect("server", 443)
            client = KtlsSocket(pair.client, conn, "client", cfg)
            state = {"sent": 0}

            def feed():
                while state["sent"] < len(payload):
                    n = client.sendfile(payload[state["sent"] : state["sent"] + 64 * 1024])
                    if n == 0:
                        return
                    state["sent"] += n

            client.on_ready = feed
            client.on_writable = feed
            pair.sim.run(until=20.0)
            assert bytes(received) == payload
            return pair.client.cpu.total_cycles

        https = cycles(SOFT)
        offload = cycles(OFFLOAD_TX)
        offload_zc = cycles(TlsConfig(tx_offload=True, zerocopy_sendfile=True))
        assert offload < https
        assert offload_zc < offload

    def test_record_size_is_respected(self):
        pair = tls_pair()
        cfg = TlsConfig(record_size=2048)
        payload = bytes(100_000)
        received, client, _ = run_tls_transfer(pair, payload, cfg, SOFT)
        assert received == payload
        assert client.stats.records_tx >= 100_000 // 2048


class TestTlsValidation:
    def test_bad_role_rejected(self):
        pair = tls_pair()
        conn = pair.client.tcp.connect("server", 1)
        with pytest.raises(ValueError):
            KtlsSocket(pair.client, conn, "observer")

    def test_send_before_ready_raises(self):
        pair = tls_pair()
        conn = pair.client.tcp.connect("server", 1)
        tls = KtlsSocket(pair.client, conn, "client")
        with pytest.raises(RuntimeError):
            tls.send(b"early")

    def test_bad_record_size_rejected(self):
        with pytest.raises(ValueError):
            TlsConfig(record_size=0)
        with pytest.raises(ValueError):
            TlsConfig(record_size=1 << 20)
