"""RESP L5P tests: fixed-width envelope, key steering, and end-to-end
pipelined commands with and without NIC receive-queue steering."""

from helpers import make_pair
from repro.l5p.resp import RespClient, RespConfig, RespServer
from repro.l5p.resp import frame as F
from repro.nic import OffloadNic

STEER = RespConfig(rx_offload_steer=True, steer_queues=4)


class TestFraming:
    def test_round_trip(self):
        wire = F.make_frame(b"GET user:17")
        assert F.parse_header(wire[: F.HEADER_LEN]) == len(b"GET user:17")
        assert wire[F.HEADER_LEN : -F.TRAILER_LEN] == b"GET user:17"
        assert wire.endswith(b"\r\n")

    def test_bad_envelopes_rejected(self):
        assert F.parse_header(b"*00000003\r\n") is None  # wrong sigil
        assert F.parse_header(b"$0000000g\r\n") is None  # non-hex digit
        assert F.parse_header(b"$0000000AXX") is None  # uppercase + no CRLF
        assert F.parse_header(b"$ffffffff\r\n") is None  # over MAX_INLINE
        assert F.parse_header(F.make_frame(b"x")[: F.HEADER_LEN]) == 1

    def test_steer_key_extraction(self):
        assert F.steer_key(b"GET user:17") == b"user:17"
        assert F.steer_key(b"SET user:17 value") == b"user:17"
        assert F.steer_key(b"+OK") == b"+OK"
        # Bounded: only the head window matters.
        long = b"GET " + b"k" * 100
        assert F.steer_key(long) == b"k" * (F.KEY_WINDOW - 4)

    def test_steer_queue_stable(self):
        q = F.steer_queue(b"GET user:17", 4)
        assert q == F.steer_queue(b"SET user:17 something", 4)
        assert 0 <= q < 4


def resp_pair(server_cfg=None, seed=0, **link_kwargs):
    pair = make_pair(seed=seed, client_nic=OffloadNic(), server_nic=OffloadNic(), **link_kwargs)
    server = RespServer(pair.server, port=6379, config=server_cfg)
    client = RespClient(pair.client, "server", port=6379)
    return pair, client, server


class TestRespEndToEnd:
    def test_set_get_round_trip(self):
        pair, client, server = resp_pair()
        replies = []
        client.pipeline(
            [b"SET color blue", b"GET color", b"GET missing"],
            lambda r, lat: replies.extend(r),
        )
        pair.sim.run(until=1.0)
        assert replies == [b"+OK", b"+blue", b"-nil"]
        assert server.stats["commands"] == 3
        assert server.stats["steered"] == 0  # no offload configured

    def test_pipelined_batches(self):
        pair, client, server = resp_pair(server_cfg=STEER)
        done = []

        def issue(batch):
            if batch == 20:
                return
            cmds = [b"SET k%d:%d v%d" % (batch, i, i) for i in range(8)]
            client.pipeline(cmds, lambda r, lat: (done.append(len(r)), issue(batch + 1)))

        issue(0)
        pair.sim.run(until=2.0)
        assert done == [8] * 20
        assert server.stats["commands"] == 160
        # Pipelining packs several commands per packet; the NIC steers
        # the packet, so most commands ride a steered dispatch.  (The
        # very first batch piggybacks on the handshake ACK and slips
        # past the fresh context; the resync path recovers after it.)
        assert server.stats["steered"] > server.stats["software_dispatch"]

    def test_steering_is_key_stable(self):
        pair, client, server = resp_pair(server_cfg=STEER)

        def issue(n):
            if n == 0:
                client.pipeline([b"SET hot 1"], lambda r, lat: issue(1))
            elif n <= 30:
                client.pipeline([b"GET hot"], lambda r, lat: issue(n + 1))

        issue(0)
        pair.sim.run(until=2.0)
        assert server.stats["commands"] == 31
        assert server.stats["steered"] > 0
        # Single-key traffic lands on exactly one queue.
        assert sum(1 for c in server.queue_counts if c) == 1

    def test_steering_saves_dispatch_cycles(self):
        def server_cycles(cfg):
            pair, client, server = resp_pair(server_cfg=cfg, seed=2)
            done = []

            def issue(batch):
                if batch == 30:
                    return
                client.pipeline(
                    [b"SET key:%d v" % batch] + [b"GET key:%d" % batch] * 5,
                    lambda r, lat: (done.append(1), issue(batch + 1)),
                )

            issue(0)
            pair.sim.run(until=3.0)
            assert len(done) == 30
            return sum(pair.server.cpu.cycles_by_category().values())

        assert server_cycles(STEER) < server_cycles(RespConfig(steer_queues=4))

    def test_steering_survives_loss(self):
        pair, client, server = resp_pair(server_cfg=STEER, seed=5, loss_to_server=0.02)
        replies = []

        def issue(batch):
            if batch == 25:
                return
            client.pipeline(
                [b"SET s%d %d" % (batch, batch), b"GET s%d" % batch],
                lambda r, lat: (replies.append(r), issue(batch + 1)),
            )

        issue(0)
        pair.sim.run(until=10.0)
        assert len(replies) == 25
        for batch, pairrep in enumerate(replies):
            assert pairrep[0] == b"+OK"
        assert server.stats["commands"] == 50
        # Loss forces resync windows: some packets arrive unsteered and
        # fall back to the software dispatch path.
        stats = pair.server.nic.offload_stats()
        assert stats["resync_requests"] + server.stats["software_dispatch"] > 0
