"""Redis-on-Flash with the OffloadDB storage backend, plus memtier (§6.2–6.3).

RoF keeps values on flash behind an NVMe-TCP namespace.  The paper's
OffloadDB backend separates keys, values, and metadata so values map to
clean block extents — here that is the ``key -> (offset, length)``
table.  GET requests look the key up, read the value over NVMe-TCP, and
return it; memtier drives concurrent request-response connections.

Protocol (RESP-flavoured):  request ``GET <key>\\r\\n``; response
``$<len>\\r\\n<value>\\r\\n`` or ``$-1\\r\\n`` for a miss.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.apps.transport import Transport
from repro.l5p.nvme_tcp.host import NvmeTcpHost
from repro.l5p.tls.ktls import TlsConfig
from repro.net.host import Host


class OffloadDb:
    """Key/value-extent metadata: values live on flash, unmixed with
    metadata (the 568-LoC backend the paper built with Redis Labs)."""

    def __init__(self) -> None:
        self._table: dict[str, tuple[int, int]] = {}
        self._next_offset = 0

    def allocate(self, key: str, length: int, align: int = 4096) -> tuple[int, int]:
        if key in self._table:
            raise ValueError(f"key {key!r} exists")
        extent = (self._next_offset, length)
        self._table[key] = extent
        slots = (length + align - 1) // align
        self._next_offset += slots * align
        return extent

    def lookup(self, key: str) -> Optional[tuple[int, int]]:
        return self._table.get(key)

    @property
    def keys(self) -> list[str]:
        return sorted(self._table)


class RofServer:
    """One Redis-on-Flash instance (one core, one NVMe-TCP queue pair)."""

    def __init__(
        self,
        host: Host,
        nvme: NvmeTcpHost,
        db: OffloadDb,
        port: int = 6379,
        tls: Optional[TlsConfig] = None,
    ):
        self.host = host
        self.nvme = nvme
        self.db = db
        self.port = port
        self.tls_config = tls
        self.gets_served = 0
        self.misses = 0
        host.tcp.listen(port, self._accept)

    def _accept(self, conn) -> None:
        _RofConn(self, conn)


class _RofConn:
    def __init__(self, server: RofServer, conn):
        self.server = server
        self.host = server.host
        self.core = self.host.core_for_flow(conn.flow)
        self.transport = Transport(self.host, conn, "server", server.tls_config)
        self.transport.on_data = self._on_data
        self.transport.on_writable = self._flush
        self.transport.on_ready = self._flush
        self._buffer = bytearray()
        self._outq: deque[bytes] = deque()

    def _on_data(self, data: bytes) -> None:
        self._buffer += data
        while True:
            end = self._buffer.find(b"\r\n")
            if end < 0:
                return
            line = bytes(self._buffer[:end]).decode(errors="replace")
            del self._buffer[: end + 2]
            self._handle(line)

    def _handle(self, line: str) -> None:
        self.core.charge(self.host.model.cycles_kv_req, "app")
        parts = line.split(" ", 1)
        if len(parts) != 2 or parts[0] != "GET":
            self._queue(b"-ERR bad command\r\n")
            return
        extent = self.server.db.lookup(parts[1])
        if extent is None:
            self.server.misses += 1
            self._queue(b"$-1\r\n")
            return
        offset, length = extent
        self.server.nvme.read(offset, length, self._read_done)

    def _read_done(self, value: bytes, latency: float) -> None:
        del latency
        self.server.gets_served += 1
        self._queue(f"${len(value)}\r\n".encode() + value + b"\r\n")

    def _queue(self, data: bytes) -> None:
        self._outq.append(data)
        self._flush()

    def _flush(self) -> None:
        if not self.transport.ready:
            return
        while self._outq:
            data = self._outq[0]
            sent = self.transport.send(data)
            if sent == len(data):
                self._outq.popleft()
                continue
            self._outq[0] = data[sent:]
            return


@dataclass
class MemtierStats:
    gets: int = 0
    bytes_received: int = 0
    latencies: list = field(default_factory=list)


class MemtierClient:
    """memtier_benchmark "get" workload: concurrent request loops."""

    def __init__(
        self,
        host: Host,
        server: str,
        port: int,
        keys: Sequence[str],
        connections: int = 8,
        tls: Optional[TlsConfig] = None,
        max_requests: Optional[int] = None,
    ):
        if not keys:
            raise ValueError("memtier needs keys to request")
        self.host = host
        self.keys = list(keys)
        self.stats = MemtierStats()
        self.max_requests = max_requests
        self._issued = 0
        self._conns = [_MemtierConn(self, host, server, port, tls, i) for i in range(connections)]

    def next_key(self, index: int) -> Optional[str]:
        if self.max_requests is not None and self._issued >= self.max_requests:
            return None
        key = self.keys[(self._issued + index) % len(self.keys)]
        self._issued += 1
        return key

    @property
    def done(self) -> bool:
        return self.max_requests is not None and self.stats.gets >= self.max_requests


class _MemtierConn:
    def __init__(self, memtier: MemtierClient, host: Host, server: str, port: int, tls, index: int):
        self.memtier = memtier
        self.host = host
        self.index = index
        conn = host.tcp.connect(server, port)
        self.core = host.core_for_flow(conn.flow)
        self.transport = Transport(host, conn, "client", tls)
        self.transport.on_data = self._on_data
        # Stagger loop starts to avoid synchronized request convoys.
        self.transport.on_ready = lambda: host.sim.schedule((index % 64) * 50e-6, self._next)
        self._buffer = bytearray()
        self._value_remaining: Optional[int] = None
        self._value_len = 0
        self._sent_at = 0.0

    def _next(self) -> None:
        key = self.memtier.next_key(self.index)
        if key is None:
            return
        self.core.charge(self.host.model.cycles_syscall, "app")
        self._sent_at = self.host.sim.now
        self.transport.send(f"GET {key}\r\n".encode())

    def _on_data(self, data: bytes) -> None:
        self._buffer += data
        while True:
            if self._value_remaining is None:
                end = self._buffer.find(b"\r\n")
                if end < 0:
                    return
                header = bytes(self._buffer[:end]).decode(errors="replace")
                del self._buffer[: end + 2]
                if not header.startswith("$"):
                    raise RuntimeError(f"unexpected RoF reply {header!r}")
                length = int(header[1:])
                if length < 0:
                    self._finish(0)
                    continue
                self._value_len = length
                self._value_remaining = length + 2  # value + trailing CRLF
            take = min(self._value_remaining, len(self._buffer))
            del self._buffer[:take]
            self._value_remaining -= take
            if self._value_remaining > 0:
                return
            self._value_remaining = None
            self._finish(self._value_len)

    def _finish(self, nbytes: int) -> None:
        self.memtier.stats.gets += 1
        self.memtier.stats.bytes_received += nbytes
        self.memtier.stats.latencies.append(self.host.sim.now - self._sent_at)
        self._next()
