"""Adapter exposing an NVMe-TCP namespace as a FlatFs block reader."""

from __future__ import annotations

from typing import Callable


class RemoteBlockReader:
    """Wraps :class:`~repro.l5p.nvme_tcp.host.NvmeTcpHost` to the plain
    ``read(offset, length, on_complete)`` interface FlatFs consumes."""

    def __init__(self, nvme):
        self.nvme = nvme

    def read(self, offset: int, length: int, on_complete: Callable[[bytes], None]) -> None:
        self.nvme.read(offset, length, lambda data, _latency: on_complete(data))


class MultiQueueReader:
    """Round-robins reads over several NVMe-TCP queue pairs.

    Linux's nvme-tcp creates one queue pair (one TCP socket) per CPU;
    a single socket would serialize all block traffic through one core
    on each machine.  This adapter restores that parallelism.
    """

    def __init__(self, queues):
        if not queues:
            raise ValueError("need at least one queue pair")
        self.queues = list(queues)
        self._next = 0

    def read(self, offset: int, length: int, on_complete: Callable[[bytes], None]) -> None:
        queue = self.queues[self._next % len(self.queues)]
        self._next += 1
        queue.read(offset, length, lambda data, _latency: on_complete(data))
