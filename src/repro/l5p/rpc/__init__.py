"""RPC L5P (paper §1/§3: gRPC-/Thrift-class protocols).

The paper lists RPC protocols among the autonomously offloadable L5Ps
(their data-intensive operations: copy and deserialization).  This
package implements a compact RPC system — TLV codec, request/response
framing, client/server — whose *response copy + CRC* is autonomously
offloaded exactly like NVMe-TCP's C2HData placement: the client
registers the response buffer under the call id before issuing the
request (``l5o_add_rr_state``), and the NIC places the payload while
verifying the frame digest inline.
"""

from repro.l5p.rpc.codec import decode, encode
from repro.l5p.rpc.frame import RpcAdapter, RpcConfig
from repro.l5p.rpc.endpoint import RpcClient, RpcServer

__all__ = ["encode", "decode", "RpcAdapter", "RpcConfig", "RpcClient", "RpcServer"]
