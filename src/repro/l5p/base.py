"""Shared L5P receive machinery.

Both kTLS and NVMe-TCP consume the TCP byte stream "packet-by-packet"
(§4.3): each delivered run carries the NIC's offload bits, and the L5P
must know, per message, which byte ranges were offloaded to decide
between reusing NIC results and software fallback.
:class:`StreamAssembler` does that bookkeeping once for both protocols.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.net.packet import SkbMeta
from repro.tcp import seq as sq


@dataclass
class Run:
    """A byte run with uniform offload metadata."""

    data: bytes
    meta: SkbMeta

    def __len__(self) -> int:
        return len(self.data)


@dataclass
class AssembledMessage:
    """One complete L5P message cut out of the stream."""

    start_seq: int  # TCP sequence of the first header byte
    runs: list[Run]

    @property
    def length(self) -> int:
        return sum(len(r) for r in self.runs)

    @property
    def wire(self) -> bytes:
        return b"".join(r.data for r in self.runs)

    def fully(self, predicate: Callable[[SkbMeta], bool]) -> bool:
        return all(predicate(r.meta) for r in self.runs)

    def partially(self, predicate: Callable[[SkbMeta], bool]) -> bool:
        hits = [predicate(r.meta) for r in self.runs]
        return any(hits) and not all(hits)

    def slice_runs(self, offset: int, length: int) -> list[Run]:
        """Runs covering ``[offset, offset+length)`` of the message."""
        out: list[Run] = []
        pos = 0
        for run in self.runs:
            run_end = pos + len(run)
            lo = max(offset, pos)
            hi = min(offset + length, run_end)
            if lo < hi:
                out.append(Run(run.data[lo - pos : hi - pos], run.meta))
            pos = run_end
            if pos >= offset + length:
                break
        return out


class StreamAssembler:
    """Cuts a metadata-carrying byte stream into length-framed messages.

    ``total_len_fn(header_bytes)`` maps a complete fixed-size header to
    the message's full on-wire length (header + body + trailer), or
    raises :class:`ValueError` for an unparseable header.
    """

    def __init__(self, header_len: int, total_len_fn: Callable[[bytes], int], start_seq: int = 0):
        self.header_len = header_len
        self.total_len_fn = total_len_fn
        self.next_msg_seq = start_seq  # seq of the current message's first byte
        self._runs: list[Run] = []
        self._buffered = 0
        self._msg_total: Optional[int] = None

    def push(self, data: bytes, meta: SkbMeta) -> list[AssembledMessage]:
        """Feed in-order stream bytes; returns completed messages."""
        if not data:
            return []
        self._runs.append(Run(data, meta))
        self._buffered += len(data)
        out: list[AssembledMessage] = []
        while True:
            if self._msg_total is None:
                if self._buffered < self.header_len:
                    break
                header = self._peek(self.header_len)
                self._msg_total = self.total_len_fn(header)
                if self._msg_total < self.header_len:
                    raise ValueError(
                        f"message length {self._msg_total} shorter than header ({self.header_len})"
                    )
            if self._buffered < self._msg_total:
                break
            out.append(self._cut(self._msg_total))
            self._msg_total = None
        return out

    # ------------------------------------------------------------------
    def _peek(self, n: int) -> bytes:
        got = bytearray()
        for run in self._runs:
            got += run.data[: n - len(got)]
            if len(got) >= n:
                break
        return bytes(got)

    def _cut(self, n: int) -> AssembledMessage:
        taken: list[Run] = []
        remaining = n
        while remaining > 0:
            run = self._runs[0]
            if len(run) <= remaining:
                taken.append(run)
                remaining -= len(run)
                self._runs.pop(0)
            else:
                taken.append(Run(run.data[:remaining], run.meta))
                self._runs[0] = Run(run.data[remaining:], run.meta)
                remaining = 0
        self._buffered -= n
        msg = AssembledMessage(self.next_msg_seq, taken)
        self.next_msg_seq = sq.add(self.next_msg_seq, n)
        return msg
