"""A flat extent filesystem over any block reader.

Files are contiguous extents on the underlying device (local
:class:`~repro.storage.blockdev.BlockDevice` or a remote NVMe-TCP
namespace — anything exposing ``read(offset, length, on_complete)``).
Reads go through the page cache with file-sized read-ahead, matching the
paper's nginx setup ("we set ext4 read-ahead to the file size").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.storage.pagecache import PAGE_SIZE, PageCache


@dataclass
class FileExtent:
    name: str
    offset: int  # byte offset on the device
    size: int


class FlatFs:
    """Name -> extent mapping plus page-cached reads."""

    def __init__(
        self,
        reader,
        page_cache: Optional[PageCache] = None,
        base_offset: int = 0,
        use_cache: bool = True,
    ):
        """``reader`` must expose ``read(offset, length, on_complete)``
        delivering bytes asynchronously.  ``use_cache=False`` models the
        paper's C1 state: no relevant data ever resides in the page
        cache, so every read reaches the device."""
        self.reader = reader
        self.page_cache = page_cache or PageCache()
        self.use_cache = use_cache
        self._files: dict[str, FileExtent] = {}
        self._next_offset = base_offset

    # ------------------------------------------------------------------
    def create(self, name: str, size: int) -> FileExtent:
        """Allocate a file of ``size`` bytes (page-aligned extent)."""
        if name in self._files:
            raise ValueError(f"file {name!r} exists")
        if size < 0:
            raise ValueError("negative size")
        extent = FileExtent(name, self._next_offset, size)
        self._files[name] = extent
        pages = (size + PAGE_SIZE - 1) // PAGE_SIZE
        self._next_offset += pages * PAGE_SIZE
        return extent

    def stat(self, name: str) -> FileExtent:
        try:
            return self._files[name]
        except KeyError:
            raise FileNotFoundError(name) from None

    # ------------------------------------------------------------------
    def read(self, name: str, offset: int, length: int, on_complete: Callable[[bytes], None]) -> bool:
        """Read through the page cache; read-ahead spans the whole
        request.  Returns True if served entirely from cache (and
        ``on_complete`` was called synchronously)."""
        extent = self.stat(name)
        if offset < 0 or offset + length > extent.size:
            raise ValueError(f"read [{offset}, +{length}) outside {name} of {extent.size}B")
        if not self.use_cache:
            self.page_cache.misses += 1
            self.reader.read(extent.offset + offset, length, on_complete)
            return False
        first_page = offset // PAGE_SIZE
        last_page = (offset + length - 1) // PAGE_SIZE if length else first_page
        missing = [
            p for p in range(first_page, last_page + 1) if not self.page_cache.contains((name, p))
        ]
        if not missing:
            for p in range(first_page, last_page + 1):
                self.page_cache.lookup((name, p))  # count hits
            on_complete(self._assemble(name, offset, length))
            return True

        # Read-ahead: fetch the whole missing span in one device read.
        span_first, span_last = missing[0], missing[-1]
        dev_offset = extent.offset + span_first * PAGE_SIZE
        dev_len = (span_last - span_first + 1) * PAGE_SIZE  # extent is page-aligned

        def fill(data: bytes) -> None:
            for i, page in enumerate(range(span_first, span_last + 1)):
                chunk = data[i * PAGE_SIZE : (i + 1) * PAGE_SIZE]
                self.page_cache.insert((name, page), chunk)
            on_complete(self._assemble(name, offset, length))

        self.reader.read(dev_offset, dev_len, fill)
        return False

    def _assemble(self, name: str, offset: int, length: int) -> bytes:
        out = bytearray()
        while length > 0:
            page_idx = offset // PAGE_SIZE
            skip = offset % PAGE_SIZE
            page = self.page_cache.lookup((name, page_idx))
            if page is None:
                raise RuntimeError(f"page ({name},{page_idx}) vanished mid-read")
            chunk = page[skip : skip + length]
            out += chunk
            offset += len(chunk)
            length -= len(chunk)
        return bytes(out)

    # ------------------------------------------------------------------
    def warm(self, name: str, on_complete: Callable[[], None]) -> None:
        """Pull an entire file into the page cache (builds the C2 state)."""
        extent = self.stat(name)
        if extent.size == 0:
            on_complete()
            return
        self.read(name, 0, extent.size, lambda _data: on_complete())

    def drop_caches(self) -> None:
        self.page_cache.drop()

    @property
    def file_names(self) -> list[str]:
        return sorted(self._files)
