"""Application-level tests: iperf, fio, nginx/wrk, RoF/memtier — each in
software and offloaded configurations over the full simulated stack."""

import pytest

from repro.apps.fio import FioJob
from repro.apps.http import build_request, parse_response_header
from repro.apps.iperf import IperfClient, IperfServer
from repro.apps.nginx import NginxServer
from repro.apps.rof import MemtierClient, OffloadDb, RofServer
from repro.apps.wrk import WrkClient
from repro.harness.testbed import Testbed, TestbedConfig
from repro.l5p.nvme_tcp import NvmeConfig, NvmeTcpHost, NvmeTcpTarget
from repro.l5p.tls.ktls import TlsConfig
from repro.storage.blockdev import BlockDevice
from repro.storage.fs import FlatFs
from repro.storage.remote import RemoteBlockReader


def make_testbed(**kwargs):
    return Testbed(TestbedConfig(**kwargs))


class TestIperf:
    def test_tcp_throughput(self):
        tb = make_testbed()
        server = IperfServer(tb.generator, port=5201)
        IperfClient(tb.server, "generator", streams=1)
        tb.run(until=0.01)
        assert server.total_bytes > 1_000_000

    def test_tls_throughput_offload_beats_software(self):
        def goodput(tls_cfg):
            tb = make_testbed(seed=3)
            # Offloaded receive keeps the generator from being the
            # bottleneck; the sender core under test dominates.
            server = IperfServer(tb.generator, tls=TlsConfig(rx_offload=True))
            IperfClient(tb.server, "generator", streams=4, tls=tls_cfg)
            tb.run(until=0.02)
            return server.total_bytes

        soft = goodput(TlsConfig())
        offload = goodput(TlsConfig(tx_offload=True))
        assert offload > soft * 1.5  # paper: 3.3x on transmit

    def test_many_streams(self):
        tb = make_testbed()
        server = IperfServer(tb.generator, port=5201)
        IperfClient(tb.server, "generator", streams=16, message_size=65536)
        tb.run(until=0.01)
        assert len(server.streams) == 16
        assert all(s.bytes_received > 0 for s in server.streams)


def make_remote_nvme(tb, host_cfg=None, target_cfg=None):
    device = BlockDevice(tb.sim)
    target = NvmeTcpTarget(tb.generator, device, config=target_cfg or NvmeConfig())
    target.start()
    nvme = NvmeTcpHost(tb.server, config=host_cfg or NvmeConfig())
    nvme.connect("generator")
    return nvme, device


class TestFio:
    def test_randread_completes_requests(self):
        tb = make_testbed()
        nvme, device = make_remote_nvme(tb)
        job = FioJob(nvme, block_size=4096, iodepth=4, total_requests=50)
        job.start()
        tb.run(until=5.0)
        assert job.stats.completed == 50
        assert job.done
        assert job.stats.iops > 0
        assert job.stats.mean_latency > 0

    def test_iodepth_respected(self):
        tb = make_testbed()
        nvme, device = make_remote_nvme(tb)
        job = FioJob(nvme, block_size=4096, iodepth=2, total_requests=20)
        peak = []
        orig = nvme.read

        def spy(*args, **kwargs):
            peak.append(nvme.inflight + len(nvme._waiting))
            orig(*args, **kwargs)

        nvme.read = spy
        job.start()
        tb.run(until=5.0)
        assert max(peak) <= 2

    def test_randwrite(self):
        tb = make_testbed()
        nvme, device = make_remote_nvme(tb)
        job = FioJob(nvme, block_size=8192, iodepth=4, total_requests=20, mode="randwrite")
        job.start()
        tb.run(until=5.0)
        assert job.stats.completed == 20
        assert device.writes == 20

    def test_higher_depth_more_iops(self):
        def iops(depth):
            tb = make_testbed(seed=7)
            nvme, _ = make_remote_nvme(tb)
            job = FioJob(nvme, block_size=4096, iodepth=depth, total_requests=200)
            job.start()
            tb.run(until=5.0)
            assert job.stats.completed == 200
            return job.stats.iops

        assert iops(16) > iops(1) * 2

    def test_bad_mode_rejected(self):
        tb = make_testbed()
        nvme, _ = make_remote_nvme(tb)
        with pytest.raises(ValueError):
            FioJob(nvme, 4096, 1, mode="trim")


def fetch_file(tb, port, path, tls=None, until=5.0):
    """Fetch one file with a bare client and return the body bytes."""
    from repro.apps.transport import Transport

    conn = tb.generator.tcp.connect("server", port)
    transport = Transport(tb.generator, conn, "client", tls)
    state = {"buf": bytearray(), "body": None}

    def on_ready():
        transport.send(build_request("/" + path))

    def on_data(data):
        state["buf"] += data
        parsed = parse_response_header(bytes(state["buf"]))
        if parsed is None:
            return
        length, header_len = parsed
        if len(state["buf"]) >= header_len + length:
            state["body"] = bytes(state["buf"][header_len : header_len + length])

    transport.on_ready = on_ready
    transport.on_data = on_data
    tb.run(until=tb.sim.now + until)
    return state["body"]


class TestNginx:
    def make_server(self, tb, tls=None, port=80):
        device = BlockDevice(tb.sim)
        fs = FlatFs(device)
        fs.create("small.bin", 4096)
        fs.create("big.bin", 256 * 1024)
        NginxServer(tb.server, fs, port=port, tls=tls)
        return fs, device

    def test_http_serves_correct_content(self):
        tb = make_testbed()
        fs, device = self.make_server(tb)
        body = fetch_file(tb, 80, "big.bin")
        assert body == device.peek(fs.stat("big.bin").offset, 256 * 1024)

    def test_https_serves_correct_content(self):
        tb = make_testbed()
        fs, device = self.make_server(tb, tls=TlsConfig())
        body = fetch_file(tb, 80, "small.bin", tls=TlsConfig())
        assert body == device.peek(fs.stat("small.bin").offset, 4096)

    def test_https_offload_zc_serves_correct_content(self):
        tb = make_testbed()
        fs, device = self.make_server(tb, tls=TlsConfig(tx_offload=True, zerocopy_sendfile=True))
        body = fetch_file(tb, 80, "big.bin", tls=TlsConfig())
        assert body == device.peek(fs.stat("big.bin").offset, 256 * 1024)

    def test_missing_file_404(self):
        tb = make_testbed()
        self.make_server(tb)
        body = fetch_file(tb, 80, "nope.bin")
        assert body == b""

    def test_wrk_drives_many_requests(self):
        tb = make_testbed(server_cores=2)
        fs, _ = self.make_server(tb)
        wrk = WrkClient(tb.generator, "server", 80, ["small.bin"], connections=8, max_requests=100)
        tb.run(until=2.0)
        assert wrk.stats.requests == 100
        assert wrk.stats.bytes_received == 100 * 4096
        assert wrk.stats.mean_latency > 0

    def test_nginx_over_remote_nvme(self):
        """The paper's C1: nginx files on an NVMe-TCP-backed filesystem."""
        tb = make_testbed()
        device = BlockDevice(tb.sim)
        target = NvmeTcpTarget(tb.generator, device)
        target.start()
        nvme = NvmeTcpHost(tb.server, config=NvmeConfig(rx_offload_crc=True, rx_offload_copy=True))
        nvme.connect("generator")
        fs = FlatFs(RemoteBlockReader(nvme))
        fs.create("file.bin", 64 * 1024)
        NginxServer(tb.server, fs, port=8080)
        body = fetch_file(tb, 8080, "file.bin", until=10.0)
        assert body == device.peek(fs.stat("file.bin").offset, 64 * 1024)
        assert nvme.stats.pdus_placed > 0


class TestRof:
    def make_rof(self, tb, tls=None):
        device = BlockDevice(tb.sim)
        target = NvmeTcpTarget(tb.generator, device)
        target.start()
        nvme = NvmeTcpHost(tb.server, config=NvmeConfig(rx_offload_crc=True, rx_offload_copy=True))
        nvme.connect("generator")
        db = OffloadDb()
        keys = []
        for i in range(8):
            key = f"key:{i}"
            db.allocate(key, 16 * 1024)
            keys.append(key)
        RofServer(tb.server, nvme, db, port=6379, tls=tls)
        return db, device, keys

    def test_memtier_gets_complete(self):
        tb = make_testbed()
        db, device, keys = self.make_rof(tb)
        memtier = MemtierClient(tb.generator, "server", 6379, keys, connections=4, max_requests=40)
        tb.run(until=5.0)
        assert memtier.stats.gets == 40
        assert memtier.stats.bytes_received > 0

    def test_get_returns_flash_content(self):
        tb = make_testbed()
        db, device, keys = self.make_rof(tb)
        offset, length = db.lookup(keys[0])
        expected = device.peek(offset, length)

        from repro.apps.transport import Transport

        conn = tb.generator.tcp.connect("server", 6379)
        transport = Transport(tb.generator, conn, "client", None)
        got = bytearray()
        transport.on_ready = lambda: transport.send(f"GET {keys[0]}\r\n".encode())
        transport.on_data = got.extend
        tb.run(until=5.0)
        header_end = got.find(b"\r\n")
        assert bytes(got[header_end + 2 : header_end + 2 + length]) == expected

    def test_rof_over_tls(self):
        tb = make_testbed(server_cores=2)
        db, device, keys = self.make_rof(tb, tls=TlsConfig(tx_offload=True, rx_offload=True))
        memtier = MemtierClient(
            tb.generator, "server", 6379, keys, connections=4, tls=TlsConfig(), max_requests=20
        )
        tb.run(until=5.0)
        assert memtier.stats.gets == 20

    def test_miss_reply(self):
        tb = make_testbed()
        db, device, keys = self.make_rof(tb)
        memtier = MemtierClient(tb.generator, "server", 6379, ["absent"], connections=1, max_requests=3)
        tb.run(until=5.0)
        assert memtier.stats.gets == 3
        assert memtier.stats.bytes_received == 0
