"""The simulator: a clock plus an event queue.

The simulator also owns the run's random source so that every stochastic
decision (loss, reordering, workload think times) is reproducible from a
single seed, and carries the run's optional observability handle
(``sim.obs``, a :class:`repro.obs.Obs`): components reach their metrics
and tracer through the simulator they already hold.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, Optional

from repro.sim.event import Event


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulation-wide random source.  Sub-components that
        need their own stream should call :meth:`substream`.
    """

    def __init__(self, seed: int = 0):
        self.now: float = 0.0
        self.seed = seed
        self.random = random.Random(seed)
        self._queue: list[Event] = []
        self._seq = 0
        self._events_fired = 0
        # Observability handle (repro.obs.Obs) or None = off.  Set it
        # before constructing hosts so caching components see it.
        self.obs = None

    @property
    def now_ns(self) -> int:
        """The current simulated time in integer nanoseconds."""
        return round(self.now * 1e9)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        return self.at(self.now + delay, fn, *args)

    def at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        self._seq += 1
        event = Event(time, self._seq, fn, args)
        heapq.heappush(self._queue, event)
        return event

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at the current time, after pending events."""
        return self.at(self.now, fn, *args)

    def substream(self, name: str) -> random.Random:
        """A named, independent random stream derived from the run seed."""
        return random.Random(f"{self.seed}:{name}")

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event.  Returns False if none remain."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.canceled:
                continue
            self.now = event.time
            self._events_fired += 1
            event.fire()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or the event
        budget ``max_events`` is exhausted."""
        fired = 0
        while self._queue:
            if max_events is not None and fired >= max_events:
                return
            head = self._queue[0]
            if head.canceled:
                heapq.heappop(self._queue)
                continue
            if until is not None and head.time > until:
                self.now = until
                return
            self.step()
            fired += 1
        if until is not None and until > self.now:
            self.now = until

    @property
    def pending(self) -> int:
        """Number of pending (non-canceled) events."""
        return sum(1 for e in self._queue if not e.canceled)

    @property
    def events_fired(self) -> int:
        return self._events_fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self.now:.9f} pending={len(self._queue)}>"
