"""AES-GCM authenticated encryption (NIST SP 800-38D), from scratch.

Two interfaces are provided:

- :class:`AesGcm` — one-shot ``encrypt``/``decrypt`` as used by test
  vectors and small messages.
- :class:`GcmEncryptor` / :class:`GcmDecryptor` — *incremental* record
  processing: the NIC model feeds one TCP packet's worth of bytes at a
  time, exactly as the hardware walks a record spanning several packets.
  GCM is CTR-based, so the keystream is seekable and the construction is
  "incrementally computable over any byte range given constant state"
  (the paper's precondition, §3.2).
"""

from __future__ import annotations

from repro.crypto.aes import AES
from repro.crypto.ghash import Ghash, precompute_table


class AuthenticationError(Exception):
    """Raised when a GCM tag (or suite tag) fails verification."""


def _inc32(block: int) -> int:
    """Increment the low 32 bits of a 128-bit counter block."""
    high = block & ~0xFFFFFFFF
    low = (block + 1) & 0xFFFFFFFF
    return high | low


class _GcmStream:
    """Shared CTR + GHASH machinery for the encrypt/decrypt directions."""

    def __init__(self, aes: AES, h: int, nonce: bytes, aad: bytes, table=None):
        if len(nonce) != 12:
            raise ValueError("GCM nonce must be 96 bits")
        self._aes = aes
        self._ghash = Ghash(h, table)
        self._ghash.update(aad)
        self._ghash.pad_to_block()
        self._aad_len = len(aad)
        self._data_len = 0
        self._j0 = int.from_bytes(nonce + b"\x00\x00\x00\x01", "big")
        self._counter = _inc32(self._j0)
        self._keystream = b""

    def _take_keystream(self, n: int) -> bytes:
        """Next ``n`` keystream bytes, generating blocks as needed.

        All blocks the request spans are expanded in one multi-block
        CTR call (:meth:`repro.crypto.aes.AES.ctr_keystream`) instead of
        one ``encrypt_block`` round-trip per 16 bytes.
        """
        head = b""
        if self._keystream:
            head = self._keystream[:n]
            self._keystream = self._keystream[n:]
            n -= len(head)
        if n <= 0:
            return head
        nblocks = (n + 15) >> 4
        ks = self._aes.ctr_keystream(self._counter, nblocks)
        # inc32 applied once per generated block.
        self._counter = (self._counter & ~0xFFFFFFFF) | ((self._counter + nblocks) & 0xFFFFFFFF)
        if (nblocks << 4) > n:
            self._keystream = ks[n:]
            ks = ks[:n]
        return head + ks if head else ks

    def _xor_keystream(self, data: bytes) -> bytes:
        ks = self._take_keystream(len(data))
        n = len(data)
        # Whole-buffer XOR via big ints: ~20x the per-byte generator.
        return (int.from_bytes(data, "big") ^ int.from_bytes(ks, "big")).to_bytes(n, "big")

    def skip(self, n: int) -> None:
        """Advance the keystream by ``n`` bytes without producing output.

        Fallback helper for partially-offloaded records: positions the
        stream mid-record.  The authenticator is NOT advanced — a
        skipped stream must not be finalized for tag purposes.
        """
        self._take_keystream(n)

    def _tag(self) -> bytes:
        self._ghash.pad_to_block()
        lengths = (self._aad_len * 8).to_bytes(8, "big") + (self._data_len * 8).to_bytes(8, "big")
        self._ghash.update(lengths)
        s = self._ghash.digest_int()
        e_j0 = int.from_bytes(self._aes.encrypt_block(self._j0.to_bytes(16, "big")), "big")
        return (s ^ e_j0).to_bytes(16, "big")


class GcmEncryptor(_GcmStream):
    """Incremental GCM encryption of one record."""

    def update(self, plaintext: bytes) -> bytes:
        ciphertext = self._xor_keystream(plaintext)
        self._ghash.update(ciphertext)
        self._data_len += len(plaintext)
        return ciphertext

    def absorb_ciphertext(self, ciphertext: bytes) -> None:
        """Advance the authenticator over bytes that are *already*
        ciphertext (the software fallback for partially NIC-decrypted
        records re-encrypts the decrypted runs and absorbs the rest —
        this is why partial offload costs more than none, §5.2)."""
        self._ghash.update(ciphertext)
        self._take_keystream(len(ciphertext))
        self._data_len += len(ciphertext)

    def finalize(self) -> bytes:
        """Return the 16-byte authentication tag."""
        return self._tag()


class GcmDecryptor(_GcmStream):
    """Incremental GCM decryption of one record."""

    def update(self, ciphertext: bytes) -> bytes:
        self._ghash.update(ciphertext)
        plaintext = self._xor_keystream(ciphertext)
        self._data_len += len(ciphertext)
        return plaintext

    def finalize(self, tag: bytes) -> None:
        """Verify the tag; raises :class:`AuthenticationError` on mismatch."""
        expected = self._tag()
        if expected != tag:
            raise AuthenticationError("GCM tag mismatch")


class AesGcm:
    """AES-GCM for a fixed key (one-shot interface)."""

    TAG_SIZE = 16
    NONCE_SIZE = 12

    def __init__(self, key: bytes):
        self._aes = AES(key)
        self._h = int.from_bytes(self._aes.encrypt_block(b"\x00" * 16), "big")
        # GHASH key schedule, shared by every record under this key — the
        # static half of the paper's HW context (built once per key, not
        # once per record).
        self._table = precompute_table(self._h)

    def encryptor(self, nonce: bytes, aad: bytes = b"") -> GcmEncryptor:
        return GcmEncryptor(self._aes, self._h, nonce, aad, self._table)

    def decryptor(self, nonce: bytes, aad: bytes = b"") -> GcmDecryptor:
        return GcmDecryptor(self._aes, self._h, nonce, aad, self._table)

    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> tuple[bytes, bytes]:
        """Return ``(ciphertext, tag)``."""
        enc = self.encryptor(nonce, aad)
        ciphertext = enc.update(plaintext)
        return ciphertext, enc.finalize()

    def decrypt(self, nonce: bytes, ciphertext: bytes, tag: bytes, aad: bytes = b"") -> bytes:
        """Return the plaintext; raises :class:`AuthenticationError`."""
        dec = self.decryptor(nonce, aad)
        plaintext = dec.update(ciphertext)
        dec.finalize(tag)
        return plaintext
