"""Figure 3: per-year Linux TCP/IP LoC, total and modified — the
maintenance burden a dependent (TOE-style) offload would freeze into
silicon."""

from repro.data.linux_loc import (
    COMPONENTS,
    LINUX_TCP_LOC,
    modified_by_year,
    modified_fraction_range,
    totals_by_year,
)
from repro.harness.report import Table


def test_fig03(benchmark, emit):
    totals = benchmark.pedantic(totals_by_year, rounds=1, iterations=1)
    modified = modified_by_year()
    table = Table(
        ["year", "total LoC", "modified LoC"],
        title="Figure 3: Linux TCP/IP processing code per year",
    )
    for (year, total), (_, mod) in zip(totals, modified):
        table.row(year, total, mod)
    emit("fig03_linux_loc", table.render())

    # Totals grow monotonically (the stack keeps evolving)...
    values = [t for _, t in totals]
    assert values == sorted(values)
    assert values[0] > 200_000 and values[-1] > values[0]
    # ...and each component churns 5-25% per year (the paper's claim).
    lo, hi = modified_fraction_range()
    assert 0.05 <= lo and hi <= 0.25
    assert set(LINUX_TCP_LOC[2015]) == set(COMPONENTS)
