"""Autonomous NIC offloads — the paper's primary contribution.

This package implements the software/NIC architecture of §3–§4:

- :mod:`repro.core.types` — the L5P adapter contract (what a protocol
  must provide to be autonomously offloadable; paper Table 3) and the
  message descriptors exchanged across the interfaces.
- :mod:`repro.core.walker` — the shared L5P message walker: incremental,
  packet-by-packet processing of messages that are arbitrarily aligned
  to TCP segments.
- :mod:`repro.core.tx` — transmit engine with driver-led context
  recovery for retransmissions (§4.2).
- :mod:`repro.core.rx` — receive engine with the hardware-driven
  resynchronization state machine (offloading → searching → tracking,
  Figure 7) and software-confirmed magic-pattern speculation (§4.3).
- :mod:`repro.core.driver` — the NIC driver providing Listing 1's
  ``l5o_*`` calls to the L5P and invoking Listing 2's upcalls.
"""

from repro.core.types import (
    Direction,
    L5pAdapter,
    MessageDesc,
    MsgTransform,
    ProtocolError,
    TxMsgState,
)
from repro.core.context import HwContext, RxState
from repro.core.driver import NicDriver, L5pOps

__all__ = [
    "Direction",
    "L5pAdapter",
    "MessageDesc",
    "MsgTransform",
    "ProtocolError",
    "TxMsgState",
    "HwContext",
    "RxState",
    "NicDriver",
    "L5pOps",
]
