"""Kernel TLS (kTLS) over a simulated TCP connection, with optional
autonomous NIC offload (§5.2).

Transmit: application bytes are framed into records.  In software mode
kTLS encrypts them; in offload mode it emits *plaintext* records with
dummy tags (the "wrong bytes") and keeps a sequence→record map so the
driver can recover NIC context on retransmission (the paper's ~200 LoC).

Receive: the stream is reassembled into records; per-packet ``decrypted``
bits decide between reusing NIC results, full software decryption, and
the costlier partial-record fallback (re-encrypt + authenticate).

The handshake is modelled, not cryptographically real: hello records
carry randoms, keys are derived deterministically on both sides, and a
fixed cycle cost is charged — the paper likewise leaves the handshake to
userspace OpenSSL and offloads only the record path.
"""

from __future__ import annotations

import struct
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.types import Direction, TxMsgState
from repro.crypto.sha1 import sha1
from repro.crypto.suite import get_cipher_suite
from repro.l5p.base import Run, StreamAssembler
from repro.l5p.tls.fallback import decrypt_whole_record, recover_partial_record
from repro.l5p.tls.record import (
    CONTENT_APPDATA,
    CONTENT_HANDSHAKE,
    HEADER_LEN,
    MAX_PLAINTEXT,
    TAG_LEN,
    TlsDirectionState,
    make_header,
    record_nonce,
)
from repro.net.packet import SkbMeta
from repro.tcp import seq as sq

_HELLO_LEN = 32


@dataclass
class TlsConfig:
    """kTLS datapath configuration."""

    suite_name: str = "xor-gcm"
    tx_offload: bool = False
    rx_offload: bool = False
    zerocopy_sendfile: bool = False
    record_size: int = MAX_PLAINTEXT

    def __post_init__(self) -> None:
        if not 1 <= self.record_size <= MAX_PLAINTEXT:
            raise ValueError(f"record_size {self.record_size} out of range")


@dataclass
class TlsStats:
    records_tx: int = 0
    records_rx_full: int = 0  # entirely NIC-offloaded
    records_rx_partial: int = 0  # some packets offloaded
    records_rx_none: int = 0  # pure software
    bytes_tx: int = 0
    bytes_rx: int = 0
    auth_failures: int = 0
    offload_degraded: int = 0  # driver gave up on this flow's offload

    @property
    def records_rx(self) -> int:
        return self.records_rx_full + self.records_rx_partial + self.records_rx_none


class KtlsSocket:
    """A TLS-protected byte stream over one TcpConnection."""

    def __init__(self, host, conn, role: str, config: Optional[TlsConfig] = None, adapter=None):
        if role not in ("client", "server"):
            raise ValueError(f"role must be client/server, got {role!r}")
        self.host = host
        self.conn = conn
        self.role = role
        self.config = config or TlsConfig()
        self.suite = get_cipher_suite(self.config.suite_name)
        self.adapter = adapter  # injected for NVMe-TLS stacking
        self.core = host.core_for_flow(conn.flow)
        self.model = host.model
        self.ready = False

        # Directional states, set at key derivation.
        self.tx_state: Optional[TlsDirectionState] = None
        self.rx_state: Optional[TlsDirectionState] = None
        self.tx_record_seq = 0
        self.rx_record_seq = 0
        self._my_random = host.sim.substream(f"tls:{role}:{conn.flow}").randbytes(_HELLO_LEN)
        self._peer_random: Optional[bytes] = None
        self._hello_sent = False

        # Offload plumbing.
        self._tx_ctx = None
        self._rx_ctx = None
        # (start_seq, idx, wire, plaintext_offset) per offloaded record.
        self._tx_msgs: deque[tuple[int, int, bytes, int]] = deque()
        self._tx_plain_sent = 0  # cumulative record-body bytes queued
        self._pending_resync: list[int] = []

        # Receive assembly.
        self._assembler: Optional[StreamAssembler] = None

        # Application callbacks.
        self.on_ready: Optional[Callable[[], None]] = None
        self.on_data: Optional[Callable[[bytes], None]] = None
        self.on_record: Optional[Callable[[list[Run]], None]] = None
        self.on_writable: Optional[Callable[[], None]] = None
        self.on_error: Optional[Callable[[str], None]] = None
        # Fired after a NIC reset re-installs a context (stacked L5Ps —
        # NVMe/TLS — refresh their cached ctx handles here).
        self.on_reattach: Optional[Callable[[str], None]] = None

        self.stats = TlsStats()

        conn.on_data = self._on_skb
        self._chain_established(conn)
        conn.on_writable = self._on_conn_writable

    # ------------------------------------------------------------------
    # handshake
    # ------------------------------------------------------------------
    def _chain_established(self, conn) -> None:
        previous = conn.on_established

        def established() -> None:
            if previous:
                previous()
            if self.role == "client":
                self._send_hello()

        conn.on_established = established
        if conn.state == "established" and self.role == "client":
            self._send_hello()

    def _send_hello(self) -> None:
        if self._hello_sent:
            return
        self._hello_sent = True
        wire = make_header(CONTENT_HANDSHAKE, _HELLO_LEN + TAG_LEN) + self._my_random + b"\x00" * TAG_LEN
        accepted = self.conn.send(wire)
        if accepted != len(wire):
            raise RuntimeError("send buffer too small for handshake")

    def _on_hello(self, body: bytes) -> None:
        self._peer_random = body[:_HELLO_LEN]
        if self.role == "server":
            self._derive_keys()
            self._send_hello()  # answers before any protected record
            self._go_ready()
        else:
            self._derive_keys()
            self._go_ready()

    def _derive_keys(self) -> None:
        if self.role == "client":
            client_random, server_random = self._my_random, self._peer_random
        else:
            client_random, server_random = self._peer_random, self._my_random
        master = client_random + server_random
        client = TlsDirectionState(
            suite=self.suite, key=sha1(b"ckey" + master)[:16], iv=sha1(b"civ" + master)[:12]
        )
        server = TlsDirectionState(
            suite=self.suite, key=sha1(b"skey" + master)[:16], iv=sha1(b"siv" + master)[:12]
        )
        if self.role == "client":
            self.tx_state, self.rx_state = client, server
        else:
            self.tx_state, self.rx_state = server, client
        self.core.charge(self.model.cycles_tls_handshake, "crypto")

    def _go_ready(self) -> None:
        self._install_offloads()
        self.ready = True
        if self.on_ready:
            self.on_ready()

    def _install_offloads(self) -> None:
        driver = getattr(self.host.nic, "driver", None)
        adapter = self.adapter
        if adapter is None:
            from repro.l5p import plugin

            adapter = plugin.make_adapter("tls")
        if self.config.tx_offload:
            if driver is None:
                raise RuntimeError("tx_offload requires an OffloadNic")
            self._tx_ctx = driver.l5o_create(
                self.conn,
                adapter,
                self._tx_static_state(),
                tcpsn=self.conn.send_buffer.end_seq,
                direction=Direction.TX,
                l5p_ops=self,
            )
            self._tx_ctx.created_seq = self.conn.send_buffer.end_seq
        if self.config.rx_offload:
            if driver is None:
                raise RuntimeError("rx_offload requires an OffloadNic")
            tcpsn = self._assembler.next_msg_seq if self._assembler else self.conn.rcv_nxt
            self._rx_ctx = driver.l5o_create(
                self.conn,
                adapter,
                self._rx_static_state(),
                tcpsn=tcpsn,
                direction=Direction.RX,
                l5p_ops=self,
            )

    def _tx_static_state(self):
        return self.tx_state

    def _rx_static_state(self):
        return self.rx_state

    # ------------------------------------------------------------------
    # transmit path
    # ------------------------------------------------------------------
    def send(self, data: bytes) -> int:
        """Frame and queue application bytes; returns bytes consumed."""
        return self._send_common(data, sendfile=False)

    def sendfile(self, data: bytes) -> int:
        """Transmit page-cache content (nginx's sendfile path)."""
        return self._send_common(data, sendfile=True)

    def _send_common(self, data: bytes, sendfile: bool) -> int:
        if not self.ready:
            raise RuntimeError("TLS handshake not complete")
        consumed = 0
        while consumed < len(data):
            body = data[consumed : consumed + self.config.record_size]
            if self.conn.send_space < len(body) + HEADER_LEN + TAG_LEN:
                break
            self._send_record(body, sendfile=sendfile)
            consumed += len(body)
        return consumed

    @property
    def send_space(self) -> int:
        """App-visible transmit budget (record overheads excluded)."""
        per_record = HEADER_LEN + TAG_LEN
        space = self.conn.send_space
        records = space // (self.config.record_size + per_record) + 1
        return max(0, space - records * per_record)

    def _send_record(self, body: bytes, sendfile: bool) -> None:
        header = make_header(CONTENT_APPDATA, len(body) + TAG_LEN)
        idx = self.tx_record_seq
        pages = (len(body) + 4095) // 4096
        if self._tx_ctx is not None:
            # Offload: pass the "wrong bytes" down the stack (§3.1).
            wire = header + body + b"\x00" * TAG_LEN
            start = self.conn.send_buffer.end_seq
            self._tx_msgs.append((start, idx, wire, self._tx_plain_sent))
            if sendfile and self.config.zerocopy_sendfile:
                # NIC encrypts page-cache bytes on the way out: no copy.
                self.core.charge(self.model.cycles_sendfile_page * pages, "stack")
            else:
                self.core.charge(len(body) * self.host.llc.copy_cpb(), "copy")
        else:
            nonce = record_nonce(self.tx_state.iv, idx)
            ciphertext, tag = self.suite.seal(self.tx_state.key, nonce, body, aad=header)
            wire = header + ciphertext + tag
            crypto = self.model.cycles_crypto_setup + self.model.cpb_aes_gcm * (len(body) + TAG_LEN)
            self.core.charge(crypto, "crypto")
            if sendfile:
                # Software kTLS sendfile encrypts into a bounce buffer.
                self.core.charge(self.model.cycles_page_alloc * pages, "stack")
            else:
                self.core.charge(len(body) * self.host.llc.copy_cpb(), "copy")
        self.core.charge(self.model.cycles_record_tx, "l5p")
        accepted = self.conn.send(wire)
        if accepted != len(wire):
            raise RuntimeError("record split across send buffer boundary")
        self.tx_record_seq += 1
        self._tx_plain_sent += len(body)
        self.stats.records_tx += 1
        self.stats.bytes_tx += len(body)
        obs = self.host.sim.obs
        if obs is not None:
            kind = "offload" if self._tx_ctx is not None else "sw"
            obs.count(f"l5p.tls.tx.bytes.{kind}", len(body))

    def close(self) -> None:
        self.conn.close()

    def _on_conn_writable(self) -> None:
        una = self.conn.snd_una
        while self._tx_msgs:
            start, _idx, wire, _plain = self._tx_msgs[0]
            if sq.le(sq.add(start, len(wire)), una):
                self._tx_msgs.popleft()
            else:
                break
        if self.ready and self.on_writable:
            self.on_writable()

    # ------------------------------------------------------------------
    # Listing 2: upcalls from the NIC driver
    # ------------------------------------------------------------------
    def l5o_get_tx_msgstate(self, tcpsn: int) -> Optional[TxMsgState]:
        for start, idx, wire, plain in self._tx_msgs:
            if sq.between(start, tcpsn, sq.add(start, len(wire))):
                return TxMsgState(
                    start_seq=start,
                    msg_index=idx,
                    wire_bytes=wire,
                    info={"plain_offset": plain},
                )
        return None

    def l5o_resync_rx_req(self, tcpsn: int) -> None:
        self._pending_resync.append(tcpsn)

    def l5o_offload_degraded(self, direction: str, reason: str) -> None:
        """The driver gave up on this flow's offload (paper §5.3's
        permanent software fallback); the socket keeps working through
        the software crypto path."""
        self.stats.offload_degraded += 1

    def l5o_nic_reattach(self, direction: str):
        """A NIC reset destroyed this flow's context; re-install it from
        host-owned state (the whole point of autonomy, §2).

        TX restarts at the head of the un-acked record queue — everything
        before it is fully acknowledged and pruned, so ``snd_una`` lies
        inside the head record and bytes below ``created_seq`` pass
        through raw (already produced by the outage-time shadow).  RX
        restarts at the next record boundary the assembler expects; the
        standard Figure 7 searching/resync machinery absorbs any seam.
        Returns the new context, or None if the flow is gone."""
        if not self.ready or self.conn.state == "closed":
            return None
        driver = self.host.nic.driver
        adapter = self.adapter
        if adapter is None:
            from repro.l5p import plugin

            adapter = plugin.make_adapter("tls")
        if direction == Direction.TX.value:
            if self._tx_msgs:
                start, idx, _wire, _plain = self._tx_msgs[0]
            else:
                start, idx = self.conn.send_buffer.end_seq, self.tx_record_seq
            self._tx_ctx = driver.l5o_create(
                self.conn,
                adapter,
                self._tx_static_state(),
                tcpsn=start,
                direction=Direction.TX,
                l5p_ops=self,
                msg_index=idx,
            )
            self._tx_ctx.created_seq = start
            ctx = self._tx_ctx
        else:
            tcpsn = self._assembler.next_msg_seq if self._assembler else self.conn.rcv_nxt
            self._rx_ctx = driver.l5o_create(
                self.conn,
                adapter,
                self._rx_static_state(),
                tcpsn=tcpsn,
                direction=Direction.RX,
                l5p_ops=self,
                msg_index=self.rx_record_seq,
            )
            ctx = self._rx_ctx
        if self.on_reattach:
            self.on_reattach(direction)
        return ctx

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def _on_skb(self, skb) -> None:
        if self._assembler is None:
            self._assembler = StreamAssembler(HEADER_LEN, self._total_len, start_seq=skb.seq)
        try:
            messages = self._assembler.push(skb.data, skb.meta)
        except ValueError as exc:
            self._fail(f"record framing error: {exc}")
            return
        for msg in messages:
            self._process_record(msg)

    @staticmethod
    def _total_len(header: bytes) -> int:
        ctype, version, length = struct.unpack(">BHH", header)
        if length > MAX_PLAINTEXT + TAG_LEN or length < TAG_LEN:
            raise ValueError(f"record length {length} invalid")
        return HEADER_LEN + length

    def _process_record(self, msg) -> None:
        wire = msg.wire
        header = wire[:HEADER_LEN]
        ctype = header[0]
        body_len = len(wire) - HEADER_LEN - TAG_LEN
        record_end = sq.add(msg.start_seq, len(wire))

        if not self.ready and ctype == CONTENT_HANDSHAKE:
            self._on_hello(wire[HEADER_LEN : HEADER_LEN + body_len])
            return

        idx = self.rx_record_seq
        self.rx_record_seq += 1
        self.core.charge(self.model.cycles_record_rx, "l5p")
        nonce = record_nonce(self.rx_state.iv, idx)
        tag = wire[HEADER_LEN + body_len :]
        decrypted_flags = [run.meta.decrypted for run in msg.runs]
        obs = self.host.sim.obs
        plain_runs: list[Run]
        if all(decrypted_flags):
            self.stats.records_rx_full += 1
            if obs is not None:
                obs.count("l5p.tls.rx.records.full")
                obs.count("l5p.tls.rx.bytes.offload", body_len)
            plain_runs = msg.slice_runs(HEADER_LEN, body_len)
            plain = b"".join(r.data for r in plain_runs)
            ok = True
        elif not any(decrypted_flags):
            self.stats.records_rx_none += 1
            if obs is not None:
                obs.count("l5p.tls.rx.records.none")
                obs.count("l5p.tls.rx.bytes.fallback", body_len)
            crypto = self.model.cycles_crypto_setup + self.model.cpb_aes_gcm * (body_len + TAG_LEN)
            self.core.charge(crypto, "crypto")
            ciphertext = wire[HEADER_LEN : HEADER_LEN + body_len]
            plain, ok = decrypt_whole_record(self.suite, self.rx_state.key, nonce, header, ciphertext, tag)
            plain_runs = [Run(plain, SkbMeta())]
        else:
            self.stats.records_rx_partial += 1
            if obs is not None:
                obs.count("l5p.tls.rx.records.partial")
                obs.count("l5p.tls.rx.bytes.fallback", body_len)
            body_runs = msg.slice_runs(HEADER_LEN, body_len)
            recovered = recover_partial_record(self.suite, self.rx_state.key, nonce, header, body_runs, tag)
            # Partial fallback re-encrypts NIC-decrypted runs: costlier
            # than plain decryption (§5.2).
            work = body_len + TAG_LEN + recovered.reencrypted_bytes
            self.core.charge(self.model.cycles_crypto_setup + self.model.cpb_aes_gcm * work, "crypto")
            plain, ok = recovered.plaintext, recovered.ok
            plain_runs = [Run(plain, SkbMeta())]
        self._answer_resyncs(msg.start_seq, idx, record_end)
        if not ok:
            self.stats.auth_failures += 1
            self._fail(f"record {idx} failed authentication")
            return
        # Copy to the application (recvmsg).
        self.core.charge(len(plain) * self.host.llc.copy_cpb(), "stack")
        self.stats.bytes_rx += len(plain)
        if self.on_record:
            self.on_record(plain_runs)
        if self.on_data and plain:
            self.on_data(plain)

    def _answer_resyncs(self, record_start: int, idx: int, record_end: int) -> None:
        if not self._pending_resync or self._rx_ctx is None:
            return
        driver = self.host.nic.driver
        still_pending = []
        for req in self._pending_resync:
            if req == record_start:
                driver.l5o_resync_rx_resp(self._rx_ctx, req, True, msg_index=idx)
            elif sq.lt(req, record_end):
                # The stream moved past the speculated position without a
                # record starting there: deny.
                driver.l5o_resync_rx_resp(self._rx_ctx, req, False)
            else:
                still_pending.append(req)
        self._pending_resync = still_pending

    def _fail(self, reason: str) -> None:
        if self.on_error:
            self.on_error(reason)
        else:
            raise RuntimeError(f"kTLS: {reason}")
