"""Metric primitives: counters, gauges, histograms, and their registry.

The registry is the single collection point for a run's telemetry.
Components increment :class:`Counter`/:class:`Gauge`/:class:`Histogram`
instances inline (push) while anything that already keeps its own
statistics — PCIe byte accounting, CPU cycle attribution, per-context
offload counters — is attached as a *probe*: a callable sampled only
when a snapshot is taken (pull), so steady-state cost is zero.

Metric names are dotted paths (``nic.cache.hit``,
``host.server.rx_batch``); the first segment names the component family,
which is how DESIGN.md maps each family back to the paper mechanism it
observes.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Optional, Sequence, Union

Number = Union[int, float]

#: Default histogram bucket upper bounds (powers of two): right for the
#: batch/byte-count distributions the simulation produces.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(2.0**i for i in range(17))


class Cell:
    """An epoch-batched counter increment slot.

    The per-packet path at datacenter flow counts cannot afford a
    registry dict lookup plus a guarded ``Counter.inc`` per packet, so
    hot components hold a ``Cell`` and do a bare ``cell.value += n``.
    The registry folds every cell into its backing :class:`Counter` at
    *epoch boundaries* — any snapshot, flat view, or reset — so every
    observable read sees exactly the totals an unbatched run would
    report (the determinism contract in docs/performance.md).
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def inc(self, n: Number = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name}: negative increment {n!r}")
        self.value += n

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A value that can move both ways (e.g. active contexts)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def inc(self, n: Number = 1) -> None:
        self.value += n

    def dec(self, n: Number = 1) -> None:
        self.value -= n

    def reset(self) -> None:
        self.value = 0


class Histogram:
    """Summary statistics plus fixed-bound bucket counts."""

    __slots__ = ("name", "buckets", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, name: str, buckets: Optional[Sequence[float]] = None):
        self.name = name
        self.buckets = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError(f"histogram {name}: bucket bounds must be sorted")
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # +1 overflow
        self.count = 0
        self.total: Number = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None

    def observe(self, value: Number) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None

    def summary(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "buckets": {
                **{str(b): c for b, c in zip(self.buckets, self.bucket_counts) if c},
                **({"+inf": self.bucket_counts[-1]} if self.bucket_counts[-1] else {}),
            },
        }


class MetricsRegistry:
    """All metrics of one run, snapshotted as a JSON-friendly dict.

    Instruments are created on first use so callers never need to
    pre-declare them; a name is bound to a single instrument kind for
    the registry's lifetime.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._probes: dict[str, Callable[[], Any]] = {}
        self._cells: dict[str, Cell] = {}

    # ------------------------------------------------------------------
    # instrument lookup/creation
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            self._check_free(name, self._counters)
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            self._check_free(name, self._gauges)
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, buckets: Optional[Sequence[float]] = None) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            self._check_free(name, self._histograms)
            h = self._histograms[name] = Histogram(name, buckets)
        return h

    def probe(self, name: str, fn: Callable[[], Any]) -> None:
        """Register a pull-based metric: ``fn()`` is called per snapshot
        and may return a scalar or a (nested) dict of scalars."""
        self._probes[name] = fn

    def cell(self, name: str) -> Cell:
        """An epoch-batched increment slot feeding the counter ``name``.

        Hot paths do ``cell.value += n`` (no lookup, no call); the
        accumulated delta is folded into the backing counter by
        :meth:`flush` — which every snapshot/flat/reset performs first,
        so batched and unbatched accounting are indistinguishable to
        any reader.
        """
        c = self._cells.get(name)
        if c is None:
            self._check_free(name, self._counters)  # counters share the name
            c = self._cells[name] = Cell(name)
        return c

    def flush(self) -> None:
        """Fold every cell's pending delta into its backing counter
        (the epoch boundary of the batched accounting path)."""
        for name, cell in sorted(self._cells.items()):
            if cell.value:
                self.counter(name).inc(cell.value)
                cell.value = 0

    def _check_free(self, name: str, own: dict) -> None:
        for kind in (self._counters, self._gauges, self._histograms):
            if kind is not own and name in kind:
                raise ValueError(f"metric name {name!r} already used by another instrument kind")

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """One structured view of everything, probes included."""
        self.flush()
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {name: h.summary() for name, h in sorted(self._histograms.items())},
            "probes": {name: fn() for name, fn in sorted(self._probes.items())},
        }

    def flat(self) -> dict[str, Any]:
        """Flattened ``dotted.name -> scalar`` view (histograms reduce to
        count/mean/max), convenient for regression baselines."""
        self.flush()
        out: dict[str, Any] = {}
        for name, c in self._counters.items():
            out[name] = c.value
        for name, g in self._gauges.items():
            out[name] = g.value
        for name, h in self._histograms.items():
            out[f"{name}.count"] = h.count
            out[f"{name}.mean"] = h.mean
            out[f"{name}.max"] = h.max if h.max is not None else 0
        for name, fn in self._probes.items():
            _flatten(name, fn(), out)
        return dict(sorted(out.items()))

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True, default=str)

    def reset(self) -> None:
        """Zero counters and histograms (measurement-window reset after
        warm-up); gauges and probes track live state and are left alone.

        Cells are flushed first so warm-up increments parked in a cell
        are discarded exactly as an unbatched counter's would be."""
        self.flush()
        for c in self._counters.values():
            c.reset()
        for h in self._histograms.values():
            h.reset()


def _flatten(prefix: str, value: Any, out: dict[str, Any]) -> None:
    if isinstance(value, dict):
        for key, sub in value.items():
            _flatten(f"{prefix}.{key}", sub, out)
    elif isinstance(value, (int, float)):
        out[prefix] = value
    # non-numeric probe results are snapshot-only; skip in flat view
