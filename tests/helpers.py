"""Shared test helpers: a minimal two-host testbed."""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.host import Host
from repro.net.link import Link, LinkConfig
from repro.sim import Simulator
from repro.util.units import GBPS


@dataclass
class Pair:
    sim: Simulator
    client: Host
    server: Host
    link: Link


def make_pair(
    seed: int = 0,
    client_cores: int = 1,
    server_cores: int = 1,
    bandwidth_bps: float = 100 * GBPS,
    latency_s: float = 5e-6,
    loss_to_server: float = 0.0,
    reorder_to_server: float = 0.0,
    dup_to_server: float = 0.0,
    loss_to_client: float = 0.0,
    reorder_to_client: float = 0.0,
    client_nic=None,
    server_nic=None,
    model=None,
) -> Pair:
    """Two hosts, client('a' side) <-> server('b' side), one link."""
    from repro.cpu.model import DEFAULT_COST_MODEL

    sim = Simulator(seed=seed)
    model = model or DEFAULT_COST_MODEL
    kwargs = {}
    client = Host(sim, "client", model=model, cores=client_cores, nic=client_nic, **kwargs)
    server = Host(sim, "server", model=model, cores=server_cores, nic=server_nic, **kwargs)
    link = Link(
        sim,
        config_ab=LinkConfig(
            bandwidth_bps=bandwidth_bps,
            latency_s=latency_s,
            loss=loss_to_server,
            reorder=reorder_to_server,
            duplicate=dup_to_server,
        ),
        config_ba=LinkConfig(
            bandwidth_bps=bandwidth_bps,
            latency_s=latency_s,
            loss=loss_to_client,
            reorder=reorder_to_client,
        ),
    )
    client.attach_link(link, "a")
    server.attach_link(link, "b")
    return Pair(sim, client, server, link)
