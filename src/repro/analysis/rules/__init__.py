"""Rule registry for the project analysis passes.

Each rule module defines one or more
:class:`~repro.analysis.lint.LintRule` subclasses; register new rules
here so the CLI, the SARIF emitter, and the tests pick them up.  Rules
are grouped into pass families (``core``, ``determinism``,
``contract``, ``consistency``) — see DESIGN.md §11 for the rule table
mapped to paper sections.
"""

from __future__ import annotations

from repro.analysis.lint import LintRule
from repro.analysis.rules.adapter_protocol import AdapterProtocolRule
from repro.analysis.rules.event_tiebreak import EventTiebreakRule
from repro.analysis.rules.hotloop import HotLoopRule
from repro.analysis.rules.l5p_contract import (
    IncrementalTransformRule,
    MagicFramingRule,
    PluginDeclarationRule,
    UpcallWiringRule,
)
from repro.analysis.rules.metric_baseline import MetricBaselineRule
from repro.analysis.rules.mutable_defaults import MutableDefaultsRule
from repro.analysis.rules.pkg_docstrings import PackageDocstringRule
from repro.analysis.rules.rng_dataflow import RngSharingRule
from repro.analysis.rules.seqarith import SeqArithmeticRule
from repro.analysis.rules.unordered_iter import UnorderedIterRule
from repro.analysis.rules.wallclock import WallClockRule


def all_rules() -> list[LintRule]:
    return [
        WallClockRule(),
        SeqArithmeticRule(),
        MutableDefaultsRule(),
        AdapterProtocolRule(),
        PackageDocstringRule(),
        RngSharingRule(),
        UnorderedIterRule(),
        EventTiebreakRule(),
        MagicFramingRule(),
        IncrementalTransformRule(),
        UpcallWiringRule(),
        PluginDeclarationRule(),
        MetricBaselineRule(),
        HotLoopRule(),
    ]
