"""CRC32 and CRC32C (Castagnoli), from scratch.

NVMe-TCP protects PDUs with CRC32C data/header digests (RFC 3385); the
paper's NIC computes/verifies them inline.  We implement the reflected
table-driven algorithm and validate against published check values
(``crc32c(b"123456789") == 0xE3069283``) and against :mod:`zlib` for the
IEEE polynomial.

:class:`FastCrc` offers the same incremental interface backed by
``zlib.crc32`` for macro-benchmarks, where digest *cycles* are charged
by the CPU model rather than spent in Python.
"""

from __future__ import annotations

import zlib

CRC32C_POLY = 0x82F63B78  # Castagnoli, reflected
CRC32_POLY = 0xEDB88320  # IEEE 802.3, reflected


def _build_table(poly: int) -> list[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ poly
            else:
                crc >>= 1
        table.append(crc)
    return table


_TABLE_C = _build_table(CRC32C_POLY)
_TABLE_IEEE = _build_table(CRC32_POLY)


def _crc(table: list[int], data: bytes, crc: int) -> int:
    crc ^= 0xFFFFFFFF
    for byte in data:
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def crc32c(data: bytes, crc: int = 0) -> int:
    """CRC32C of ``data``; pass a previous value to continue a stream."""
    return _crc(_TABLE_C, data, crc)


def crc32(data: bytes, crc: int = 0) -> int:
    """IEEE CRC32 of ``data`` (zlib-compatible)."""
    return _crc(_TABLE_IEEE, data, crc)


class Crc32c:
    """Incremental CRC32C digest with the interface the NIC model uses."""

    digest_size = 4
    name = "crc32c"

    def __init__(self, data: bytes = b""):
        self._crc = 0
        if data:
            self.update(data)

    def update(self, data: bytes) -> None:
        self._crc = crc32c(data, self._crc)

    def intdigest(self) -> int:
        return self._crc

    def digest(self) -> bytes:
        return self._crc.to_bytes(4, "little")

    def copy(self) -> "Crc32c":
        clone = Crc32c()
        clone._crc = self._crc
        return clone


class FastCrc:
    """zlib-backed 4-byte digest used as a stand-in during macro-benchmarks.

    It is *not* CRC32C — it is the IEEE polynomial computed in C — but it
    has identical length, incrementality, and corruption-detection
    behaviour, which is all the protocol machinery observes.  See
    DESIGN.md §2 for the substitution rationale.
    """

    digest_size = 4
    name = "fast-crc32"

    def __init__(self, data: bytes = b""):
        self._crc = zlib.crc32(data) if data else 0

    def update(self, data: bytes) -> None:
        self._crc = zlib.crc32(data, self._crc)

    def intdigest(self) -> int:
        return self._crc & 0xFFFFFFFF

    def digest(self) -> bytes:
        return self.intdigest().to_bytes(4, "little")

    def copy(self) -> "FastCrc":
        clone = FastCrc()
        clone._crc = self._crc
        return clone


_DIGESTS = {"crc32c": Crc32c, "fast": FastCrc}


def get_digest(name: str):
    """Digest factory by name: ``"crc32c"`` (real) or ``"fast"``."""
    try:
        return _DIGESTS[name]
    except KeyError:
        raise ValueError(f"unknown digest {name!r}; choose from {sorted(_DIGESTS)}") from None
