"""Receive-engine unit tests: in-sequence offload, Figure 8's OoS cases,
and the Figure 7 resynchronization state machine."""

import struct

from repro.core.context import RxState
from repro.core.types import Direction
from repro.net.host import Host
from repro.net.packet import FlowKey, Packet
from repro.nic import OffloadNic
from repro.sim import Simulator
from toy_l5p import MAGIC, ToyAdapter, ToyL5pOps, encode_message

FLOW = FlowKey("server", 2000, "client", 1000)  # packets as seen on the wire


class _FakeConn:
    """Stands in for the local connection the L5P installed RX offload on
    (its flow is the local view; the context is keyed by the reverse)."""

    def __init__(self):
        self.flow = FLOW.reversed()
        self.tx_ctx_id = None


class RxHarness:
    def __init__(self, start_seq=0):
        self.sim = Simulator()
        self.nic = OffloadNic()
        self.host = Host(self.sim, "client", nic=self.nic)
        self.delivered = []
        self.host.deliver = self.delivered.append  # capture post-NIC packets
        self.ops = ToyL5pOps()
        self.ctx = self.nic.driver.l5o_create(
            _FakeConn(), ToyAdapter(), None, tcpsn=start_seq, direction=Direction.RX, l5p_ops=self.ops
        )

    def rx(self, seq, payload):
        pkt = Packet(FLOW, seq=seq, payload=payload)
        self.nic.receive(pkt)
        return self.delivered[-1]

    def confirm(self, tcpsn, ok=True, msg_index=0):
        self.nic.driver.l5o_resync_rx_resp(self.ctx, tcpsn, ok, msg_index)


def wire_stream(bodies, start_index=0):
    return b"".join(encode_message(b, start_index + i) for i, b in enumerate(bodies))


def plain_stream(bodies, start_index=0):
    out = b""
    for i, b in enumerate(bodies):
        msg = encode_message(b, start_index + i)
        # RX-offloaded output: header + decrypted body + wire trailer.
        out += msg[:4] + b + msg[4 + len(b) :]
    return out


def segments(data, size):
    return [(i, data[i : i + size]) for i in range(0, len(data), size)]


class TestInSequenceRx:
    def test_single_message_decrypted_and_verified(self):
        h = RxHarness()
        body = b"secret payload bytes"
        out = h.rx(0, wire_stream([body]))
        assert out.meta.offloaded and out.meta.decrypted and out.meta.crc_ok
        assert out.payload == plain_stream([body])

    def test_message_across_packets_all_offloaded(self):
        h = RxHarness()
        bodies = [bytes(range(256)) * 3, b"tail" * 10]
        wire = wire_stream(bodies)
        outs = [h.rx(seg_seq, chunk) for seg_seq, chunk in segments(wire, 111)]
        assert all(o.meta.offloaded for o in outs)
        assert b"".join(o.payload for o in outs) == plain_stream(bodies)

    def test_corrupt_trailer_clears_ok_bit(self):
        h = RxHarness()
        wire = bytearray(wire_stream([b"x" * 40]))
        wire[-1] ^= 0xFF  # corrupt the checksum
        out = h.rx(0, bytes(wire))
        assert out.meta.offloaded
        assert not out.meta.crc_ok

    def test_flow_without_context_untouched(self):
        h = RxHarness()
        other = Packet(FlowKey("x", 1, "client", 9), seq=0, payload=b"\xee" * 32)
        h.nic.receive(other)
        assert h.delivered[-1].payload == b"\xee" * 32


class TestFigure8aRetransmission:
    def test_past_packet_bypassed(self):
        h = RxHarness()
        wire = wire_stream([b"a" * 300])
        for seg_seq, chunk in segments(wire, 100):
            h.rx(seg_seq, chunk)
        out = h.rx(100, wire[100:200])  # retransmission of the "past"
        assert not out.meta.offloaded
        assert out.payload == wire[100:200]  # NOT decrypted again
        assert h.ctx.rx_state == RxState.OFFLOADING
        # And the context is still in sync for what follows.
        nxt = h.rx(len(wire), wire_stream([b"b" * 10], start_index=1))
        assert nxt.meta.offloaded


class TestFigure8bBoundaryResync:
    def test_lost_packet_resumes_at_next_header(self):
        h = RxHarness()
        bodies = [b"m" * 250, b"n" * 250]
        wire = wire_stream(bodies)
        segs = segments(wire, 100)
        h.rx(*segs[0])  # P1: message 1 start
        # P2 (100..200) lost. P3 contains the tail of msg1 + msg2 header.
        out3 = h.rx(*segs[2])
        assert not out3.meta.offloaded  # packet with the header: bypassed
        assert h.ctx.boundary_resyncs == 1
        assert h.ctx.rx_state == RxState.OFFLOADING
        # P4, P5... continue message 2 and must be offloaded again.
        out4 = h.rx(*segs[3])
        assert out4.meta.offloaded
        body2_plain = plain_stream(bodies)[segs[3][0] : segs[3][0] + 100]
        assert out4.payload == body2_plain

    def test_hole_within_message_keeps_waiting(self):
        h = RxHarness()
        bodies = [b"long" * 200, b"next" * 10]
        wire = wire_stream(bodies)
        h.rx(0, wire[:100])
        # Packet from the middle of message 1, hole at 100..300: ignored.
        out = h.rx(300, wire[300:400])
        assert not out.meta.offloaded
        assert h.ctx.rx_state == RxState.OFFLOADING
        # The message-2 header is at 808; a packet containing it re-locks.
        boundary = 4 + 800 + 4
        out = h.rx(boundary - 8, wire[boundary - 8 : boundary + 40])
        assert h.ctx.rx_state == RxState.OFFLOADING
        assert h.ctx.boundary_resyncs == 1
        after = h.rx(boundary + 40, wire[boundary + 40 :])
        assert after.meta.offloaded


class TestFigure8cSpeculativeRecovery:
    def build(self, n_msgs=6, body=b"payload!" * 30):
        bodies = [body for _ in range(n_msgs)]
        return bodies, wire_stream(bodies)

    def test_header_reorder_triggers_search_then_resume(self):
        h = RxHarness()
        bodies, wire = self.build()
        msg_len = 4 + len(bodies[0]) + 4
        # Deliver message 0 fully, in sequence.
        h.rx(0, wire[:msg_len])
        # The packet with message 1's header is reordered away; packets
        # from message 2 onward arrive. 'Jumped past boundary' -> search.
        m2 = 2 * msg_len
        out = h.rx(m2 + 10, wire[m2 + 10 : m2 + 10 + 150])
        assert not out.meta.offloaded
        # Message 3's header lies within what follows; the NIC finds the
        # magic and speculates.
        m3 = 3 * msg_len
        h.rx(m2 + 160, wire[m2 + 160 : m3 + 60])
        h.sim.run()  # deliver the driver upcall
        assert h.ctx.rx_state == RxState.TRACKING
        assert h.ops.resync_requests == [m3]
        # Software confirms: message at m3 is message #3.
        h.confirm(m3, ok=True, msg_index=3)
        assert h.ctx.rx_state == RxState.OFFLOADING
        # Tracking consumed msg 3's header; offload resumes at message 4.
        assert h.ctx.expected_seq == 4 * msg_len
        out = h.rx(4 * msg_len, wire[4 * msg_len : 5 * msg_len])
        assert out.meta.offloaded
        assert out.payload == plain_stream([bodies[4]], start_index=4)

    def test_denied_speculation_returns_to_searching(self):
        h = RxHarness()
        bodies, wire = self.build()
        msg_len = 4 + len(bodies[0]) + 4
        h.rx(0, wire[:msg_len])
        m2, m3 = 2 * msg_len, 3 * msg_len
        h.rx(m2 + 10, wire[m2 + 10 : m3 + 60])
        h.sim.run()
        assert h.ctx.rx_state == RxState.TRACKING
        h.confirm(h.ops.resync_requests[0], ok=False)
        assert h.ctx.rx_state == RxState.SEARCHING

    def test_stale_confirmation_ignored(self):
        h = RxHarness()
        bodies, wire = self.build()
        msg_len = 4 + len(bodies[0]) + 4
        h.rx(0, wire[:msg_len])
        h.rx(2 * msg_len + 10, wire[2 * msg_len + 10 : 3 * msg_len + 60])
        h.sim.run()
        h.confirm(12345, ok=True, msg_index=9)  # wrong tcpsn
        assert h.ctx.rx_state == RxState.TRACKING

    def test_tracking_verifies_subsequent_headers(self):
        h = RxHarness()
        bodies, wire = self.build()
        msg_len = 4 + len(bodies[0]) + 4
        h.rx(0, wire[:msg_len])
        m2, m3 = 2 * msg_len, 3 * msg_len
        h.rx(m2 + 10, wire[m2 + 10 : m3 + 60])  # speculate at m3
        h.sim.run()
        tracked_before = h.ctx.tracked_msgs
        # Messages 4 and 5 arrive; their headers are verified by length.
        h.rx(m3 + 60, wire[m3 + 60 : 6 * msg_len])
        assert h.ctx.tracked_msgs >= tracked_before + 2
        h.confirm(m3, ok=True, msg_index=3)
        assert h.ctx.expected_seq == 6 * msg_len

    def test_magic_pattern_split_across_packets(self):
        h = RxHarness()
        bodies, wire = self.build()
        msg_len = 4 + len(bodies[0]) + 4
        h.rx(0, wire[:msg_len])
        m3 = 3 * msg_len
        # Desync, then deliver bytes so message 3's header straddles two
        # contiguous packets (cut one byte into the header).
        h.rx(2 * msg_len + 10, wire[2 * msg_len + 10 : m3 + 1])
        h.rx(m3 + 1, wire[m3 + 1 : m3 + 80])
        h.sim.run()
        assert h.ops.resync_requests == [m3]

    def test_false_magic_in_body_rejected_by_tracking(self):
        h = RxHarness()
        # Craft a body containing a fake magic pattern with a bogus
        # length so tracking detects the misprediction.
        fake_header = struct.pack(">BBH", MAGIC, 1, 7)  # claims 7-byte body
        body = b"x" * 20 + fake_header + b"y" * 200
        bodies = [body, body, body, body]
        wire = wire_stream(bodies)
        msg_len = 4 + len(body) + 4
        h.rx(0, wire[:msg_len])
        # Lose msg1's header region; arrive mid-message-1 so searching
        # starts scanning inside the body and may find the fake magic.
        h.rx(msg_len + 50, wire[msg_len + 50 : 3 * msg_len])
        h.sim.run()
        # Whatever was speculated, the machine must not be stuck: it is
        # either tracking a consistent chain or searching again.
        assert h.ctx.rx_state in (RxState.TRACKING, RxState.SEARCHING)
        if h.ctx.rx_state == RxState.TRACKING:
            # Confirmations only come for true headers; a fake one would
            # be denied by software. Deny it and ensure we recover.
            h.confirm(h.ops.resync_requests[-1], ok=False)
            assert h.ctx.rx_state == RxState.SEARCHING


class TestRxStats:
    def test_stats_aggregate(self):
        h = RxHarness()
        wire = wire_stream([b"s" * 100])
        h.rx(0, wire)
        stats = h.nic.offload_stats()
        assert stats["pkts_offloaded"] == 1
        assert stats["pkts_bypassed"] == 0
