"""Fault-injection mechanisms for the simulated wire.

:class:`LinkFaultInjector` is the stateful half of a
:class:`~repro.faults.plan.LinkFaultProfile`: it owns the Gilbert–Elliott
channel state and the scripted flap schedule, and is attached to one
``repro.net.link._Port`` (the port consults it per packet, before its own
i.i.d. loss roll).

This module also hosts the packet-mutation helpers that grew up ad hoc in
``tests/test_failure_injection.py`` — ``corrupting_link`` /
``flip_payload_byte`` — now public API so tests and chaos scenarios share
one implementation.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.faults.plan import GilbertElliott, LinkFaultProfile
from repro.net.packet import Packet


class LinkFaultInjector:
    """Per-port drop decisions for bursty loss and link flaps.

    Owns its own :class:`random.Random` (a dedicated substream) so that
    enabling a fault plan never perturbs the link's base i.i.d. draw
    sequence — baseline runs stay bit-identical.
    """

    def __init__(self, profile: LinkFaultProfile, rng: random.Random):
        self.profile = profile
        self.rng = rng
        self._bad = False  # Gilbert–Elliott channel state
        self.burst_drops = 0
        self.flap_drops = 0

    def should_drop(self, now: float) -> bool:
        """One per-packet decision; steps the GE channel exactly once."""
        if any(start <= now < end for start, end in self.profile.flaps):
            self.flap_drops += 1
            return True
        ge: Optional[GilbertElliott] = self.profile.burst
        if ge is None:
            return False
        if self._bad:
            if self.rng.random() < ge.p_bad_to_good:
                self._bad = False
        else:
            if self.rng.random() < ge.p_good_to_bad:
                self._bad = True
        loss = ge.loss_bad if self._bad else ge.loss_good
        if loss and self.rng.random() < loss:
            self.burst_drops += 1
            return True
        return False

    def counters(self) -> dict:
        return {"burst_drops": self.burst_drops, "flap_drops": self.flap_drops}


def flip_payload_byte(offset: int = 50) -> Callable[[Packet], None]:
    """A mutator that XOR-flips one payload byte in place (offset wraps)."""

    def mutate(pkt: Packet) -> None:
        data = bytearray(pkt.payload)
        if not data:
            return
        i = offset % len(data)
        data[i] ^= 0xFF
        pkt.payload = bytes(data)

    return mutate


def corrupting_link(link, side: str, predicate: Callable[[Packet], bool], mutate: Callable[[Packet], None]) -> dict:
    """Interpose on one direction of ``link``, mutating matched packets.

    ``side`` is the *receiving* side ("a" or "b"); packets headed to that
    side and matching ``predicate`` are mutated in place by ``mutate``
    before delivery.  Returns a state dict whose ``"hits"`` entry counts
    mutations — handy for asserting the fault actually fired.
    """
    port = link.ab if side == "b" else link.ba
    inner = port.receiver
    if inner is None:
        raise RuntimeError(f"link side {side!r} has no receiver attached yet")
    state = {"hits": 0}

    def tap(pkt: Packet) -> None:
        if predicate(pkt):
            state["hits"] += 1
            mutate(pkt)
        inner(pkt)

    port.receiver = tap
    return state
