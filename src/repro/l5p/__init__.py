"""Layer-5 protocols: kernel TLS, NVMe-TCP, their composition, and the
plugin protocols that prove the contract is generic.

Each L5P implements the adapter contract of :mod:`repro.core.types`
(paper Table 3) and registers an :class:`~repro.l5p.plugin.L5Protocol`
declaration with :mod:`repro.l5p.plugin`, making it autonomously
offloadable without the NIC terminating TCP: :mod:`repro.l5p.tls`
(§5.2), in-kernel NVMe-TCP in :mod:`repro.l5p.nvme_tcp` (§5.1, and
§5.3 when layered over TLS), the §7 sketches (:mod:`repro.l5p.rpc`,
DTLS via :mod:`repro.udp`), and the plugin-track protocols —
:mod:`repro.l5p.http2` (DATA-frame CRC + per-stream placement) and
:mod:`repro.l5p.resp` (inline-command steering).  The plugin-author
guide is ``docs/l5p-plugins.md``.
"""
