"""iperf: maximal-TCP-bandwidth measurement, optionally over kTLS.

The §6.1/§6.4 experiments run a modified iperf that sends fixed-size
messages through OpenSSL/kTLS; the sender core is pinned at 100%
utilization and throughput is measured at the receiver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.l5p.tls.ktls import KtlsSocket, TlsConfig
from repro.net.host import Host


@dataclass
class StreamStats:
    bytes_received: int = 0


class IperfServer:
    """Sink for one or many iperf streams."""

    def __init__(self, host: Host, port: int = 5201, tls: Optional[TlsConfig] = None):
        self.host = host
        self.port = port
        self.tls_config = tls
        self.streams: list[StreamStats] = []
        self.tls_sockets: list[KtlsSocket] = []
        host.tcp.listen(port, self._accept)

    def _accept(self, conn) -> None:
        stats = StreamStats()
        self.streams.append(stats)

        def count(data_or_skb) -> None:
            data = data_or_skb if isinstance(data_or_skb, bytes) else data_or_skb.data
            stats.bytes_received += len(data)

        if self.tls_config is not None:
            tls = KtlsSocket(self.host, conn, "server", self.tls_config)
            tls.on_data = count
            self.tls_sockets.append(tls)
        else:
            conn.on_data = count

    @property
    def total_bytes(self) -> int:
        return sum(s.bytes_received for s in self.streams)


class IperfClient:
    """Drives ``streams`` connections, each sending ``message_size``
    application messages as fast as CPU and network allow."""

    def __init__(
        self,
        host: Host,
        server: str,
        port: int = 5201,
        streams: int = 1,
        message_size: int = 256 * 1024,
        tls: Optional[TlsConfig] = None,
    ):
        self.host = host
        self.server = server
        self.port = port
        self.message_size = message_size
        self.tls_config = tls
        self.bytes_sent = 0
        self._senders = []
        for _ in range(streams):
            self._start_stream()

    def _start_stream(self) -> None:
        conn = self.host.tcp.connect(self.server, self.port)
        core = self.host.core_for_flow(conn.flow)
        # Self-pacing: one chunk per core-availability slot, like a
        # blocking send loop — the app cannot run ahead of the CPU time
        # its own sends consume.  Chunks of at most 64 KiB keep the
        # charge quantum small (a blocking sendmsg encrypts before the
        # bytes enter the TCP buffer, not after).
        message = bytes(min(self.message_size, 64 * 1024))
        state = {"kicked": False}

        def kick() -> None:
            if not state["kicked"]:
                state["kicked"] = True
                core.when_free(pump)

        if self.tls_config is not None:
            tls = KtlsSocket(self.host, conn, "client", self.tls_config)

            def pump() -> None:
                state["kicked"] = False
                if tls.send_space < len(message):
                    return  # wait for on_writable
                core.charge(self.host.model.cycles_syscall, "stack")
                self.bytes_sent += tls.send(message)
                kick()

            tls.on_ready = kick
            tls.on_writable = kick
            self._senders.append(tls)
        else:

            def pump() -> None:
                state["kicked"] = False
                if conn.send_space < len(message):
                    return
                core.charge(self.host.model.cycles_syscall, "stack")
                # Plain TCP still copies user bytes into the socket.
                core.charge(len(message) * self.host.llc.copy_cpb(), "copy")
                self.bytes_sent += conn.send(message)
                kick()

            conn.on_established = kick
            conn.on_writable = kick
            self._senders.append(conn)
