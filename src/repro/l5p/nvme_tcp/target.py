"""NVMe-TCP target (controller side) backed by a simulated block device.

The evaluation's target is the workload-generator machine exposing an
Optane drive; it runs software NVMe-TCP (optionally with its own TX
offloads so that the generator is never the bottleneck when the paper's
numbers are drive- or NIC-bound)."""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.core.types import Direction, TxMsgState
from repro.l5p.base import StreamAssembler
from repro.l5p.nvme_tcp import pdu as P
from repro.l5p import plugin
from repro.l5p.nvme_tcp.pdu import NvmeConfig
from repro.storage.blockdev import BlockDevice
from repro.tcp import seq as sq

MAX_C2H_DATA = 1 << 20  # split read payloads into PDUs of at most 1 MiB


class NvmeTcpTarget:
    """Listens for initiators and services NVMe commands."""

    def __init__(
        self,
        host,
        device: BlockDevice,
        config: Optional[NvmeConfig] = None,
        tls=None,
        port: int = 4420,
    ):
        self.host = host
        self.device = device
        self.config = config or NvmeConfig()
        self.tls_config = tls
        self.port = port
        self.connections: list[_TargetConn] = []

    def start(self) -> None:
        self.host.tcp.listen(self.port, self._accept)

    def _accept(self, conn) -> None:
        self.connections.append(_TargetConn(self, conn))


class _TargetConn:
    """One initiator connection on the target."""

    def __init__(self, target: NvmeTcpTarget, conn):
        self.target = target
        self.host = target.host
        self.model = self.host.model
        self.config = target.config
        self.digest_cls = P.get_digest(self.config.digest_name)
        self.conn = conn
        self.core = self.host.core_for_flow(conn.flow)
        self.ktls = None
        self._assembler: Optional[StreamAssembler] = None
        self._outq: deque[bytes] = deque()
        self._tx_ctx = None
        self._tx_msgs: deque[tuple[int, int, bytes]] = deque()
        self._tx_msg_count = 0
        self._pending_writes: dict[int, tuple[int, bytearray, int]] = {}  # cid -> (slba, buf, received)
        self.commands_served = 0
        self.offload_degraded = 0

        if target.tls_config is not None:
            from repro.l5p.nvme_tls import PlainTxMap
            from repro.l5p.tls.ktls import KtlsSocket

            adapter = None
            self._tls_tx_map = PlainTxMap()
            if target.tls_config.tx_offload or target.tls_config.rx_offload:
                adapter = plugin.make_adapter("nvme-tls", nvme_config=self.config)
                adapter.inner_tx_ops = self._tls_tx_map
            self.ktls = KtlsSocket(self.host, conn, "server", target.tls_config, adapter=adapter)
            self.ktls.on_record = self._on_tls_record
            self.ktls.on_writable = self._flush
            self.ktls.on_ready = self._install_offloads
            self.ktls.on_reattach = self._on_tls_reattach
        else:
            conn.on_data = self._on_skb
            conn.on_writable = self._on_writable
            self.host.sim.call_soon(self._install_offloads)

    def _install_offloads(self) -> None:
        if self.ktls is not None:
            self._tx_ctx = self.ktls._tx_ctx
            return
        if self.config.tx_offload:
            driver = getattr(self.host.nic, "driver", None)
            if driver is None:
                raise RuntimeError("target TX offload requires an OffloadNic")
            adapter = plugin.make_adapter("nvme-tcp", config=self.config)
            self._tx_ctx = driver.l5o_create(
                self.conn,
                adapter,
                None,
                tcpsn=self.conn.send_buffer.end_seq,
                direction=Direction.TX,
                l5p_ops=self,
            )

    # ------------------------------------------------------------------
    # receive: commands from the initiator
    # ------------------------------------------------------------------
    def _on_skb(self, skb) -> None:
        if self._assembler is None:
            self._assembler = StreamAssembler(P.CH_LEN, P.pdu_total_len, start_seq=skb.seq)
        self._ingest(skb.data, skb.meta)

    def _on_tls_record(self, runs) -> None:
        if self._assembler is None:
            self._assembler = StreamAssembler(P.CH_LEN, P.pdu_total_len, start_seq=0)
        for run in runs:
            self._ingest(run.data, run.meta)

    def _ingest(self, data, meta) -> None:
        for msg in self._assembler.push(data, meta):
            self._on_pdu(msg)

    def _on_pdu(self, msg) -> None:
        wire = msg.wire
        if wire[0] == P.TYPE_H2C_DATA:
            self._on_h2c_data(wire)
            return
        if wire[0] != P.TYPE_CAPSULE_CMD:
            return
        self.core.charge(self.model.cycles_pdu, "l5p")
        psh = wire[P.CH_LEN : P.CH_LEN + P.PSH_LEN[P.TYPE_CAPSULE_CMD]]
        opcode, cid, slba, length = P.parse_sqe(psh)
        self.core.charge(self.model.cycles_block_io, "stack")
        if opcode == P.OPC_READ:
            self.target.device.read(slba, length, lambda data: self._read_done(cid, data))
        elif opcode == P.OPC_WRITE:
            data_start = P.CH_LEN + P.PSH_LEN[P.TYPE_CAPSULE_CMD]
            in_capsule = len(wire) > data_start + P.DDGST_LEN or length == 0
            body_len = len(wire) - data_start - (P.DDGST_LEN if wire[1] & P.FLAG_DDGST else 0)
            if body_len < length:
                # No in-capsule data: solicit it (Ready-to-Transfer).
                self._pending_writes[cid] = (slba, bytearray(length), 0)
                r2t = P.build_pdu(
                    P.TYPE_R2T, P.make_r2t_psh(cid, 0, length), b"", self.digest_cls, False
                )
                self._queue(r2t, track=self._tx_ctx is not None)
                return
            del in_capsule
            data = wire[data_start : data_start + length]
            has_digest = bool(wire[1] & P.FLAG_DDGST) and length > 0
            status = 0
            if has_digest:
                self.core.charge(length * self.host.llc.touch_cpb(self.model.cpb_crc32c), "crc")
                if self.digest_cls(data).digest() != wire[-P.DDGST_LEN :]:
                    status = 1
            if status == 0:
                self.target.device.write(slba, data, lambda: self._write_done(cid))
            else:
                self._respond(cid, status)

    def _on_h2c_data(self, wire: bytes) -> None:
        """Solicited write data arriving after our R2T."""
        self.core.charge(self.model.cycles_pdu, "l5p")
        psh = wire[P.CH_LEN : P.CH_LEN + P.PSH_LEN[P.TYPE_H2C_DATA]]
        cid, offset, length = P.parse_data_psh(psh)
        pending = self._pending_writes.get(cid)
        if pending is None:
            return
        slba, buffer, received = pending
        data_start = P.CH_LEN + P.PSH_LEN[P.TYPE_H2C_DATA]
        data = wire[data_start : data_start + length]
        has_digest = bool(wire[1] & P.FLAG_DDGST) and length > 0
        if has_digest:
            self.core.charge(length * self.host.llc.touch_cpb(self.model.cpb_crc32c), "crc")
            if self.digest_cls(data).digest() != wire[-P.DDGST_LEN :]:
                del self._pending_writes[cid]
                self._respond(cid, 1)
                return
        self.core.charge(length * self.host.llc.copy_cpb(), "copy")
        buffer[offset : offset + length] = data
        received += length
        if received >= len(buffer):
            del self._pending_writes[cid]
            self.target.device.write(slba, bytes(buffer), lambda: self._write_done(cid))
        else:
            self._pending_writes[cid] = (slba, buffer, received)

    def _read_done(self, cid: int, data: bytes) -> None:
        self.commands_served += 1
        offloaded_tx = self._tx_ctx is not None
        offset = 0
        while offset < len(data):
            chunk = data[offset : offset + MAX_C2H_DATA]
            pdu = P.build_pdu(
                P.TYPE_C2H_DATA,
                P.make_data_psh(cid, offset, len(chunk)),
                chunk,
                self.digest_cls,
                self.config.data_digest,
                dummy_digest=offloaded_tx,
            )
            # Response assembly touches the data once (sendpage-style).
            self.core.charge(len(chunk) * self.host.llc.copy_cpb(), "copy")
            if not offloaded_tx and self.config.data_digest:
                self.core.charge(len(chunk) * self.host.llc.touch_cpb(self.model.cpb_crc32c), "crc")
            self._queue(pdu, track=offloaded_tx)
            offset += len(chunk)
        self._respond(cid, 0)

    def _write_done(self, cid: int) -> None:
        self.commands_served += 1
        self._respond(cid, 0)

    def _respond(self, cid: int, status: int) -> None:
        pdu = P.build_pdu(P.TYPE_CAPSULE_RESP, P.make_cqe(cid, status), b"", self.digest_cls, False)
        self._queue(pdu, track=self._tx_ctx is not None)

    # ------------------------------------------------------------------
    # transmit with backpressure
    # ------------------------------------------------------------------
    def _queue(self, pdu: bytes, track: bool = False) -> None:
        self.core.charge(self.model.cycles_pdu, "l5p")
        self._outq.append((pdu, track))
        self._flush()

    def _flush(self) -> None:
        while self._outq:
            pdu, track = self._outq[0]
            if self.ktls is not None:
                if not self.ktls.ready or self.ktls.send_space < len(pdu):
                    return
                self._outq.popleft()
                if track:
                    self._tls_tx_map.track(self.ktls.stats.bytes_tx, pdu)
                sent = self.ktls.send(pdu)
                if track:
                    oldest = self.ktls._tx_msgs[0][3] if self.ktls._tx_msgs else self.ktls._tx_plain_sent
                    self._tls_tx_map.prune(oldest)
            else:
                if self.conn.send_space < len(pdu):
                    return
                self._outq.popleft()
                if track:
                    start = self.conn.send_buffer.end_seq
                    self._tx_msgs.append((start, self._tx_msg_count, pdu))
                    self._tx_msg_count += 1
                sent = self.conn.send(pdu)
            if sent != len(pdu):
                raise RuntimeError("PDU split across send buffer boundary")

    def _on_writable(self) -> None:
        una = self.conn.snd_una
        while self._tx_msgs and sq.le(sq.add(self._tx_msgs[0][0], len(self._tx_msgs[0][2])), una):
            self._tx_msgs.popleft()
        self._flush()

    # ------------------------------------------------------------------
    # Listing 2 upcalls (target TX recovery)
    # ------------------------------------------------------------------
    def l5o_get_tx_msgstate(self, tcpsn: int) -> Optional[TxMsgState]:
        for start, idx, wire in self._tx_msgs:
            if sq.between(start, tcpsn, sq.add(start, len(wire))):
                return TxMsgState(start_seq=start, msg_index=idx, wire_bytes=wire)
        return None

    def l5o_nic_reattach(self, direction: str):
        """Re-install the target's TX context after a NIC reset (the
        target installs no RX contexts).  Restarts at the head of the
        un-acked PDU queue, same proof as the initiator side."""
        if direction != Direction.TX.value or self.conn.state == "closed":
            return None
        if self.ktls is not None:
            return None  # the stacked KtlsSocket re-installs for us
        driver = self.host.nic.driver
        adapter = plugin.make_adapter("nvme-tcp", config=self.config)
        if self._tx_msgs:
            start, idx, _wire = self._tx_msgs[0]
        else:
            start, idx = self.conn.send_buffer.end_seq, self._tx_msg_count
        self._tx_ctx = driver.l5o_create(
            self.conn,
            adapter,
            None,
            tcpsn=start,
            direction=Direction.TX,
            l5p_ops=self,
            msg_index=idx,
        )
        return self._tx_ctx

    def _on_tls_reattach(self, direction: str) -> None:
        if direction == Direction.TX.value:
            self._tx_ctx = self.ktls._tx_ctx

    def l5o_resync_rx_req(self, tcpsn: int) -> None:
        pass  # the target installs no RX contexts

    def l5o_offload_degraded(self, direction: str, reason: str) -> None:
        """Driver auto-disabled this connection's TX CRC offload (§5.3);
        subsequent PDUs carry software-computed digests."""
        self.offload_degraded += 1
