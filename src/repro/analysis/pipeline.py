"""The analysis pass pipeline: caching, suppressions, project passes.

Execution model
---------------
Per-module rules (:class:`~repro.analysis.lint.LintRule`) run over each
file's AST independently; their post-suppression findings — including
the ``SIM998`` unused-suppression warnings derived from that file's
``# sim: noqa[...]`` comments — are cached keyed on the file's
``(mtime, size)`` with a sha256 fallback, so an unchanged tree re-lints
in milliseconds (the CI budget for the full suite is 60 s).

Project rules (:class:`~repro.analysis.lint.ProjectRule`) see the whole
scanned file set through a :class:`ModuleSet` and parse only the files
they ask for, on demand; their findings are never cached (they depend
on artifacts outside the scanned Python files, e.g.
``benchmarks/baseline.json``).

The cache is invalidated wholesale whenever the rule implementations
change: the cache key includes a digest of every source file in
``repro/analysis`` plus the selected rule codes.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.analysis.lint import (
    SYNTAX_ERROR_CODE,
    UNUSED_SUPPRESSION_CODE,
    Finding,
    LintRule,
    ProjectRule,
    SourceModule,
    iter_python_files,
    load_module,
)

CACHE_VERSION = 1
CACHE_ENV = "REPRO_ANALYSIS_CACHE"


def default_cache_path() -> Path:
    """``$REPRO_ANALYSIS_CACHE`` or ``.repro_analysis_cache.json`` in CWD."""
    override = os.environ.get(CACHE_ENV, "").strip()
    if override:
        return Path(override)
    return Path(".repro_analysis_cache.json")


def _rules_signature(rules: Sequence[LintRule]) -> str:
    """Digest of the selected rule codes plus every analysis source file,
    so editing any rule (or the pipeline itself) invalidates the cache."""
    digest = hashlib.sha256()
    for code in sorted(rule.code for rule in rules):
        digest.update(code.encode())
    analysis_dir = Path(__file__).resolve().parent
    for source in sorted(analysis_dir.rglob("*.py")):
        if "__pycache__" in source.parts:
            continue
        digest.update(source.name.encode())
        digest.update(source.read_bytes())
    return digest.hexdigest()


class ModuleSet:
    """Lazy, memoized access to the scanned files for project rules."""

    def __init__(self, paths: Sequence[Path]):
        self.paths: list[Path] = list(paths)
        self._loaded: dict[Path, Optional[SourceModule]] = {}

    def load(self, path: Path) -> Optional[SourceModule]:
        """Parse ``path`` (memoized); None when it cannot be parsed."""
        if path not in self._loaded:
            try:
                self._loaded[path] = load_module(path)
            except (SyntaxError, OSError, UnicodeDecodeError):
                self._loaded[path] = None
        return self._loaded[path]

    def prime(self, path: Path, module: SourceModule) -> None:
        self._loaded[path] = module


def _apply_suppressions(module: SourceModule, findings: Iterable[Finding]) -> list[Finding]:
    """Drop suppressed findings, then flag stale ``# sim: noqa`` lines.

    Legacy ``# noqa`` comments suppress silently (ruff compatibility);
    the project ``# sim: noqa[...]`` syntax is tracked, and any line
    whose waiver matched no finding yields a ``SIM998`` so suppressions
    cannot outlive the violation they excused.
    """
    kept: list[Finding] = []
    used_sim_lines: set[int] = set()
    for finding in findings:
        legacy = module.noqa.get(finding.line)
        sim = module.sim_noqa.get(finding.line)
        if sim is not None and (not sim or finding.code in sim):
            used_sim_lines.add(finding.line)
            continue
        if legacy is not None and (not legacy or finding.code in legacy):
            continue
        kept.append(finding)
    for line in sorted(set(module.sim_noqa) - used_sim_lines):
        codes = module.sim_noqa[line]
        label = ",".join(sorted(codes)) if codes else "all rules"
        kept.append(
            Finding(
                path=str(module.path),
                line=line,
                col=1,
                code=UNUSED_SUPPRESSION_CODE,
                message=f"unused suppression: `# sim: noqa[{label}]` matched no finding; remove it",
            )
        )
    return kept


def _check_file(path: Path, rules: Sequence[LintRule], modules: ModuleSet) -> list[Finding]:
    try:
        module = load_module(path)
    except SyntaxError as exc:
        return [
            Finding(str(path), exc.lineno or 1, (exc.offset or 0) + 1, SYNTAX_ERROR_CODE, f"syntax error: {exc.msg}")
        ]
    modules.prime(path, module)
    raw: list[Finding] = []
    for rule in rules:
        raw.extend(rule.check(module))
    return _apply_suppressions(module, raw)


class _Cache:
    """Findings cache keyed on file identity (mtime+size, sha256 fallback)."""

    def __init__(self, path: Optional[Path], rules_sig: str):
        self.path = path
        self.rules_sig = rules_sig
        self.files: dict = {}
        self.dirty = False
        if path is None or not path.exists():
            return
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            return
        if data.get("version") == CACHE_VERSION and data.get("rules_sig") == rules_sig:
            self.files = data.get("files", {})

    def lookup(self, path: Path) -> Optional[list[Finding]]:
        if self.path is None:
            return None
        entry = self.files.get(str(path))
        if entry is None:
            return None
        try:
            stat = path.stat()
        except OSError:
            return None
        if (stat.st_mtime_ns, stat.st_size) != (entry.get("mtime_ns"), entry.get("size")):
            # mtime moved (fresh checkout, touch): trust the content hash.
            if _sha256(path) != entry.get("sha256"):
                return None
            entry["mtime_ns"] = stat.st_mtime_ns
            entry["size"] = stat.st_size
            self.dirty = True
        return [Finding(*row) for row in entry.get("findings", [])]

    def store(self, path: Path, findings: Sequence[Finding]) -> None:
        if self.path is None:
            return
        try:
            stat = path.stat()
        except OSError:
            return
        self.files[str(path)] = {
            "mtime_ns": stat.st_mtime_ns,
            "size": stat.st_size,
            "sha256": _sha256(path),
            "findings": [[f.path, f.line, f.col, f.code, f.message] for f in findings],
        }
        self.dirty = True

    def save(self) -> None:
        if self.path is None or not self.dirty:
            return
        payload = {"version": CACHE_VERSION, "rules_sig": self.rules_sig, "files": self.files}
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        except OSError:
            pass  # caching is best-effort; the analysis result stands


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    digest.update(path.read_bytes())
    return digest.hexdigest()


def run_analysis(
    paths: Sequence[Path],
    rules: Optional[Sequence[LintRule]] = None,
    cache_path: Optional[Path] = None,
) -> list[Finding]:
    """Run the full pass pipeline; returns findings sorted by location."""
    if rules is None:
        from repro.analysis.rules import all_rules

        rules = all_rules()
    module_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]

    files = list(iter_python_files(paths))
    modules = ModuleSet(files)
    cache = _Cache(cache_path, _rules_signature(rules))

    findings: list[Finding] = []
    for file_path in files:
        cached = cache.lookup(file_path)
        if cached is not None:
            findings.extend(cached)
            continue
        file_findings = _check_file(file_path, module_rules, modules)
        cache.store(file_path, file_findings)
        findings.extend(file_findings)

    for rule in project_rules:
        for finding in rule.check_project(modules):
            module = modules.load(Path(finding.path)) if finding.path.endswith(".py") else None
            if module is not None and module.suppressed(finding):
                continue
            findings.append(finding)

    cache.save()
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings
