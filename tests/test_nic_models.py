"""NIC hardware model tests: context cache and PCIe accounting."""

import pytest

from repro.core.context import CONTEXT_BYTES, HwContext
from repro.core.types import Direction
from repro.net.packet import FlowKey
from repro.nic.cache import ContextCache
from repro.nic.pcie import PCIE_GEN3_X16_BPS, PcieModel
from toy_l5p import ToyAdapter


def ctx(i):
    flow = FlowKey("a", i, "b", 1)
    return HwContext(i, flow, Direction.RX, ToyAdapter(), None, tcpsn=0)


class TestContextCache:
    def test_hit_after_insert(self):
        cache = ContextCache(PcieModel(), capacity_bytes=10 * CONTEXT_BYTES)
        c = ctx(1)
        assert cache.access(c) is False  # cold miss
        assert cache.access(c) is True
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction(self):
        cache = ContextCache(PcieModel(), capacity_bytes=2 * CONTEXT_BYTES)
        a, b, c = ctx(1), ctx(2), ctx(3)
        cache.access(a)
        cache.access(b)
        cache.access(a)  # refresh a
        cache.access(c)  # evicts b
        assert cache.access(a) is True
        assert cache.access(b) is False

    def test_miss_counts_pcie_context_bytes(self):
        pcie = PcieModel()
        cache = ContextCache(pcie, capacity_bytes=CONTEXT_BYTES)
        cache.access(ctx(1))
        assert pcie.bytes_by_category["context"] == CONTEXT_BYTES
        cache.access(ctx(2))  # miss + eviction writeback
        assert pcie.bytes_by_category["context"] == 3 * CONTEXT_BYTES

    def test_capacity_matches_paper(self):
        cache = ContextCache(PcieModel())  # defaults: 4 MiB / 208 B
        assert 19_000 < cache.capacity_entries < 21_000

    def test_evict_removes(self):
        cache = ContextCache(PcieModel())
        c = ctx(9)
        cache.access(c)
        cache.evict(c)
        assert cache.access(c) is False

    def test_miss_rate(self):
        cache = ContextCache(PcieModel())
        c = ctx(1)
        cache.access(c)
        cache.access(c)
        cache.access(c)
        assert cache.miss_rate == pytest.approx(1 / 3)


class TestPcieModel:
    def test_counts_by_category(self):
        pcie = PcieModel()
        pcie.count("recovery", 1000)
        pcie.count("recovery", 500)
        pcie.count("rx-packet", 100)
        assert pcie.bytes_by_category["recovery"] == 1500
        assert pcie.total_bytes() == 1600

    def test_utilization(self):
        pcie = PcieModel()
        # Fill 1% of a second's capacity.
        pcie.count("recovery", int(PCIE_GEN3_X16_BPS / 8 / 100))
        assert pcie.utilization("recovery", 1.0) == pytest.approx(0.01, rel=1e-3)
        assert pcie.utilization("recovery", 0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PcieModel().count("recovery", -1)

    def test_reset(self):
        pcie = PcieModel()
        pcie.count("descriptor", 64)
        pcie.reset_stats()
        assert pcie.total_bytes() == 0
