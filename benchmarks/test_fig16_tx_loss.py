"""Figure 16: packet loss at the *sender* — throughput of plain TCP,
TLS offload, and software TLS (single sender core, many streams), plus
the PCIe bandwidth the NIC spends reconstructing TX contexts."""

from benchlib import QUICK, loss_pct
from repro.exec import run_grid_dict
from repro.experiments.iperf_tls import run_iperf
from repro.harness.report import Table

LOSS_POINTS = (0.0, 0.03) if QUICK else (0.0, 0.01, 0.03, 0.05)
# 16 streams, scaled from the paper's 128: with our heavier (no-TSO)
# per-byte costs, more sender streams than this on one core make the
# self-paced send rotation exceed the RTO and collapse all variants.
STREAMS = 16
MODES = ("tcp", "tls-offload", "tls-sw")


def run_point(point):
    loss, mode = point
    return run_iperf(
        mode,
        direction="tx",
        streams=STREAMS,
        loss=loss,
        warmup=4e-3,
        measure=8e-3,
        seed=17,
    )


def sweep():
    points = [(loss, mode) for loss in LOSS_POINTS for mode in MODES]
    return run_grid_dict(points, run_point)


def test_fig16(benchmark, emit):
    grid = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        ["loss %", "tcp Gbps", "offload Gbps", "sw tls Gbps", "off vs tls", "PCIe recovery %", "tx recoveries"],
        title=f"Figure 16: sender-side loss (1 core, {STREAMS} iperf streams)",
    )
    metrics = {}
    for loss in LOSS_POINTS:
        tcp = grid[(loss, "tcp")].goodput_gbps
        off = grid[(loss, "tls-offload")]
        sw = grid[(loss, "tls-sw")].goodput_gbps
        table.row(
            f"{100 * loss:.0f}",
            tcp,
            off.goodput_gbps,
            sw,
            f"{off.goodput_gbps / sw:.2f}x",
            f"{100 * off.pcie_recovery_fraction:.2f}%",
            off.tx_recoveries,
        )
        key = loss_pct(loss)
        metrics[f"{key}.tcp_gbps"] = tcp
        metrics[f"{key}.offload_gbps"] = off.goodput_gbps
        metrics[f"{key}.sw_gbps"] = sw
        metrics[f"{key}.pcie_recovery_frac"] = off.pcie_recovery_fraction
        metrics[f"{key}.tx_recoveries"] = off.tx_recoveries
    emit("fig16_tx_loss", table.render(), metrics=metrics, meta={"streams": STREAMS})

    for loss in LOSS_POINTS:
        tcp = grid[(loss, "tcp")].goodput_gbps
        off = grid[(loss, "tls-offload")].goodput_gbps
        sw = grid[(loss, "tls-sw")].goodput_gbps
        # Loss-free, offloaded TLS stays close to plain TCP (paper:
        # within 8-11% at every loss rate; our TX recovery path charges
        # more CPU per retransmission, so the gap widens with loss)...
        assert off > (0.8 if loss == 0 else 0.5) * tcp
        # ...and beats software TLS even at the worst loss (paper: >= 33%).
        assert off > sw
    # Loss hurts throughput.
    worst_loss = LOSS_POINTS[-1]
    assert grid[(worst_loss, "tcp")].goodput_gbps < grid[(0.0, "tcp")].goodput_gbps
    # Context recovery happens under loss but PCIe stays cheap (<2.5%).
    lossy = grid[(worst_loss, "tls-offload")]
    assert lossy.tx_recoveries > 0
    assert lossy.pcie_recovery_fraction < 0.025
    assert grid[(0.0, "tls-offload")].tx_recoveries == 0
