"""Workload applications: iperf, fio, nginx/wrk, Redis-on-Flash/memtier."""

from repro.apps.iperf import IperfClient, IperfServer
from repro.apps.fio import FioJob
from repro.apps.nginx import NginxServer
from repro.apps.wrk import WrkClient
from repro.apps.rof import MemtierClient, RofServer

__all__ = [
    "IperfClient",
    "IperfServer",
    "FioJob",
    "NginxServer",
    "WrkClient",
    "RofServer",
    "MemtierClient",
]
