"""Fixed-width RESP bulk framing and the inline-steering adapter.

Real RESP headers (``*N\\r\\n$len\\r\\n``) are variable-width, which
violates Table 3's fixed-plaintext-header precondition; this dialect
keeps RESP's shape but fixes the envelope::

    '$' | len (8 lowercase-hex ASCII digits) | CRLF      [11 B header]
    payload (inline command "GET key" / "SET key value", or the reply)
    CRLF                                                 [2 B trailer]

The offloaded operation is *steering*, not transformation: the NIC
parses the command key out of the first bytes of the payload (a
constant-size head window — Table 3's incremental rule) and dispatches
the packet to the receive queue ``crc32(key) % queues``, so all
pipelined commands for one key shard land on the owning core without
software parsing.  Bytes pass through unchanged; the trailer check
doubles as framing verification.

Pipelined inline commands make many short, non-uniformly sized
messages share single packets — the resync-speculation stress profile
named in ROADMAP (uniform TLS records never split mid-header at these
rates).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional

from repro.core.types import Direction, L5pAdapter, MessageDesc, MsgTransform

HEADER_LEN = 11
TRAILER_LEN = 2
MAX_INLINE = 1 << 20
#: Bytes of payload head the NIC parses for the steering key (§3.2's
#: constant-size state: the window never grows with the message).
KEY_WINDOW = 48

_HEX = frozenset(b"0123456789abcdef")


@dataclass
class RespConfig:
    steer_queues: int = 4
    rx_offload_steer: bool = False
    max_inline: int = MAX_INLINE


def make_frame(payload: bytes) -> bytes:
    if len(payload) > MAX_INLINE:
        raise ValueError("RESP payload too large")
    return b"$%08x\r\n" % len(payload) + payload + b"\r\n"


def parse_header(header: bytes) -> Optional[int]:
    """Payload length, or None if the envelope is implausible."""
    if header[0:1] != b"$" or header[9:11] != b"\r\n":
        return None
    digits = header[1:9]
    if any(d not in _HEX for d in digits):
        return None
    length = int(digits, 16)
    if length > MAX_INLINE:
        return None
    return length


def steer_key(payload_head: bytes) -> bytes:
    """The key token of an inline command head (bounded parse).

    ``GET user:17`` steers by ``user:17``; single-token payloads (and
    replies like ``+OK``) steer by their first token.
    """
    tokens = payload_head[:KEY_WINDOW].split(b" ")
    return tokens[1] if len(tokens) >= 2 and tokens[1] else tokens[0]


def steer_queue(payload_head: bytes, queues: int) -> int:
    return zlib.crc32(steer_key(payload_head)) % queues


class _RespTransform(MsgTransform):
    """Identity transform with a bounded head capture for steering."""

    def __init__(self, adapter: "RespAdapter", body_len: int):
        self.adapter = adapter
        self.body_len = body_len
        self._head = b""
        self._seen = 0
        self._steered = False

    def _maybe_steer(self) -> None:
        if self._steered:
            return
        if self._seen >= min(self.body_len, KEY_WINDOW):
            self._steered = True
            self.adapter.note_steer(
                steer_queue(self._head, self.adapter.config.steer_queues)
            )

    def process(self, data: bytes) -> bytes:
        if len(self._head) < KEY_WINDOW:
            self._head += data[: KEY_WINDOW - len(self._head)]
        self._seen += len(data)
        self._maybe_steer()
        return data

    def finalize_tx(self) -> bytes:
        return b"\r\n"

    def verify_rx(self, wire_trailer: bytes) -> bool:
        self._maybe_steer()
        return wire_trailer == b"\r\n"


class RespAdapter(L5pAdapter):
    """One instance per flow direction (latches the per-packet steer)."""

    name = "resp"
    header_len = HEADER_LEN
    magic_len = HEADER_LEN

    def __init__(self, config: Optional[RespConfig] = None):
        self.config = config or RespConfig()
        self._pkt_steer: Optional[int] = None
        self.steered_messages = 0

    def note_steer(self, queue: int) -> None:
        """First completed steering decision wins: the NIC dispatches
        whole packets, so pipelined followers ride the leader's queue."""
        self.steered_messages += 1
        if self._pkt_steer is None:
            self._pkt_steer = queue

    def parse_header(self, header: bytes, static_state) -> Optional[MessageDesc]:
        length = parse_header(header)
        if length is None:
            return None
        return MessageDesc(
            kind="bulk",
            header_len=HEADER_LEN,
            body_len=length,
            trailer_len=TRAILER_LEN,
            raw_header=header,
        )

    def check_magic(self, window: bytes, static_state) -> bool:
        return len(window) >= HEADER_LEN and parse_header(window) is not None

    def begin_message(self, direction: Direction, static_state, desc, msg_index, rr_state=None):
        del direction, static_state, msg_index, rr_state
        return _RespTransform(self, desc.body_len)

    def apply_packet_meta(self, meta, processed: bool, ok: bool, desc_kinds) -> None:
        meta.crc_ok = processed and ok  # framing (CRLF trailer) verified
        if self.config.rx_offload_steer and processed:
            meta.steer_queue = self._pkt_steer
        self._pkt_steer = None

    def software_cpb(self, model) -> float:
        return model.cpb_deserialize


from repro.l5p import plugin as _plugin

PLUGIN = _plugin.register(
    _plugin.L5Protocol(
        name="resp",
        header_len=HEADER_LEN,
        magic=_plugin.MagicSpec(
            pattern=b"$" + b"\x00" * 8 + b"\r\n",
            mask=b"\xff" + b"\x00" * 8 + b"\xff\xff",
            confidence=1e-6,
        ),
        preconditions=_plugin.Table3Preconditions(
            size_preserving=True,
            incremental_constant_state=True,
            header_plaintext_length=True,
            magic_identifiable=True,
            state_from_msg_index=True,
            notes="steering, not transformation: bytes pass through; the "
            "key parse uses a bounded head window",
        ),
        factory=RespAdapter,
        upcalls=("l5o_get_tx_msgstate", "l5o_resync_rx_req", "l5o_offload_degraded"),
        description="RESP inline-command steering to key-sharded receive queues",
        info={"trailer_len": TRAILER_LEN, "ops": ("steer",)},
    )
)
