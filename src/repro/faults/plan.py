"""Declarative fault plans (the configuration half of ``repro.faults``).

A :class:`FaultPlan` describes every fault the harness can inject into a
run — network-level (bursty loss, corruption, jitter, link flaps),
NIC/driver-level (context-cache eviction storms, PCIe stalls/failures
during TX recovery, misbehaving resync responses) — plus the
:class:`DegradePolicy` that governs how the driver degrades gracefully
under sustained failure (paper §5.3's "give up" path).

Everything here is a frozen dataclass with zero-fault defaults: an empty
plan is byte-for-byte identical to no plan, so baselines are untouched.
The *mechanisms* that consume these plans live in ``repro.net.link``
(wire faults), ``repro.nic``/``repro.core`` (device faults and
degradation), and ``repro.harness.testbed`` (wiring).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional, Tuple

Window = Tuple[float, float]  # (start_s, end_s) in simulated time


def _check_prob(cls: str, name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{cls}.{name} must be a probability in [0, 1], got {value!r}")


def _check_nonneg(cls: str, name: str, value: float) -> None:
    if value < 0:
        raise ValueError(f"{cls}.{name} must be >= 0, got {value!r}")


def _check_positive(cls: str, name: str, value: float) -> None:
    if not value > 0:
        raise ValueError(f"{cls}.{name} must be > 0, got {value!r}")


def _check_windows(cls: str, name: str, windows: Tuple[Window, ...]) -> None:
    for window in windows:
        try:
            start, end = window
        except (TypeError, ValueError):
            raise ValueError(f"{cls}.{name} entries must be (start_s, end_s) pairs, got {window!r}") from None
        if start < 0 or end < start:
            raise ValueError(
                f"{cls}.{name} window {window!r} is inverted or negative (need 0 <= start <= end)"
            )


@dataclass(frozen=True)
class GilbertElliott:
    """Two-state bursty-loss channel (Gilbert–Elliott).

    The channel steps once per packet: in the *good* state it moves to
    *bad* with ``p_good_to_bad``; in *bad* it recovers with
    ``p_bad_to_good``.  Each state drops packets at its own rate.  The
    stationary loss rate is ``pi_bad * loss_bad + (1-pi_bad) *
    loss_good`` with ``pi_bad = p_good_to_bad / (p_good_to_bad +
    p_bad_to_good)``; the mean burst length is ``1 / p_bad_to_good``
    packets.
    """

    p_good_to_bad: float = 0.0
    p_bad_to_good: float = 0.2
    loss_good: float = 0.0
    loss_bad: float = 0.5

    def __post_init__(self) -> None:
        for name in ("p_good_to_bad", "p_bad_to_good", "loss_good", "loss_bad"):
            _check_prob("GilbertElliott", name, getattr(self, name))

    def mean_loss(self) -> float:
        denom = self.p_good_to_bad + self.p_bad_to_good
        pi_bad = self.p_good_to_bad / denom if denom else 0.0
        return pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good

    @classmethod
    def for_mean_loss(cls, mean: float, burst_len: float = 5.0, loss_bad: float = 0.5) -> "GilbertElliott":
        """A channel with stationary loss ``mean`` and the given mean
        burst length (in packets) while in the bad state."""
        if not 0.0 <= mean < loss_bad:
            raise ValueError(f"mean loss {mean} must be in [0, loss_bad={loss_bad})")
        p_b2g = 1.0 / burst_len
        pi_bad = mean / loss_bad
        p_g2b = p_b2g * pi_bad / (1.0 - pi_bad) if pi_bad else 0.0
        return cls(p_good_to_bad=p_g2b, p_bad_to_good=p_b2g, loss_bad=loss_bad)


@dataclass(frozen=True)
class LinkFaultProfile:
    """Wire faults for one link direction, beyond the i.i.d. knobs that
    already live on :class:`repro.net.link.LinkConfig`."""

    corrupt: float = 0.0  # per-packet probability of a payload bit flip
    jitter_s: float = 0.0  # uniform extra delivery delay in [0, jitter_s)
    burst: Optional[GilbertElliott] = None  # bursty loss channel
    flaps: Tuple[Window, ...] = ()  # scripted down/up windows (sim time)

    def __post_init__(self) -> None:
        _check_prob("LinkFaultProfile", "corrupt", self.corrupt)
        _check_nonneg("LinkFaultProfile", "jitter_s", self.jitter_s)
        _check_windows("LinkFaultProfile", "flaps", self.flaps)


@dataclass(frozen=True)
class NicFaultProfile:
    """Faults inside the NIC/driver of the device under test."""

    # Context-cache eviction storms: every access during a storm window
    # forcibly misses; outside windows each access is evicted first with
    # ``cache_evict_prob`` (models firmware churn / tenant interference).
    cache_evict_prob: float = 0.0
    cache_storm_windows: Tuple[Window, ...] = ()
    # PCIe faults during TX context recovery (§4.2's DMA re-read).
    pcie_stall_prob: float = 0.0
    pcie_stall_cycles: int = 20_000
    pcie_fail_prob: float = 0.0
    # Resync-response channel between driver and NIC (Figure 7 c->d).
    resync_resp_drop: float = 0.0
    resync_resp_delay: float = 0.0
    resync_resp_delay_s: float = 1e-3
    resync_resp_dup: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "cache_evict_prob",
            "pcie_stall_prob",
            "pcie_fail_prob",
            "resync_resp_drop",
            "resync_resp_delay",
            "resync_resp_dup",
        ):
            _check_prob("NicFaultProfile", name, getattr(self, name))
        _check_nonneg("NicFaultProfile", "pcie_stall_cycles", self.pcie_stall_cycles)
        _check_nonneg("NicFaultProfile", "resync_resp_delay_s", self.resync_resp_delay_s)
        _check_windows("NicFaultProfile", "cache_storm_windows", self.cache_storm_windows)

    def storm_active(self, now: float) -> bool:
        return any(start <= now < end for start, end in self.cache_storm_windows)


@dataclass(frozen=True)
class DegradePolicy:
    """Graceful-degradation knobs for :class:`repro.core.driver.NicDriver`.

    All zero by default — the driver then behaves exactly like the
    pre-degradation code (no retry timers are ever scheduled).  With
    ``max_resync_retries > 0`` the driver re-issues an unanswered resync
    request up to that many times with exponential backoff; an exhausted
    or denied speculation counts as one resync *failure*.  After
    ``disable_after_failures`` consecutive failures the flow's offload
    is auto-disabled (permanent software fallback), optionally re-armed
    after ``probation_s`` of simulated time.
    """

    max_resync_retries: int = 0
    resync_timeout_s: float = 2e-3
    resync_backoff: float = 2.0
    disable_after_failures: int = 0
    probation_s: float = 0.0

    def __post_init__(self) -> None:
        _check_nonneg("DegradePolicy", "max_resync_retries", self.max_resync_retries)
        _check_positive("DegradePolicy", "resync_timeout_s", self.resync_timeout_s)
        _check_positive("DegradePolicy", "resync_backoff", self.resync_backoff)
        _check_nonneg("DegradePolicy", "disable_after_failures", self.disable_after_failures)
        _check_nonneg("DegradePolicy", "probation_s", self.probation_s)


#: NIC personalities for the lifecycle fault domain.  ``autonomous`` is
#: the paper's design: all L5P/TCP state is host-owned, so a reset only
#: costs performance (software fallback + reinstall).  ``toe`` models a
#: full TCP-offload engine (PnO-TCP / FlexiNS style): connection state
#: lives on the NIC, so a reset *loses* every offloaded connection.
LIFECYCLE_PERSONALITIES = ("autonomous", "toe")


@dataclass(frozen=True)
class NicLifecycleProfile:
    """NIC lifecycle faults: firmware hangs, crashes, and reset/recovery.

    Arms the ``repro.nic.lifecycle`` state machine (``RUNNING -> HUNG ->
    RESETTING -> REATTACHING -> RUNNING``) on the DUT NIC.  Hangs are
    scripted (``hang_windows``) and/or seeded-random (a per-simulated-
    second crash hazard sampled every ``hazard_tick_s``).  The driver's
    watchdog detects the hang by missed heartbeats and initiates a reset
    whose latency is drawn uniformly from ``reset_latency_s``; recovery
    re-installs contexts from host state in paced batches.
    """

    hang_windows: Tuple[Window, ...] = ()  # scripted firmware hangs
    crash_prob_per_s: float = 0.0  # random crash hazard (per sim second)
    hazard_tick_s: float = 1e-3  # how often the hazard is sampled
    reset_latency_s: Window = (5e-4, 1.5e-3)  # uniform draw [lo, hi)
    heartbeat_interval_s: float = 2.5e-4  # driver watchdog period
    missed_heartbeats: int = 2  # beats missed before reset
    reinstall_batch: int = 8  # contexts re-installed per pacing tick
    reinstall_interval_s: float = 5e-5  # pacing tick (anti thundering-herd)
    personality: str = "autonomous"  # or "toe": reset loses connections

    def __post_init__(self) -> None:
        _check_windows("NicLifecycleProfile", "hang_windows", self.hang_windows)
        _check_nonneg("NicLifecycleProfile", "crash_prob_per_s", self.crash_prob_per_s)
        _check_positive("NicLifecycleProfile", "hazard_tick_s", self.hazard_tick_s)
        lo, hi = self.reset_latency_s
        if lo < 0 or hi < lo:
            raise ValueError(
                f"NicLifecycleProfile.reset_latency_s {self.reset_latency_s!r} is inverted "
                "or negative (need 0 <= lo <= hi)"
            )
        _check_positive("NicLifecycleProfile", "heartbeat_interval_s", self.heartbeat_interval_s)
        if self.missed_heartbeats < 1:
            raise ValueError(
                f"NicLifecycleProfile.missed_heartbeats must be >= 1, got {self.missed_heartbeats!r}"
            )
        if self.reinstall_batch < 1:
            raise ValueError(
                f"NicLifecycleProfile.reinstall_batch must be >= 1, got {self.reinstall_batch!r}"
            )
        _check_nonneg("NicLifecycleProfile", "reinstall_interval_s", self.reinstall_interval_s)
        if self.personality not in LIFECYCLE_PERSONALITIES:
            raise ValueError(
                f"NicLifecycleProfile.personality must be one of {LIFECYCLE_PERSONALITIES}, "
                f"got {self.personality!r}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """Everything injectable in one run, per direction/component."""

    to_server: Optional[LinkFaultProfile] = None  # generator -> DUT wire
    to_generator: Optional[LinkFaultProfile] = None  # DUT -> generator wire
    nic: Optional[NicFaultProfile] = None  # DUT NIC/driver faults
    degrade: Optional[DegradePolicy] = None  # driver degradation policy
    lifecycle: Optional[NicLifecycleProfile] = None  # DUT NIC crash/reset

    def describe(self) -> dict:
        """JSON-friendly summary (for run manifests and chaos logs)."""
        return asdict(self)
