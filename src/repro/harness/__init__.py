"""Evaluation harness: testbed topology builder and result reporting."""

from repro.harness.testbed import Testbed, TestbedConfig
from repro.harness.report import Table

__all__ = ["Testbed", "TestbedConfig", "Table"]
