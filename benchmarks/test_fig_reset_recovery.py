"""Reset recovery: the §2 offload-dependence argument, quantified.

No paper figure reports this directly — the paper *argues* that because
all TCP/L5P state is host-owned, a NIC crash or firmware reset can only
cost performance, never correctness or connections.  This benchmark
makes the claim measurable on the simulated testbed:

1. **Reset-frequency sweep** — the tx-offloaded iperf workload (the
   DUT's single core transmits; this is the paper's dangerous direction,
   where queued records hold dummy digests) with 0..N full
   hang -> watchdog -> reset -> reattach cycles scripted into the
   measure window.  During each outage the TX shadow transforms records
   in software, so goodput dips and the DUT's crypto cycle share rises
   with reset frequency — then both recover; zero resets with the
   machinery *armed* is byte-identical to an unarmed run.  (The rx
   direction is unsuitable for a frequency sweep: the saturated
   receiver's standing backlog delays outage effects past the window,
   masking marginal resets.)
2. **Connection-survival table** — the autonomous design vs the ``toe``
   personality (PnO-TCP / FlexiNS style full TCP offload, whose
   connection state lives on the NIC) under the same mid-transfer reset
   schedule: autonomous completes every connection content-verified,
   TOE loses them.
"""

from benchlib import QUICK
from repro.exec import run_grid_dict
from repro.experiments.iperf_tls import run_iperf
from repro.faults import FaultPlan, NicLifecycleProfile
from repro.harness.report import Table

SEED = 31
STREAMS = 8
MEASURE = 8e-3
# run_iperf scales its warm-up to absorb the serial TLS handshakes; the
# hang windows below must land inside the measure window, so mirror it.
WARMUP = 4e-3 + 1.3 * STREAMS * 320_000 / 2.0e9
RESET_POINTS = (0, 2) if QUICK else (0, 1, 2, 4)

SURVIVAL_CONNS = 8
SURVIVAL_CHUNKS = 24  # 4 KiB chunks per connection
SURVIVAL_WINDOW = ((6e-4, 6.5e-4),)  # mid-transfer at chaos-testbed scale


def reset_plan(resets: int) -> FaultPlan:
    """A lifecycle plan with ``resets`` hang windows spread evenly over
    the measure window (armed-but-idle when zero); the reset latency is
    pinned so the sweep isolates reset *frequency*."""
    windows = tuple(
        (WARMUP + (k + 0.5) * MEASURE / resets, WARMUP + (k + 0.5) * MEASURE / resets + 5e-5)
        for k in range(resets)
    )
    return FaultPlan(
        lifecycle=NicLifecycleProfile(hang_windows=windows, reset_latency_s=(5e-4, 5e-4))
    )


def run_point(point):
    mode, resets = point
    faults = None if resets is None else reset_plan(resets)
    return run_iperf(
        mode,
        direction="tx",
        streams=STREAMS,
        warmup=4e-3,
        measure=MEASURE,
        seed=SEED,
        faults=faults,
    )


def sweep():
    points = [("tls-offload", n) for n in RESET_POINTS]
    points.append(("tls-offload", None))  # unarmed: the 0.0%-deviation ref
    points.append(("tls-sw", 0))  # software TLS reference
    return run_grid_dict(points, run_point)


def survival(personality: str) -> dict:
    """SURVIVAL_CONNS concurrent TLS connections, one mid-transfer NIC
    reset on the DUT (receiver): count connections that complete with
    every chunk content-verified."""
    from repro.faults.chaos import chunk_bytes
    from repro.harness.testbed import Testbed, TestbedConfig
    from repro.l5p.tls import KtlsSocket, TlsConfig

    plan = FaultPlan(
        lifecycle=NicLifecycleProfile(hang_windows=SURVIVAL_WINDOW, personality=personality)
    )
    tb = Testbed(TestbedConfig(seed=SEED, server_cores=2, generator_cores=4, faults=plan))
    verified = [0] * SURVIVAL_CONNS
    mismatches = [0]
    accepted = [0]

    def on_accept(conn):
        idx = accepted[0]
        accepted[0] += 1
        tls = KtlsSocket(tb.server, conn, "server", TlsConfig(rx_offload=True, record_size=4096))
        buf = bytearray()

        def on_data(data, idx=idx, buf=buf):
            buf.extend(data)
            while len(buf) >= 4096:
                chunk = bytes(buf[:4096])
                del buf[:4096]
                if chunk == chunk_bytes(verified[idx]):
                    verified[idx] += 1
                else:
                    mismatches[0] += 1

        tls.on_data = on_data
        tls.on_error = lambda reason: None

    tb.server.tcp.listen(443, on_accept)
    for _ in range(SURVIVAL_CONNS):
        conn = tb.generator.tcp.connect("server", 443)
        client = KtlsSocket(
            tb.generator, conn, "client", TlsConfig(tx_offload=True, record_size=4096)
        )
        sent = [0]

        def feed(client=client, sent=sent):
            while sent[0] < SURVIVAL_CHUNKS:
                if client.send(chunk_bytes(sent[0])) == 0:
                    return
                sent[0] += 1

        client.on_ready = feed
        client.on_writable = feed
    tb.run(until=15e-3)
    life = tb.server.nic.lifecycle
    return {
        "survivors": sum(1 for v in verified if v == SURVIVAL_CHUNKS),
        "mismatches": mismatches[0],
        "resets": life.resets,
        "connections_lost": life.toe_connections_lost,
    }


def test_fig_reset_recovery(benchmark, emit):
    grid = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = Table(
        ["resets / measure", "goodput Gbps", "crypto %", "reinstalls", "fallback pkts"],
        title=(
            f"Reset recovery: goodput vs NIC reset frequency "
            f"(tx offload, 1 sender core, {STREAMS} streams, {MEASURE * 1e3:.0f} ms window)"
        ),
    )
    metrics = {}
    for n in RESET_POINTS:
        run = grid[("tls-offload", n)]
        life = run.lifecycle
        table.row(
            str(n),
            run.goodput_gbps,
            f"{100 * run.crypto_fraction:.0f}%",
            life.get("reinstalls", 0),
            life.get("fallback_tx_pkts", 0),
        )
        metrics[f"resets{n}.goodput_gbps"] = run.goodput_gbps
        metrics[f"resets{n}.crypto_frac"] = run.crypto_fraction
        metrics[f"resets{n}.nic_resets"] = life.get("resets", 0)
        metrics[f"resets{n}.reinstalls"] = life.get("reinstalls", 0)
    sw = grid[("tls-sw", 0)]
    table.row("sw tls (ref)", sw.goodput_gbps, "-", "-", "-")
    metrics["sw.goodput_gbps"] = sw.goodput_gbps

    autonomous = survival("autonomous")
    toe = survival("toe")
    surv = Table(
        ["personality", "connections", "surviving a reset", "lost"],
        title=(
            f"Connection survival across one mid-transfer NIC reset "
            f"({SURVIVAL_CONNS} TLS connections, content-verified)"
        ),
    )
    surv.row("autonomous", SURVIVAL_CONNS, autonomous["survivors"], 0)
    surv.row("toe (full TCP offload)", SURVIVAL_CONNS, toe["survivors"], toe["connections_lost"])
    metrics["survivors.autonomous"] = autonomous["survivors"]
    metrics["survivors.toe"] = toe["survivors"]
    metrics["survivors.toe_lost"] = toe["connections_lost"]

    emit(
        "fig_reset_recovery",
        table.render() + "\n\n" + surv.render(),
        metrics=metrics,
        meta={"streams": STREAMS, "reset_points": list(RESET_POINTS), "seed": SEED},
    )

    # Every scripted reset fired and recovered (the sweep is what it
    # claims to be), and recovery re-installed contexts.
    for n in RESET_POINTS:
        life = grid[("tls-offload", n)].lifecycle
        assert life.get("resets", 0) == n
        if n:
            assert life.get("reinstalls", 0) > 0
    # Armed-but-idle is *exactly* free: byte-identical goodput, cycle
    # accounting and record mix vs the unarmed run (the paper's
    # baselines stay untouched).
    armed_idle = grid[("tls-offload", 0)]
    unarmed = grid[("tls-offload", None)]
    assert armed_idle.goodput_gbps == unarmed.goodput_gbps
    assert armed_idle.dut_cycles == unarmed.dut_cycles
    assert armed_idle.records == unarmed.records
    # Zero resets: the offloaded sender spends no cycles on crypto.
    assert armed_idle.crypto_fraction == 0.0
    # Each added reset costs goodput (the software shadow carries the
    # outage) and raises the crypto cycle share — strictly monotone.
    runs = [grid[("tls-offload", n)] for n in RESET_POINTS]
    for prev, cur in zip(runs, runs[1:]):
        assert cur.goodput_gbps < prev.goodput_gbps
        assert cur.crypto_fraction > prev.crypto_fraction
    # But the offload comes back after every reset: even the worst point
    # clears the all-software reference by a wide margin.
    assert runs[-1].goodput_gbps > sw.goodput_gbps
    # The survival contrast: autonomy loses nothing, TOE loses flows.
    assert autonomous["resets"] == 1 and toe["resets"] == 1
    assert autonomous["survivors"] == SURVIVAL_CONNS
    assert autonomous["mismatches"] == 0
    assert autonomous["connections_lost"] == 0
    assert toe["connections_lost"] > 0
    assert toe["survivors"] < SURVIVAL_CONNS
