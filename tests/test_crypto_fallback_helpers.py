"""Tests for the partial-fallback crypto helpers: keystream skip and
ciphertext absorption — the primitives behind §5.2's costlier partial
decryption — plus the TLS fallback functions themselves."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.gcm import AesGcm
from repro.crypto.suite import AesGcmSuite, XorGcmSuite
from repro.l5p.base import Run
from repro.l5p.tls.fallback import decrypt_whole_record, recover_partial_record
from repro.net.packet import SkbMeta

KEY = b"\x0a" * 16
NONCE = b"\x0b" * 12


@pytest.fixture(params=[AesGcmSuite, XorGcmSuite], ids=lambda c: c.name)
def suite(request):
    return request.param()


class TestSkip:
    def test_decryptor_skip_positions_keystream(self, suite):
        data = bytes(range(256)) * 2
        ct, _tag = suite.seal(KEY, NONCE, data)
        for offset in (0, 1, 15, 16, 17, 100, 511):
            dec = suite.decryptor(KEY, NONCE)
            dec.skip(offset)
            assert dec.update(ct[offset:]) == data[offset:]

    def test_gcm_skip_is_pure_keystream(self):
        gcm = AesGcm(KEY)
        data = b"0123456789" * 30
        ct, _ = gcm.encrypt(NONCE, data)
        dec = gcm.decryptor(NONCE)
        dec.skip(33)
        assert dec.update(ct[33:]) == data[33:]


class TestAbsorbCiphertext:
    def test_reencrypt_plus_absorb_reproduces_tag(self, suite):
        data = b"mixed record body " * 40
        ct, tag = suite.seal(KEY, NONCE, data, aad=b"hdr")
        # Simulate: first half NIC-decrypted (we hold plaintext), second
        # half untouched ciphertext.
        cut = 333
        enc = suite.encryptor(KEY, NONCE, aad=b"hdr")
        rebuilt_first = enc.update(data[:cut])
        enc.absorb_ciphertext(ct[cut:])
        assert rebuilt_first == ct[:cut]
        assert enc.finalize() == tag


class TestFallbackFunctions:
    def _runs(self, data, ct, pattern):
        """Build body runs: pattern like [(length, decrypted?), ...]."""
        runs = []
        pos = 0
        for length, decrypted in pattern:
            chunk = data[pos : pos + length] if decrypted else ct[pos : pos + length]
            runs.append(Run(chunk, SkbMeta(decrypted=decrypted)))
            pos += length
        return runs

    @settings(max_examples=25, deadline=None)
    @given(
        data=st.binary(min_size=10, max_size=600),
        cuts=st.lists(st.integers(1, 120), min_size=1, max_size=5),
        start_plain=st.booleans(),
    )
    def test_recover_any_interleaving(self, data, cuts, start_plain):
        suite = XorGcmSuite()
        ct, tag = suite.seal(KEY, NONCE, data, aad=b"a")
        pattern = []
        pos = 0
        flag = start_plain
        for cut in cuts:
            take = min(cut, len(data) - pos)
            if take <= 0:
                break
            pattern.append((take, flag))
            pos += take
            flag = not flag
        if pos < len(data):
            pattern.append((len(data) - pos, flag))
        runs = self._runs(data, ct, pattern)
        rec = recover_partial_record(suite, KEY, NONCE, b"a", runs, tag)
        assert rec.ok
        assert rec.plaintext == data
        assert rec.reencrypted_bytes + rec.decrypted_bytes == len(data)

    def test_recover_detects_tampering(self, suite):
        data = b"contents" * 50
        ct, tag = suite.seal(KEY, NONCE, data)
        runs = [
            Run(data[:100], SkbMeta(decrypted=True)),
            Run(bytes([ct[100] ^ 1]) + ct[101:], SkbMeta(decrypted=False)),
        ]
        rec = recover_partial_record(suite, KEY, NONCE, b"", runs, tag)
        assert not rec.ok

    def test_decrypt_whole_record_happy_and_sad(self, suite):
        data = b"whole record" * 20
        ct, tag = suite.seal(KEY, NONCE, data)
        plain, ok = decrypt_whole_record(suite, KEY, NONCE, b"", ct, tag)
        assert ok and plain == data
        plain, ok = decrypt_whole_record(suite, KEY, NONCE, b"", ct, b"\x00" * 16)
        assert not ok


class TestAes192:
    def test_gcm_with_192_bit_key(self):
        gcm = AesGcm(b"\x21" * 24)
        ct, tag = gcm.encrypt(NONCE, b"with a 192-bit key")
        assert gcm.decrypt(NONCE, ct, tag) == b"with a 192-bit key"
