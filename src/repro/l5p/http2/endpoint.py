"""HTTP/2 client and server endpoints over simulated TCP.

The client carries the autonomous offload: before requesting a stream
it registers the response buffer under the stream id, so the NIC can
verify each DATA frame's FCS and place its payload inline; frames the
NIC fully handled skip the software copy+CRC.  The server interleaves
trailerless control frames (SETTINGS, WINDOW_UPDATE) with DATA frames
of deliberately non-uniform length across many concurrent streams —
the resync-speculation stress profile uniform TLS records can't
produce.
"""

from __future__ import annotations

import struct
from collections import deque
from typing import Callable, Optional

from repro.core.types import Direction, TxMsgState
from repro.l5p import plugin
from repro.l5p.base import StreamAssembler
from repro.l5p.http2 import frame as F
from repro.tcp import seq as sq

#: Non-uniform DATA chunk sizes (bytes), cycled per stream and chunk —
#: from sub-MTU to the largest FCS frame the 16 KiB cap allows.
CHUNK_SIZES = (977, 3181, F.MAX_FRAME - F.FCS_LEN, 512, 7900)
#: The server emits one WINDOW_UPDATE per this many DATA frames.
WINDOW_UPDATE_EVERY = 4

#: Software cost accounting (cycles) for the HTTP-layer bookkeeping.
CYCLES_REQUEST = 600
CYCLES_FRAME = 120


class _Http2Peer:
    """Shared assembler/backpressure machinery (mirrors the RPC peer)."""

    def __init__(self, host, conn, config: F.Http2Config):
        self.host = host
        self.conn = conn
        self.config = config
        self.model = host.model
        self.core = host.core_for_flow(conn.flow)
        self.digest_cls = F.get_digest(config.digest_name)
        self._assembler: Optional[StreamAssembler] = None
        self._outq: deque[bytes] = deque()
        conn.on_data = self._on_skb
        conn.on_writable = self._flush
        previous = conn.on_established

        def established():
            if previous:
                previous()
            self._on_established()
            self._flush()

        conn.on_established = established

    def _on_established(self) -> None:
        self._queue(F.make_frame(F.TYPE_SETTINGS, 0, 0, b""))

    def _on_skb(self, skb) -> None:
        if self._assembler is None:
            self._assembler = StreamAssembler(F.HEADER_LEN, self._total_len, start_seq=skb.seq)
        for msg in self._assembler.push(skb.data, skb.meta):
            self._on_frame(msg)

    @staticmethod
    def _total_len(header: bytes) -> int:
        parsed = F.parse_frame_header(header)
        if parsed is None:
            raise ValueError("bad HTTP/2 frame header")
        return F.HEADER_LEN + parsed[0]

    def _on_frame(self, msg) -> None:
        raise NotImplementedError

    def _queue(self, wire: bytes) -> None:
        self._outq.append(wire)
        self._flush()

    def _flush(self) -> None:
        while self._outq and self.conn.state in ("established", "close-wait"):
            wire = self._outq[0]
            if self.conn.send_space < len(wire):
                return
            self._outq.popleft()
            sent = self.conn.send(wire)
            if sent != len(wire):
                raise RuntimeError("frame split across send buffer boundary")


class Http2Server:
    """Serves synthetic bodies: a HEADERS request names a byte count."""

    def __init__(self, host, port: int = 8080, config: Optional[F.Http2Config] = None):
        self.host = host
        self.config = config or F.Http2Config()
        self.streams_served = 0
        host.tcp.listen(port, self._accept)

    def _accept(self, conn) -> None:
        _ServerConn(self, conn)


class _ServerConn(_Http2Peer):
    def __init__(self, server: Http2Server, conn):
        super().__init__(server.host, conn, server.config)
        self.server = server
        self._since_update = 0

    def _on_frame(self, msg) -> None:
        wire = msg.wire
        _, ftype, flags, stream_id = F.parse_frame_header(wire[: F.HEADER_LEN])
        if ftype == F.TYPE_SETTINGS and not flags & F.FLAG_ACK:
            self._queue(F.make_frame(F.TYPE_SETTINGS, F.FLAG_ACK, 0, b""))
            return
        if ftype != F.TYPE_HEADERS:
            return
        (length,) = struct.unpack(">I", wire[F.HEADER_LEN : F.HEADER_LEN + 4])
        self.core.charge(CYCLES_REQUEST, "app")
        self._queue(F.make_frame(F.TYPE_HEADERS, F.FLAG_END_HEADERS, stream_id, b"200"))
        self._send_body(stream_id, length)
        self.server.streams_served += 1

    def _send_body(self, stream_id: int, length: int) -> None:
        """DATA frames with FCS, chunked non-uniformly per stream."""
        offset = 0
        chunk_index = 0
        while offset < length:
            size = min(CHUNK_SIZES[(stream_id // 2 + chunk_index) % len(CHUNK_SIZES)],
                       length - offset)
            body = bytes((stream_id + offset + i) & 0xFF for i in range(size))
            flags = F.FLAG_FCS
            if offset + size >= length:
                flags |= F.FLAG_END_STREAM
            # TX stays in software: the server pays the FCS computation.
            self.core.charge(size * self.host.llc.touch_cpb(self.model.cpb_crc32c), "crc")
            self.core.charge(CYCLES_FRAME, "app")
            self._queue(F.make_frame(F.TYPE_DATA, flags, stream_id, body, self.digest_cls))
            offset += size
            chunk_index += 1
            self._since_update += 1
            if self._since_update >= WINDOW_UPDATE_EVERY:
                self._since_update = 0
                self._queue(
                    F.make_frame(F.TYPE_WINDOW_UPDATE, 0, 0, struct.pack(">I", 1 << 16))
                )


class Http2Client(_Http2Peer):
    """Fetches streams; offloads DATA-frame FCS + placement when configured."""

    def __init__(self, host, server: str, port: int = 8080,
                 config: Optional[F.Http2Config] = None):
        config = config or F.Http2Config()
        conn = host.tcp.connect(server, port)
        super().__init__(host, conn, config)
        self._next_stream = 1  # client streams are odd
        self._fetches: dict[int, dict] = {}
        self._rx_ctx = None
        self._pending_rr: list[tuple[int, dict]] = []
        self._pending_resync: list[int] = []
        self.stats = {
            "fetches": 0,
            "responses": 0,
            "data_frames": 0,
            "placed_frames": 0,
            "software_frames": 0,
            "errors": 0,
            "offload_degraded": 0,
        }
        if config.rx_offload:
            if getattr(host.nic, "driver", None) is None:
                raise RuntimeError("HTTP/2 offload requires an OffloadNic")
            plugin.require("http2")

    def _on_established(self) -> None:
        super()._on_established()
        if self.config.rx_offload:
            self._install_offload()

    def _install_offload(self) -> None:
        adapter = plugin.make_adapter("http2", config=self.config)
        self._rx_ctx = self.host.nic.driver.l5o_create(
            self.conn, adapter, None, tcpsn=self.conn.rcv_nxt, direction=Direction.RX,
            l5p_ops=self,
        )
        for stream_id, entry in self._pending_rr:
            self.host.nic.driver.l5o_add_rr_state(self._rx_ctx, stream_id, entry)
        self._pending_rr.clear()

    # ------------------------------------------------------------------
    def fetch(self, length: int, on_done: Callable[[bytes, float], None]) -> int:
        """Request ``length`` synthetic bytes; ``on_done(body, latency)``."""
        stream_id = self._next_stream
        self._next_stream += 2
        fetch = {
            "length": length,
            "received": 0,
            "on_done": on_done,
            "issued_at": self.host.sim.now,
            "body": bytearray(),
        }
        if self.config.rx_offload_copy:
            entry = {"buffer": bytearray(length), "offset": 0}
            fetch["entry"] = entry
            if self._rx_ctx is not None:
                self.host.nic.driver.l5o_add_rr_state(self._rx_ctx, stream_id, entry)
            else:
                self._pending_rr.append((stream_id, entry))
        self._fetches[stream_id] = fetch
        self.core.charge(CYCLES_REQUEST, "app")
        self._queue(
            F.make_frame(F.TYPE_HEADERS, F.FLAG_END_HEADERS, stream_id,
                         struct.pack(">I", length))
        )
        self.stats["fetches"] += 1
        return stream_id

    def _on_frame(self, msg) -> None:
        self._answer_resyncs(msg)
        wire = msg.wire
        length, ftype, flags, stream_id = F.parse_frame_header(wire[: F.HEADER_LEN])
        if ftype != F.TYPE_DATA:
            return
        fetch = self._fetches.get(stream_id)
        if fetch is None:
            return
        self.stats["data_frames"] += 1
        fcs = bool(flags & F.FLAG_FCS)
        body_len = length - F.FCS_LEN if fcs else length
        body_runs = msg.slice_runs(F.HEADER_LEN, body_len)
        placed = self.config.rx_offload_copy and all(r.meta.placed for r in body_runs)
        crc_done = self.config.rx_offload_crc and all(r.meta.crc_ok for r in msg.runs)
        body = wire[F.HEADER_LEN : F.HEADER_LEN + body_len]
        if fcs and placed and crc_done:
            self.stats["placed_frames"] += 1  # copy + FCS check skipped
        else:
            self.stats["software_frames"] += 1
            self.core.charge(body_len * self.host.llc.copy_cpb(), "copy")
            if fcs:
                self.core.charge(
                    body_len * self.host.llc.touch_cpb(self.model.cpb_crc32c), "crc"
                )
                if self.digest_cls(body).digest() != wire[F.HEADER_LEN + body_len :]:
                    self.stats["errors"] += 1
                    return
        self.core.charge(CYCLES_FRAME, "app")
        fetch["received"] += body_len
        fetch["body"] += body
        if flags & F.FLAG_END_STREAM:
            self._finish(stream_id, fetch)

    def _finish(self, stream_id: int, fetch: dict) -> None:
        del self._fetches[stream_id]
        if self._rx_ctx is not None and self.config.rx_offload_copy:
            self.host.nic.driver.l5o_del_rr_state(self._rx_ctx, stream_id)
        self.stats["responses"] += 1
        if fetch["received"] != fetch["length"]:
            self.stats["errors"] += 1
        latency = self.host.sim.now - fetch["issued_at"]
        fetch["on_done"](bytes(fetch["body"]), latency)

    # ------------------------------------------------------------------
    # Listing 2 upcalls
    # ------------------------------------------------------------------
    def l5o_get_tx_msgstate(self, tcpsn: int) -> Optional[TxMsgState]:
        return None  # requests are not TX-offloaded

    def l5o_resync_rx_req(self, tcpsn: int) -> None:
        self._pending_resync.append(tcpsn)

    def l5o_offload_degraded(self, direction: str, reason: str) -> None:
        self.stats["offload_degraded"] += 1

    def _answer_resyncs(self, msg) -> None:
        if not self._pending_resync or self._rx_ctx is None:
            return
        driver = self.host.nic.driver
        end = sq.add(msg.start_seq, msg.length)
        still = []
        for req in self._pending_resync:
            if req == msg.start_seq:
                driver.l5o_resync_rx_resp(self._rx_ctx, req, True, msg_index=0)
            elif sq.lt(req, end):
                driver.l5o_resync_rx_resp(self._rx_ctx, req, False)
            else:
                still.append(req)
        self._pending_resync = still
