"""SIM001 — no wall clock, no global randomness.

The simulator is deterministic by construction: every run is a pure
function of its seed (``Simulator(seed=...)``), and every stochastic
decision must draw from :meth:`Simulator.substream`.  A single
``time.time()`` or module-level ``random.random()`` silently breaks
run-to-run reproducibility — the property the determinism tests and
every experiment comparison depend on.  Simulated time is ``sim.now``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.lint import Finding, LintRule, SourceModule

#: ``time`` module functions that read the host clock (or block on it).
_TIME_FNS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
    "localtime",
    "gmtime",
    "sleep",
}

#: ``datetime``/``date`` constructors that read the host clock.
_DATETIME_FNS = {"now", "utcnow", "today"}

#: Module-level ``random`` functions (the shared, unseeded global PRNG).
_RANDOM_FNS = {
    "random",
    "randint",
    "randrange",
    "uniform",
    "choice",
    "choices",
    "sample",
    "shuffle",
    "gauss",
    "normalvariate",
    "expovariate",
    "betavariate",
    "gammavariate",
    "lognormvariate",
    "paretovariate",
    "weibullvariate",
    "vonmisesvariate",
    "triangular",
    "getrandbits",
    "randbytes",
    "seed",
}


class _Imports:
    """Names the module binds to the stdlib ``time``/``datetime``/``random``."""

    def __init__(self, tree: ast.AST):
        self.time_modules: set[str] = set()
        self.datetime_modules: set[str] = set()
        self.datetime_classes: set[str] = set()
        self.random_modules: set[str] = set()
        self.random_functions: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if alias.name == "time":
                        self.time_modules.add(bound)
                    elif alias.name == "datetime":
                        self.datetime_modules.add(bound)
                    elif alias.name == "random":
                        self.random_modules.add(bound)
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "datetime":
                    for alias in node.names:
                        if alias.name in ("datetime", "date"):
                            self.datetime_classes.add(alias.asname or alias.name)
                elif node.module == "random":
                    for alias in node.names:
                        self.random_functions.add(alias.asname or alias.name)
                elif node.module == "time":
                    for alias in node.names:
                        if alias.name in _TIME_FNS:
                            self.random_functions.add(alias.asname or alias.name)


class WallClockRule(LintRule):
    code = "SIM001"
    name = "no-wall-clock"
    description = (
        "wall-clock reads and global `random` calls break simulation "
        "determinism; use Simulator.now / Simulator.substream()"
    )

    def check(self, module: SourceModule) -> Iterable[Finding]:
        imports = _Imports(module.tree)
        yield from self._check_calls(module, imports)

    def _check_calls(self, module: SourceModule, imports: _Imports) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                owner, attr = func.value.id, func.attr
                if owner in imports.time_modules and attr in _TIME_FNS:
                    yield module.finding(
                        node, self.code, f"`{owner}.{attr}()` reads the wall clock; use `sim.now` for simulated time"
                    )
                elif owner in imports.random_modules:
                    if attr in _RANDOM_FNS:
                        yield module.finding(
                            node,
                            self.code,
                            f"module-level `{owner}.{attr}()` uses the global PRNG; "
                            "draw from `Simulator.substream()` instead",
                        )
                    elif attr == "SystemRandom":
                        yield module.finding(
                            node, self.code, "`random.SystemRandom` is non-deterministic by design"
                        )
                    elif attr == "Random" and not node.args and not node.keywords:
                        yield module.finding(
                            node, self.code, "unseeded `random.Random()`; pass an explicit seed or use a substream"
                        )
                elif (owner in imports.datetime_modules or owner in imports.datetime_classes) and (
                    attr in _DATETIME_FNS
                ):
                    yield module.finding(
                        node, self.code, f"`{owner}.{attr}()` reads the wall clock; simulations must not observe it"
                    )
            elif isinstance(func, ast.Attribute) and isinstance(func.value, ast.Attribute):
                # datetime.datetime.now() / datetime.date.today()
                inner = func.value
                if (
                    isinstance(inner.value, ast.Name)
                    and inner.value.id in imports.datetime_modules
                    and inner.attr in ("datetime", "date")
                    and func.attr in _DATETIME_FNS
                ):
                    yield module.finding(
                        node,
                        self.code,
                        f"`{inner.value.id}.{inner.attr}.{func.attr}()` reads the wall clock",
                    )
            elif isinstance(func, ast.Name) and func.id in imports.random_functions:
                yield module.finding(
                    node,
                    self.code,
                    f"`{func.id}()` (imported from a wall-clock/global-random module) "
                    "is non-deterministic; route through the simulator",
                )
