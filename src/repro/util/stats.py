"""Small statistics helpers for the evaluation harness.

The paper reports trimmed means of ten runs (drop min and max) with
standard deviations; :func:`trimmed_mean` and :class:`Summary` implement
exactly that convention.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    """Sample standard deviation; 0 for fewer than two values."""
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))


def trimmed_mean(values: Sequence[float]) -> float:
    """Mean after discarding one minimum and one maximum value.

    With fewer than three values this degrades to the plain mean, which
    keeps small smoke-test runs meaningful.
    """
    if not values:
        raise ValueError("trimmed_mean of empty sequence")
    if len(values) < 3:
        return mean(values)
    ordered = sorted(values)
    return mean(ordered[1:-1])


def percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile, ``pct`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= pct <= 100:
        raise ValueError(f"percentile {pct!r} out of range")
    ordered = sorted(values)
    rank = max(1, math.ceil(pct / 100 * len(ordered)))
    return ordered[rank - 1]


@dataclass
class Summary:
    """Trimmed-mean summary of repeated measurements."""

    mean: float
    stdev: float
    n: int
    minimum: float
    maximum: float

    @classmethod
    def of(cls, values: Iterable[float]) -> "Summary":
        seq = list(values)
        if not seq:
            raise ValueError("Summary of empty sequence")
        return cls(
            mean=trimmed_mean(seq),
            stdev=stdev(seq),
            n=len(seq),
            minimum=min(seq),
            maximum=max(seq),
        )

    @property
    def rel_stdev(self) -> float:
        """Standard deviation relative to the mean (fraction)."""
        if self.mean == 0:
            return 0.0
        return self.stdev / abs(self.mean)

    def __format__(self, spec: str) -> str:
        spec = spec or ".3g"
        return f"{self.mean:{spec}} ±{100 * self.rel_stdev:.1f}%"


class Counter:
    """Accumulates a value and an event count (e.g. bytes and packets)."""

    __slots__ = ("total", "events")

    def __init__(self) -> None:
        self.total = 0.0
        self.events = 0

    def add(self, value: float, events: int = 1) -> None:
        self.total += value
        self.events += events

    @property
    def per_event(self) -> float:
        return self.total / self.events if self.events else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter total={self.total} events={self.events}>"
