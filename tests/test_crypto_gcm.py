"""AES-GCM and GHASH validated against NIST SP 800-38D test vectors."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.gcm import AesGcm, AuthenticationError
from repro.crypto.ghash import Ghash, gf128_mul


class TestGhash:
    def test_table_mul_matches_bitwise_mul(self):
        h = int.from_bytes(bytes(range(16)), "big")
        ghash = Ghash(h)
        for seed in (1, 0xDEADBEEF, (1 << 128) - 1, 0x80 << 120):
            assert ghash._mul_h(seed) == gf128_mul(h, seed)

    def test_mul_identity(self):
        # The GCM multiplicative identity is the x^0 element: MSB set.
        one = 0x80 << 120
        h = 0x123456789ABCDEF0123456789ABCDEF0
        assert gf128_mul(h, one) == h

    def test_incremental_equals_one_shot(self):
        h = int.from_bytes(b"\x42" * 16, "big")
        data = bytes(range(256)) * 3
        whole = Ghash(h)
        whole.update(data)
        pieces = Ghash(h)
        for off in range(0, len(data), 7):
            pieces.update(data[off : off + 7])
        assert whole.digest() == pieces.digest()


# NIST SP 800-38D / original GCM spec test cases.
NIST_CASES = [
    # (key, iv, plaintext, aad, ciphertext, tag) - all hex
    (  # Test Case 1: empty plaintext
        "00000000000000000000000000000000",
        "000000000000000000000000",
        "",
        "",
        "",
        "58e2fccefa7e3061367f1d57a4e7455a",
    ),
    (  # Test Case 2: single zero block
        "00000000000000000000000000000000",
        "000000000000000000000000",
        "00000000000000000000000000000000",
        "",
        "0388dace60b6a392f328c2b971b2fe78",
        "ab6e47d42cec13bdf53a67b21257bddf",
    ),
    (  # Test Case 3: four blocks
        "feffe9928665731c6d6a8f9467308308",
        "cafebabefacedbaddecaf888",
        "d9313225f88406e5a55909c5aff5269a"
        "86a7a9531534f7da2e4c303d8a318a72"
        "1c3c0c95956809532fcf0e2449a6b525"
        "b16aedf5aa0de657ba637b391aafd255",
        "",
        "42831ec2217774244b7221b784d0d49c"
        "e3aa212f2c02a4e035c17e2329aca12e"
        "21d514b25466931c7d8f6a5aac84aa05"
        "1ba30b396a0aac973d58e091473f5985",
        "4d5c2af327cd64a62cf35abd2ba6fab4",
    ),
    (  # Test Case 4: with AAD, partial final block
        "feffe9928665731c6d6a8f9467308308",
        "cafebabefacedbaddecaf888",
        "d9313225f88406e5a55909c5aff5269a"
        "86a7a9531534f7da2e4c303d8a318a72"
        "1c3c0c95956809532fcf0e2449a6b525"
        "b16aedf5aa0de657ba637b39",
        "feedfacedeadbeeffeedfacedeadbeefabaddad2",
        "42831ec2217774244b7221b784d0d49c"
        "e3aa212f2c02a4e035c17e2329aca12e"
        "21d514b25466931c7d8f6a5aac84aa05"
        "1ba30b396a0aac973d58e091",
        "5bc94fbc3221a5db94fae95ae7121a47",
    ),
]


class TestNistVectors:
    @pytest.mark.parametrize("case", NIST_CASES, ids=lambda c: f"len{len(c[2]) // 2}")
    def test_encrypt(self, case):
        key, iv, pt, aad, ct, tag = (bytes.fromhex(x) for x in case)
        got_ct, got_tag = AesGcm(key).encrypt(iv, pt, aad)
        assert got_ct == ct
        assert got_tag == tag

    @pytest.mark.parametrize("case", NIST_CASES, ids=lambda c: f"len{len(c[2]) // 2}")
    def test_decrypt(self, case):
        key, iv, pt, aad, ct, tag = (bytes.fromhex(x) for x in case)
        assert AesGcm(key).decrypt(iv, ct, tag, aad) == pt


class TestIncremental:
    def test_chunked_encrypt_matches_one_shot(self):
        gcm = AesGcm(b"k" * 16)
        nonce = b"n" * 12
        data = bytes(range(256)) * 5
        one_ct, one_tag = gcm.encrypt(nonce, data)
        enc = gcm.encryptor(nonce)
        chunks = [data[:100], data[100:101], data[101:1000], data[1000:]]
        ct = b"".join(enc.update(c) for c in chunks)
        assert ct == one_ct
        assert enc.finalize() == one_tag

    def test_chunked_decrypt_matches_one_shot(self):
        gcm = AesGcm(b"k" * 16)
        nonce = b"n" * 12
        data = b"payload bytes" * 99
        ct, tag = gcm.encrypt(nonce, data)
        dec = gcm.decryptor(nonce)
        pt = b"".join(dec.update(ct[i : i + 37]) for i in range(0, len(ct), 37))
        dec.finalize(tag)  # must not raise
        assert pt == data

    def test_tampered_ciphertext_fails_auth(self):
        gcm = AesGcm(b"k" * 16)
        ct, tag = gcm.encrypt(b"n" * 12, b"secret data here")
        bad = bytes([ct[0] ^ 1]) + ct[1:]
        with pytest.raises(AuthenticationError):
            gcm.decrypt(b"n" * 12, bad, tag)

    def test_wrong_nonce_fails_auth(self):
        gcm = AesGcm(b"k" * 16)
        ct, tag = gcm.encrypt(b"n" * 12, b"secret data here")
        with pytest.raises(AuthenticationError):
            gcm.decrypt(b"m" * 12, ct, tag)

    def test_wrong_aad_fails_auth(self):
        gcm = AesGcm(b"k" * 16)
        ct, tag = gcm.encrypt(b"n" * 12, b"secret data here", aad=b"header")
        with pytest.raises(AuthenticationError):
            gcm.decrypt(b"n" * 12, ct, tag, aad=b"HEADER")

    def test_bad_nonce_size(self):
        with pytest.raises(ValueError):
            AesGcm(b"k" * 16).encryptor(b"short")


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        key=st.binary(min_size=16, max_size=16),
        nonce=st.binary(min_size=12, max_size=12),
        data=st.binary(min_size=0, max_size=300),
        aad=st.binary(min_size=0, max_size=40),
    )
    def test_round_trip(self, key, nonce, data, aad):
        gcm = AesGcm(key)
        ct, tag = gcm.encrypt(nonce, data, aad)
        assert len(ct) == len(data)  # size-preserving (paper Table 3)
        assert gcm.decrypt(nonce, ct, tag, aad) == data

    @settings(max_examples=10, deadline=None)
    @given(data=st.binary(min_size=1, max_size=200), cut=st.integers(min_value=0, max_value=200))
    def test_any_split_point_matches(self, data, cut):
        cut = min(cut, len(data))
        gcm = AesGcm(b"\x01" * 16)
        whole_ct, whole_tag = gcm.encrypt(b"\x02" * 12, data)
        enc = gcm.encryptor(b"\x02" * 12)
        ct = enc.update(data[:cut]) + enc.update(data[cut:])
        assert ct == whole_ct
        assert enc.finalize() == whole_tag
