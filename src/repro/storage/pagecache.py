"""Page cache: 4 KiB pages keyed by (file, page index).

The paper's two nginx configurations are cache states: C1 — no relevant
data in the page cache (every request reaches the remote drive); C2 —
everything resident (requests are NIC-bound).  :meth:`warm` and
:meth:`drop` switch between them.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Optional

PAGE_SIZE = 4096


class PageCache:
    """LRU page cache (unbounded by default, like a big-RAM server)."""

    def __init__(self, capacity_bytes: Optional[int] = None):
        self.capacity_pages = None if capacity_bytes is None else max(1, capacity_bytes // PAGE_SIZE)
        self._pages: OrderedDict[Hashable, bytes] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, key: Hashable) -> Optional[bytes]:
        page = self._pages.get(key)
        if page is None:
            self.misses += 1
            return None
        self._pages.move_to_end(key)
        self.hits += 1
        return page

    def insert(self, key: Hashable, data: bytes) -> None:
        if len(data) > PAGE_SIZE:
            raise ValueError(f"page larger than {PAGE_SIZE} bytes")
        self._pages[key] = data
        self._pages.move_to_end(key)
        if self.capacity_pages is not None:
            while len(self._pages) > self.capacity_pages:
                self._pages.popitem(last=False)

    def contains(self, key: Hashable) -> bool:
        return key in self._pages

    def drop(self) -> None:
        """Drop everything (``echo 3 > drop_caches``; the C1 state)."""
        self._pages.clear()

    @property
    def resident_pages(self) -> int:
        return len(self._pages)

    @property
    def resident_bytes(self) -> int:
        return sum(len(p) for p in self._pages.values())
