"""Transmit-side autonomous offload (§4.2).

The L5P "skips" its data-intensive operation and hands TCP the *wrong*
bytes (plaintext bodies, dummy trailers); the NIC transforms every
outgoing packet so correct bytes hit the wire.  The driver detects
out-of-sequence transmissions (retransmits, or new data after a
retransmit) by comparing against its shadow of the context, asks the
L5P for the covering message's state (``l5o_get_tx_msgstate``), and the
NIC re-derives mid-message state by re-reading the message bytes over
PCIe — the interconnect overhead measured in Figure 16b.
"""

from __future__ import annotations

from repro.analysis.sanitizer import active as _sanitizer_active, allow_rewind
from repro.core.context import HwContext
from repro.core.types import ProtocolError
from repro.core.walker import replay, walk
from repro.net.packet import Packet
from repro.tcp import seq as sq


class TxEngine:
    """Per-NIC transmit offload engine."""

    def __init__(self, nic):
        self.nic = nic

    def process(self, ctx: HwContext, conn, pkt: Packet) -> None:
        """Transform one outgoing packet in place."""
        if not pkt.payload:
            return
        self.nic.cache.access(ctx)
        self.nic.pcie.count("tx-packet", len(pkt.payload))
        seq, payload = pkt.seq, pkt.payload
        prefix = b""
        if sq.lt(seq, ctx.created_seq):
            # Bytes queued before the offload existed (e.g. a
            # retransmitted TLS handshake record) pass through raw.
            split = sq.sub(ctx.created_seq, seq)
            if split >= len(payload):
                return
            prefix, payload = payload[:split], payload[split:]
            seq = ctx.created_seq
        san = _sanitizer_active()
        if seq != ctx.expected_seq:
            with allow_rewind(ctx):
                recovered = self._recover(ctx, conn, seq, sq.add(seq, len(payload)))
            if not recovered:
                # Stale retransmission of fully-acknowledged bytes whose
                # message state the L5P already released: the receiver
                # will discard it as a duplicate, so content is moot.
                ctx.pkts_bypassed += 1
                pkt.payload = prefix + b"\x00" * len(payload)
                return
            if san is not None:
                san.tx_recovered(ctx, seq)
        result = walk(ctx, payload, emit=True)
        if result.desynced:
            raise ProtocolError(
                f"{ctx.adapter.name}: transmit stream does not parse as L5P "
                f"messages at seq {seq}"
            )
        pkt.payload = prefix + result.out
        ctx.expected_seq = sq.add(seq, len(payload))
        ctx.pkts_offloaded += 1
        pkt.meta.offloaded = True

    # ------------------------------------------------------------------
    def _recover(self, ctx: HwContext, conn, tcpsn: int, end_seq: int) -> bool:
        """Reposition the context at ``tcpsn`` (driver-led, §4.2).

        Returns False for a stale retransmission: the covering message
        was already fully acknowledged and released by the L5P, which can
        only happen when the ACK raced a queued retransmission — the
        packet's bytes can never be consumed by the receiver."""
        if ctx.l5p_ops is None:
            raise ProtocolError("TX context has no L5P ops for recovery")
        state = ctx.l5p_ops.l5o_get_tx_msgstate(tcpsn)
        if state is None:
            if conn is not None and sq.le(end_seq, conn.snd_una):
                return False
            raise ProtocolError(
                f"{ctx.adapter.name}: L5P has no message state covering "
                f"seq {tcpsn} (released too early?)"
            )
        offset = sq.sub(tcpsn, state.start_seq)
        if offset < 0 or offset > len(state.wire_bytes):
            raise ProtocolError(
                f"{ctx.adapter.name}: message state for seq {tcpsn} covers "
                f"[{state.start_seq}, +{len(state.wire_bytes)})"
            )
        ctx.reset_to_header()
        ctx.msg_index = state.msg_index
        ctx.expected_seq = state.start_seq
        ctx.adapter.prepare_tx_recovery(ctx, state)
        if offset:
            replay(ctx, state.wire_bytes[:offset])
            ctx.expected_seq = tcpsn
        # The driver passes the replayed bytes to the NIC via DMA; the
        # driver-side upcall work is charged to the flow's core.
        ctx.tx_recoveries += 1
        ctx.tx_recovery_bytes += offset
        obs = self.nic.obs
        if obs is not None:
            obs.count("nic.tx.recoveries")
            obs.count("nic.tx.recovery_dma_bytes", offset)
            obs.event(
                "tx-recovery", lane=f"ctx/{ctx.ctx_id}", cat="recovery", tcpsn=tcpsn, replayed_bytes=offset
            )
        self.nic.pcie.count("recovery", offset)
        self.nic.pcie.count("descriptor", 64)
        host = self.nic.host
        if host is not None:
            core = host.core_for_flow(conn.flow)
            core.charge(host.model.cycles_syscall, "offload-mgmt")
        return True
