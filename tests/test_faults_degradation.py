"""Graceful degradation under sustained failure (paper §5.3): bounded
resync retries with backoff, per-flow auto-disable ("give up"), probation
re-enable, and TX-recovery PCIe faults falling back to software sends."""

import pytest

from helpers import make_pair
from repro.core.context import RxState
from repro.faults import (
    DegradePolicy,
    GilbertElliott,
    LinkFaultInjector,
    LinkFaultProfile,
    NicFaultProfile,
)
from repro.l5p.tls import KtlsSocket, TlsConfig
from repro.nic import OffloadNic


PAYLOAD = bytes(i % 251 for i in range(600_000))


def bursty_pair(seed=11, mean_loss=0.08, burst_len=12):
    """A pair whose client->server direction suffers bursty loss — long
    enough bursts to jump past record boundaries and force Figure 7
    speculation (uniform loss mostly re-locks via Figure 8b instead)."""
    pair = make_pair(seed=seed, client_nic=OffloadNic(), server_nic=OffloadNic())
    profile = LinkFaultProfile(burst=GilbertElliott.for_mean_loss(mean_loss, burst_len=burst_len))
    pair.link.ab.fault_injector = LinkFaultInjector(profile, pair.sim.substream("faults:wire"))
    return pair


def tls_transfer(pair, server_cfg, client_cfg, until=20.0):
    """Client streams PAYLOAD to the server; returns (received, client,
    server) with the sockets' errors collected, not raised."""
    received = bytearray()
    sockets = {}
    progress = {"sent": 0, "errors": []}

    def on_accept(conn):
        tls = KtlsSocket(pair.server, conn, "server", server_cfg)
        tls.on_data = received.extend
        tls.on_error = progress["errors"].append
        sockets["server"] = tls

    pair.server.tcp.listen(443, on_accept)
    conn = pair.client.tcp.connect("server", 443)
    client = KtlsSocket(pair.client, conn, "client", client_cfg)
    client.on_error = progress["errors"].append
    sockets["client"] = client

    def feed():
        while progress["sent"] < len(PAYLOAD):
            sent = client.send(PAYLOAD[progress["sent"] : progress["sent"] + 64 * 1024])
            if sent == 0:
                return
            progress["sent"] += sent

    client.on_ready = feed
    client.on_writable = feed
    pair.sim.run(until=until)
    return bytes(received), sockets["client"], sockets["server"]


class TestRetryExhaustionAutoDisable:
    def test_dropped_responses_exhaust_retries_and_disable(self):
        pair = bursty_pair()
        # Every resync response vanishes: each speculation retries with
        # backoff, fails, and the first failure gives the flow up.
        pair.server.nic.install_faults(
            NicFaultProfile(resync_resp_drop=1.0), pair.sim.substream("faults:test")
        )
        pair.server.nic.driver.configure_degradation(
            DegradePolicy(max_resync_retries=2, resync_timeout_s=2e-4, disable_after_failures=1)
        )
        received, _, server = tls_transfer(pair, TlsConfig(rx_offload=True), TlsConfig(tx_offload=True))
        ctx = server._rx_ctx
        assert ctx.resync_requests > 0, "loss must trigger speculation"
        assert ctx.resync_retries >= 2, "unanswered speculation must be retried"
        assert ctx.resync_failures >= 1
        assert ctx.offload_disabled
        assert ctx.auto_disables == 1
        assert server.stats.offload_degraded == 1
        # The flow survives on the software path, byte-for-byte intact.
        assert received == PAYLOAD
        stats = pair.server.nic.offload_stats()
        assert stats["auto_disables"] == 1
        assert stats["offload_disabled_flows"] == 1

    def test_degradation_defaults_are_off(self):
        pair = make_pair(seed=3, loss_to_server=0.03, client_nic=OffloadNic(), server_nic=OffloadNic())
        received, _, server = tls_transfer(pair, TlsConfig(rx_offload=True), TlsConfig(tx_offload=True))
        ctx = server._rx_ctx
        assert received == PAYLOAD
        assert ctx.resync_retries == 0 and ctx.resync_failures == 0
        assert not ctx.offload_disabled


class TestProbationReenable:
    def test_probation_restores_offload(self):
        pair = bursty_pair()
        faults = NicFaultProfile(resync_resp_drop=1.0)
        pair.server.nic.install_faults(faults, pair.sim.substream("faults:test"))
        pair.server.nic.driver.configure_degradation(
            DegradePolicy(
                max_resync_retries=1,
                resync_timeout_s=2e-4,
                disable_after_failures=1,
                probation_s=2e-3,
            )
        )
        received, _, server = tls_transfer(pair, TlsConfig(rx_offload=True), TlsConfig(tx_offload=True))
        ctx = server._rx_ctx
        assert ctx.auto_disables >= 1
        # Probation re-armed the offload after the quiet period...
        assert not ctx.offload_disabled
        assert ctx.consecutive_resync_failures == 0
        # ...and the context came back through SEARCHING, so it re-locks
        # before offloading again (it may have re-locked already).
        assert ctx.rx_state in (RxState.SEARCHING, RxState.TRACKING, RxState.OFFLOADING)
        assert received == PAYLOAD

    def test_repeated_disable_probation_cycles(self):
        """Flapping offload: disable -> probation re-enable -> fail again
        -> disable again, repeatedly.  Every cycle must count (the
        counters are how operators see a flapping flow) and every
        re-enable must reset the consecutive-failure budget."""
        pair = make_pair(seed=1, client_nic=OffloadNic(), server_nic=OffloadNic())
        driver = pair.server.nic.driver
        driver.configure_degradation(
            DegradePolicy(disable_after_failures=1, probation_s=1e-3)
        )
        received, _, server = tls_transfer(
            pair, TlsConfig(rx_offload=True), TlsConfig(tx_offload=True), until=5.0
        )
        ctx = server._rx_ctx
        assert received == PAYLOAD

        def deny_once():
            # White-box Figure 7 d1: a denied speculation is one failure,
            # and the policy's budget is 1 -> immediate auto-disable.
            ctx.enter_searching()
            ctx.rx_state = RxState.TRACKING
            ctx.speculation_seq = ctx.expected_seq
            ctx.track_next = ctx.expected_seq
            driver.l5o_resync_rx_resp(ctx, ctx.expected_seq, False)

        for cycle in (1, 2, 3):
            deny_once()
            assert ctx.offload_disabled
            assert ctx.auto_disables == cycle
            assert driver.lookup_rx(ctx.flow) is None  # software path only
            pair.sim.run(until=pair.sim.now + 5e-3)  # past probation
            assert not ctx.offload_disabled, f"cycle {cycle}: probation must re-arm"
            assert ctx.consecutive_resync_failures == 0
            assert ctx.rx_state == RxState.SEARCHING  # re-lock before offloading

        assert server.stats.offload_degraded == 3
        stats = pair.server.nic.offload_stats()
        assert stats["auto_disables"] == 3
        assert stats["offload_disabled_flows"] == 0  # currently re-enabled

    def test_probation_skips_destroyed_contexts(self):
        """A context destroyed while on probation must stay dead: the
        pending re-enable event fires into a tombstone, not a new flow."""
        pair = make_pair(seed=1, client_nic=OffloadNic(), server_nic=OffloadNic())
        driver = pair.server.nic.driver
        driver.configure_degradation(
            DegradePolicy(disable_after_failures=1, probation_s=1e-3)
        )
        received, _, server = tls_transfer(
            pair, TlsConfig(rx_offload=True), TlsConfig(tx_offload=True), until=5.0
        )
        ctx = server._rx_ctx
        assert received == PAYLOAD
        ctx.enter_searching()
        ctx.rx_state = RxState.TRACKING
        ctx.speculation_seq = ctx.expected_seq
        ctx.track_next = ctx.expected_seq
        driver.l5o_resync_rx_resp(ctx, ctx.expected_seq, False)
        assert ctx.offload_disabled
        driver.l5o_destroy(ctx)
        pair.sim.run(until=pair.sim.now + 5e-3)
        assert ctx.offload_disabled, "destroyed context must not be re-armed"

    def test_denied_speculation_counts_toward_give_up(self):
        # White-box: a denial (Figure 7 d1) is one consecutive failure.
        pair = make_pair(seed=1, client_nic=OffloadNic(), server_nic=OffloadNic())
        driver = pair.server.nic.driver
        driver.configure_degradation(DegradePolicy(disable_after_failures=2))
        received, _, server = tls_transfer(
            pair, TlsConfig(rx_offload=True), TlsConfig(tx_offload=True), until=5.0
        )
        ctx = server._rx_ctx
        assert received == PAYLOAD
        for expect_disabled in (False, True):
            ctx.enter_searching()
            ctx.rx_state = RxState.TRACKING
            ctx.speculation_seq = ctx.expected_seq
            ctx.track_next = ctx.expected_seq
            driver.l5o_resync_rx_resp(ctx, ctx.expected_seq, False)
            assert ctx.offload_disabled is expect_disabled
        assert ctx.consecutive_resync_failures == 2
        assert server.stats.offload_degraded == 1
        assert driver.lookup_rx(ctx.flow) is None


class TestTxRecoveryFaults:
    def _run(self, profile):
        pair = make_pair(
            seed=9, loss_to_server=0.03, client_nic=OffloadNic(), server_nic=OffloadNic()
        )
        # TX recovery happens on the *sender* (client) NIC when loss
        # forces retransmits of offloaded records.
        pair.client.nic.install_faults(profile, pair.sim.substream("faults:test"))
        received, client, _ = tls_transfer(pair, TlsConfig(), TlsConfig(tx_offload=True))
        return pair, received, client

    def test_pcie_read_failure_falls_back_to_software_send(self):
        pair, received, client = self._run(NicFaultProfile(pcie_fail_prob=1.0))
        ctx = pair.client.nic.driver.tx_contexts[client._tx_ctx.ctx_id]
        assert ctx.tx_recovery_failures > 0, "loss must force TX recoveries"
        assert ctx.tx_sw_fallbacks == ctx.tx_recovery_failures
        assert ctx.tx_recoveries == 0  # every recovery failed over PCIe
        assert pair.client.nic.pcie.read_failures == ctx.tx_recovery_failures
        # Degraded sends still put correct bytes on the wire.
        assert received == PAYLOAD
        # The software path paid the crypto bill on the client.
        assert pair.client.cpu.cycles_by_category().get("crypto", 0) > 0

    def test_pcie_stall_recovers_but_burns_cycles(self):
        pair, received, client = self._run(
            NicFaultProfile(pcie_stall_prob=1.0, pcie_stall_cycles=30_000)
        )
        ctx = client._tx_ctx
        assert received == PAYLOAD
        assert ctx.tx_recoveries > 0
        assert ctx.tx_sw_fallbacks == 0
        assert pair.client.nic.pcie.stalls == ctx.tx_recoveries


class TestResyncResponseChannel:
    @pytest.mark.parametrize(
        "profile",
        [
            NicFaultProfile(resync_resp_dup=1.0),
            NicFaultProfile(resync_resp_delay=1.0, resync_resp_delay_s=3e-4),
        ],
        ids=["duplicated", "delayed"],
    )
    def test_dup_and_delay_are_harmless(self, profile):
        pair = bursty_pair()
        pair.server.nic.install_faults(profile, pair.sim.substream("faults:test"))
        received, _, server = tls_transfer(pair, TlsConfig(rx_offload=True), TlsConfig(tx_offload=True))
        ctx = server._rx_ctx
        assert received == PAYLOAD
        assert ctx.resync_requests > 0
        assert not ctx.offload_disabled
        # Confirmations still land: offload keeps recovering.
        assert ctx.resyncs_completed > 0


class TestCacheFaults:
    def test_eviction_storm_forces_misses(self):
        pair = make_pair(seed=4, client_nic=OffloadNic(), server_nic=OffloadNic())
        pair.server.nic.install_faults(
            NicFaultProfile(cache_storm_windows=((0.0, 100.0),)),
            pair.sim.substream("faults:test"),
        )
        received, _, _ = tls_transfer(pair, TlsConfig(rx_offload=True), TlsConfig(tx_offload=True))
        cache = pair.server.nic.cache
        assert received == PAYLOAD
        assert cache.fault_evictions > 0
        assert cache.hits == 0, "every access inside the storm must miss"
