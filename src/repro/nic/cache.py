"""On-NIC flow-context cache (§6.5).

The paper's NIC has ~4 MiB for per-flow state at 208 B per flow (≈20 K
flows); beyond that, contexts spill to host memory and each reuse costs
a DMA fetch.  We model an LRU over context IDs; hit/miss statistics and
the DMA bytes of misses feed the Figure 19 scalability analysis.

Batching is why this scales: packets of one flow arriving back-to-back
hit the cache after the first access, so the miss rate tracks *batches*,
not packets — the mechanism §6.5 credits.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.context import CONTEXT_BYTES, HwContext


class ContextCache:
    """LRU cache of HW contexts resident on the NIC."""

    def __init__(self, pcie, capacity_bytes: int = 4 * 1024 * 1024, entry_bytes: int = CONTEXT_BYTES):
        self.pcie = pcie
        self.capacity_entries = max(1, capacity_bytes // entry_bytes)
        self.entry_bytes = entry_bytes
        self._lru: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.obs = None  # repro.obs handle, wired by OffloadNic.bind()
        # Epoch-batched counter cells (wired with the obs handle): the
        # cache is touched once per offloaded packet, so a registry
        # lookup per access is real cost at datacenter flow counts.
        self._hit_cell = None
        self._miss_cell = None
        self._miss_bytes_cell = None
        self._evict_cell = None
        self._fault_evict_cell = None
        # Injected faults (repro.faults NicFaultProfile), wired by
        # OffloadNic.install_faults(): eviction storms force misses.
        self.faults = None
        self.fault_rng = None
        self.clock = None  # () -> simulated now, for storm windows
        self.fault_evictions = 0

    def wire(self, obs) -> None:
        """Attach the run's observability handle (or ``None``) and build
        the batched counter cells the access path increments."""
        self.obs = obs
        if obs is None:
            self._hit_cell = None
            self._miss_cell = None
            self._miss_bytes_cell = None
            self._evict_cell = None
            self._fault_evict_cell = None
            return
        self._hit_cell = obs.cell("nic.cache.hit")
        self._miss_cell = obs.cell("nic.cache.miss")
        self._miss_bytes_cell = obs.cell("nic.cache.miss_dma_bytes")
        self._evict_cell = obs.cell("nic.cache.evictions")
        self._fault_evict_cell = obs.cell("nic.cache.fault_evictions")

    def access(self, ctx: HwContext) -> bool:
        """Touch a context; returns True on hit."""
        key = ctx.ctx_id
        faults = self.faults
        if faults is not None and key in self._lru:
            storm = self.clock is not None and faults.storm_active(self.clock())
            if storm or (
                faults.cache_evict_prob and self.fault_rng.random() < faults.cache_evict_prob
            ):
                # Forced eviction (firmware churn / tenant interference):
                # the entry is gone before the lookup, so this access —
                # and during a storm, every access — takes the miss path.
                self._lru.pop(key)
                self.fault_evictions += 1
                if self._fault_evict_cell is not None:
                    self._fault_evict_cell.value += 1
        if key in self._lru:
            self._lru.move_to_end(key)
            self.hits += 1
            if self._hit_cell is not None:
                self._hit_cell.value += 1
            return True
        self.misses += 1
        if self._miss_cell is not None:
            self._miss_cell.value += 1
            self._miss_bytes_cell.value += self.entry_bytes
        # Fetch from host memory; evict the coldest entry if full
        # (write-back of the evicted context plus read of the new one).
        self.pcie.count("context", self.entry_bytes)
        if len(self._lru) >= self.capacity_entries:
            self._lru.popitem(last=False)
            self.pcie.count("context", self.entry_bytes)
            if self._evict_cell is not None:
                self._evict_cell.value += 1
        self._lru[key] = None
        return False

    def evict(self, ctx: HwContext) -> None:
        self._lru.pop(ctx.ctx_id, None)

    def flush(self) -> int:
        """Drop every resident entry (NIC reset: device memory is gone).
        Returns the number of entries flushed.  No PCIe write-back is
        charged — the device state is simply lost."""
        flushed = len(self._lru)
        self._lru.clear()
        return flushed

    @property
    def occupancy(self) -> int:
        return len(self._lru)

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.fault_evictions = 0
