"""On-NIC flow-context cache (§6.5).

The paper's NIC has ~4 MiB for per-flow state at 208 B per flow (≈20 K
flows); beyond that, contexts spill to host memory and each reuse costs
a DMA fetch.  We model an LRU over context IDs; hit/miss statistics and
the DMA bytes of misses feed the Figure 19 scalability analysis.

Batching is why this scales: packets of one flow arriving back-to-back
hit the cache after the first access, so the miss rate tracks *batches*,
not packets — the mechanism §6.5 credits.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.context import CONTEXT_BYTES, HwContext


class ContextCache:
    """LRU cache of HW contexts resident on the NIC."""

    def __init__(self, pcie, capacity_bytes: int = 4 * 1024 * 1024, entry_bytes: int = CONTEXT_BYTES):
        self.pcie = pcie
        self.capacity_entries = max(1, capacity_bytes // entry_bytes)
        self.entry_bytes = entry_bytes
        self._lru: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.obs = None  # repro.obs handle, wired by OffloadNic.bind()
        # Injected faults (repro.faults NicFaultProfile), wired by
        # OffloadNic.install_faults(): eviction storms force misses.
        self.faults = None
        self.fault_rng = None
        self.clock = None  # () -> simulated now, for storm windows
        self.fault_evictions = 0

    def access(self, ctx: HwContext) -> bool:
        """Touch a context; returns True on hit."""
        key = ctx.ctx_id
        obs = self.obs
        faults = self.faults
        if faults is not None and key in self._lru:
            storm = self.clock is not None and faults.storm_active(self.clock())
            if storm or (
                faults.cache_evict_prob and self.fault_rng.random() < faults.cache_evict_prob
            ):
                # Forced eviction (firmware churn / tenant interference):
                # the entry is gone before the lookup, so this access —
                # and during a storm, every access — takes the miss path.
                self._lru.pop(key)
                self.fault_evictions += 1
                if obs is not None:
                    obs.count("nic.cache.fault_evictions")
        if key in self._lru:
            self._lru.move_to_end(key)
            self.hits += 1
            if obs is not None:
                obs.count("nic.cache.hit")
            return True
        self.misses += 1
        if obs is not None:
            obs.count("nic.cache.miss")
            obs.count("nic.cache.miss_dma_bytes", self.entry_bytes)
        # Fetch from host memory; evict the coldest entry if full
        # (write-back of the evicted context plus read of the new one).
        self.pcie.count("context", self.entry_bytes)
        if len(self._lru) >= self.capacity_entries:
            self._lru.popitem(last=False)
            self.pcie.count("context", self.entry_bytes)
            if obs is not None:
                obs.count("nic.cache.evictions")
        self._lru[key] = None
        return False

    def evict(self, ctx: HwContext) -> None:
        self._lru.pop(ctx.ctx_id, None)

    @property
    def occupancy(self) -> int:
        return len(self._lru)

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.fault_evictions = 0
