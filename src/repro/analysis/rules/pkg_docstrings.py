"""SIM005 — every package must say what it models.

The repo mirrors the paper's layering (core/nic/tcp/l5p/...), and the
``__init__.py`` docstring is where a package states which part of the
design it implements and which paper sections apply.  A package without
one forces readers back to commit archaeology; docs/architecture.md
links to these docstrings as the per-layer entry points.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.lint import Finding, LintRule, SourceModule


class PackageDocstringRule(LintRule):
    code = "SIM005"
    name = "pkg-docstrings"
    description = "package __init__.py must open with a docstring describing the package"

    def check(self, module: SourceModule) -> Iterable[Finding]:
        if module.path.name != "__init__.py":
            return
        docstring = ast.get_docstring(module.tree)
        if docstring is None or not docstring.strip():
            package = module.path.parent.name or "<root>"
            yield module.finding(
                module.tree,
                self.code,
                f"package `{package}` has no docstring; say what it models and cite the design",
            )
