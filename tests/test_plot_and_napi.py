"""Tests for the ASCII plot helpers and the host's NAPI receive path."""

import pytest

from helpers import make_pair
from repro.harness.plot import line_chart, sparkline
from repro.net.host import Host, flow_hash
from repro.net.packet import FlowKey, Packet
from repro.sim import Simulator


class TestSparkline:
    def test_monotone_series(self):
        s = sparkline([1, 2, 3, 4, 5])
        assert len(s) == 5
        assert s[0] < s[-1]  # bar characters grow in codepoint order

    def test_flat_series(self):
        assert len(set(sparkline([7, 7, 7]))) == 1

    def test_empty(self):
        assert sparkline([]) == ""


class TestLineChart:
    def test_renders_all_series(self):
        out = line_chart({"a": [1, 2, 3], "b": [3, 2, 1]}, x_labels=[0, 1, 2], height=5)
        assert "legend:" in out
        assert "*=a" in out and "o=b" in out
        assert out.count("\n") >= 6

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            line_chart({"a": [1, 2]}, x_labels=[0, 1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart({}, x_labels=[])

    def test_overlap_marker(self):
        out = line_chart({"a": [5.0], "b": [5.0]}, x_labels=["x"], height=4)
        assert "#" in out


class TestFlowSteering:
    def test_flow_hash_symmetric(self):
        flow = FlowKey("a", 1, "b", 2)
        assert flow_hash(flow) == flow_hash(flow.reversed())

    def test_flow_hash_deterministic(self):
        assert flow_hash(FlowKey("x", 5, "y", 6)) == flow_hash(FlowKey("x", 5, "y", 6))


class TestNapiBatching:
    def make_host(self, cores=1):
        sim = Simulator()
        return sim, Host(sim, "h", cores=cores)

    def test_burst_forms_one_batch(self):
        sim, host = self.make_host()
        flow = FlowKey("peer", 1, "h", 2)
        for i in range(10):
            host.deliver(Packet(flow, seq=i, payload=b"x", ack_flag=False))
        sim.run()
        assert host.rx_batch_sizes[0] == 10

    def test_spaced_arrivals_form_single_packet_batches(self):
        sim, host = self.make_host()
        flow = FlowKey("peer", 1, "h", 2)
        for i in range(5):
            sim.schedule(i * 1e-3, host.deliver, Packet(flow, seq=i, payload=b"x", ack_flag=False))
        sim.run()
        assert host.rx_batch_sizes == [1, 1, 1, 1, 1]

    def test_batch_budget_respected(self):
        sim, host = self.make_host()
        flow = FlowKey("peer", 1, "h", 2)
        for i in range(100):
            host.deliver(Packet(flow, seq=i, payload=b"x", ack_flag=False))
        sim.run()
        assert max(host.rx_batch_sizes) <= 64
        assert sum(host.rx_batch_sizes) == 100

    def test_flows_steer_to_distinct_core_queues(self):
        sim, host = self.make_host(cores=4)
        flows = [FlowKey(f"p{i}", i, "h", 80) for i in range(16)]
        for flow in flows:
            host.deliver(Packet(flow, payload=b"x", ack_flag=False))
        sim.run()
        # Work was spread: more than one core accumulated busy time.
        busy = [c.busy_seconds for c in host.cpu.cores]
        assert sum(1 for b in busy if b > 0) > 1

    def test_batching_grows_under_cpu_load(self):
        """The §6.5 mechanism: when the core is busy, arrivals batch."""
        pair = make_pair()
        # Saturate the server core with synthetic work while packets arrive.
        core = pair.server.cpu.cores[0]
        flow = FlowKey("client", 9, "server", 9)

        def arrival(i):
            pair.server.deliver(Packet(flow, seq=i, payload=b"y", ack_flag=False))

        core.charge(2_000_000, "app")  # 1 ms of busywork
        for i in range(20):
            pair.sim.schedule(i * 20e-6, arrival, i)  # all within the busy ms
        pair.sim.run(until=0.1)
        assert max(pair.server.rx_batch_sizes) >= 10
