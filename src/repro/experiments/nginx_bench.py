"""nginx macrobenchmarks (Figures 12, 13, 14).

Variants map to the paper's bars:

- ``http``        plain TCP, no encryption (upper bound)
- ``https``       software kTLS sendfile (baseline)
- ``offload``     TLS TX offload, still copying
- ``offload+zc``  TLS TX offload, zero-copy sendfile

Storage configurations:

- ``c2``  all files resident in the page cache (NIC-line-rate bound)
- ``c1``  nothing cached; every request reads the remote drive over
          NVMe-TCP (drive-bandwidth bound), optionally with the
          NVMe-TCP offloads and/or TLS on the storage hop (NVMe-TLS)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.apps.nginx import NginxServer
from repro.apps.wrk import WrkClient
from repro.harness.testbed import Testbed, TestbedConfig
from repro.l5p.nvme_tcp import NvmeConfig, NvmeTcpHost, NvmeTcpTarget
from repro.l5p.tls.ktls import TlsConfig
from repro.storage.blockdev import BlockDevice
from repro.storage.fs import FlatFs
from repro.storage.remote import MultiQueueReader
from repro.util.units import gbps

VARIANTS = ("http", "https", "offload", "offload+zc")


def variant_tls(variant: str) -> Optional[TlsConfig]:
    if variant == "http":
        return None
    if variant == "https":
        return TlsConfig()
    if variant == "offload":
        return TlsConfig(tx_offload=True)
    if variant == "offload+zc":
        return TlsConfig(tx_offload=True, zerocopy_sendfile=True)
    raise ValueError(f"unknown nginx variant {variant!r}; choose from {VARIANTS}")


@dataclass
class NginxRun:
    variant: str
    storage: str
    file_size: int
    cores: int
    goodput_gbps: float
    busy_cores: float
    requests: int
    mean_latency: float
    extra: dict = field(default_factory=dict)


def run_nginx(
    variant: str,
    storage: str = "c2",
    file_size: int = 256 * 1024,
    server_cores: int = 1,
    connections: int = 48,
    files: int = 16,
    nvme_offload: bool = False,
    nvme_copy: Optional[bool] = None,  # override just the copy offload
    nvme_crc: Optional[bool] = None,  # override just the CRC offloads
    storage_tls: Optional[str] = None,  # None | "sw" | "offload"  (NVMe-TLS)
    warmup: float = 12e-3,
    measure: float = 10e-3,
    seed: int = 0,
    nic_cache_bytes: int = 4 * 1024 * 1024,
    record_latencies: bool = False,
) -> NginxRun:
    tb = Testbed(
        TestbedConfig(
            seed=seed,
            server_cores=server_cores,
            generator_cores=12,
            nic_cache_bytes=nic_cache_bytes,
        )
    )
    fs = _build_storage(
        tb,
        storage,
        nvme_copy if nvme_copy is not None else nvme_offload,
        nvme_crc if nvme_crc is not None else nvme_offload,
        storage_tls,
        queue_pairs=max(2, 2 * server_cores),
    )
    names = [f"f{i:03d}.bin" for i in range(files)]
    for name in names:
        fs.create(name, file_size)
    if storage == "c2":
        done = {"n": 0}
        for name in names:
            fs.warm(name, lambda: done.__setitem__("n", done["n"] + 1))
        tb.run(until=tb.sim.now + 0.5)
        if done["n"] != len(names):
            raise RuntimeError("page-cache warmup did not finish")

    server = NginxServer(tb.server, fs, port=443, tls=variant_tls(variant))
    client_tls = None if variant == "http" else TlsConfig(rx_offload=True)
    wrk = WrkClient(
        tb.generator,
        "server",
        443,
        names,
        connections=connections,
        tls=client_tls,
        record_latencies=record_latencies,
    )

    start = tb.sim.now
    tb.run(until=start + warmup)
    tb.server.cpu.reset_stats()
    bytes_before = server.bytes_served
    reqs_before = wrk.stats.requests
    lat_mark = len(wrk.stats.latencies)

    tb.server.rx_batch_sizes.clear()
    tb.server.nic.cache.reset_stats()
    tb.run(until=start + warmup + measure)
    moved = server.bytes_served - bytes_before
    window_lat = wrk.stats.latencies[lat_mark:]
    return NginxRun(
        variant=variant,
        storage=storage,
        file_size=file_size,
        cores=server_cores,
        goodput_gbps=gbps(max(moved, 1), measure),
        busy_cores=tb.server.cpu.busy_cores(measure),
        requests=wrk.stats.requests - reqs_before,
        mean_latency=sum(window_lat) / len(window_lat) if window_lat else 0.0,
        extra={
            "mean_rx_batch": tb.server.mean_rx_batch,
            "nic_cache_miss_rate": tb.server.nic.cache.miss_rate,
            "nic_cache_occupancy": tb.server.nic.cache.occupancy,
        },
    )


def _build_storage(
    tb: Testbed,
    storage: str,
    nvme_copy: bool,
    nvme_crc: bool,
    storage_tls: Optional[str],
    queue_pairs: int = 4,
) -> FlatFs:
    if storage == "c2":
        device = BlockDevice(tb.sim)
        return FlatFs(device)
    if storage != "c1":
        raise ValueError(f"storage must be c1/c2, got {storage!r}")
    device = BlockDevice(tb.sim)
    tls_host = tls_target = None
    if storage_tls == "sw":
        tls_host, tls_target = TlsConfig(), TlsConfig()
    elif storage_tls == "offload":
        tls_host = TlsConfig(tx_offload=True, rx_offload=True)
        tls_target = TlsConfig(tx_offload=True, rx_offload=True)
    elif storage_tls is not None:
        raise ValueError(f"storage_tls must be None/sw/offload, got {storage_tls!r}")
    target_cfg = NvmeConfig(digest_name="fast", tx_offload=True)
    NvmeTcpTarget(tb.generator, device, config=target_cfg, tls=tls_target).start()
    host_cfg = NvmeConfig(
        digest_name="fast",
        rx_offload_crc=nvme_crc,
        rx_offload_copy=nvme_copy,
        tx_offload=nvme_crc,
        queue_depth=128,
    )
    # One queue pair (socket) per core pair, like Linux's nvme-tcp.
    queues = []
    for _ in range(queue_pairs):
        nvme = NvmeTcpHost(tb.server, config=host_cfg, tls=tls_host)
        nvme.connect("generator")
        queues.append(nvme)
    # C1: bypass the page cache so every request reaches the drive (the
    # paper drops caches between runs).
    return FlatFs(MultiQueueReader(queues), use_cache=False)
