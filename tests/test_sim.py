"""Unit tests for the discrete-event simulation core."""

import pytest

from repro.sim import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(2.0, order.append, "b")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(3.0, order.append, "c")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_events_fire_in_scheduling_order():
    sim = Simulator()
    order = []
    for name in "abcde":
        sim.schedule(1.0, order.append, name)
    sim.run()
    assert order == list("abcde")


def test_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    sim.schedule(0.5, event.cancel)
    sim.run()
    assert fired == []


def test_run_until_stops_clock_at_bound():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, "late")
    sim.run(until=2.0)
    assert fired == []
    assert sim.now == 2.0
    sim.run()
    assert fired == ["late"]


def test_run_until_advances_clock_even_with_empty_queue():
    sim = Simulator()
    sim.run(until=4.0)
    assert sim.now == 4.0


def test_call_soon_runs_after_pending_same_time_events():
    sim = Simulator()
    order = []
    sim.schedule(0.0, order.append, "first")
    sim.call_soon(order.append, "second")
    sim.run()
    assert order == ["first", "second"]


def test_cannot_schedule_in_the_past():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.at(0.5, lambda: None)
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)


def test_nested_scheduling_from_callbacks():
    sim = Simulator()
    seen = []

    def hop(n):
        seen.append((sim.now, n))
        if n < 3:
            sim.schedule(1.0, hop, n + 1)

    sim.schedule(0.0, hop, 0)
    sim.run()
    assert seen == [(0.0, 0), (1.0, 1), (2.0, 2), (3.0, 3)]


def test_substreams_are_deterministic_and_independent():
    a1 = Simulator(seed=7).substream("loss")
    a2 = Simulator(seed=7).substream("loss")
    b = Simulator(seed=7).substream("reorder")
    seq1 = [a1.random() for _ in range(5)]
    seq2 = [a2.random() for _ in range(5)]
    seq3 = [b.random() for _ in range(5)]
    assert seq1 == seq2
    assert seq1 != seq3


def test_max_events_budget():
    sim = Simulator()
    count = []
    for _ in range(10):
        sim.schedule(1.0, count.append, 1)
    sim.run(max_events=4)
    assert len(count) == 4
