"""Figure 15: Redis-on-Flash (OffloadDB backend) with the combined
NVMe-TLS offload on the storage path, memtier get workload."""

from repro.experiments.rof_bench import run_rof
from repro.harness.report import Table, ratio_label

SIZES = (16 * 1024, 64 * 1024, 256 * 1024)
PAPER_1CORE = {16 * 1024: "+31%", 64 * 1024: "+67%", 256 * 1024: "2.3x"}


def run_grid(cores):
    out = {}
    for size in SIZES:
        for variant in ("baseline", "offload"):
            out[(size, variant)] = run_rof(
                variant, value_size=size, server_cores=cores, measure=8e-3
            )
    return out


def test_fig15_one_core(benchmark, emit):
    grid = benchmark.pedantic(run_grid, args=(1,), rounds=1, iterations=1)
    table = Table(
        ["value", "baseline Gbps", "offload Gbps", "gain", "paper"],
        title="Figure 15a: Redis-on-Flash + NVMe-TLS offload, 1 core",
    )
    gains = {}
    for size in SIZES:
        base, off = grid[(size, "baseline")], grid[(size, "offload")]
        gains[size] = off.goodput_gbps / base.goodput_gbps
        table.row(
            f"{size // 1024}KiB",
            base.goodput_gbps,
            off.goodput_gbps,
            ratio_label(off.goodput_gbps, base.goodput_gbps),
            PAPER_1CORE[size],
        )
    emit("fig15a_rof_1core", table.render())

    # Offload wins substantially at every size, up to ~2.3x (the paper's
    # headline).  Unlike the paper, the gain is not monotone in value
    # size here: at 256 KiB our per-get latency bounds the offload run
    # (8 synchronous connections per instance), compressing the gain.
    assert all(g > 1.3 for g in gains.values())
    assert max(gains.values()) > 1.9


def test_fig15_eight_cores(benchmark, emit):
    grid = benchmark.pedantic(run_grid, args=(8,), rounds=1, iterations=1)
    table = Table(
        ["value", "baseline Gbps", "offload Gbps", "baseline busy", "offload busy"],
        title="Figure 15b/c: Redis-on-Flash + NVMe-TLS offload, 8 cores",
    )
    for size in SIZES:
        base, off = grid[(size, "baseline")], grid[(size, "offload")]
        table.row(f"{size // 1024}KiB", base.goodput_gbps, off.goodput_gbps, base.busy_cores, off.busy_cores)
    emit("fig15bc_rof_8core", table.render())

    base, off = grid[(256 * 1024, "baseline")], grid[(256 * 1024, "offload")]
    # At saturation the offload manifests as CPU savings (paper: -48%).
    assert off.busy_cores < base.busy_cores
