"""Per-host TCP stack: listeners, connection demux, port allocation."""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.packet import FlowKey, Packet
from repro.tcp.connection import TcpConnection


class TcpStack:
    """Owns all TCP connections of one host."""

    def __init__(self, host):
        self.host = host
        self.sim = host.sim
        self.connections: dict[FlowKey, TcpConnection] = {}
        self.listeners: dict[int, Callable[[TcpConnection], None]] = {}
        self._next_port = 40000
        # Metric names are precomputed: at datacenter connection churn
        # (millions of short flows) per-open f-string formatting is a
        # measurable per-connection cost.
        self._opened_metric = f"tcp.{host.name}.connections.opened"
        self._closed_metric = f"tcp.{host.name}.connections.closed"

    # ------------------------------------------------------------------
    def listen(self, port: int, on_accept: Callable[[TcpConnection], None]) -> None:
        """Accept connections on ``port``; ``on_accept(conn)`` fires once
        each new connection is established."""
        if port in self.listeners:
            raise ValueError(f"port {port} already listening")
        self.listeners[port] = on_accept

    def connect(
        self,
        dst: str,
        dport: int,
        on_established: Optional[Callable[[], None]] = None,
    ) -> TcpConnection:
        """Active-open a connection to ``dst:dport``."""
        sport = self._alloc_port()
        flow = FlowKey(self.host.name, sport, dst, dport)
        conn = TcpConnection(self.host, flow, passive=False)
        conn.on_established = on_established
        self.connections[flow] = conn
        self._count_open()
        conn.open()
        return conn

    def _alloc_port(self) -> int:
        port = self._next_port
        self._next_port += 1
        return port

    # ------------------------------------------------------------------
    def handle_packet(self, pkt: Packet) -> None:
        """Demultiplex one received packet (CPU cycles already charged)."""
        if pkt.flow.dst != self.host.name:
            return  # not ours; a real stack would route/drop
        local_flow = pkt.flow.reversed()
        conn = self.connections.get(local_flow)
        if conn is not None:
            conn.on_segment(pkt)
            return
        if pkt.syn and not pkt.ack_flag:
            on_accept = self.listeners.get(pkt.flow.dport)
            if on_accept is not None:
                conn = TcpConnection(self.host, local_flow, passive=True)
                self.connections[local_flow] = conn
                self._count_open()
                conn.on_established = lambda c=conn: on_accept(c)
                conn._accept_syn(pkt)
                return
        # No connection and no listener: silently drop (we do not model RST
        # storms; nothing in the evaluation depends on them).

    def remove(self, conn: TcpConnection) -> None:
        if self.connections.pop(conn.flow, None) is not None:
            obs = self.sim.obs
            if obs is not None:
                obs.count(self._closed_metric)

    def _count_open(self) -> None:
        obs = self.sim.obs
        if obs is not None:
            obs.count(self._opened_metric)

    @property
    def connection_count(self) -> int:
        return len(self.connections)
