"""LZSS compression, from scratch, with a *streaming* decoder.

Format: tokens grouped under control bytes (one flag bit per token,
LSB first).  Flag 0 = literal byte; flag 1 = match: two bytes encoding
a (distance, length) pair against a 4 KiB sliding window —
``distance`` in [1, 4096], ``length`` in [3, 18]:

    byte0 = (distance - 1) & 0xFF
    byte1 = ((distance - 1) >> 8) << 4 | (length - 3)

The decoder is incremental with constant-size state (window + partial
token), which is what makes inline NIC decompression autonomous-
offloadable (paper §3.2/§7): any byte range of the compressed body can
be processed given only that state.
"""

from __future__ import annotations

WINDOW = 4096
MIN_MATCH = 3
MAX_MATCH = 18


def compress(data: bytes) -> bytes:
    """One-shot LZSS encode (greedy with a hash-head accelerator)."""
    n = len(data)
    out = bytearray()
    tokens: list[tuple] = []  # ('lit', byte) | ('match', dist, length)
    heads: dict[bytes, list[int]] = {}
    i = 0
    while i < n:
        best_len = 0
        best_dist = 0
        if i + MIN_MATCH <= n:
            key = data[i : i + MIN_MATCH]
            for j in reversed(heads.get(key, ())):
                if i - j > WINDOW:
                    break
                length = MIN_MATCH
                limit = min(MAX_MATCH, n - i)
                while length < limit and data[j + length] == data[i + length]:
                    length += 1
                if length > best_len:
                    best_len = length
                    best_dist = i - j
                    if length == MAX_MATCH:
                        break
        if best_len >= MIN_MATCH:
            tokens.append(("match", best_dist, best_len))
            for k in range(i, min(i + best_len, n - MIN_MATCH + 1)):
                heads.setdefault(data[k : k + MIN_MATCH], []).append(k)
            i += best_len
        else:
            tokens.append(("lit", data[i]))
            if i + MIN_MATCH <= n:
                heads.setdefault(data[i : i + MIN_MATCH], []).append(i)
            i += 1
    # Serialize tokens under control bytes.
    t = 0
    while t < len(tokens):
        group = tokens[t : t + 8]
        control = 0
        body = bytearray()
        for bit, token in enumerate(group):
            if token[0] == "match":
                control |= 1 << bit
                _, dist, length = token
                d = dist - 1
                body.append(d & 0xFF)
                body.append(((d >> 8) << 4) | (length - MIN_MATCH))
            else:
                body.append(token[1])
        out.append(control)
        out += body
        t += 8
    return bytes(out)


def decompress(data: bytes) -> bytes:
    """One-shot decode (convenience over the streaming decoder)."""
    dec = StreamingDecoder()
    out = dec.update(data)
    if not dec.at_token_boundary:
        raise ValueError("truncated LZSS stream")
    return out


class StreamingDecoder:
    """Incremental LZSS decoder: constant state (window, partial token)."""

    def __init__(self) -> None:
        self._window = bytearray()
        self._control = 0
        self._bits_left = 0
        self._pending_first: int | None = None  # first byte of a match
        self.produced = 0

    @property
    def at_token_boundary(self) -> bool:
        return self._pending_first is None

    def update(self, chunk: bytes) -> bytes:
        out = bytearray()
        for byte in chunk:
            if self._pending_first is not None:
                # Second byte of a match token.
                first = self._pending_first
                self._pending_first = None
                d = first | ((byte >> 4) << 8)
                length = (byte & 0x0F) + MIN_MATCH
                dist = d + 1
                if dist > len(self._window):
                    raise ValueError("LZSS match reaches before window start")
                start = len(self._window) - dist
                for k in range(length):
                    self._window.append(self._window[start + k])
                out += self._window[-length:]
                self._finish_token()
            elif self._bits_left == 0:
                self._control = byte
                self._bits_left = 8
            elif self._control & 1:
                self._pending_first = byte  # flag consumed at completion
            else:
                self._window.append(byte)
                out.append(byte)
                self._finish_token()
        self.produced += len(out)
        return bytes(out)

    def _finish_token(self) -> None:
        self._control >>= 1
        self._bits_left -= 1
        if len(self._window) > WINDOW:
            del self._window[: len(self._window) - WINDOW]
