"""Project-specific AST lint (the static half of ``repro.analysis``).

Generic linters cannot know that ``time.time()`` breaks simulation
reproducibility or that ``% (1 << 32)`` outside ``repro/tcp/seq.py`` is
a re-implementation of sequence-number wraparound.  The rules here
encode exactly those project invariants; each one maps to a property
the paper's correctness argument relies on (see DESIGN.md §11).

This module holds the core vocabulary — :class:`Finding`,
:class:`SourceModule`, the :class:`LintRule`/:class:`ProjectRule` base
classes, and suppression parsing.  The pass pipeline (caching, project
passes, output formats) lives in :mod:`repro.analysis.pipeline`; the
CLI entry point is :func:`main`.

Run with ``python -m repro.analysis [paths...]``.  Exit status is 0
when the tree is clean, 1 when any rule fired, 2 on usage errors.

Suppression comes in two flavors:

- ``# noqa`` / ``# noqa: SIM002`` — the legacy flake8-style trailing
  comment.  Silences rules for that line, never warns when stale.
- ``# sim: noqa[SIM002]`` (comma-separated codes allowed; bare
  ``# sim: noqa`` silences everything) — the project syntax.  It does
  not collide with ruff's ``SIM*`` rule namespace, and a suppression
  that matches no finding is itself reported as ``SIM998`` so waivers
  cannot silently outlive the code they excused.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

#: ``# noqa`` / ``# noqa: SIM001, SIM002`` trailing-comment syntax.
_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9_,\s]+))?", re.IGNORECASE)

#: The project syntax: ``sim: noqa[SIM006]`` (codes comma-separated,
#: bare form silences everything) in a trailing comment.
_SIM_NOQA_RE = re.compile(r"#\s*sim:\s*noqa(?:\[(?P<codes>[A-Z0-9_,\s]*)\])?", re.IGNORECASE)

#: Pseudo-codes emitted by the pipeline itself (not by a registered rule).
UNUSED_SUPPRESSION_CODE = "SIM998"
SYNTAX_ERROR_CODE = "SIM999"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


@dataclass
class SourceModule:
    """A parsed source file handed to each rule."""

    path: Path
    text: str
    tree: ast.AST
    #: line number -> set of suppressed codes; the empty set means "all".
    noqa: dict = field(default_factory=dict)
    #: same, for the project ``sim: noqa[...]`` syntax (tracked for staleness).
    sim_noqa: dict = field(default_factory=dict)

    @property
    def posix_path(self) -> str:
        return self.path.as_posix()

    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        return Finding(
            path=str(self.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=code,
            message=message,
        )

    def suppressed(self, finding: Finding) -> bool:
        for table in (self.noqa, self.sim_noqa):
            codes = table.get(finding.line)
            if codes is not None and (not codes or finding.code in codes):
                return True
        return False


class LintRule:
    """Base class: one per-module rule, one code, one ``check`` generator."""

    code: str = "SIM000"
    name: str = "abstract"
    description: str = ""
    #: Pass family, for ``--list-rules`` and the DESIGN §11 rule table.
    family: str = "core"

    def check(self, module: SourceModule) -> Iterable[Finding]:
        raise NotImplementedError


class ProjectRule(LintRule):
    """A whole-project pass: sees every scanned file, not one module.

    ``check_project`` receives a :class:`ModuleSet`-like loader (see
    :mod:`repro.analysis.pipeline`) exposing ``paths`` (every scanned
    file) and ``load(path) -> SourceModule`` (parsed on demand and
    memoized), so cross-artifact passes only pay for the files they
    actually inspect.
    """

    family = "consistency"

    def check(self, module: SourceModule) -> Iterable[Finding]:
        return ()

    def check_project(self, modules) -> Iterable[Finding]:
        raise NotImplementedError


def _comment_lines(text: str) -> Iterator[tuple[int, str]]:
    """``(lineno, comment_text)`` for every real COMMENT token.

    Tokenizing (rather than regex-scanning raw lines) keeps docstrings
    and string literals that merely *mention* the noqa syntax from
    registering as suppressions.
    """
    import io
    import tokenize

    try:
        for token in tokenize.generate_tokens(io.StringIO(text).readline):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenizeError, IndentationError, SyntaxError):
        return


def _parse_suppressions(comments: Sequence[tuple], pattern: re.Pattern) -> dict:
    table: dict = {}
    for lineno, comment in comments:
        match = pattern.search(comment)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            table[lineno] = set()
        else:
            table[lineno] = {c.strip().upper() for c in codes.split(",") if c.strip()}
    return table


def load_module(path: Path) -> SourceModule:
    text = path.read_text(encoding="utf-8")
    tree = ast.parse(text, filename=str(path))
    comments = list(_comment_lines(text))
    return SourceModule(
        path=path,
        text=text,
        tree=tree,
        noqa=_parse_suppressions(comments, _NOQA_RE),
        sim_noqa=_parse_suppressions(comments, _SIM_NOQA_RE),
    )


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py") if "__pycache__" not in p.parts)
        elif path.suffix == ".py":
            yield path


def run_rules(
    paths: Sequence[Path],
    rules: Optional[Sequence[LintRule]] = None,
) -> list[Finding]:
    """Run ``rules`` (default: all registered) over every ``.py`` file
    under ``paths``; returns findings sorted by location.

    Convenience wrapper over the pipeline with caching disabled —
    the API tests and embedding callers use; the CLI adds caching and
    output formats on top.
    """
    from repro.analysis.pipeline import run_analysis

    return run_analysis(paths, rules=rules, cache_path=None)


def default_target() -> Path:
    """The ``repro`` package itself (lint the simulation sources)."""
    return Path(__file__).resolve().parents[1]


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.analysis.pipeline import default_cache_path, run_analysis
    from repro.analysis.rules import all_rules
    from repro.analysis.sarif import to_sarif

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project static analysis: determinism, offloadability-contract, "
        "and cross-artifact consistency passes (SIM001-SIM012).",
    )
    parser.add_argument("paths", nargs="*", type=Path, help="files/directories to lint (default: the repro package)")
    parser.add_argument("--select", help="comma-separated rule codes to run (default: all)")
    parser.add_argument("--list-rules", action="store_true", help="print the registered rules and exit")
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="findings output format (default: text)",
    )
    parser.add_argument("--output", type=Path, help="write findings to this file instead of stdout")
    parser.add_argument(
        "--cache",
        type=Path,
        default=None,
        help=f"findings cache file (default: {default_cache_path()}; set REPRO_ANALYSIS_CACHE to move it)",
    )
    parser.add_argument("--no-cache", action="store_true", help="disable the mtime+hash findings cache")
    args = parser.parse_args(argv)

    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.code}  [{rule.family}] {rule.name}: {rule.description}")
        return 0
    if args.select is not None:
        wanted = {code.strip().upper() for code in args.select.split(",") if code.strip()}
        if not wanted:
            print("--select given but no rule codes named", file=sys.stderr)
            return 2
        unknown = wanted - {rule.code for rule in rules}
        if unknown:
            print(f"unknown rule code(s): {', '.join(sorted(unknown))}", file=sys.stderr)
            return 2
        rules = [rule for rule in rules if rule.code in wanted]

    paths = list(args.paths) or [default_target()]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"no such path: {', '.join(map(str, missing))}", file=sys.stderr)
        return 2

    cache_path = None if args.no_cache else (args.cache or default_cache_path())
    findings = run_analysis(paths, rules=rules, cache_path=cache_path)

    if args.format == "text":
        rendered = "\n".join(f.format() for f in findings)
    elif args.format == "json":
        rendered = json.dumps(
            {"findings": [f.as_dict() for f in findings], "count": len(findings)},
            indent=2,
            sort_keys=True,
        )
    else:
        rendered = json.dumps(to_sarif(findings, all_rules()), indent=2, sort_keys=True)

    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(rendered + "\n", encoding="utf-8")
    elif rendered:
        print(rendered)
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0
