"""Cryptographic substrate, implemented from scratch.

The real system relies on AES-GCM (TLS) and CRC32C (NVMe-TCP).  Both are
implemented here and validated against published test vectors.  Because
pure-Python AES cannot keep up with simulated 100 Gb/s runs, every
primitive is also available through a *fast suite* with an identical
incremental interface (see :mod:`repro.crypto.suite`); macro-benchmarks
use the fast suites while the CPU cost model charges the cycles the real
primitive would have cost.
"""

from repro.crypto.aes import AES
from repro.crypto.gcm import AesGcm, GcmDecryptor, GcmEncryptor, AuthenticationError
from repro.crypto.crc import crc32, crc32c, Crc32c, FastCrc
from repro.crypto.sha1 import hmac_sha1, sha1
from repro.crypto.suite import (
    AesGcmSuite,
    CipherSuite,
    RecordDecryptor,
    RecordEncryptor,
    XorGcmSuite,
    get_cipher_suite,
)

__all__ = [
    "AES",
    "AesGcm",
    "AuthenticationError",
    "GcmEncryptor",
    "GcmDecryptor",
    "crc32",
    "crc32c",
    "Crc32c",
    "FastCrc",
    "sha1",
    "hmac_sha1",
    "CipherSuite",
    "AesGcmSuite",
    "XorGcmSuite",
    "RecordEncryptor",
    "RecordDecryptor",
    "get_cipher_suite",
]
