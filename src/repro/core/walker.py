"""The L5P message walker.

Consumes a run of in-order stream bytes and advances a context through
message headers, bodies, and trailers — the NIC's inner loop.  The same
walker serves four modes:

- TX offload: transform body bytes, replace the dummy trailer with the
  computed one.
- RX offload: transform (e.g. decrypt) body bytes, verify wire trailers.
- Tracking walk: advance transform state and message position but emit
  the original bytes (used when the NIC re-locks onto the stream at a
  message boundary mid-packet; such a packet is *not* marked offloaded
  but later packets of the same message can be, per Figure 8b).
- Replay: like TX offload but output is discarded (context recovery for
  retransmissions re-derives mid-message state from the message start).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.context import HwContext, Phase
from repro.core.types import Direction, ProtocolError


@dataclass
class WalkResult:
    out: bytes = b""
    completed: int = 0  # messages finished within this run
    all_ok: bool = True  # every trailer completed in this run verified (RX)
    desynced: bool = False  # header failed to parse: stream position lost


def walk(ctx: HwContext, data: bytes, emit: bool = True) -> WalkResult:
    """Advance ``ctx`` over ``data``.

    ``emit=True`` produces transformed output (offload); ``emit=False``
    is the tracking walk: state advances, output equals input.
    ``ctx.expected_seq`` is *not* touched — callers own sequence math.
    """
    out = bytearray()
    result = WalkResult()
    i = 0
    n = len(data)
    while i < n:
        if ctx.phase == Phase.HEADER:
            need = ctx.adapter.header_len - len(ctx.header_buf)
            take = data[i : i + need]
            ctx.header_buf += take
            out += take  # headers pass through unmodified
            i += len(take)
            if len(ctx.header_buf) == ctx.adapter.header_len:
                desc = ctx.adapter.parse_header(bytes(ctx.header_buf), ctx.static_state)
                if desc is None:
                    # Cannot be a valid message: the context lost the
                    # stream. Emit the rest untouched and report it.
                    out += data[i:]
                    result.desynced = True
                    result.all_ok = False
                    break
                ctx.start_message(desc)
        elif ctx.phase == Phase.BODY:
            take = data[i : i + ctx.body_remaining]
            if emit:
                transformed = ctx.transform.process(take)
                if len(transformed) != len(take):
                    raise ProtocolError(
                        f"{ctx.adapter.name}: transform is not size-preserving "
                        f"({len(take)} -> {len(transformed)} bytes)"
                    )
                out += transformed
            else:
                ctx.transform.track(take)
                out += take
            ctx.body_remaining -= len(take)
            i += len(take)
            if ctx.body_remaining == 0:
                if ctx.trailer_remaining:
                    ctx.phase = Phase.TRAILER
                else:
                    result.completed += 1
                    ctx.finish_message()
        else:  # Phase.TRAILER
            take = data[i : i + ctx.trailer_remaining]
            if ctx.direction == Direction.TX and emit:
                if not ctx._trailer_out:
                    ctx._trailer_out = ctx.transform.finalize_tx()
                    if len(ctx._trailer_out) != ctx.desc.trailer_len:
                        raise ProtocolError(
                            f"{ctx.adapter.name}: trailer length mismatch "
                            f"({len(ctx._trailer_out)} != {ctx.desc.trailer_len})"
                        )
                offset = ctx.desc.trailer_len - ctx.trailer_remaining
                out += ctx._trailer_out[offset : offset + len(take)]
            else:
                # RX (or tracking): collect and pass through the wire trailer.
                ctx._trailer_in += take
                out += take
            ctx.trailer_remaining -= len(take)
            i += len(take)
            if ctx.trailer_remaining == 0:
                if ctx.direction == Direction.RX and emit:
                    if not ctx.transform.verify_rx(bytes(ctx._trailer_in)):
                        result.all_ok = False
                result.completed += 1
                ctx.finish_message()
    result.out = bytes(out)
    obs = ctx.obs
    if obs is not None:
        # One batched attribution flush per walk: the per-mode cells are
        # resolved once per context (epoch-batched Cell counters), so the
        # steady-state cost is two integer adds, not f-string formatting
        # plus registry lookups on every packet.
        cells = ctx.walk_cells.get(emit)
        if cells is None:
            mode = "offload" if emit else "track"
            prefix = f"walker.{ctx.direction.value}.{mode}"
            cells = ctx.walk_cells[emit] = (
                obs.cell(f"{prefix}.bytes"),
                obs.cell(f"{prefix}.msgs"),
            )
        bytes_cell, msgs_cell = cells
        bytes_cell.value += n
        if result.completed:
            msgs_cell.value += result.completed
        if result.desynced:
            obs.count("walker.desyncs")
    return result


def replay(ctx: HwContext, stored_bytes: bytes) -> None:
    """Re-derive mid-message state by replaying ``stored_bytes`` from the
    message start (TX context recovery, §4.2).  Output is discarded."""
    result = walk(ctx, stored_bytes, emit=True)
    if result.desynced:
        raise ProtocolError(f"{ctx.adapter.name}: replay hit an unparseable header")
