"""Figure 2: L5P overheads — compute-bound, offloadable cycles out of
the total, for NVMe-TCP (256K messages) and TLS (16K records)."""

from repro.experiments.fio_cycles import run_fio_point
from repro.experiments.iperf_tls import run_iperf
from repro.harness.report import Table

PAPER = {"nvme write": 0.46, "nvme read": 0.49, "tls transmit": 0.74, "tls receive": 0.60}


def run_all():
    nvme_write = run_fio_point(256 * 1024, iodepth=16, mode="randwrite", measure=8e-3)
    nvme_read = run_fio_point(256 * 1024, iodepth=16, mode="randread", measure=8e-3)
    tls_tx = run_iperf("tls-sw", direction="tx", measure=6e-3)
    tls_rx = run_iperf("tls-sw", direction="rx", measure=6e-3)
    return nvme_write, nvme_read, tls_tx, tls_rx


def test_fig02(benchmark, emit):
    nvme_write, nvme_read, tls_tx, tls_rx = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = Table(
        ["workload", "offloadable cycles", "total busy cycles", "offloadable %", "paper %"],
        title="Figure 2: compute-bound (offloadable) share of L5P processing",
    )

    def nvme_row(name, point):
        busy = point.cycles_crc + point.cycles_copy + point.cycles_other
        offloadable = point.cycles_crc + point.cycles_copy
        table.row(name, offloadable, busy, f"{100 * offloadable / busy:.0f}%", f"{100 * PAPER[name]:.0f}%")
        return offloadable / busy

    def tls_row(name, run):
        busy = sum(run.dut_cycles.values())
        crypto = run.dut_cycles.get("crypto", 0)
        table.row(name, crypto, busy, f"{100 * crypto / busy:.0f}%", f"{100 * PAPER[name]:.0f}%")
        return crypto / busy

    w = nvme_row("nvme write", nvme_write)
    r = nvme_row("nvme read", nvme_read)
    t = tls_row("tls transmit", tls_tx)
    x = tls_row("tls receive", tls_rx)
    emit("fig02_l5p_overheads", table.render())

    # Shape: the offloadable share is large everywhere, crypto dominates
    # TLS more than copy+crc dominates NVMe-TCP, and the transmit share
    # is at least as high as receive (our tx/rx shares sit within a few
    # points of each other vs the paper's 74/60 split).
    assert 0.30 <= w <= 0.80
    assert 0.30 <= r <= 0.80
    assert 0.55 <= t <= 0.85
    assert 0.40 <= x <= 0.75
    assert t > x - 0.03
