"""NIC device interface.

:class:`PassthroughNic` is a plain NIC with no L5P offloads — the
baseline device.  The autonomous-offload NIC in :mod:`repro.nic`
subclasses it and interposes on ``transmit``/``receive``.
"""

from __future__ import annotations


from repro.net.link import Link
from repro.net.packet import Packet


class PassthroughNic:
    """A NIC that forwards packets between the host stack and the link."""

    def __init__(self, host=None):
        self.host = host
        self._port = None
        self.rx_packets = 0
        self.tx_packets = 0

    def bind(self, host) -> None:
        self.host = host

    def attach_link(self, link: Link, side: str) -> None:
        link.attach(side, self.receive)
        self._port = link.port(side)

    # ------------------------------------------------------------------
    def transmit(self, conn, pkt: Packet) -> None:
        """Send one packet out the wire (conn provided for offload NICs)."""
        del conn
        self.output(pkt)

    def transmit_datagram(self, flow, pkt: Packet) -> None:
        """Send one UDP datagram (offload NICs may transform it)."""
        del flow
        self.output(pkt)

    def output(self, pkt: Packet) -> None:
        if self._port is None:
            raise RuntimeError("NIC not attached to a link")
        self.tx_packets += 1
        self._port.transmit(pkt)

    def receive(self, pkt: Packet) -> None:
        """Packet arrived from the wire; hand to the host's receive path."""
        self.rx_packets += 1
        if self.host is None:
            raise RuntimeError("NIC not bound to a host")
        self.host.deliver(pkt)
