"""The project lint: every rule fires on a crafted bad snippet, stays
silent on the real tree, and the CLI reports rule code + file:line with
the right exit status."""

import json
import textwrap
from pathlib import Path


from repro.analysis.lint import default_target, load_module, main, run_rules
from repro.analysis.pipeline import run_analysis
from repro.analysis.rules import all_rules
from repro.analysis.rules.adapter_protocol import AdapterProtocolRule
from repro.analysis.rules.event_tiebreak import EventTiebreakRule
from repro.analysis.rules.hotloop import HotLoopRule
from repro.analysis.rules.l5p_contract import (
    IncrementalTransformRule,
    MagicFramingRule,
    PluginDeclarationRule,
    UpcallWiringRule,
)
from repro.analysis.rules.metric_baseline import MetricBaselineRule
from repro.analysis.rules.mutable_defaults import MutableDefaultsRule
from repro.analysis.rules.pkg_docstrings import PackageDocstringRule
from repro.analysis.rules.rng_dataflow import RngSharingRule
from repro.analysis.rules.seqarith import SeqArithmeticRule
from repro.analysis.rules.unordered_iter import UnorderedIterRule
from repro.analysis.rules.wallclock import WallClockRule


def write(tmp_path: Path, name: str, body: str) -> Path:
    path = tmp_path / name
    path.write_text(textwrap.dedent(body))
    return path


def codes_for(path: Path) -> list:
    return [f.code for f in run_rules([path])]


def rule_findings(rule, path: Path) -> list:
    return list(rule.check(load_module(path)))


# ----------------------------------------------------------------------
# SIM001: wall clock / global randomness
# ----------------------------------------------------------------------
class TestWallClock:
    def test_time_time_fires(self, tmp_path):
        path = write(tmp_path, "bad.py", """\
            import time

            def stamp():
                return time.time()
            """)
        findings = rule_findings(WallClockRule(), path)
        assert [f.code for f in findings] == ["SIM001"]
        assert findings[0].line == 4

    def test_datetime_now_fires(self, tmp_path):
        path = write(tmp_path, "bad.py", """\
            import datetime
            from datetime import datetime as dt

            a = datetime.datetime.now()
            b = dt.utcnow()
            """)
        assert [f.code for f in rule_findings(WallClockRule(), path)] == ["SIM001", "SIM001"]

    def test_global_random_fires(self, tmp_path):
        path = write(tmp_path, "bad.py", """\
            import random
            from random import randint

            def roll():
                return random.random() + randint(1, 6)
            """)
        assert len(rule_findings(WallClockRule(), path)) == 2

    def test_unseeded_random_instance_fires_seeded_does_not(self, tmp_path):
        path = write(tmp_path, "mixed.py", """\
            import random

            bad = random.Random()
            good = random.Random(42)
            named = random.Random("0:loss")
            """)
        findings = rule_findings(WallClockRule(), path)
        assert [f.line for f in findings] == [3]

    def test_instance_methods_are_fine(self, tmp_path):
        path = write(tmp_path, "good.py", """\
            def pick(sim):
                rng = sim.substream("pick")
                return rng.random()
            """)
        assert rule_findings(WallClockRule(), path) == []


# ----------------------------------------------------------------------
# SIM002: raw sequence arithmetic
# ----------------------------------------------------------------------
class TestSeqArithmetic:
    def test_inline_mod_fires(self, tmp_path):
        path = write(tmp_path, "bad.py", "def f(x):\n    return x * 31 % (1 << 32)\n")
        findings = rule_findings(SeqArithmeticRule(), path)
        assert [f.code for f in findings] == ["SIM002"]

    def test_mask_on_seq_fires(self, tmp_path):
        path = write(tmp_path, "bad.py", "def f(pkt, n):\n    return (pkt.seq + n) & 0xFFFFFFFF\n")
        codes = [f.code for f in rule_findings(SeqArithmeticRule(), path)]
        assert "SIM002" in codes

    def test_bare_plus_on_seq_name_fires(self, tmp_path):
        path = write(tmp_path, "bad.py", "def f(expected_seq, take):\n    return expected_seq + take\n")
        assert [f.code for f in rule_findings(SeqArithmeticRule(), path)] == ["SIM002"]

    def test_crypto_word_masks_are_fine(self, tmp_path):
        path = write(tmp_path, "good.py", """\
            def rotl(value, amount):
                return ((value << amount) | (value >> (32 - amount))) & 0xFFFFFFFF
            """)
        assert rule_findings(SeqArithmeticRule(), path) == []

    def test_record_counter_increment_is_fine(self, tmp_path):
        path = write(tmp_path, "good.py", """\
            class Records:
                def bump(self):
                    self.tx_record_seq += 1
            """)
        assert rule_findings(SeqArithmeticRule(), path) == []

    def test_seq_home_module_is_exempt(self, tmp_path):
        home = tmp_path / "repro" / "tcp"
        home.mkdir(parents=True)
        path = home / "seq.py"
        path.write_text("def add(seq, delta):\n    return (seq + delta) % (1 << 32)\n")
        assert rule_findings(SeqArithmeticRule(), path) == []


# ----------------------------------------------------------------------
# SIM003: mutable defaults
# ----------------------------------------------------------------------
class TestMutableDefaults:
    def test_list_and_dict_defaults_fire(self, tmp_path):
        path = write(tmp_path, "bad.py", """\
            def f(items=[], table={}):
                return items, table

            def g(pool=list()):
                return pool
            """)
        assert [f.code for f in rule_findings(MutableDefaultsRule(), path)] == ["SIM003"] * 3

    def test_none_default_is_fine(self, tmp_path):
        path = write(tmp_path, "good.py", """\
            def f(items=None, count=0, name="x"):
                items = items if items is not None else []
                return items, count, name
            """)
        assert rule_findings(MutableDefaultsRule(), path) == []


# ----------------------------------------------------------------------
# SIM004: adapter protocol surface
# ----------------------------------------------------------------------
class TestAdapterProtocol:
    def test_incomplete_adapter_fires(self, tmp_path):
        path = write(tmp_path, "bad.py", """\
            from repro.core.types import L5pAdapter

            class HalfAdapter(L5pAdapter):
                name = "half"
                header_len = 5

                def parse_header(self, header, static_state):
                    return None
            """)
        findings = rule_findings(AdapterProtocolRule(), path)
        assert len(findings) == 1
        assert findings[0].code == "SIM004"
        for member in ("magic_len", "check_magic", "begin_message", "apply_packet_meta"):
            assert member in findings[0].message

    def test_complete_adapter_is_fine(self, tmp_path):
        path = write(tmp_path, "good.py", """\
            from repro.core.types import L5pAdapter

            class FullAdapter(L5pAdapter):
                name = "full"
                header_len = 5
                magic_len = 2

                def parse_header(self, header, static_state):
                    return None

                def check_magic(self, window, static_state):
                    return False

                def begin_message(self, direction, static_state, desc, msg_index, rr_state=None):
                    raise NotImplementedError

                def apply_packet_meta(self, meta, processed, ok, desc_kinds):
                    pass
            """)
        assert rule_findings(AdapterProtocolRule(), path) == []

    def test_indirect_subclass_not_rechecked(self, tmp_path):
        path = write(tmp_path, "good.py", """\
            from repro.l5p.tls.record import TlsAdapter

            class StackedAdapter(TlsAdapter):
                def begin_message(self, direction, static_state, desc, msg_index, rr_state=None):
                    raise NotImplementedError
            """)
        assert rule_findings(AdapterProtocolRule(), path) == []


# ----------------------------------------------------------------------
# SIM005: package docstrings
# ----------------------------------------------------------------------
class TestPackageDocstrings:
    def test_missing_init_docstring_fires(self, tmp_path):
        path = write(tmp_path, "__init__.py", "from . import something\n")
        findings = rule_findings(PackageDocstringRule(), path)
        assert [f.code for f in findings] == ["SIM005"]
        assert findings[0].line == 1

    def test_blank_init_docstring_fires(self, tmp_path):
        path = write(tmp_path, "__init__.py", '"""   """\n')
        assert [f.code for f in rule_findings(PackageDocstringRule(), path)] == ["SIM005"]

    def test_documented_package_is_fine(self, tmp_path):
        path = write(tmp_path, "__init__.py", '"""The widget package."""\n')
        assert rule_findings(PackageDocstringRule(), path) == []

    def test_plain_module_without_docstring_is_fine(self, tmp_path):
        path = write(tmp_path, "module.py", "x = 1\n")
        assert rule_findings(PackageDocstringRule(), path) == []


# ----------------------------------------------------------------------
# SIM006: RNG stream sharing (determinism dataflow pass)
# ----------------------------------------------------------------------
class TestRngSharing:
    def test_module_level_rng_fires(self, tmp_path):
        path = write(tmp_path, "bad.py", """\
            import random

            rng = random.Random(7)
            """)
        findings = rule_findings(RngSharingRule(), path)
        assert [f.code for f in findings] == ["SIM006"]
        assert "module-level RNG" in findings[0].message
        assert findings[0].line == 3

    def test_master_stream_passed_fires(self, tmp_path):
        path = write(tmp_path, "bad.py", """\
            def wire(sim, link):
                link.attach(sim.random)
            """)
        findings = rule_findings(RngSharingRule(), path)
        assert [f.code for f in findings] == ["SIM006"]
        assert "master stream" in findings[0].message

    def test_master_stream_stored_fires(self, tmp_path):
        path = write(tmp_path, "bad.py", """\
            def wire(self, sim):
                self.rng = sim.random
            """)
        assert len(rule_findings(RngSharingRule(), path)) == 1

    def test_stdlib_random_module_is_not_a_master_stream(self, tmp_path):
        # `random.random` is the stdlib function (SIM001's beat, not ours).
        path = write(tmp_path, "ok.py", """\
            import random

            def roll(sampler):
                return sampler(random.random)
            """)
        assert rule_findings(RngSharingRule(), path) == []

    def test_substream_shared_by_two_callees_fires(self, tmp_path):
        path = write(tmp_path, "bad.py", """\
            def build(sim, Link):
                rng = sim.substream("net")
                a = Link(rng)
                b = Link(rng)
                return a, b
            """)
        findings = rule_findings(RngSharingRule(), path)
        assert [f.code for f in findings] == ["SIM006"]
        assert "2 callees" in findings[0].message
        assert findings[0].line == 2  # anchored at the binding

    def test_one_substream_per_consumer_is_fine(self, tmp_path):
        path = write(tmp_path, "good.py", """\
            def build(sim, Link):
                a = Link(sim.substream("net:a"))
                b = Link(sim.substream("net:b"))
                return a, b
            """)
        assert rule_findings(RngSharingRule(), path) == []

    def test_simulator_home_module_is_exempt(self, tmp_path):
        home = tmp_path / "repro" / "sim"
        home.mkdir(parents=True)
        path = home / "simulator.py"
        path.write_text("import random\n\n_boot = random.Random(0)\n")
        assert rule_findings(RngSharingRule(), path) == []


# ----------------------------------------------------------------------
# SIM007: unordered iteration feeding scheduling/metrics
# ----------------------------------------------------------------------
class TestUnorderedIter:
    def test_dict_values_feeding_schedule_fires(self, tmp_path):
        path = write(tmp_path, "bad.py", """\
            def drain(sim, flows):
                for flow in flows.values():
                    sim.schedule(0.1, flow.fire)
            """)
        findings = rule_findings(UnorderedIterRule(), path)
        assert [f.code for f in findings] == ["SIM007"]
        assert "event scheduling" in findings[0].message

    def test_set_literal_feeding_metrics_fires(self, tmp_path):
        path = write(tmp_path, "bad.py", """\
            def count(counter):
                for name in {"rx", "tx"}:
                    counter.inc(name)
            """)
        findings = rule_findings(UnorderedIterRule(), path)
        assert [f.code for f in findings] == ["SIM007"]
        assert "metric emission" in findings[0].message

    def test_comprehension_over_set_call_fires(self, tmp_path):
        path = write(tmp_path, "bad.py", """\
            def enqueue(heappush, heap, items):
                return [heappush(heap, x) for x in set(items)]
            """)
        assert [f.code for f in rule_findings(UnorderedIterRule(), path)] == ["SIM007"]

    def test_sorted_view_is_fine(self, tmp_path):
        path = write(tmp_path, "good.py", """\
            def drain(sim, flows):
                for fid in sorted(flows):
                    sim.schedule(0.1, flows[fid].fire)
            """)
        assert rule_findings(UnorderedIterRule(), path) == []

    def test_bookkeeping_loop_without_sink_is_fine(self, tmp_path):
        path = write(tmp_path, "good.py", """\
            def total(flows):
                acc = 0
                for flow in flows.values():
                    acc += flow.bytes
                return acc
            """)
        assert rule_findings(UnorderedIterRule(), path) == []


# ----------------------------------------------------------------------
# SIM008: same-timestamp event tiebreakers
# ----------------------------------------------------------------------
class TestEventTiebreak:
    def test_bare_time_payload_heap_entry_fires(self, tmp_path):
        path = write(tmp_path, "bad.py", """\
            import heapq

            def push(heap, when, event):
                heapq.heappush(heap, (when, event))
            """)
        findings = rule_findings(EventTiebreakRule(), path)
        assert [f.code for f in findings] == ["SIM008"]
        assert "tiebreaker" in findings[0].message

    def test_seq_tiebreaker_is_fine(self, tmp_path):
        path = write(tmp_path, "good.py", """\
            import heapq

            def push(heap, when, seq, event):
                heapq.heappush(heap, (when, seq, event))
                heapq.heappush(heap, (when, seq))
            """)
        assert rule_findings(EventTiebreakRule(), path) == []

    def test_counter_call_tiebreaker_is_fine(self, tmp_path):
        path = write(tmp_path, "good.py", """\
            import heapq

            def push(heap, when, counter):
                heapq.heappush(heap, (when, next(counter)))
            """)
        assert rule_findings(EventTiebreakRule(), path) == []

    def test_lt_on_time_alone_fires(self, tmp_path):
        path = write(tmp_path, "bad.py", """\
            class Timer:
                def __lt__(self, other):
                    return self.deadline < other.deadline
            """)
        findings = rule_findings(EventTiebreakRule(), path)
        assert [f.code for f in findings] == ["SIM008"]
        assert "Timer.__lt__" in findings[0].message

    def test_lt_on_time_seq_tuple_is_fine(self, tmp_path):
        path = write(tmp_path, "good.py", """\
            class Event:
                def __lt__(self, other):
                    return (self.time, self.seq) < (other.time, other.seq)
            """)
        assert rule_findings(EventTiebreakRule(), path) == []


# ----------------------------------------------------------------------
# SIM009-SIM011: the Table-3 offloadability contract
# ----------------------------------------------------------------------
class TestMagicFraming:
    def test_trivial_adapter_fires_on_all_three_axes(self, tmp_path):
        path = write(tmp_path, "bad.py", """\
            from repro.core.types import L5pAdapter, MessageDesc

            class TrustingAdapter(L5pAdapter):
                name = "trusting"
                magic_len = 0
                header_len = 8

                def check_magic(self, window, static_state):
                    return True

                def parse_header(self, header, static_state):
                    return MessageDesc(kind="x", header_len=8, body_len=0,
                                       trailer_len=0, raw_header=header, info={})
            """)
        findings = rule_findings(MagicFramingRule(), path)
        assert [f.code for f in findings] == ["SIM009"] * 3
        messages = "\n".join(f.message for f in findings)
        assert "magic_len = 0" in messages
        assert "check_magic" in messages
        assert "rejection path" in messages

    def test_discriminating_adapter_is_fine(self, tmp_path):
        path = write(tmp_path, "good.py", """\
            from repro.core.types import L5pAdapter, MessageDesc

            MAGIC = b"\\xc0\\x17"

            class FramedAdapter(L5pAdapter):
                name = "framed"
                magic_len = 2
                header_len = 8

                def check_magic(self, window, static_state):
                    return window[:2] == MAGIC

                def parse_header(self, header, static_state):
                    if header[:2] != MAGIC:
                        return None
                    return MessageDesc(kind="x", header_len=8, body_len=0,
                                       trailer_len=0, raw_header=header, info={})
            """)
        assert rule_findings(MagicFramingRule(), path) == []


class TestIncrementalTransform:
    def test_whole_message_buffering_fires(self, tmp_path):
        path = write(tmp_path, "bad.py", """\
            from repro.core.types import MsgTransform

            class Hoarder(MsgTransform):
                def __init__(self):
                    self.buf = b""

                def process(self, data):
                    self.buf += data
            """)
        findings = rule_findings(IncrementalTransformRule(), path)
        assert [f.code for f in findings] == ["SIM010"]
        assert "whole-message buffering" in findings[0].message

    def test_incremental_passthrough_is_fine(self, tmp_path):
        path = write(tmp_path, "good.py", """\
            from repro.core.types import MsgTransform

            class Streamer(MsgTransform):
                def process(self, data):
                    self.digest.update(data)
                    return data
            """)
        assert rule_findings(IncrementalTransformRule(), path) == []


class TestUpcallWiring:
    def test_partial_upcall_surface_fires(self, tmp_path):
        path = write(tmp_path, "bad.py", """\
            class Endpoint:
                def l5o_get_tx_msgstate(self, tcpsn):
                    return None
            """)
        findings = rule_findings(UpcallWiringRule(), path)
        assert [f.code for f in findings] == ["SIM011"]
        assert "l5o_offload_degraded" in findings[0].message
        assert "l5o_resync_rx_req" in findings[0].message

    def test_full_upcall_surface_is_fine(self, tmp_path):
        path = write(tmp_path, "good.py", """\
            class Endpoint:
                def l5o_get_tx_msgstate(self, tcpsn):
                    return None

                def l5o_resync_rx_req(self, tcpsn):
                    pass

                def l5o_offload_degraded(self, direction, reason):
                    pass
            """)
        assert rule_findings(UpcallWiringRule(), path) == []

    def test_unrelated_class_is_fine(self, tmp_path):
        path = write(tmp_path, "good.py", """\
            class Plain:
                def tick(self):
                    pass
            """)
        assert rule_findings(UpcallWiringRule(), path) == []


# ----------------------------------------------------------------------
# SIM014: literal plugin declarations stay coherent
# ----------------------------------------------------------------------
class TestPluginDeclaration:
    def test_pattern_mask_length_mismatch_fires(self, tmp_path):
        path = write(tmp_path, "bad.py", """\
            from repro.l5p import plugin

            SPEC = plugin.MagicSpec(pattern=b"\\x14\\x03", mask=b"\\xff", confidence=1e-4)
            """)
        findings = rule_findings(PluginDeclarationRule(), path)
        assert [f.code for f in findings] == ["SIM014"]
        assert "lengths" in findings[0].message

    def test_all_zero_mask_fires(self, tmp_path):
        path = write(tmp_path, "bad.py", """\
            from repro.l5p.plugin import MagicSpec

            SPEC = MagicSpec(pattern=b"\\x00\\x00", mask=b"\\x00\\x00", confidence=0.5)
            """)
        findings = rule_findings(PluginDeclarationRule(), path)
        assert [f.code for f in findings] == ["SIM014"]
        assert "all zeroes" in findings[0].message

    def test_bad_confidence_fires(self, tmp_path):
        path = write(tmp_path, "bad.py", """\
            from repro.l5p.plugin import MagicSpec

            SPEC = MagicSpec(pattern=b"\\x01", mask=b"\\xff", confidence=0.0)
            """)
        findings = rule_findings(PluginDeclarationRule(), path)
        assert [f.code for f in findings] == ["SIM014"]
        assert "confidence" in findings[0].message

    def test_literal_false_precondition_fires(self, tmp_path):
        path = write(tmp_path, "bad.py", """\
            from repro.l5p import plugin

            PROTO = plugin.L5Protocol(
                name="weird",
                header_len=8,
                magic=plugin.MagicSpec(pattern=b"\\x01", mask=b"\\xff", confidence=1e-4),
                preconditions=plugin.Table3Preconditions(
                    size_preserving=False,
                    incremental_constant_state=True,
                    header_plaintext_length=True,
                    magic_identifiable=True,
                    state_from_msg_index=True,
                ),
                factory=None,
            )
            """)
        findings = rule_findings(PluginDeclarationRule(), path)
        assert [f.code for f in findings] == ["SIM014"]
        assert "size_preserving=False" in findings[0].message

    def test_omitted_precondition_row_fires(self, tmp_path):
        path = write(tmp_path, "bad.py", """\
            from repro.l5p import plugin

            PROTO = plugin.L5Protocol(
                name="forgetful",
                header_len=8,
                magic=plugin.MagicSpec(pattern=b"\\x01", mask=b"\\xff", confidence=1e-4),
                preconditions=plugin.Table3Preconditions(
                    size_preserving=True,
                    incremental_constant_state=True,
                    header_plaintext_length=True,
                    magic_identifiable=True,
                ),
                factory=None,
            )
            """)
        findings = rule_findings(PluginDeclarationRule(), path)
        assert [f.code for f in findings] == ["SIM014"]
        assert "state_from_msg_index" in findings[0].message

    def test_uppercase_name_and_wide_magic_fire(self, tmp_path):
        path = write(tmp_path, "bad.py", """\
            from repro.l5p import plugin

            PROTO = plugin.L5Protocol(
                name="LOUD",
                header_len=2,
                magic=plugin.MagicSpec(pattern=b"\\x01\\x02\\x03", mask=b"\\xff\\xff\\xff",
                                       confidence=1e-4),
                preconditions=plugin.Table3Preconditions(
                    size_preserving=True,
                    incremental_constant_state=True,
                    header_plaintext_length=True,
                    magic_identifiable=True,
                    state_from_msg_index=True,
                ),
                factory=None,
            )
            """)
        codes = sorted(f.code for f in rule_findings(PluginDeclarationRule(), path))
        assert codes == ["SIM014", "SIM014"]

    def test_coherent_declaration_is_fine(self, tmp_path):
        path = write(tmp_path, "good.py", """\
            from repro.l5p import plugin

            PROTO = plugin.L5Protocol(
                name="tidy",
                header_len=8,
                magic=plugin.MagicSpec(pattern=b"\\x01\\x02", mask=b"\\xff\\xf0",
                                       confidence=1e-4),
                preconditions=plugin.Table3Preconditions(
                    size_preserving=True,
                    incremental_constant_state=True,
                    header_plaintext_length=True,
                    magic_identifiable=True,
                    state_from_msg_index=True,
                    notes="unit test",
                ),
                factory=None,
            )
            """)
        assert rule_findings(PluginDeclarationRule(), path) == []

    def test_dynamic_declarations_are_skipped(self, tmp_path):
        path = write(tmp_path, "good.py", """\
            from repro.l5p import plugin

            WIDTH = 4
            SPEC = plugin.MagicSpec(pattern=b"\\x00" * WIDTH, mask=make_mask(WIDTH),
                                    confidence=rate())
            """)
        assert rule_findings(PluginDeclarationRule(), path) == []


# ----------------------------------------------------------------------
# SIM012: baseline metrics stay reachable (cross-artifact pass)
# ----------------------------------------------------------------------
class TestMetricBaseline:
    def bench_dir(self, tmp_path, baseline: dict, module_body: str) -> Path:
        bench = tmp_path / "bench"
        bench.mkdir()
        (bench / "baseline.json").write_text(json.dumps(baseline))
        write(bench, "emit.py", module_body)
        return bench

    def test_renamed_metric_leaf_fires(self, tmp_path):
        bench = self.bench_dir(
            tmp_path,
            {"benchmarks": {"demo": {"metrics": {"run.tcp_gbps": 1.0, "run.drops": 2}}}},
            """\
            NAME = "demo"
            METRIC = "run.drops"
            """,
        )
        findings = run_rules([bench], rules=[MetricBaselineRule()])
        assert [f.code for f in findings] == ["SIM012"]
        assert "tcp_gbps" in findings[0].message
        assert findings[0].path.endswith("emit.py")

    def test_orphaned_benchmark_entry_fires_at_baseline(self, tmp_path):
        bench = self.bench_dir(
            tmp_path,
            {"benchmarks": {"ghost": {"metrics": {}}}},
            'NAME = "something-else"\n',
        )
        findings = run_rules([bench], rules=[MetricBaselineRule()])
        assert [f.code for f in findings] == ["SIM012"]
        assert findings[0].path.endswith("baseline.json")
        assert "ghost" in findings[0].message

    def test_quick_suffix_maps_to_base_name(self, tmp_path):
        bench = self.bench_dir(
            tmp_path,
            {"benchmarks": {"demo_quick": {"metrics": {"run.drops": 2}}}},
            """\
            NAME = "demo"
            METRIC = "run.drops"
            """,
        )
        assert run_rules([bench], rules=[MetricBaselineRule()]) == []

    def test_fstring_fragment_reaches_leaf(self, tmp_path):
        bench = self.bench_dir(
            tmp_path,
            {"benchmarks": {"demo": {"metrics": {"loss3.tcp_gbps": 9.0}}}},
            """\
            NAME = "demo"

            def key(pct):
                return f"loss{pct}.tcp_gbps"
            """,
        )
        assert run_rules([bench], rules=[MetricBaselineRule()]) == []

    def test_directory_without_baseline_is_ignored(self, tmp_path):
        write(tmp_path, "emit.py", 'NAME = "demo"\n')
        assert run_rules([tmp_path], rules=[MetricBaselineRule()]) == []


# ----------------------------------------------------------------------
# SIM013: per-byte loops in hot modules
# ----------------------------------------------------------------------
class TestHotLoop:
    def hot_file(self, tmp_path, body: str, pkg: str = "crypto") -> Path:
        hot = tmp_path / "repro" / pkg
        hot.mkdir(parents=True)
        return write(hot, "mod.py", body)

    def test_per_byte_crc_loop_fires(self, tmp_path):
        path = self.hot_file(tmp_path, """\
            def crc(table, data, crc):
                for byte in data:
                    crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
                return crc
            """)
        findings = rule_findings(HotLoopRule(), path)
        assert [f.code for f in findings] == ["SIM013"]
        assert "per-byte loop over `data`" in findings[0].message

    def test_table_subscript_by_loop_var_fires(self, tmp_path):
        path = self.hot_file(tmp_path, """\
            def absorb(self, block):
                z = 0
                for b in block:
                    z ^= self.table[b]
                return z
            """, pkg="core")
        assert [f.code for f in rule_findings(HotLoopRule(), path)] == ["SIM013"]

    def test_range_loop_is_fine(self, tmp_path):
        path = self.hot_file(tmp_path, """\
            def crc(table, data, crc):
                for i in range(len(data)):
                    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8)
                return crc
            """)
        assert rule_findings(HotLoopRule(), path) == []

    def test_unpacked_words_loop_is_fine(self, tmp_path):
        path = self.hot_file(tmp_path, """\
            import struct

            def crc(t, data, crc):
                for w in struct.unpack(f"<{len(data) >> 3}Q", data):
                    crc ^= w & 0xFFFFFFFF
                return crc
            """)
        assert rule_findings(HotLoopRule(), path) == []

    def test_import_time_table_build_is_fine(self, tmp_path):
        path = self.hot_file(tmp_path, """\
            SBOX = list(range(256))
            INV = [0] * 256
            for i in SBOX:
                INV[SBOX[i] & 0xFF] = i
            """)
        assert rule_findings(HotLoopRule(), path) == []

    def test_non_bitwise_body_is_fine(self, tmp_path):
        path = self.hot_file(tmp_path, """\
            def total(sizes):
                acc = 0
                for n in sizes:
                    acc += n
                return acc
            """, pkg="net")
        assert rule_findings(HotLoopRule(), path) == []

    def test_cold_package_is_fine(self, tmp_path):
        cold = tmp_path / "repro" / "exec"
        cold.mkdir(parents=True)
        path = write(cold, "mod.py", """\
            def mask(values):
                out = []
                for v in values:
                    out.append(v & 0xFF)
                return out
            """)
        assert rule_findings(HotLoopRule(), path) == []

    def test_sim_noqa_waives_reference_impl(self, tmp_path):
        path = self.hot_file(tmp_path, """\
            def crc_reference(table, data, crc):
                for byte in data:  # sim: noqa[SIM013]
                    crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
                return crc
            """)
        assert [f.code for f in run_rules([path], rules=[HotLoopRule()])] == []


# ----------------------------------------------------------------------
# suppression, the real tree, and the CLI
# ----------------------------------------------------------------------
class TestRunner:
    def test_noqa_suppresses_specific_code(self, tmp_path):
        path = write(tmp_path, "waived.py", """\
            import time

            def stamp():
                return time.time()  # noqa: SIM001
            """)
        assert codes_for(path) == []

    def test_bare_noqa_suppresses_everything(self, tmp_path):
        path = write(tmp_path, "waived.py", "def f(items=[]):  # noqa\n    return items\n")
        assert codes_for(path) == []

    def test_noqa_for_other_code_does_not_suppress(self, tmp_path):
        path = write(tmp_path, "bad.py", "def f(items=[]):  # noqa: SIM001\n    return items\n")
        assert codes_for(path) == ["SIM003"]

    def test_real_tree_is_clean(self):
        findings = run_rules([default_target()])
        assert findings == [], "\n".join(f.format() for f in findings)

    def test_all_rules_registered(self):
        assert sorted(rule.code for rule in all_rules()) == [
            f"SIM{n:03d}" for n in range(1, 15)
        ]

    def test_sim_noqa_suppresses_specific_code(self, tmp_path):
        path = write(tmp_path, "waived.py", """\
            import time

            def stamp():
                return time.time()  # sim: noqa[SIM001]
            """)
        assert codes_for(path) == []

    def test_bare_sim_noqa_suppresses_everything(self, tmp_path):
        path = write(tmp_path, "waived.py", "def f(items=[]):  # sim: noqa\n    return items\n")
        assert codes_for(path) == []

    def test_unused_sim_noqa_warns_sim998(self, tmp_path):
        path = write(tmp_path, "stale.py", "x = 1  # sim: noqa[SIM001]\n")
        findings = run_rules([path])
        assert [f.code for f in findings] == ["SIM998"]
        assert "SIM001" in findings[0].message
        assert findings[0].line == 1

    def test_unused_legacy_noqa_stays_silent(self, tmp_path):
        # flake8-style comments are honored but never staleness-checked.
        path = write(tmp_path, "stale.py", "x = 1  # noqa: SIM001\n")
        assert codes_for(path) == []

    def test_suppression_roundtrip(self, tmp_path):
        """Waive a finding, fix the code, and the waiver itself warns."""
        path = write(tmp_path, "round.py", """\
            import time

            def stamp():
                return time.time()  # sim: noqa[SIM001]
            """)
        assert codes_for(path) == []
        path.write_text("import time\n\n\ndef stamp(now):\n    return now  # sim: noqa[SIM001]\n")
        assert codes_for(path) == ["SIM998"]

    def test_docstring_mention_of_noqa_is_not_a_suppression(self, tmp_path):
        path = write(tmp_path, "docs.py", '''\
            """Explains the waiver syntax.

            Write ``# sim: noqa[SIM001]`` on the offending line.
            """

            x = 1
            ''')
        assert codes_for(path) == []

    def test_cli_exit_zero_on_clean_tree(self, capsys):
        assert main([]) == 0
        assert capsys.readouterr().out == ""

    def test_cli_reports_code_and_location(self, tmp_path, capsys):
        path = write(tmp_path, "seeded.py", """\
            import time

            def f(a_seq, items=[]):
                return time.time(), a_seq + 1, a_seq % (1 << 32), items
            """)
        assert main([str(path)]) == 1
        out = capsys.readouterr().out
        for code in ("SIM001", "SIM002", "SIM003"):
            assert code in out
        assert f"{path}:4" in out

    def test_cli_select_runs_only_chosen_rules(self, tmp_path, capsys):
        body = "import time\nx = time.time()\n\ndef f(i=[]):\n    return i\n"
        path = write(tmp_path, "seeded.py", body)
        assert main(["--select", "SIM001", str(path)]) == 1
        out = capsys.readouterr().out
        assert "SIM001" in out and "SIM003" not in out

    def test_cli_rejects_unknown_rule_and_missing_path(self, tmp_path, capsys):
        assert main(["--select", "SIM042"]) == 2
        assert main([str(tmp_path / "nope.py")]) == 2

    def test_cli_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("SIM001", "SIM002", "SIM003", "SIM004"):
            assert code in out

    def test_syntax_error_reported_not_crash(self, tmp_path):
        path = write(tmp_path, "broken.py", "def f(:\n")
        assert codes_for(path) == ["SIM999"]


# ----------------------------------------------------------------------
# pipeline: findings cache and output formats
# ----------------------------------------------------------------------
BAD_BODY = "import time\n\n\ndef stamp():\n    return time.time()\n"


class TestPipeline:
    def test_cache_round_trip_and_invalidation(self, tmp_path):
        path = write(tmp_path, "bad.py", BAD_BODY)
        cache = tmp_path / "cache.json"
        first = run_analysis([path], cache_path=cache)
        assert [f.code for f in first] == ["SIM001"]
        assert cache.exists()

        cached = run_analysis([path], cache_path=cache)
        assert [f.as_dict() for f in cached] == [f.as_dict() for f in first]

        path.write_text("def stamp(now):\n    return now\n")
        assert run_analysis([path], cache_path=cache) == []

    def test_cache_survives_mtime_touch(self, tmp_path):
        import os

        path = write(tmp_path, "bad.py", BAD_BODY)
        cache = tmp_path / "cache.json"
        run_analysis([path], cache_path=cache)
        os.utime(path, (0, 0))  # content unchanged, mtime moved
        findings = run_analysis([path], cache_path=cache)
        assert [f.code for f in findings] == ["SIM001"]

    def test_cache_ignored_for_different_rule_selection(self, tmp_path):
        path = write(tmp_path, "bad.py", BAD_BODY)
        cache = tmp_path / "cache.json"
        assert [f.code for f in run_analysis([path], cache_path=cache)] == ["SIM001"]
        # A different rule set must not reuse the all-rules cache entries.
        only_sim3 = [r for r in all_rules() if r.code == "SIM003"]
        assert run_analysis([path], rules=only_sim3, cache_path=cache) == []

    def test_cli_json_format(self, tmp_path, capsys):
        path = write(tmp_path, "bad.py", BAD_BODY)
        assert main(["--format", "json", "--no-cache", str(path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        assert payload["findings"][0]["code"] == "SIM001"
        assert payload["findings"][0]["line"] == 5

    def test_cli_sarif_format_to_file(self, tmp_path, capsys):
        path = write(tmp_path, "bad.py", BAD_BODY)
        out = tmp_path / "analysis.sarif"
        assert main(["--format", "sarif", "--no-cache", "--output", str(out), str(path)]) == 1
        assert capsys.readouterr().out == ""  # findings went to the file
        sarif = json.loads(out.read_text())
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-analysis"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {f"SIM{n:03d}" for n in range(1, 13)} <= rule_ids
        assert {"SIM998", "SIM999"} <= rule_ids  # pipeline pseudo-rules
        result = run["results"][0]
        assert result["ruleId"] == "SIM001"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["region"]["startLine"] == 5

    def test_sarif_unused_suppression_is_a_warning(self, tmp_path, capsys):
        path = write(tmp_path, "stale.py", "x = 1  # sim: noqa[SIM001]\n")
        assert main(["--format", "sarif", "--no-cache", str(path)]) == 1
        sarif = json.loads(capsys.readouterr().out)
        result = sarif["runs"][0]["results"][0]
        assert result["ruleId"] == "SIM998"
        assert result["level"] == "warning"

    def test_cli_cache_flag_is_honored(self, tmp_path, capsys):
        path = write(tmp_path, "bad.py", BAD_BODY)
        cache = tmp_path / "lint-cache.json"
        assert main(["--cache", str(cache), str(path)]) == 1
        capsys.readouterr()
        assert cache.exists()
        assert main(["--cache", str(cache), str(path)]) == 1
        assert "SIM001" in capsys.readouterr().out
