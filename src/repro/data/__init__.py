"""Embedded datasets behind the paper's motivational figures (3, 4 and
Table 2).  These are data reproductions, not measurements."""

from repro.data.linux_loc import LINUX_TCP_LOC, modified_fraction_range
from repro.data.nic_prices import CONNECTX_OFFLOADS, CONNECTX_PRICES, price_spread_by_class

__all__ = [
    "LINUX_TCP_LOC",
    "modified_fraction_range",
    "CONNECTX_PRICES",
    "CONNECTX_OFFLOADS",
    "price_spread_by_class",
]
