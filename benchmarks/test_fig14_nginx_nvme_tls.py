"""Figure 14: nginx with the combined NVMe-TLS offload, C1.

The storage hop runs NVMe-TCP over TLS; the client hop runs https.
Baseline: all software.  Offload: TLS offload + zc on the client hop,
combined TLS+NVMe offload on the storage hop."""

from repro.experiments.nginx_bench import run_nginx
from repro.harness.report import Table, ratio_label

SIZES = (64 * 1024, 256 * 1024)
PAPER_1CORE = {64 * 1024: "2.1x", 256 * 1024: "2.8x"}


def run_grid(cores):
    out = {}
    for size in SIZES:
        out[(size, "baseline")] = run_nginx(
            "https",
            storage="c1",
            file_size=size,
            server_cores=cores,
            connections=32,
            storage_tls="sw",
            measure=8e-3,
        )
        out[(size, "offload")] = run_nginx(
            "offload+zc",
            storage="c1",
            file_size=size,
            server_cores=cores,
            connections=32,
            nvme_offload=True,
            storage_tls="offload",
            measure=8e-3,
        )
    return out


def test_fig14_one_core(benchmark, emit):
    grid = benchmark.pedantic(run_grid, args=(1,), rounds=1, iterations=1)
    table = Table(
        ["file", "baseline Gbps", "offload Gbps", "gain", "paper"],
        title="Figure 14a: nginx + combined NVMe-TLS offload, C1, 1 core",
    )
    for size in SIZES:
        base, off = grid[(size, "baseline")], grid[(size, "offload")]
        table.row(
            f"{size // 1024}KiB",
            base.goodput_gbps,
            off.goodput_gbps,
            ratio_label(off.goodput_gbps, base.goodput_gbps),
            PAPER_1CORE[size],
        )
    emit("fig14a_nginx_nvme_tls_1core", table.render())

    for size in SIZES:
        assert grid[(size, "offload")].goodput_gbps > grid[(size, "baseline")].goodput_gbps * 1.5
    # Combined gains exceed the single-offload gains of Figure 12.
    big = grid[(256 * 1024, "offload")].goodput_gbps / grid[(256 * 1024, "baseline")].goodput_gbps
    assert big > 2.0


def test_fig14_eight_cores(benchmark, emit):
    grid = benchmark.pedantic(run_grid, args=(8,), rounds=1, iterations=1)
    table = Table(
        ["file", "baseline Gbps", "offload Gbps", "baseline busy", "offload busy"],
        title="Figure 14b/c: combined NVMe-TLS offload, C1, 8 cores",
    )
    for size in SIZES:
        base, off = grid[(size, "baseline")], grid[(size, "offload")]
        table.row(f"{size // 1024}KiB", base.goodput_gbps, off.goodput_gbps, base.busy_cores, off.busy_cores)
    emit("fig14bc_nginx_nvme_tls_8core", table.render())

    base, off = grid[(256 * 1024, "baseline")], grid[(256 * 1024, "offload")]
    # At the drive bound, the combined offload slashes CPU (paper: -41%).
    assert off.busy_cores < base.busy_cores
