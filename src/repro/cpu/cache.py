"""Last-level-cache footprint model.

The paper's Figure 10 shows copy costs jumping once fio's in-flight
working set (I/O depth x request size) exceeds the 32 MiB LLC.  We
model this with a footprint register per host: workloads report the
bytes they keep in flight, and per-byte costs are blended between
LLC-resident and DRAM costs by the resident fraction (see
:meth:`repro.cpu.model.CostModel.copy_cpb`).
"""

from __future__ import annotations

from repro.cpu.model import CostModel


class LlcModel:
    """Tracks the active working set that competes for the LLC."""

    def __init__(self, model: CostModel):
        self.model = model
        self._footprint = 0.0

    # ------------------------------------------------------------------
    def occupy(self, nbytes: float) -> None:
        """Add ``nbytes`` to the working set (e.g. an I/O was issued)."""
        if nbytes < 0:
            raise ValueError("negative occupancy")
        self._footprint += nbytes

    def release(self, nbytes: float) -> None:
        """Remove ``nbytes`` from the working set (e.g. an I/O completed)."""
        self._footprint = max(0.0, self._footprint - nbytes)

    @property
    def footprint(self) -> float:
        return self._footprint

    @property
    def resident_fraction(self) -> float:
        if self._footprint <= 0:
            return 1.0
        return min(1.0, self.model.llc_bytes / self._footprint)

    # ------------------------------------------------------------------
    def copy_cpb(self) -> float:
        return self.model.copy_cpb(self._footprint)

    def touch_cpb(self, base_cpb: float) -> float:
        return self.model.touch_cpb(base_cpb, self._footprint)
