"""Packets and per-packet metadata.

A :class:`Packet` stands for one Ethernet frame carrying a TCP segment.
Headers are modelled as fields (not serialized bytes) — the simulation
never needs malformed layer-4 headers, only malformed *payload
placement* (loss/reorder), which is represented faithfully.

``SkbMeta`` is the sidecar the paper threads from the NIC driver up the
stack: the "offloaded / decrypted / crc_ok" bits that the L5P reads to
decide whether to fall back to software processing (§4.3, §5.1, §5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import NamedTuple, Optional

MTU = 1500
MSS = 1448  # MTU - IP/TCP headers with timestamps, as in the paper's setup
WIRE_OVERHEAD = 90  # eth + ip + tcp + options + preamble/FCS/IFG per frame


class FlowKey(NamedTuple):
    """TCP/IP 4-tuple identifying one direction of a flow."""

    src: str
    sport: int
    dst: str
    dport: int

    def reversed(self) -> "FlowKey":
        return FlowKey(self.dst, self.dport, self.src, self.sport)


@dataclass
class SkbMeta:
    """Per-packet offload results passed from driver to L5P.

    ``offloaded``  - the NIC performed the autonomous offload on this
                     packet's bytes (decrypt for TLS, CRC/copy for NVMe).
    ``decrypted``  - TLS: payload bytes are already plaintext.
    ``crc_ok``     - NVMe-TCP: all capsule CRCs within the packet passed.
    ``placed``     - NVMe-TCP: payload was DMA-written to its block-layer
                     destination buffer (the copy may be skipped).
    ``steer_queue`` - RESP: receive queue the NIC dispatched this packet
                     to, keyed by the first inline command's key hash
                     (None when the packet was not steered).
    """

    offloaded: bool = False
    decrypted: bool = False
    crc_ok: bool = False
    placed: bool = False
    steer_queue: Optional[int] = None

    def copy(self) -> "SkbMeta":
        return replace(self)


@dataclass
class Packet:
    """One TCP/IP packet in flight."""

    flow: FlowKey
    seq: int = 0
    ack: int = 0
    payload: bytes = b""
    syn: bool = False
    fin: bool = False
    ack_flag: bool = True
    rst: bool = False
    wnd: int = 1 << 30
    sack: tuple = ()  # SACK blocks: ((start, end), ...) above the ack
    ipproto: str = "tcp"  # "tcp" or "udp" (§7's datagram L5Ps)
    # Driver/NIC sidecar (not on the wire):
    meta: SkbMeta = field(default_factory=SkbMeta)
    tx_ctx_id: Optional[int] = None  # offload context tag from the L5P

    def clone(self) -> "Packet":
        """An independent copy, as a duplicated wire frame would be."""
        return Packet(
            self.flow,
            seq=self.seq,
            ack=self.ack,
            payload=self.payload,
            syn=self.syn,
            fin=self.fin,
            ack_flag=self.ack_flag,
            rst=self.rst,
            wnd=self.wnd,
            sack=self.sack,
            ipproto=self.ipproto,
            meta=self.meta.copy(),
            tx_ctx_id=self.tx_ctx_id,
        )

    @property
    def wire_bytes(self) -> int:
        """Frame size on the wire, for link bandwidth accounting."""
        return len(self.payload) + WIRE_OVERHEAD

    @property
    def end_seq(self) -> int:
        """Sequence number just past this packet's payload (+SYN/FIN)."""
        length = len(self.payload)
        if self.syn:
            length += 1
        if self.fin:
            length += 1
        return sq.add(self.seq, length)

    def describe(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            name for name, on in (("S", self.syn), ("F", self.fin), ("R", self.rst), (".", self.ack_flag)) if on
        )
        endpoints = f"{self.flow.src}:{self.flow.sport}>{self.flow.dst}:{self.flow.dport}"
        return f"{endpoints} {flags} seq={self.seq} ack={self.ack} len={len(self.payload)}"


# Imported last: repro.tcp.buffer imports SkbMeta from this module, so
# pulling in the sequence-space helpers any earlier would be circular.
from repro.tcp import seq as sq  # noqa: E402
