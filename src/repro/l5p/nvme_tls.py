"""NVMe-TLS: the composed offload (§5.3).

"NIC HW parsing starts from Ethernet, and proceeds to parse TLS then
NVMe-TCP on transmit and receive": the stacked adapter is a TLS adapter
whose record transforms pipe record bodies through an *inner* NVMe
walker.  On transmit the inner walker fills data digests before the
outer transform encrypts; on receive the outer transform decrypts and
the inner walker verifies digests and places C2HData payloads.

OoS recovery is performed independently per protocol:

- TX: the TLS record replay repositions the outer cipher; before the
  replay, :meth:`NvmeTlsAdapter.prepare_tx_recovery` repositions the
  inner walker at the PDU covering the record's plaintext offset using
  the NVMe software's own message map.
- RX: a byte gap in the decrypted stream cannot be bridged by the inner
  walker (its PDU position is lost), so a disruption disables inner
  offloading for the flow and software performs copies/CRC from then on.
  The paper's evaluation exercises the combined offload only on clean
  links (Figures 14–15), where no disruption occurs; see DESIGN.md.
"""

from __future__ import annotations

from typing import Optional

from repro.core.context import HwContext
from repro.core.types import Direction, MsgTransform, TxMsgState
from repro.core.walker import walk
from repro.l5p.nvme_tcp.pdu import NvmeAdapter, NvmeConfig
from repro.l5p.tls.record import TlsAdapter
from repro.net.packet import FlowKey
from repro.tcp import seq as sq

_INNER_FLOW = FlowKey("inner", 0, "inner", 0)


class InnerTxOps:
    """What the NVMe software provides for inner TX recovery: a message
    map keyed by plaintext-stream offsets instead of TCP sequence
    numbers."""

    def nvme_get_tx_msgstate(self, plain_offset: int) -> Optional[TxMsgState]:
        raise NotImplementedError


class PlainTxMap(InnerTxOps):
    """PDU map keyed by plaintext-stream offsets (monotonic, no wrap).

    The NVMe software records each PDU it hands to kTLS together with
    the TLS plaintext offset it starts at; inner TX recovery replays the
    covering PDU's prefix from here."""

    def __init__(self) -> None:
        from collections import deque

        self._msgs = deque()
        self._count = 0

    def track(self, plain_start: int, wire: bytes) -> None:
        self._msgs.append((plain_start, self._count, wire))
        self._count += 1

    def nvme_get_tx_msgstate(self, plain_offset: int) -> Optional[TxMsgState]:
        for start, idx, wire in self._msgs:
            if start <= plain_offset < start + len(wire):
                return TxMsgState(start_seq=start, msg_index=idx, wire_bytes=wire)
        return None

    def prune(self, keep_from: int) -> None:
        """Drop PDUs entirely before plaintext offset ``keep_from``."""
        while self._msgs and self._msgs[0][0] + len(self._msgs[0][2]) <= keep_from:
            self._msgs.popleft()


class _StackedTransform(MsgTransform):
    """One TLS record's transform with the inner NVMe walker piped in."""

    def __init__(self, adapter: "NvmeTlsAdapter", outer: MsgTransform, direction: Direction):
        self.adapter = adapter
        self.outer = outer
        self.direction = direction

    def process(self, data: bytes) -> bytes:
        if self.direction == Direction.TX:
            inner_out = self.adapter.inner_walk(Direction.TX, data)
            return self.outer.process(inner_out)
        plain = self.outer.process(data)
        return self.adapter.inner_walk(Direction.RX, plain)

    def track(self, data: bytes) -> None:
        # Tracking mode: outer state must advance; the inner walker is
        # already disabled by the disruption that led here.
        self.outer.track(data)

    def finalize_tx(self) -> bytes:
        return self.outer.finalize_tx()

    def verify_rx(self, wire_trailer: bytes) -> bool:
        return self.outer.verify_rx(wire_trailer)


class NvmeTlsAdapter(TlsAdapter):
    """TLS records outside, NVMe-TCP PDUs inside.  One instance per
    connection direction pair (it owns the inner walker state)."""

    name = "nvme-tls"

    def __init__(self, nvme_config: NvmeConfig):
        self.nvme_config = nvme_config
        self._inner: dict[Direction, HwContext] = {}
        self._inner_enabled: dict[Direction, bool] = {Direction.TX: True, Direction.RX: True}
        self._pkt_inner_ok = True
        self._pkt_inner_touched = False
        self.inner_tx_ops: Optional[InnerTxOps] = None
        self.inner_disables = 0
        # The TLS HW context's rr_state (shared with the inner walker so
        # l5o_add_rr_state CID registrations reach placement).
        self._shared_rr: dict = {}

    # ------------------------------------------------------------------
    # inner walker management
    # ------------------------------------------------------------------
    def _inner_ctx(self, direction: Direction) -> HwContext:
        ctx = self._inner.get(direction)
        if ctx is None:
            place = direction == Direction.RX and self.nvme_config.rx_offload_copy
            inner_adapter = NvmeAdapter(self.nvme_config, place=place)
            ctx = HwContext(0, _INNER_FLOW, direction, inner_adapter, None, tcpsn=0)
            ctx.rr_state = self._shared_rr
            self._inner[direction] = ctx
        return ctx

    def inner_walk(self, direction: Direction, data: bytes) -> bytes:
        if not self._inner_enabled[direction]:
            return data
        ctx = self._inner_ctx(direction)
        result = walk(ctx, data, emit=True)
        if result.desynced:
            self._disable_inner(direction)
            return data
        self._pkt_inner_touched = True
        if not result.all_ok:
            self._pkt_inner_ok = False
        return result.out

    def _disable_inner(self, direction: Direction) -> None:
        if self._inner_enabled[direction]:
            self._inner_enabled[direction] = False
            self.inner_disables += 1

    def inner_enabled(self, direction: Direction) -> bool:
        return self._inner_enabled[direction]

    # ------------------------------------------------------------------
    # L5pAdapter interface
    # ------------------------------------------------------------------
    def begin_message(self, direction: Direction, static_state, desc, msg_index, rr_state=None):
        if rr_state is not None and rr_state is not self._shared_rr:
            # Adopt the HW context's rr_state as the CID -> buffer map.
            self._shared_rr.update(rr_state)
            self._shared_rr = rr_state
            for ctx in self._inner.values():
                ctx.rr_state = rr_state
        outer = super().begin_message(direction, static_state, desc, msg_index)
        return _StackedTransform(self, outer, direction)

    def apply_packet_meta(self, meta, processed: bool, ok: bool, desc_kinds) -> None:
        meta.decrypted = processed and ok
        inner_on = self._inner_enabled[Direction.RX]
        inner_ok = processed and ok and inner_on and self._pkt_inner_ok
        if self.nvme_config.rx_offload_crc:
            meta.crc_ok = inner_ok
        if self.nvme_config.rx_offload_copy:
            meta.placed = inner_ok
        self._pkt_inner_ok = True
        self._pkt_inner_touched = False

    def on_disruption(self, ctx) -> None:
        self._disable_inner(ctx.direction)

    def prepare_tx_recovery(self, ctx, state: TxMsgState) -> None:
        """Reposition the inner NVMe walker at the record's plaintext
        offset by replaying the covering PDU's prefix (§5.3)."""
        plain_offset = state.info.get("plain_offset")
        if plain_offset is None or self.inner_tx_ops is None:
            self._disable_inner(Direction.TX)
            return
        inner_state = self.inner_tx_ops.nvme_get_tx_msgstate(plain_offset)
        if inner_state is None:
            self._disable_inner(Direction.TX)
            return
        inner = self._inner_ctx(Direction.TX)
        inner.reset_to_header()
        inner.msg_index = inner_state.msg_index
        prefix_len = sq.sub(plain_offset, inner_state.start_seq)
        if prefix_len < 0 or prefix_len > len(inner_state.wire_bytes):
            self._disable_inner(Direction.TX)
            return
        if prefix_len:
            walk(inner, inner_state.wire_bytes[:prefix_len], emit=True)
        self._inner_enabled[Direction.TX] = True


from repro.l5p import plugin as _plugin
from repro.l5p.tls.record import HEADER_LEN as _TLS_HEADER_LEN, TAG_LEN as _TAG_LEN

#: Outer framing is TLS, so the stacked protocol inherits the TLS magic.
PLUGIN = _plugin.register(
    _plugin.L5Protocol(
        name="nvme-tls",
        header_len=_TLS_HEADER_LEN,
        magic=_plugin.MagicSpec(
            pattern=b"\x14\x03\x03\x00\x00",
            mask=b"\xfc\xff\xff\x00\x00",
            confidence=1e-4,
        ),
        preconditions=_plugin.Table3Preconditions(
            size_preserving=True,
            incremental_constant_state=True,
            header_plaintext_length=True,
            magic_identifiable=True,
            state_from_msg_index=True,
            notes="TLS records outside, NVMe-TCP PDUs inside (§5.3); "
            "recovery is performed independently per layer",
        ),
        factory=lambda nvme_config=None, **kw: NvmeTlsAdapter(
            nvme_config or NvmeConfig(), **kw
        ),
        upcalls=("l5o_get_tx_msgstate", "l5o_resync_rx_req", "l5o_offload_degraded",
                 "l5o_nic_reattach"),
        description="Stacked NVMe-TCP-over-TLS offload (both layers autonomous)",
        info={"trailer_len": _TAG_LEN, "ops": ("encrypt", "decrypt", "crc", "place")},
    )
)
