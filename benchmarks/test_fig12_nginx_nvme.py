"""Figure 12: nginx with the NVMe-TCP offload, C1 (cold page cache,
drive-bound).  (a) 1-core throughput, (b) 8-core throughput against the
drive's ~21.4 Gbps ceiling, (c) busy cores at saturation."""

from repro.experiments.nginx_bench import run_nginx
from repro.harness.report import Table, ratio_label

SIZES = (16 * 1024, 64 * 1024, 256 * 1024)
PAPER_1CORE = {16 * 1024: "+11%", 64 * 1024: "+26%", 256 * 1024: "+44%"}


def run_grid(cores):
    out = {}
    for size in SIZES:
        for offload in (False, True):
            out[(size, offload)] = run_nginx(
                "http",
                storage="c1",
                file_size=size,
                server_cores=cores,
                connections=32,
                nvme_offload=offload,
                measure=8e-3,
            )
    return out


def test_fig12_one_core(benchmark, emit):
    grid = benchmark.pedantic(run_grid, args=(1,), rounds=1, iterations=1)
    table = Table(
        ["file", "baseline Gbps", "offload Gbps", "gain", "paper"],
        title="Figure 12a: nginx + NVMe-TCP offload, C1, 1 core",
    )
    gains = {}
    for size in SIZES:
        base, off = grid[(size, False)], grid[(size, True)]
        gains[size] = off.goodput_gbps / base.goodput_gbps
        table.row(
            f"{size // 1024}KiB",
            base.goodput_gbps,
            off.goodput_gbps,
            ratio_label(off.goodput_gbps, base.goodput_gbps),
            PAPER_1CORE[size],
        )
    emit("fig12a_nginx_nvme_1core", table.render())

    # Offload wins, and the gain grows with file size (per-byte savings).
    assert all(g > 1.0 for g in gains.values())
    assert gains[256 * 1024] > gains[16 * 1024]


def test_fig12_eight_cores(benchmark, emit):
    grid = benchmark.pedantic(run_grid, args=(8,), rounds=1, iterations=1)
    table = Table(
        ["file", "baseline Gbps", "offload Gbps", "baseline busy", "offload busy"],
        title="Figure 12b/c: nginx + NVMe-TCP offload, C1, 8 cores (drive-bound)",
    )
    for size in SIZES:
        base, off = grid[(size, False)], grid[(size, True)]
        table.row(f"{size // 1024}KiB", base.goodput_gbps, off.goodput_gbps, base.busy_cores, off.busy_cores)
    emit("fig12bc_nginx_nvme_8core", table.render())

    base, off = grid[(256 * 1024, False)], grid[(256 * 1024, True)]
    # Both are capped by the drive (~21.4 Gbps)...
    assert base.goodput_gbps < 23 and off.goodput_gbps < 23
    # ...so the offload's benefit appears as reduced CPU (paper: -27%).
    assert off.busy_cores < base.busy_cores
