"""AES validated against FIPS 197 / NIST vectors and round-trip properties."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.aes import AES, INV_SBOX, SBOX


class TestSbox:
    def test_known_entries(self):
        # FIPS 197 Figure 7.
        assert SBOX[0x00] == 0x63
        assert SBOX[0x01] == 0x7C
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_inverse_sbox(self):
        for value in range(256):
            assert INV_SBOX[SBOX[value]] == value

    def test_sbox_is_permutation(self):
        assert sorted(SBOX) == list(range(256))


class TestKnownVectors:
    def test_fips197_aes128(self):
        # FIPS 197 Appendix B.
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plain = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        expect = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
        assert AES(key).encrypt_block(plain) == expect

    def test_fips197_appendix_c1_aes128(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plain = bytes.fromhex("00112233445566778899aabbccddeeff")
        expect = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert AES(key).encrypt_block(plain) == expect

    def test_fips197_appendix_c2_aes192(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
        plain = bytes.fromhex("00112233445566778899aabbccddeeff")
        expect = bytes.fromhex("dda97ca4864cdfe06eaf70a0ec0d7191")
        assert AES(key).encrypt_block(plain) == expect

    def test_fips197_appendix_c3_aes256(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
        plain = bytes.fromhex("00112233445566778899aabbccddeeff")
        expect = bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")
        assert AES(key).encrypt_block(plain) == expect


class TestRoundTrip:
    @given(
        key=st.binary(min_size=16, max_size=16),
        block=st.binary(min_size=16, max_size=16),
    )
    def test_decrypt_inverts_encrypt_128(self, key, block):
        aes = AES(key)
        assert aes.decrypt_block(aes.encrypt_block(block)) == block

    @given(
        key=st.binary(min_size=32, max_size=32),
        block=st.binary(min_size=16, max_size=16),
    )
    def test_decrypt_inverts_encrypt_256(self, key, block):
        aes = AES(key)
        assert aes.decrypt_block(aes.encrypt_block(block)) == block


class TestValidation:
    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            AES(b"short")

    def test_bad_block_length(self):
        aes = AES(b"\x00" * 16)
        with pytest.raises(ValueError):
            aes.encrypt_block(b"\x00" * 15)
        with pytest.raises(ValueError):
            aes.decrypt_block(b"\x00" * 17)
