"""Tests for the machine-readable benchmark records (repro.obs.bench)
and the perf-regression gate (python -m repro.obs.regress)."""

import json

import pytest

from repro.obs.bench import bench_record, load_bench_json, write_bench_json
from repro.obs.regress import compare_metrics, main, run_regression


class TestBenchRecords:
    def test_write_and_load_round_trip(self, tmp_path):
        path = write_bench_json(str(tmp_path), "fig", {"a.gbps": 1.5, "a.count": 3}, meta={"streams": 4})
        record = load_bench_json(path)
        assert record["schema"] == 1
        assert record["name"] == "fig"
        assert record["metrics"] == {"a.gbps": 1.5, "a.count": 3}
        assert record["meta"] == {"streams": 4}

    def test_meta_omitted_when_empty(self):
        assert "meta" not in bench_record("fig", {"m": 1})

    def test_non_numeric_metric_rejected(self):
        with pytest.raises(TypeError):
            bench_record("fig", {"m": "fast"})
        with pytest.raises(TypeError):
            bench_record("fig", {"m": True})

    def test_non_string_key_rejected(self):
        with pytest.raises(TypeError):
            bench_record("fig", {3: 1.0})

    def test_load_rejects_bad_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 99, "metrics": {}}))
        with pytest.raises(ValueError):
            load_bench_json(str(path))
        path.write_text(json.dumps({"schema": 1}))
        with pytest.raises(ValueError):
            load_bench_json(str(path))


class TestCompareMetrics:
    def test_within_tolerance(self):
        devs = compare_metrics("b", {"m": 10.0}, {"m": 10.5}, tolerance=0.15)
        (d,) = devs
        assert d.ratio == pytest.approx(0.05)
        assert not d.failed

    def test_beyond_tolerance(self):
        (d,) = compare_metrics("b", {"m": 10.0}, {"m": 5.0}, tolerance=0.15)
        assert d.failed

    def test_zero_baseline_must_stay_zero(self):
        (ok,) = compare_metrics("b", {"m": 0}, {"m": 0}, tolerance=0.15)
        assert ok.ratio == 0.0
        (bad,) = compare_metrics("b", {"m": 0}, {"m": 1}, tolerance=0.15)
        assert bad.ratio == float("inf") and bad.failed

    def test_missing_metric_is_a_regression(self):
        (d,) = compare_metrics("b", {"m": 3.0}, {}, tolerance=0.15)
        assert d.failed and d.ratio == float("inf")

    def test_metric_tolerance_overrides(self):
        (d,) = compare_metrics("b", {"m": 10.0}, {"m": 7.0}, tolerance=0.15, metric_tolerance={"m": 0.5})
        assert not d.failed


def make_baseline(tmp_path, benchmarks, tolerance=0.15):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"schema": 1, "tolerance": tolerance, "benchmarks": benchmarks}))
    return str(path)


class TestRunRegression:
    def test_skips_benchmarks_without_output(self, tmp_path):
        out = tmp_path / "out"
        out.mkdir()
        write_bench_json(str(out), "present", {"m": 1.0})
        baseline = make_baseline(
            tmp_path,
            {"present": {"metrics": {"m": 1.0}}, "absent": {"metrics": {"m": 2.0}}},
        )
        deviations, skipped = run_regression(baseline, str(out))
        assert [d.benchmark for d in deviations] == ["present"]
        assert skipped == ["absent"]

    def test_required_benchmark_must_exist(self, tmp_path):
        baseline = make_baseline(tmp_path, {"absent": {"metrics": {"m": 2.0}}})
        with pytest.raises(FileNotFoundError):
            run_regression(baseline, str(tmp_path), require=["absent"])

    def test_benchmark_tolerance_override(self, tmp_path):
        out = tmp_path / "out"
        out.mkdir()
        write_bench_json(str(out), "b", {"m": 7.0})
        baseline = make_baseline(tmp_path, {"b": {"metrics": {"m": 10.0}, "tolerance": 0.5}})
        deviations, _ = run_regression(baseline, str(out))
        assert not any(d.failed for d in deviations)


class TestCli:
    def test_exit_0_on_match(self, tmp_path, capsys):
        out = tmp_path / "out"
        out.mkdir()
        write_bench_json(str(out), "b", {"m": 10.0})
        baseline = make_baseline(tmp_path, {"b": {"metrics": {"m": 10.0}}})
        assert main(["--baseline", baseline, "--out", str(out)]) == 0
        assert "[ok  ] b" in capsys.readouterr().out

    def test_exit_1_on_regression(self, tmp_path, capsys):
        out = tmp_path / "out"
        out.mkdir()
        write_bench_json(str(out), "b", {"m": 5.0})
        baseline = make_baseline(tmp_path, {"b": {"metrics": {"m": 10.0}}})
        assert main(["--baseline", baseline, "--out", str(out)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_cli_tolerance_can_rescue(self, tmp_path):
        out = tmp_path / "out"
        out.mkdir()
        write_bench_json(str(out), "b", {"m": 9.0})
        baseline = make_baseline(tmp_path, {"b": {"metrics": {"m": 10.0}}}, tolerance=0.05)
        assert main(["--baseline", baseline, "--out", str(out)]) == 1
        assert main(["--baseline", baseline, "--out", str(out), "--tolerance", "0.2"]) == 0

    def test_exit_2_when_nothing_compared(self, tmp_path):
        out = tmp_path / "out"
        out.mkdir()
        baseline = make_baseline(tmp_path, {"b": {"metrics": {"m": 10.0}}})
        assert main(["--baseline", baseline, "--out", str(out)]) == 2

    def test_exit_2_on_missing_baseline(self, tmp_path):
        assert main(["--baseline", str(tmp_path / "nope.json"), "--out", str(tmp_path)]) == 2

    def test_exit_2_on_missing_required(self, tmp_path):
        out = tmp_path / "out"
        out.mkdir()
        baseline = make_baseline(tmp_path, {"b": {"metrics": {"m": 10.0}}})
        assert main(["--baseline", baseline, "--out", str(out), "--require", "b"]) == 2


class TestCheckedInBaseline:
    """The repository baseline itself must stay well-formed."""

    def test_baseline_parses_and_names_quick_entries(self):
        import os

        from repro.obs.regress import load_baseline

        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        baseline = load_baseline(os.path.join(repo, "benchmarks", "baseline.json"))
        names = set(baseline["benchmarks"])
        # Full-scale and CI quick-scale entries for each gated figure.
        for fig in ("fig16_tx_loss", "fig17_rx_loss", "fig19_scalability"):
            assert fig in names and f"{fig}_quick" in names
        for entry in baseline["benchmarks"].values():
            assert entry["metrics"], "baseline entries carry expected metrics"
            assert all(isinstance(v, (int, float)) for v in entry["metrics"].values())
