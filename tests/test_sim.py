"""Unit tests for the discrete-event simulation core.

Every test runs against both event-queue backends (the slotted timing
wheel and the binary heap): the scheduler is pluggable and must never
change observable behavior.
"""

import pytest

from repro.sim import Simulator


@pytest.fixture(params=["wheel", "heap"])
def make_sim(request):
    def _make(seed=0):
        return Simulator(seed=seed, scheduler=request.param)

    return _make


def test_events_fire_in_time_order(make_sim):
    sim = make_sim()
    order = []
    sim.schedule(2.0, order.append, "b")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(3.0, order.append, "c")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_events_fire_in_scheduling_order(make_sim):
    sim = make_sim()
    order = []
    for name in "abcde":
        sim.schedule(1.0, order.append, name)
    sim.run()
    assert order == list("abcde")


def test_cancel_prevents_firing(make_sim):
    sim = make_sim()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    sim.schedule(0.5, event.cancel)
    sim.run()
    assert fired == []


def test_run_until_stops_clock_at_bound(make_sim):
    sim = make_sim()
    fired = []
    sim.schedule(5.0, fired.append, "late")
    sim.run(until=2.0)
    assert fired == []
    assert sim.now == 2.0
    sim.run()
    assert fired == ["late"]


def test_run_until_advances_clock_even_with_empty_queue(make_sim):
    sim = make_sim()
    sim.run(until=4.0)
    assert sim.now == 4.0


def test_call_soon_runs_after_pending_same_time_events(make_sim):
    sim = make_sim()
    order = []
    sim.schedule(0.0, order.append, "first")
    sim.call_soon(order.append, "second")
    sim.run()
    assert order == ["first", "second"]


def test_cannot_schedule_in_the_past(make_sim):
    sim = make_sim()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.at(0.5, lambda: None)
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)


def test_nested_scheduling_from_callbacks(make_sim):
    sim = make_sim()
    seen = []

    def hop(n):
        seen.append((sim.now, n))
        if n < 3:
            sim.schedule(1.0, hop, n + 1)

    sim.schedule(0.0, hop, 0)
    sim.run()
    assert seen == [(0.0, 0), (1.0, 1), (2.0, 2), (3.0, 3)]


def test_substreams_are_deterministic_and_independent():
    a1 = Simulator(seed=7).substream("loss")
    a2 = Simulator(seed=7).substream("loss")
    b = Simulator(seed=7).substream("reorder")
    seq1 = [a1.random() for _ in range(5)]
    seq2 = [a2.random() for _ in range(5)]
    seq3 = [b.random() for _ in range(5)]
    assert seq1 == seq2
    assert seq1 != seq3


def test_max_events_budget(make_sim):
    sim = make_sim()
    count = []
    for _ in range(10):
        sim.schedule(1.0, count.append, 1)
    sim.run(max_events=4)
    assert len(count) == 4


def test_pending_is_a_live_counter(make_sim):
    sim = make_sim()
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
    assert sim.pending == 5
    events[2].cancel()
    events[2].cancel()  # idempotent: must not double-decrement
    assert sim.pending == 4
    sim.run(until=1.5)
    assert sim.pending == 3
    sim.run()
    assert sim.pending == 0
