"""Per-flow hardware offload contexts (paper §4.1).

A context holds exactly what the paper lists: the next offloadable TCP
sequence number (``expected_seq``), the position within the current L5P
message (phase + remaining byte counts), and the L5P state needed to
perform the operation (static state such as keys, plus the live
per-message transform).  Receive contexts additionally carry the
resynchronization state machine of Figure 7.
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Optional

from repro.analysis.sanitizer import active as _sanitizer_active
from repro.core.types import Direction, L5pAdapter, MessageDesc, MsgTransform
from repro.net.packet import FlowKey
from repro.tcp import seq as sq

#: On-NIC footprint of one flow context, from the paper's §6.5.
CONTEXT_BYTES = 208


class Phase(Enum):
    HEADER = "header"
    BODY = "body"
    TRAILER = "trailer"


class RxState(Enum):
    """Figure 7 states."""

    OFFLOADING = "offloading"
    SEARCHING = "searching"
    TRACKING = "tracking"


class HwContext:
    """One flow's offload context (and its driver shadow — the driver
    mirrors ``expected_seq`` in software, which in this simulation is
    the same object)."""

    def __init__(
        self,
        ctx_id: int,
        flow: FlowKey,
        direction: Direction,
        adapter: L5pAdapter,
        static_state: Any,
        tcpsn: int,
        msg_index: int = 0,
    ):
        # Observability handle (repro.obs.Obs or None), wired by the
        # driver at creation; must exist before any property assignment.
        self.obs = None
        # Walker counter cells, built lazily per mode by repro.core.walker
        # so the per-run walk cost is two ``cell.value += n`` stores, not
        # two name-formatted registry lookups (epoch-batched, PR 7).
        self.walk_cells: dict[bool, tuple[Any, Any]] = {}
        self.ctx_id = ctx_id
        self.flow = flow
        self.direction = direction
        self.adapter = adapter
        self.static_state = static_state
        self.expected_seq = tcpsn
        self.created_seq = tcpsn  # stream bytes before this predate the offload
        self.msg_index = msg_index

        # Walker position within the current message.
        self.phase = Phase.HEADER
        self.header_buf = bytearray()
        self.desc: Optional[MessageDesc] = None
        self.body_remaining = 0
        self.trailer_remaining = 0
        self.transform: Optional[MsgTransform] = None
        self._trailer_out = b""  # TX: computed trailer being emitted
        self._trailer_in = bytearray()  # RX: wire trailer being collected

        # Request/response state for RR protocols (CID -> response state).
        self.rr_state: dict = {}

        # Receive resynchronization (Figure 7).
        self.rx_state = RxState.OFFLOADING
        self.speculation_seq: Optional[int] = None
        self.track_next: Optional[int] = None
        self.tracked_msgs = 0
        self._scan_tail = b""
        self._scan_tail_end: Optional[int] = None

        # L5P upcall table (Listing 2), installed by the driver.
        self.l5p_ops = None

        # Graceful degradation (paper §5.3): after sustained resync
        # failure the driver gives up and routes the flow through the
        # software path until (optionally) probation re-enables it.
        self.offload_disabled = False
        self.consecutive_resync_failures = 0

        # Statistics for the evaluation.
        self.pkts_offloaded = 0
        self.pkts_bypassed = 0
        self.resync_requests = 0
        self.resyncs_completed = 0
        self.boundary_resyncs = 0
        self.tx_recoveries = 0
        self.tx_recovery_bytes = 0
        self.resync_retries = 0
        self.resync_failures = 0
        self.auto_disables = 0
        self.tx_sw_fallbacks = 0
        self.tx_recovery_failures = 0

    # ------------------------------------------------------------------
    # sanitized attributes (repro.analysis.sanitizer hook points)
    #
    # Plain attributes when the sanitizer is off; with it on, every
    # assignment is validated against the paper's invariants: Figure 7
    # edges for ``rx_state``, the HEADER->BODY->TRAILER cycle for
    # ``phase``, and monotonic mod-2^32 advance for ``expected_seq``.
    # ------------------------------------------------------------------
    @property
    def rx_state(self) -> RxState:
        return self._rx_state

    @rx_state.setter
    def rx_state(self, new: RxState) -> None:
        old = getattr(self, "_rx_state", None)
        san = _sanitizer_active()
        if san is not None and old is not None:
            san.rx_state_edge(self, old, new)
        obs = self.obs
        if obs is not None and old is not None and old is not new:
            # One counter per Figure 7 edge: offloading->searching (b),
            # searching->tracking (c), tracking->searching (d1),
            # tracking->offloading (d2).
            obs.count(f"nic.rx.resync.edge.{old.value}->{new.value}")
            obs.event(f"rx {old.value}->{new.value}", lane=f"ctx/{self.ctx_id}", cat="resync")
        self._rx_state = new

    @property
    def phase(self) -> Phase:
        return self._phase

    @phase.setter
    def phase(self, new: Phase) -> None:
        san = _sanitizer_active()
        if san is not None:
            old = getattr(self, "_phase", None)
            if old is not None:
                san.phase_edge(self, old, new)
        self._phase = new

    @property
    def expected_seq(self) -> int:
        return self._expected_seq

    @expected_seq.setter
    def expected_seq(self, new: int) -> None:
        san = _sanitizer_active()
        if san is not None:
            old = getattr(self, "_expected_seq", None)
            if old is not None:
                san.expected_seq_advance(self, old, new)
        self._expected_seq = new

    # ------------------------------------------------------------------
    # message walking helpers
    # ------------------------------------------------------------------
    def reset_to_header(self) -> None:
        """Position the walker at a message boundary."""
        self.phase = Phase.HEADER
        self.header_buf = bytearray()
        self.desc = None
        self.body_remaining = 0
        self.trailer_remaining = 0
        self.transform = None
        self._trailer_out = b""
        self._trailer_in = bytearray()

    def start_message(self, desc: MessageDesc) -> None:
        """A full header was parsed: arm the per-message transform."""
        self.desc = desc
        self.body_remaining = desc.body_len
        self.trailer_remaining = desc.trailer_len
        self.transform = self.adapter.begin_message(
            self.direction, self.static_state, desc, self.msg_index, rr_state=self.rr_state
        )
        self._trailer_out = b""
        self._trailer_in = bytearray()
        self.phase = Phase.BODY if desc.body_len else Phase.TRAILER
        if desc.body_len == 0 and desc.trailer_len == 0:
            # Degenerate header-only message.
            self.finish_message()

    def finish_message(self) -> None:
        self.msg_index += 1
        self.reset_to_header()

    def next_boundary_seq(self) -> Optional[int]:
        """Sequence number where the next message header begins, or None
        if mid-header (length not yet known) — per §4.3, derived from
        the current message's length field."""
        if self.phase == Phase.HEADER:
            return self.expected_seq if not self.header_buf else None
        remaining = self.body_remaining + self.trailer_remaining
        if self.phase == Phase.TRAILER:
            remaining = self.trailer_remaining
        return sq.add(self.expected_seq, remaining)

    # ------------------------------------------------------------------
    # resync bookkeeping
    # ------------------------------------------------------------------
    def enter_searching(self) -> None:
        self.rx_state = RxState.SEARCHING
        self.speculation_seq = None
        self.track_next = None
        self.tracked_msgs = 0
        self._scan_tail = b""
        self._scan_tail_end = None
        self.reset_to_header()

    def scan_buffer_for(self, pkt_seq: int, payload: bytes) -> tuple[int, bytes]:
        """Join the carried cross-packet tail with this payload if the
        packet is contiguous with the last scanned bytes; returns
        ``(base_seq, buffer)``."""
        if self._scan_tail_end is not None and pkt_seq == self._scan_tail_end and self._scan_tail:
            return sq.add(pkt_seq, -len(self._scan_tail)), self._scan_tail + payload
        return pkt_seq, payload

    def save_scan_tail(self, pkt_end: int, buffer: bytes, keep: int) -> None:
        keep = min(keep, len(buffer))
        self._scan_tail = bytes(buffer[-keep:]) if keep else b""
        self._scan_tail_end = pkt_end

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<HwContext #{self.ctx_id} {self.adapter.name}/{self.direction.value} "
            f"seq={self.expected_seq} phase={self.phase.value} rx={self.rx_state.value}>"
        )
