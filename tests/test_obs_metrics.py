"""Unit tests for the observability primitives (repro.obs): counters,
gauges, histograms, the registry, and the Chrome trace_event tracer."""

import json

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, Obs, Tracer
from repro.obs.trace import TRACE_PID


class TestCounter:
    def test_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_reset(self):
        c = Counter("x")
        c.inc(3)
        c.reset()
        assert c.value == 0


class TestGauge:
    def test_moves_both_ways(self):
        g = Gauge("x")
        g.inc(3)
        g.dec()
        assert g.value == 2
        g.set(10)
        assert g.value == 10


class TestHistogram:
    def test_summary_stats(self):
        h = Histogram("x")
        for v in (1, 2, 3, 10):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["sum"] == 16
        assert s["mean"] == 4.0
        assert s["min"] == 1
        assert s["max"] == 10

    def test_bucketing_and_overflow(self):
        h = Histogram("x", buckets=(1, 2, 4))
        for v in (1, 2, 2, 100):
            h.observe(v)
        s = h.summary()
        assert s["buckets"] == {"1": 1, "2": 2, "+inf": 1}

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("x", buckets=(4, 1))

    def test_empty_mean_is_zero(self):
        assert Histogram("x").mean == 0.0

    def test_reset(self):
        h = Histogram("x", buckets=(8,))
        h.observe(5)
        h.reset()
        assert h.count == 0 and h.min is None and h.bucket_counts == [0, 0]


class TestMetricsRegistry:
    def test_instruments_created_on_first_use(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_name_bound_to_one_kind(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.histogram("x")

    def test_snapshot_structure(self):
        reg = MetricsRegistry()
        reg.counter("nic.tx.pkts").inc(7)
        reg.gauge("ctx.active").set(2)
        reg.histogram("batch").observe(4)
        reg.probe("pcie", lambda: {"data": 100, "doorbell": 8})
        snap = reg.snapshot()
        assert snap["counters"] == {"nic.tx.pkts": 7}
        assert snap["gauges"] == {"ctx.active": 2}
        assert snap["histograms"]["batch"]["count"] == 1
        assert snap["probes"]["pcie"] == {"data": 100, "doorbell": 8}

    def test_flat_view(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(8)
        reg.probe("p", lambda: {"nested": {"deep": 9}, "skip": "text"})
        flat = reg.flat()
        assert flat["c"] == 3
        assert flat["g"] == 1.5
        assert flat["h.count"] == 1 and flat["h.mean"] == 8.0 and flat["h.max"] == 8
        assert flat["p.nested.deep"] == 9
        assert "p.skip" not in flat  # non-numeric probe results stay out

    def test_flat_empty_histogram_max(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        assert reg.flat()["h.max"] == 0

    def test_to_json_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        assert json.loads(reg.to_json())["counters"] == {"a": 1}

    def test_reset_keeps_gauges_and_probes(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(5)
        reg.gauge("g").set(3)
        reg.histogram("h").observe(2)
        reg.probe("p", lambda: 42)
        reg.reset()
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 0
        assert snap["histograms"]["h"]["count"] == 0
        assert snap["gauges"]["g"] == 3
        assert snap["probes"]["p"] == 42


class TestCell:
    """Epoch-batched counter cells: hot paths do ``cell.value += n``;
    every reader sees exactly what an unbatched counter would show."""

    def test_flushes_into_backing_counter_on_snapshot(self):
        reg = MetricsRegistry()
        cell = reg.cell("nic.tx.pkts")
        cell.value += 3
        cell.value += 4
        assert reg.snapshot()["counters"]["nic.tx.pkts"] == 7
        assert cell.value == 0  # drained at the epoch boundary
        cell.value += 1
        assert reg.snapshot()["counters"]["nic.tx.pkts"] == 8

    def test_flat_view_flushes_too(self):
        reg = MetricsRegistry()
        reg.cell("c").value += 5
        assert reg.flat()["c"] == 5

    def test_same_cell_returned_and_counter_name_shared(self):
        reg = MetricsRegistry()
        assert reg.cell("x") is reg.cell("x")
        reg.counter("x").inc(2)  # pre-existing counter: cells feed it
        reg.cell("x").value += 3
        assert reg.snapshot()["counters"]["x"] == 5

    def test_name_conflicts_with_other_instrument_kinds(self):
        reg = MetricsRegistry()
        reg.gauge("g")
        with pytest.raises(ValueError):
            reg.cell("g")

    def test_idle_cell_never_materializes_a_counter(self):
        reg = MetricsRegistry()
        reg.cell("quiet")
        assert "quiet" not in reg.snapshot()["counters"]

    def test_reset_discards_pending_increments_like_a_counter(self):
        # Warm-up increments parked in a cell must vanish on reset
        # exactly as an unbatched counter's would.
        reg = MetricsRegistry()
        reg.cell("c").value += 9
        reg.reset()
        assert reg.snapshot()["counters"]["c"] == 0

    def test_obs_shortcut(self):
        obs = Obs()
        obs.cell("n").value += 2
        assert obs.snapshot()["counters"]["n"] == 2


class TestTracer:
    def make(self, limit=200_000):
        clock = {"now": 0.0}
        tracer = Tracer(lambda: clock["now"], limit=limit)
        return clock, tracer

    def test_instant_event(self):
        clock, tracer = self.make()
        clock["now"] = 1.5e-6
        tracer.instant("resync", lane="ctx/1", cat="resync", tcpsn=99)
        (ev,) = tracer.events
        assert ev["ph"] == "i" and ev["s"] == "t"
        assert ev["ts"] == 1.5  # microseconds
        assert ev["args"] == {"tcpsn": 99}

    def test_complete_event_duration(self):
        _, tracer = self.make()
        tracer.complete("poll", start_s=1e-6, duration_s=2e-6, lane="core0")
        (ev,) = tracer.events
        assert ev["ph"] == "X"
        assert ev["ts"] == 1.0 and ev["dur"] == 2.0

    def test_counter_event(self):
        _, tracer = self.make()
        tracer.counter("cache", hits=3, misses=1)
        (ev,) = tracer.events
        assert ev["ph"] == "C" and ev["args"] == {"hits": 3, "misses": 1}

    def test_lanes_become_named_threads(self):
        _, tracer = self.make()
        tracer.instant("a", lane="ctx/1")
        tracer.instant("b", lane="ctx/2")
        tracer.instant("c", lane="ctx/1")
        exported = tracer.export()
        names = {
            e["args"]["name"]: e["tid"]
            for e in exported["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert set(names) == {"ctx/1", "ctx/2"}
        tids = {e["tid"] for e in exported["traceEvents"] if e["ph"] == "i"}
        assert tids == set(names.values())

    def test_export_is_chrome_loadable_shape(self):
        _, tracer = self.make()
        tracer.instant("x")
        exported = json.loads(json.dumps(tracer.export()))
        assert exported["displayTimeUnit"] == "ns"
        assert exported["otherData"]["dropped_events"] == 0
        phases = {e["ph"] for e in exported["traceEvents"]}
        assert phases <= {"M", "i", "X", "C"}
        assert all(e["pid"] == TRACE_PID for e in exported["traceEvents"])

    def test_bounded_with_drop_count(self):
        _, tracer = self.make(limit=3)
        for i in range(10):
            tracer.instant(f"e{i}")
        assert len(tracer) == 3
        assert tracer.dropped == 7
        assert tracer.export()["otherData"]["dropped_events"] == 7

    def test_write(self, tmp_path):
        _, tracer = self.make()
        tracer.instant("x")
        path = tmp_path / "trace.json"
        tracer.write(str(path))
        assert json.loads(path.read_text())["traceEvents"]


class TestObs:
    def test_shorthands(self):
        obs = Obs()
        obs.count("c", 2)
        obs.gauge("g").inc()
        obs.observe("h", 5)
        obs.probe("p", lambda: 1)
        snap = obs.snapshot()
        assert snap["counters"]["c"] == 2
        assert snap["gauges"]["g"] == 1
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["probes"]["p"] == 1

    def test_trace_shorthands_noop_when_off(self):
        obs = Obs(trace=False)
        obs.event("x")
        obs.span("y", 0.0, 1.0)
        obs.sample("z", v=1)
        assert obs.tracer is None
        with pytest.raises(RuntimeError):
            obs.write_trace("/dev/null")

    def test_tracer_uses_sim_clock(self):
        class FakeSim:
            now = 2e-6

        obs = Obs(FakeSim(), trace=True)
        obs.event("x")
        assert obs.tracer.events[0]["ts"] == 2.0
