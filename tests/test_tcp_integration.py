"""End-to-end TCP tests over the simulated link: handshake, bulk
transfer, loss/reorder/duplication resilience, retransmission, close."""

import pytest

from helpers import make_pair
from repro.util.units import GBPS


def run_transfer(pair, payload: bytes, until: float = 5.0):
    """Client connects and streams ``payload``; returns received bytes."""
    received = bytearray()
    accepted = {"n": 0}

    def on_accept(conn):
        conn.on_data = lambda skb: received.extend(skb.data)

    pair.server.tcp.listen(5000, on_accept)

    conn_box = {}

    def feed():
        conn = conn_box["conn"]
        while accepted["n"] < len(payload):
            sent = conn.send(payload[accepted["n"] : accepted["n"] + 64 * 1024])
            if sent == 0:
                break
            accepted["n"] += sent

    def on_established():
        feed()

    conn = pair.client.tcp.connect("server", 5000, on_established=on_established)
    conn_box["conn"] = conn
    conn.on_writable = feed
    pair.sim.run(until=until)
    return bytes(received)


class TestHandshakeAndTransfer:
    def test_simple_transfer(self):
        pair = make_pair()
        payload = bytes(i % 256 for i in range(100_000))
        assert run_transfer(pair, payload) == payload

    def test_empty_connection_establishes(self):
        pair = make_pair()
        established = []
        pair.server.tcp.listen(80, lambda conn: established.append("server"))
        pair.client.tcp.connect("server", 80, on_established=lambda: established.append("client"))
        pair.sim.run(until=0.1)
        assert sorted(established) == ["client", "server"]

    def test_large_transfer_integrity(self):
        pair = make_pair()
        payload = bytes((i * 7) % 256 for i in range(3_000_000))
        assert run_transfer(pair, payload) == payload

    def test_two_connections_do_not_interfere(self):
        pair = make_pair()
        results = {1: bytearray(), 2: bytearray()}

        def acceptor(idx):
            def on_accept(conn):
                conn.on_data = lambda skb: results[idx].extend(skb.data)

            return on_accept

        pair.server.tcp.listen(5001, acceptor(1))
        pair.server.tcp.listen(5002, acceptor(2))
        c1 = pair.client.tcp.connect("server", 5001)
        c2 = pair.client.tcp.connect("server", 5002)
        c1.on_established = lambda: c1.send(b"one" * 1000)
        c2.on_established = lambda: c2.send(b"two" * 1000)
        pair.sim.run(until=1.0)
        assert bytes(results[1]) == b"one" * 1000
        assert bytes(results[2]) == b"two" * 1000


class TestLossResilience:
    @pytest.mark.parametrize("loss", [0.01, 0.05])
    def test_transfer_survives_loss(self, loss):
        pair = make_pair(seed=3, loss_to_server=loss)
        payload = bytes(i % 256 for i in range(500_000))
        assert run_transfer(pair, payload, until=30.0) == payload

    def test_transfer_survives_reordering(self):
        pair = make_pair(seed=4, reorder_to_server=0.05)
        payload = bytes(i % 256 for i in range(500_000))
        assert run_transfer(pair, payload, until=30.0) == payload

    def test_transfer_survives_duplication(self):
        pair = make_pair(seed=5, dup_to_server=0.05)
        payload = bytes(i % 256 for i in range(500_000))
        assert run_transfer(pair, payload, until=30.0) == payload

    def test_transfer_survives_combined_faults(self):
        pair = make_pair(seed=6, loss_to_server=0.02, reorder_to_server=0.02, dup_to_server=0.01)
        payload = bytes(i % 251 for i in range(300_000))
        assert run_transfer(pair, payload, until=30.0) == payload

    def test_ack_loss_is_survivable(self):
        pair = make_pair(seed=7, loss_to_client=0.05)
        payload = bytes(i % 256 for i in range(300_000))
        assert run_transfer(pair, payload, until=30.0) == payload

    def test_fast_retransmit_engages_under_loss(self):
        pair = make_pair(seed=8, loss_to_server=0.02)
        payload = bytes(500_000)
        run_transfer(pair, payload, until=30.0)
        conn = next(iter(pair.client.tcp.connections.values()))
        assert conn.retransmitted_packets > 0
        assert conn.cc.fast_retransmits > 0


class TestThroughputSanity:
    def test_loss_free_throughput_is_high(self):
        """A single flow on an idle 100G link should move data quickly
        (CPU-model-bound, not pathologically slow)."""
        pair = make_pair()
        payload = bytes(2_000_000)
        received = run_transfer(pair, payload, until=2.0)
        assert received == payload
        # Find the finish time: bytes_received advances monotonically.
        conn = next(iter(pair.server.tcp.connections.values()))
        assert conn.bytes_received == len(payload)

    def test_loss_reduces_throughput(self):
        def goodput(loss, seed):
            pair = make_pair(seed=seed, loss_to_server=loss)
            payload = bytes(8_000_000)
            run_transfer(pair, payload, until=0.003)
            conn = next(iter(pair.server.tcp.connections.values()))
            return conn.bytes_received

        clean = goodput(0.0, 11)
        lossy = goodput(0.05, 11)
        assert lossy < clean

    def test_bandwidth_cap_respected(self):
        """On a slow link the transfer cannot beat the wire rate."""
        pair = make_pair(bandwidth_bps=1 * GBPS)
        payload = bytes(1_000_000)
        run_transfer(pair, payload, until=0.05)
        conn = next(iter(pair.server.tcp.connections.values()))
        # 1 Gbps x 50 ms = 6.25 MB upper bound (with overheads, less).
        assert conn.bytes_received <= 1 * GBPS / 8 * 0.05


class TestClose:
    def test_graceful_close_delivers_fin(self):
        pair = make_pair()
        closed = []
        received = bytearray()

        def on_accept(conn):
            conn.on_data = lambda skb: received.extend(skb.data)
            conn.on_close = lambda: closed.append("server")

        pair.server.tcp.listen(80, on_accept)
        conn = pair.client.tcp.connect("server", 80)

        def go():
            conn.send(b"goodbye")
            conn.close()

        conn.on_established = go
        pair.sim.run(until=1.0)
        assert bytes(received) == b"goodbye"
        assert closed == ["server"]

    def test_send_after_close_raises(self):
        pair = make_pair()
        conn = pair.client.tcp.connect("server", 81)
        pair.server.tcp.listen(81, lambda c: None)
        pair.sim.run(until=0.1)
        conn.close()
        with pytest.raises(RuntimeError):
            conn.send(b"late")


class TestBatching:
    def test_rx_batches_form_under_load(self):
        pair = make_pair()
        payload = bytes(2_000_000)
        run_transfer(pair, payload, until=2.0)
        assert pair.server.mean_rx_batch >= 1.0
        assert len(pair.server.rx_batch_sizes) > 0
