"""Shared utilities: unit constants, statistics, byte-stream helpers."""

from repro.util.units import GBPS, GIB, KIB, MIB, gbps, parse_size
from repro.util.stats import Summary, trimmed_mean

__all__ = [
    "GBPS",
    "GIB",
    "KIB",
    "MIB",
    "gbps",
    "parse_size",
    "Summary",
    "trimmed_mean",
]
