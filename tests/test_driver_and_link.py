"""Unit tests for the NIC driver interfaces (Listing 1) and the link's
fault-injection machinery."""

import pytest

from repro.core.types import Direction
from repro.net.host import Host
from repro.net.link import Link, LinkConfig
from repro.net.packet import FlowKey, Packet
from repro.nic import OffloadNic
from repro.sim import Simulator
from repro.util.units import GBPS
from toy_l5p import ToyAdapter, ToyL5pOps


class _Conn:
    def __init__(self, flow):
        self.flow = flow
        self.tx_ctx_id = None
        self.snd_una = 0


def make_nic():
    sim = Simulator()
    nic = OffloadNic()
    Host(sim, "h", nic=nic)
    return sim, nic


class TestDriverLifecycle:
    def test_create_tx_tags_connection(self):
        sim, nic = make_nic()
        conn = _Conn(FlowKey("h", 1, "peer", 2))
        ctx = nic.driver.l5o_create(conn, ToyAdapter(), None, 100, Direction.TX, ToyL5pOps())
        assert conn.tx_ctx_id == ctx.ctx_id
        assert nic.driver.lookup_tx(ctx.ctx_id) is ctx
        nic.driver.l5o_destroy(ctx)
        assert nic.driver.lookup_tx(ctx.ctx_id) is None

    def test_create_rx_keys_by_reversed_flow(self):
        sim, nic = make_nic()
        conn = _Conn(FlowKey("h", 1, "peer", 2))
        ctx = nic.driver.l5o_create(conn, ToyAdapter(), None, 100, Direction.RX, ToyL5pOps())
        # Incoming packets carry the peer's view of the 4-tuple.
        assert nic.driver.lookup_rx(conn.flow.reversed()) is ctx
        assert nic.driver.lookup_rx(conn.flow) is None

    def test_rr_state_add_del(self):
        sim, nic = make_nic()
        conn = _Conn(FlowKey("h", 1, "peer", 2))
        ctx = nic.driver.l5o_create(conn, ToyAdapter(), None, 0, Direction.RX, ToyL5pOps())
        buffer = bytearray(10)
        nic.driver.l5o_add_rr_state(ctx, 5, buffer)
        assert ctx.rr_state[5] is buffer
        nic.driver.l5o_del_rr_state(ctx, 5)
        assert 5 not in ctx.rr_state

    def test_context_churn_counts_descriptors(self):
        sim, nic = make_nic()
        before = nic.pcie.bytes_by_category["descriptor"]
        conn = _Conn(FlowKey("h", 3, "peer", 4))
        ctx = nic.driver.l5o_create(conn, ToyAdapter(), None, 0, Direction.TX, ToyL5pOps())
        nic.driver.l5o_destroy(ctx)
        assert nic.pcie.bytes_by_category["descriptor"] > before

    def test_resync_request_delay_knob(self):
        sim, nic = make_nic()
        ops = ToyL5pOps()
        conn = _Conn(FlowKey("h", 1, "peer", 2))
        ctx = nic.driver.l5o_create(conn, ToyAdapter(), None, 0, Direction.RX, ops)
        nic.driver.resync_delay_s = 1e-3
        nic.driver.request_resync(ctx, 4242)
        sim.run(until=0.5e-3)
        assert ops.resync_requests == []  # not yet delivered
        sim.run(until=2e-3)
        assert ops.resync_requests == [4242]

    def test_datagram_context_registries(self):
        sim, nic = make_nic()
        flow = FlowKey("h", 9, "peer", 10)
        from repro.core.datagram import DatagramAdapter

        class _Nop(DatagramAdapter):
            def tx_transform(self, state, payload):
                return None

            def rx_transform(self, state, payload):
                return None

        ctx = nic.driver.l5o_create_datagram(flow, _Nop(), None, Direction.TX)
        assert nic.driver.dgram_tx_contexts[flow] is ctx
        nic.driver.l5o_destroy_datagram(ctx)
        assert flow not in nic.driver.dgram_tx_contexts


class TestLinkFaults:
    def _port(self, **cfg):
        sim = Simulator(seed=9)
        link = Link(sim, config_ab=LinkConfig(**cfg))
        received = []
        link.attach("b", received.append)
        link.attach("a", lambda p: None)
        return sim, link, received

    def send_many(self, sim, link, n=400):
        flow = FlowKey("a", 1, "b", 2)
        for i in range(n):
            link.port("a").transmit(Packet(flow, seq=i, payload=b"x" * 100, ack_flag=False))
        sim.run()

    def test_loss_rate_statistics(self):
        sim, link, received = self._port(loss=0.25)
        self.send_many(sim, link)
        assert 0.15 < link.ab.dropped_packets / 400 < 0.35
        assert len(received) == 400 - link.ab.dropped_packets

    def test_duplication_statistics(self):
        sim, link, received = self._port(duplicate=0.25)
        self.send_many(sim, link)
        assert len(received) == 400 + link.ab.duplicated_packets
        assert link.ab.duplicated_packets > 50

    def test_reordering_changes_arrival_order(self):
        sim, link, received = self._port(reorder=0.2)
        self.send_many(sim, link)
        seqs = [p.seq for p in received]
        assert seqs != sorted(seqs)
        assert sorted(seqs) == list(range(400))  # nothing lost

    def test_serialization_rate(self):
        sim = Simulator()
        link = Link(sim, config_ab=LinkConfig(bandwidth_bps=1 * GBPS, latency_s=0))
        times = []
        link.attach("b", lambda p: times.append(sim.now))
        link.attach("a", lambda p: None)
        flow = FlowKey("a", 1, "b", 2)
        wire = 1000 + 90  # payload + overhead
        for i in range(3):
            link.port("a").transmit(Packet(flow, seq=i, payload=b"z" * 1000, ack_flag=False))
        sim.run()
        per_pkt = wire * 8 / GBPS
        assert times[0] == pytest.approx(per_pkt)
        assert times[2] == pytest.approx(3 * per_pkt)

    def test_unattached_port_raises(self):
        sim = Simulator()
        link = Link(sim)
        with pytest.raises(RuntimeError):
            link.port("a").transmit(Packet(FlowKey("a", 1, "b", 2)))

    def test_bad_side_rejected(self):
        link = Link(Simulator())
        with pytest.raises(ValueError):
            link.attach("c", lambda p: None)
        with pytest.raises(ValueError):
            link.port("q")
