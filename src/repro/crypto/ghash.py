"""GHASH — the GF(2^128) universal hash underlying AES-GCM (NIST SP 800-38D).

Field elements are held as 128-bit Python ints in the NIST byte order:
``int.from_bytes(block, "big")``, where the *most significant* bit of the
integer is the coefficient of x^0.

For speed we precompute, per hash key H, a Shoup-style table
``T[k][b]`` = (byte value ``b`` at byte position ``k``) x H, so a block
multiplication is 16 table lookups and XORs instead of a 128-step shift
loop.
"""

from __future__ import annotations

# x^128 + x^7 + x^2 + x + 1, in the right-shift (reflected) representation.
_R = 0xE1000000000000000000000000000000


def gf128_mul(x: int, y: int) -> int:
    """Bitwise GF(2^128) multiplication, straight from the spec.

    Slow; used to validate the table-driven path and to build tables.
    """
    z = 0
    v = x
    for i in range(127, -1, -1):
        if (y >> i) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


def _mul_x(v: int) -> int:
    """Multiply a field element by x (one step of the shift loop)."""
    if v & 1:
        return (v >> 1) ^ _R
    return v >> 1


def _build_table(h: int) -> list[list[int]]:
    """Byte-position tables for multiplication by H.

    ``powers[j]`` is H*x^j.  A set integer bit i of the operand carries
    coefficient x^(127-i); for byte k (0 = most significant) and bit t
    (LSB-first within the byte) that exponent is 8k + 7 - t.
    """
    powers = [h]
    for _ in range(127):
        powers.append(_mul_x(powers[-1]))
    table: list[list[int]] = []
    for k in range(16):
        row = [0] * 256
        for t in range(8):
            row[1 << t] = powers[8 * k + 7 - t]
        for b in range(1, 256):
            if b & (b - 1):  # not a power of two: combine smaller entries
                row[b] = row[b & (b - 1)] ^ row[b & -b]
        table.append(row)
    return table


def precompute_table(h: int) -> list[list[int]]:
    """Build the multiplication-by-H table once, for reuse across many
    :class:`Ghash` instances keyed by the same H (the per-connection key
    schedule the paper's HW context caches, §3.2)."""
    return _build_table(h)


class Ghash:
    """Incremental GHASH over a byte stream.

    Input is consumed in 16-byte blocks; a trailing partial block is
    zero-padded at :meth:`digest` time, matching how GCM pads the AAD
    and ciphertext segments separately (the caller — GCM — is
    responsible for segment padding, so :meth:`pad_to_block` is exposed).
    """

    def __init__(self, h: int, table: list[list[int]] | None = None):
        self.h = h
        # Building the Shoup table costs ~100x one block multiply; callers
        # hashing many messages under one H (GCM: one per record) should
        # build it once via precompute_table() and pass it in.
        self._table = _build_table(h) if table is None else table
        self._y = 0
        self._buf = b""

    def _mul_h(self, y: int) -> int:
        table = self._table
        z = 0
        for k, byte in enumerate(y.to_bytes(16, "big")):
            z ^= table[k][byte]
        return z

    def update(self, data: bytes) -> None:
        buf = self._buf + data
        full = len(buf) - (len(buf) % 16)
        y = self._y
        for off in range(0, full, 16):
            block = int.from_bytes(buf[off : off + 16], "big")
            y = self._mul_h(y ^ block)
        self._y = y
        self._buf = buf[full:]

    def pad_to_block(self) -> None:
        """Zero-pad the pending partial block, closing a GCM segment."""
        if self._buf:
            self.update(b"\x00" * (16 - len(self._buf)))

    def digest_int(self) -> int:
        """Current hash value; pending partial input is zero-padded."""
        if self._buf:
            block = int.from_bytes(self._buf.ljust(16, b"\x00"), "big")
            return self._mul_h(self._y ^ block)
        return self._y

    def digest(self) -> bytes:
        return self.digest_int().to_bytes(16, "big")
