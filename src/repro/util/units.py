"""Unit constants and conversions used throughout the reproduction.

Sizes are in bytes, rates in bits/second unless a name says otherwise.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

KB = 1000
MB = 1000 * KB
GB = 1000 * MB

GBPS = 1_000_000_000  # bits per second
MBPS = 1_000_000

USEC = 1e-6
MSEC = 1e-3

_SUFFIXES = {
    "": 1,
    "b": 1,
    "k": KIB,
    "kb": KB,
    "kib": KIB,
    "m": MIB,
    "mb": MB,
    "mib": MIB,
    "g": GIB,
    "gb": GB,
    "gib": GIB,
}


def gbps(num_bytes: float, seconds: float) -> float:
    """Throughput in Gbit/s for ``num_bytes`` moved in ``seconds``."""
    if seconds <= 0:
        raise ValueError(f"non-positive duration {seconds!r}")
    return num_bytes * 8 / seconds / GBPS


def mbs(num_bytes: float, seconds: float) -> float:
    """Throughput in MB/s (decimal) for ``num_bytes`` moved in ``seconds``."""
    if seconds <= 0:
        raise ValueError(f"non-positive duration {seconds!r}")
    return num_bytes / seconds / MB


def parse_size(text: str) -> int:
    """Parse a human size string such as ``"256K"``, ``"4KiB"`` or ``"1g"``.

    Bare ``K``/``M``/``G`` mean binary units, matching how the paper
    writes request sizes (4 KiB files, 16 KiB records, ...).
    """
    text = text.strip().lower()
    idx = len(text)
    while idx > 0 and not text[idx - 1].isdigit():
        idx -= 1
    number, suffix = text[:idx], text[idx:].strip()
    if not number:
        raise ValueError(f"no number in size string {text!r}")
    if suffix not in _SUFFIXES:
        raise ValueError(f"unknown size suffix {suffix!r} in {text!r}")
    return int(number) * _SUFFIXES[suffix]


def fmt_size(num_bytes: int) -> str:
    """Render a byte count with a binary suffix (``4KiB``, ``256KiB``)."""
    if num_bytes % GIB == 0 and num_bytes >= GIB:
        return f"{num_bytes // GIB}GiB"
    if num_bytes % MIB == 0 and num_bytes >= MIB:
        return f"{num_bytes // MIB}MiB"
    if num_bytes % KIB == 0 and num_bytes >= KIB:
        return f"{num_bytes // KIB}KiB"
    return f"{num_bytes}B"
