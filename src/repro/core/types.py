"""The L5P adapter contract and shared message types.

An L5P is autonomously offloadable iff it satisfies the paper's Table 3
preconditions; this interface is their executable form:

- **size-preserving on transmit** — ``MsgTransform.process`` returns
  exactly as many bytes as it consumes, and trailers are *replaced*
  (same length), never inserted.
- **incrementally computable with constant-size state** — transforms
  accept arbitrary byte ranges in order; all per-message state lives in
  the transform object, all per-flow state in the HW context.
- **plaintext magic pattern + length field** — ``parse_header`` derives
  the full message length from a fixed-size plaintext header, and
  ``check_magic`` recognizes candidate headers on the wire for receive
  resynchronization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional


class ProtocolError(Exception):
    """An L5P invariant was violated (corrupt stream, bad offload use)."""


class Direction(Enum):
    TX = "tx"
    RX = "rx"


@dataclass
class MessageDesc:
    """One parsed L5P message header.

    ``header_len + body_len + trailer_len`` is the full on-wire size of
    the message; the offload relies on it to locate the next message
    (§3.3 "length field").
    """

    kind: str
    header_len: int
    body_len: int
    trailer_len: int
    raw_header: bytes
    info: dict = field(default_factory=dict)

    @property
    def total_len(self) -> int:
        return self.header_len + self.body_len + self.trailer_len


@dataclass
class TxMsgState:
    """Answer to the ``l5o_get_tx_msgstate`` upcall (Listing 2): enough
    state to recompute the offload for any byte of a transmitted
    message — its start sequence, ordinal, and pre-transform bytes."""

    start_seq: int
    msg_index: int
    wire_bytes: bytes  # the message exactly as the L5P handed it to TCP
    info: dict = field(default_factory=dict)  # protocol extras (e.g. the
    # record's plaintext-stream offset, used by stacked NVMe-TLS recovery)


class MsgTransform:
    """Per-message incremental transform executed by the NIC.

    Body bytes stream through :meth:`process` in order.  On transmit the
    trailer (tag/CRC) is produced by :meth:`finalize_tx` and overwrites
    the dummy trailer the L5P emitted; on receive the wire trailer is
    checked by :meth:`verify_rx`.
    """

    def process(self, data: bytes) -> bytes:
        """Transform (or digest) ``data``; must be size-preserving."""
        raise NotImplementedError

    def track(self, data: bytes) -> None:
        """Advance internal state over ``data`` without transforming it
        (used when the NIC re-locks onto a stream mid-message and must
        stay consistent for the *following* packets)."""
        self.process(data)

    def finalize_tx(self) -> bytes:
        """The true trailer bytes to place on the wire (TX)."""
        raise NotImplementedError

    def verify_rx(self, wire_trailer: bytes) -> bool:
        """Check the received trailer (RX); True when it validates."""
        raise NotImplementedError


class L5pAdapter:
    """Everything the NIC knows about one L5P (cast into silicon)."""

    name: str = "abstract"
    header_len: int = 0  # fixed wire-header size
    magic_len: int = 0  # prefix of the header used for speculative search

    def parse_header(self, header: bytes, static_state: Any) -> Optional[MessageDesc]:
        """Parse a full header; None if it cannot be a valid message."""
        raise NotImplementedError

    def check_magic(self, window: bytes, static_state: Any) -> bool:
        """Fast plausibility test of ``magic_len`` bytes at a candidate
        header position (the §3.3 "magic pattern")."""
        raise NotImplementedError

    def begin_message(
        self,
        direction: Direction,
        static_state: Any,
        desc: MessageDesc,
        msg_index: int,
        rr_state: Optional[dict] = None,
    ) -> MsgTransform:
        """Create the per-message transform.  ``msg_index`` is the count
        of previous messages on the flow — the only dynamic state a
        transform may depend on at a message boundary (§3.2)."""
        raise NotImplementedError

    def apply_packet_meta(self, meta, processed: bool, ok: bool, desc_kinds: list) -> None:
        """Set the driver-visible per-packet result bits (SkbMeta)."""
        raise NotImplementedError

    def on_disruption(self, ctx) -> None:
        """The receive engine left the happy path (hole, boundary resync,
        or speculative search).  Stacked adapters use this to invalidate
        inner-protocol state that cannot survive a byte gap."""

    def prepare_tx_recovery(self, ctx, state: "TxMsgState") -> None:
        """Called during TX context recovery after the context has been
        repositioned at ``state``'s message start and before the replay.
        Stacked adapters reposition their inner protocol here (§5.3:
        recovery is performed independently for each protocol)."""

    def software_cpb(self, model) -> float:
        """Cycles/byte the host pays to run this L5P's data-intensive
        operation in software (used to cost degraded sends when the
        offload gives up).  Crypto-grade by default; cheaper protocols
        (e.g. CRC-only NVMe/TCP) override."""
        return model.cpb_aes_gcm
