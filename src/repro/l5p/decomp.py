"""Inline decompression offload — the non-size-preserving receive case
(paper §3.1 and §7, "Decompression and deserialization").

Transmit-side compression is **not** offloadable (it would change the
byte count under TCP's feet, Figure 5); the adapter enforces that.  On
receive, the NIC writes the *decompressed output* into pre-allocated
buffers the L5P registered, while the original compressed bytes still
flow to the receive ring unmodified — so TCP sees preserved sizes and
software can always fall back.  Output sizes are predictable because
the message header carries the plaintext length (the §7 precondition).

Wire format ("CZ" protocol):

    magic(0xC0 0x17) | flags(1) | msg_id(4) | plain_len(4) | comp_len(4)
    compressed body (comp_len B)
    CRC32C over the compressed body (4 B)

The 4-byte message id plays the role NVMe's CID plays for the copy
offload: it correlates the NIC's placed output buffer with the message
software later consumes (a request/response-style correlation id).
"""

from __future__ import annotations

import struct
from collections import deque
from typing import Callable, Optional

from repro.core.types import Direction, L5pAdapter, MessageDesc, MsgTransform, ProtocolError
from repro.crypto.crc import get_digest
from repro.l5p.base import StreamAssembler
from repro.tcp import seq as sq
from repro.util.lzss import StreamingDecoder, compress, decompress

MAGIC = b"\xc0\x17"
_GREETING = b"CZRDY"
HEADER_LEN = 15
TRAILER_LEN = 4
MAX_PLAIN = 1 << 20
FLAG_COMPRESSED = 0x01


def make_message(plain: bytes, digest_cls, msg_id: int = 0) -> bytes:
    body = compress(plain)
    header = MAGIC + struct.pack(">BIII", FLAG_COMPRESSED, msg_id, len(plain), len(body))
    return header + body + digest_cls(body).digest()


def parse_header(header: bytes) -> Optional[tuple[int, int, int, int]]:
    if header[:2] != MAGIC:
        return None
    flags, msg_id, plain_len, comp_len = struct.unpack(">BIII", header[2:HEADER_LEN])
    if plain_len > MAX_PLAIN or comp_len > plain_len + plain_len // 4 + 64:
        return None
    return flags, msg_id, plain_len, comp_len


class _DecompTransform(MsgTransform):
    """Digest the compressed bytes; decompress into a placed buffer."""

    def __init__(self, adapter: "DecompAdapter", desc: MessageDesc, rr_state: dict):
        self.adapter = adapter
        self.digest = adapter.digest_cls()
        self.plain_len = desc.info["plain_len"]
        self.rr_state = rr_state
        self.decoder = StreamingDecoder()
        pool = rr_state.get("_pool")
        self.buffer: Optional[bytearray] = pool.popleft() if pool else None
        self._failed = self.buffer is None or len(self.buffer) < self.plain_len
        if self._failed:
            adapter.note_place_failure()
        self._msg_id = desc.info["msg_id"]

    def process(self, data: bytes) -> bytes:
        self.digest.update(data)
        if not self._failed:
            try:
                produced = self.decoder.update(data)
            except ValueError:
                self._fail()
                return data
            offset = self.decoder.produced - len(produced)
            if self.decoder.produced > self.plain_len:
                self._fail()
            else:
                self.buffer[offset : offset + len(produced)] = produced
        return data  # wire bytes pass through unchanged (TCP sees them)

    def _fail(self) -> None:
        self._failed = True
        self.adapter.note_place_failure()

    def finalize_tx(self) -> bytes:
        raise ProtocolError("compression is not offloadable on transmit (§3.1)")

    def verify_rx(self, wire_trailer: bytes) -> bool:
        ok = wire_trailer == self.digest.digest()
        complete = (
            not self._failed
            and self.decoder.produced == self.plain_len
            and self.decoder.at_token_boundary
        )
        if ok and complete:
            self.rr_state.setdefault("_results", {})[self._msg_id] = (
                self.buffer,
                self.plain_len,
            )
        elif self.buffer is not None:
            if not complete:
                self.adapter.note_place_failure()
            self.rr_state["_pool"].append(self.buffer)  # return unused
        return ok


class DecompAdapter(L5pAdapter):
    """One instance per flow direction (RX only)."""

    name = "decomp"
    header_len = HEADER_LEN
    magic_len = HEADER_LEN

    def __init__(self, digest_name: str = "crc32c"):
        self.digest_cls = get_digest(digest_name)
        self._pkt_place_ok = True
        self.place_failures = 0

    def note_place_failure(self) -> None:
        self._pkt_place_ok = False
        self.place_failures += 1

    def parse_header(self, header: bytes, static_state) -> Optional[MessageDesc]:
        parsed = parse_header(header)
        if parsed is None:
            return None
        flags, msg_id, plain_len, comp_len = parsed
        return MessageDesc(
            kind="cz",
            header_len=HEADER_LEN,
            body_len=comp_len,
            trailer_len=TRAILER_LEN,
            raw_header=header,
            info={"plain_len": plain_len, "flags": flags, "msg_id": msg_id},
        )

    def check_magic(self, window: bytes, static_state) -> bool:
        return len(window) >= HEADER_LEN and parse_header(window) is not None

    def begin_message(self, direction: Direction, static_state, desc, msg_index, rr_state=None):
        if direction == Direction.TX:
            raise ProtocolError("decompression offload is receive-only (§3.1)")
        return _DecompTransform(self, desc, rr_state if rr_state is not None else {})

    def apply_packet_meta(self, meta, processed: bool, ok: bool, desc_kinds) -> None:
        meta.crc_ok = processed and ok
        meta.placed = processed and ok and self._pkt_place_ok
        self._pkt_place_ok = True


class CompressedStream:
    """Software endpoint: framed compressed messages over a TcpConnection.

    The receiver pre-registers a pool of max-size output buffers with
    the NIC; messages the NIC fully handled arrive pre-decompressed in
    those buffers, everything else is decompressed in software.
    """

    def __init__(self, host, conn, role: str, offload: bool = False, digest_name: str = "crc32c",
                 pool_buffers: int = 32, max_plain: int = 256 * 1024):
        self.host = host
        self.conn = conn
        self.offload = offload
        self.digest_cls = get_digest(digest_name)
        self.core = host.core_for_flow(conn.flow)
        self.model = host.model
        self.max_plain = max_plain
        self.on_message: Optional[Callable[[bytes], None]] = None
        self._assembler: Optional[StreamAssembler] = None
        self._rx_ctx = None
        self._adapter: Optional[DecompAdapter] = None
        self._rx_count = 0
        self._greeting_seen = 0
        self._tx_id = 0
        self._pool_buffers = pool_buffers
        self._pending_resync: list[int] = []
        self.ready = role == "receiver"
        self.on_ready: Optional[Callable[[], None]] = None
        self.stats = {
            "tx": 0,
            "rx": 0,
            "rx_placed": 0,
            "rx_software": 0,
            "digest_fail": 0,
            "offload_degraded": 0,
        }

        conn.on_data = self._on_skb
        if role == "receiver":
            if offload:
                driver = getattr(host.nic, "driver", None)
                if driver is None:
                    raise RuntimeError("decompression offload requires an OffloadNic")
                self._adapter = DecompAdapter(digest_name)
                self._rx_ctx = driver.l5o_create(
                    conn, self._adapter, None, tcpsn=conn.rcv_nxt, direction=Direction.RX, l5p_ops=self
                )
                self._rx_ctx.rr_state["_pool"] = deque(
                    bytearray(max_plain) for _ in range(pool_buffers)
                )
            # Greeting: tells the sender the receiver (and its NIC
            # context) is in place, so no data packet races the install.
            conn.send(_GREETING)
        elif offload:
            raise ValueError("offload applies to the receiver side")

    # ------------------------------------------------------------------
    def send(self, plain: bytes) -> int:
        """Compress (software — TX offload is precluded) and queue.
        Returns 0 until the receiver's greeting arrives."""
        if not self.ready:
            return 0
        if len(plain) > self.max_plain:
            raise ValueError(f"message exceeds {self.max_plain}B")
        self.core.charge(len(plain) * self.model.cpb_compress, "compress")
        wire = make_message(plain, self.digest_cls, msg_id=self._tx_id)
        self._tx_id = (self._tx_id + 1) & 0xFFFFFFFF
        if self.conn.send_space < len(wire):
            return 0
        accepted = self.conn.send(wire)
        if accepted != len(wire):
            raise RuntimeError("message split across send buffer boundary")
        self.stats["tx"] += 1
        return len(plain)

    # ------------------------------------------------------------------
    def _on_skb(self, skb) -> None:
        data, meta, seq = skb.data, skb.meta, skb.seq
        if not self.ready:
            # Sender side: consume the receiver's greeting first.
            take = min(len(_GREETING) - self._greeting_seen, len(data))
            self._greeting_seen += take
            data = data[take:]
            seq = sq.add(seq, take)
            if self._greeting_seen < len(_GREETING):
                return
            self.ready = True
            if self.on_ready:
                self.on_ready()
            if not data:
                return
        if self._assembler is None:
            self._assembler = StreamAssembler(HEADER_LEN, self._total_len, start_seq=seq)
        for msg in self._assembler.push(data, meta):
            self._on_message(msg)

    @staticmethod
    def _total_len(header: bytes) -> int:
        parsed = parse_header(header)
        if parsed is None:
            raise ValueError("bad CZ header")
        _flags, _msg_id, _plain_len, comp_len = parsed
        return HEADER_LEN + comp_len + TRAILER_LEN

    def _on_message(self, msg) -> None:
        self._rx_count += 1
        self.stats["rx"] += 1
        self._answer_resyncs(msg)
        wire = msg.wire
        _flags, msg_id, plain_len, comp_len = parse_header(wire[:HEADER_LEN])
        placed = msg.fully(lambda m: m.placed) and self._rx_ctx is not None
        result = None
        if placed and self._rx_ctx is not None:
            result = self._rx_ctx.rr_state.get("_results", {}).pop(msg_id, None)
        if result is not None:
            buffer, length = result
            plain = bytes(buffer[:length])
            # Return the buffer to the pool for reuse.
            self._rx_ctx.rr_state["_pool"].append(buffer)
            self.stats["rx_placed"] += 1
        else:
            body = wire[HEADER_LEN : HEADER_LEN + comp_len]
            self.core.charge(comp_len * self.host.llc.touch_cpb(self.model.cpb_crc32c), "crc")
            if self.digest_cls(body).digest() != wire[-TRAILER_LEN:]:
                self.stats["digest_fail"] += 1
                return
            self.core.charge(plain_len * self.model.cpb_decompress, "compress")
            plain = decompress(body)
            self.stats["rx_software"] += 1
        if self._rx_ctx is not None:
            # Top the placement pool back up (buffers lost to torn
            # messages never return through verify_rx).
            pool = self._rx_ctx.rr_state["_pool"]
            while len(pool) < self._pool_buffers:
                pool.append(bytearray(self.max_plain))
        if self.on_message:
            self.on_message(plain)

    # ------------------------------------------------------------------
    # Listing 2 upcalls
    # ------------------------------------------------------------------
    def l5o_get_tx_msgstate(self, tcpsn: int):
        return None  # no TX offload exists for this L5P

    def l5o_resync_rx_req(self, tcpsn: int) -> None:
        self._pending_resync.append(tcpsn)

    def l5o_offload_degraded(self, direction: str, reason: str) -> None:
        """The driver gave up on this flow's offload (§5.3): every
        following message takes the software decompress path, which the
        stats already count — just make the transition observable."""
        self.stats["offload_degraded"] += 1

    def _answer_resyncs(self, msg) -> None:
        if not self._pending_resync or self._rx_ctx is None:
            return
        driver = self.host.nic.driver
        end = sq.add(msg.start_seq, msg.length)
        still = []
        for req in self._pending_resync:
            if req == msg.start_seq:
                driver.l5o_resync_rx_resp(self._rx_ctx, req, True, msg_index=self._rx_count - 1)
            elif sq.lt(req, end):
                driver.l5o_resync_rx_resp(self._rx_ctx, req, False)
            else:
                still.append(req)
        self._pending_resync = still


from repro.l5p import plugin as _plugin

PLUGIN = _plugin.register(
    _plugin.L5Protocol(
        name="decomp",
        header_len=HEADER_LEN,
        magic=_plugin.MagicSpec(
            pattern=MAGIC + b"\x00" * (HEADER_LEN - 2),
            mask=b"\xff\xff" + b"\x00" * (HEADER_LEN - 2),
            confidence=1e-4,
        ),
        preconditions=_plugin.Table3Preconditions(
            size_preserving=True,
            incremental_constant_state=True,
            header_plaintext_length=True,
            magic_identifiable=True,
            state_from_msg_index=True,
            notes="size-preserving on the wire; inflation happens into the "
            "pre-registered destination buffer, not the TCP stream (§7)",
        ),
        factory=DecompAdapter,
        upcalls=("l5o_get_tx_msgstate", "l5o_resync_rx_req", "l5o_offload_degraded"),
        description="Inline decompression into pre-posted buffers",
        info={"trailer_len": TRAILER_LEN, "ops": ("inflate", "crc", "place")},
    )
)
