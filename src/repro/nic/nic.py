"""The autonomous-offload NIC device.

Interposes on the plain NIC's transmit/receive paths: packets belonging
to flows with installed contexts are run through the TX/RX offload
engines; everything else passes through untouched.  The layer-4 stack
remains entirely in host software — the NIC never acks, retransmits, or
reorders anything.
"""

from __future__ import annotations

from itertools import chain

from repro.analysis.sanitizer import active as _sanitizer_active
from repro.core.context import HwContext
from repro.core.driver import NicDriver
from repro.core.rx import RxEngine
from repro.core.tx import TxEngine
from repro.net.device import PassthroughNic
from repro.net.packet import Packet
from repro.nic.cache import ContextCache
from repro.nic.lifecycle import NicLifecycle
from repro.nic.pcie import PcieModel


class OffloadNic(PassthroughNic):
    """A NIC with autonomous L5P offload engines (ConnectX-6 Dx model)."""

    def __init__(self, host=None, cache_bytes: int = 4 * 1024 * 1024):
        super().__init__(host)
        self.pcie = PcieModel()
        self.cache = ContextCache(self.pcie, capacity_bytes=cache_bytes)
        self.driver = NicDriver(self)
        self.tx_engine = TxEngine(self)
        self.rx_engine = RxEngine(self)
        from repro.core.datagram import DatagramEngine

        self.datagram_engine = DatagramEngine(self)
        self.contexts_installed = 0
        self.obs = None  # repro.obs handle, wired at bind()
        # Epoch-batched per-packet counters (repro.obs cells); None until
        # bind() wires an Obs, so the off-path stays a pointer check.
        self._tx_pkts_cell = None
        self._rx_pkts_cell = None
        # Injected device faults (repro.faults NicFaultProfile) and their
        # dedicated rng substream; None means a fault-free device.
        self.faults = None
        self.fault_rng = None
        # Lifecycle fault domain (crash/reset/recovery); dormant until a
        # NicLifecycleProfile arms it.  The datapath gates on the plain
        # bool so an unarmed device pays one attribute check.
        self.lifecycle = NicLifecycle(self)
        self._offloads_online = True

    def bind(self, host) -> None:
        super().bind(host)
        # Pick up the run's observability handle (if any) and share it
        # with the components that have no path back to the simulator.
        self.obs = host.sim.obs if host is not None else None
        if self.obs is not None:
            self._tx_pkts_cell = self.obs.cell("nic.tx.pkts")
            self._rx_pkts_cell = self.obs.cell("nic.rx.pkts")
        # Rebinding swaps the Obs handle: drop the RX engine's cached
        # per-state cells so they re-resolve against the new registry.
        self.rx_engine._state_cells = None
        self.cache.wire(self.obs)
        self.cache.clock = (lambda: host.sim.now) if host is not None else None

    def install_faults(self, profile, rng) -> None:
        """Arm a NicFaultProfile-shaped object (duck-typed) against this
        device.  ``rng`` must be a dedicated substream so fault rolls
        never perturb the simulation's other draw sequences."""
        self.faults = profile
        self.fault_rng = rng
        self.cache.faults = profile
        self.cache.fault_rng = rng

    # ------------------------------------------------------------------
    # context lifecycle (called by the driver)
    # ------------------------------------------------------------------
    def context_installed(self, ctx: HwContext) -> None:
        self.contexts_installed += 1
        self.pcie.count("descriptor", 64)
        obs = self.obs
        if obs is not None:
            obs.count("driver.contexts.installed")
            obs.gauge("driver.contexts.active").inc()

    def context_removed(self, ctx: HwContext) -> None:
        self.cache.evict(ctx)
        self.pcie.count("descriptor", 64)
        obs = self.obs
        if obs is not None:
            obs.count("driver.contexts.removed")
            obs.gauge("driver.contexts.active").dec()

    # ------------------------------------------------------------------
    # datapath
    # ------------------------------------------------------------------
    def transmit(self, conn, pkt: Packet) -> None:
        cell = self._tx_pkts_cell
        if cell is not None:
            cell.value += 1
        if not self._offloads_online:
            # NIC not RUNNING: the driver's shadow transforms in software.
            self.lifecycle.transmit_offline(conn, pkt)
            self.output(pkt)
            return
        ctx = self.driver.lookup_tx(pkt.tx_ctx_id)
        if ctx is not None:
            san = _sanitizer_active()
            if san is None:
                self.tx_engine.process(ctx, conn, pkt)
            else:
                in_len = len(pkt.payload)
                self.tx_engine.process(ctx, conn, pkt)
                san.tx_packet(ctx, pkt.seq, in_len, len(pkt.payload))
        self.output(pkt)

    def transmit_datagram(self, flow, pkt: Packet) -> None:
        ctx = self.driver.dgram_tx_contexts.get(flow) if self._offloads_online else None
        if ctx is not None:
            self.datagram_engine.process_tx(ctx, pkt)
        self.output(pkt)

    def cache_datagram(self, ctx) -> None:
        self.cache.access(ctx)

    def receive(self, pkt: Packet) -> None:
        self.rx_packets += 1
        cell = self._rx_pkts_cell
        if cell is not None:
            cell.value += 1
        if not self._offloads_online:
            # NIC not RUNNING: nothing is decrypted/placed; the packet
            # passes through untouched to the L5P's software path.
            if pkt.ipproto != "udp":
                self.lifecycle.receive_offline(pkt)
            if self.host is None:
                raise RuntimeError("NIC not bound to a host")
            self.host.deliver(pkt)
            return
        if pkt.ipproto == "udp":
            ctx = self.driver.dgram_rx_contexts.get(pkt.flow)
            if ctx is not None:
                self.datagram_engine.process_rx(ctx, pkt)
        else:
            ctx = self.driver.lookup_rx(pkt.flow)
            if ctx is not None:
                san = _sanitizer_active()
                if san is None:
                    self.rx_engine.process(ctx, pkt)
                else:
                    entry_state = ctx.rx_state
                    entry_expected = ctx.expected_seq
                    entry_offloaded = pkt.meta.offloaded
                    in_len = len(pkt.payload)
                    self.rx_engine.process(ctx, pkt)
                    san.rx_packet(ctx, pkt, entry_state, entry_expected, in_len, entry_offloaded)
        if self.host is None:
            raise RuntimeError("NIC not bound to a host")
        self.host.deliver(pkt)

    # ------------------------------------------------------------------
    def offload_stats(self) -> dict:
        """Aggregate per-context statistics (for the benchmarks)."""
        stats = {
            "pkts_offloaded": 0,
            "pkts_bypassed": 0,
            "resync_requests": 0,
            "resyncs_completed": 0,
            "boundary_resyncs": 0,
            "tx_recoveries": 0,
            "tx_recovery_bytes": 0,
            "resync_retries": 0,
            "resync_failures": 0,
            "auto_disables": 0,
            "tx_sw_fallbacks": 0,
            "tx_recovery_failures": 0,
            "offload_disabled_flows": 0,
        }
        # Dense FlowTable iteration: no copies, no holes, O(active).
        for ctx in chain(self.driver.tx_contexts.values(), self.driver.rx_contexts.values()):
            stats["pkts_offloaded"] += ctx.pkts_offloaded
            stats["pkts_bypassed"] += ctx.pkts_bypassed
            stats["resync_requests"] += ctx.resync_requests
            stats["resyncs_completed"] += ctx.resyncs_completed
            stats["boundary_resyncs"] += ctx.boundary_resyncs
            stats["tx_recoveries"] += ctx.tx_recoveries
            stats["tx_recovery_bytes"] += ctx.tx_recovery_bytes
            stats["resync_retries"] += ctx.resync_retries
            stats["resync_failures"] += ctx.resync_failures
            stats["auto_disables"] += ctx.auto_disables
            stats["tx_sw_fallbacks"] += ctx.tx_sw_fallbacks
            stats["tx_recovery_failures"] += ctx.tx_recovery_failures
            stats["offload_disabled_flows"] += 1 if ctx.offload_disabled else 0
        return stats
