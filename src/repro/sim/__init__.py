"""Discrete-event simulation core.

Everything in the reproduction runs on top of a single-threaded,
deterministic event loop.  Time is a float in **seconds** of simulated
time; results are computed from simulated time, never wall-clock.
"""

from repro.sim.event import Event
from repro.sim.simulator import Simulator
from repro.sim.wheel import SCHEDULERS, HeapScheduler, SlottedWheel, default_scheduler

__all__ = ["Event", "Simulator", "SCHEDULERS", "HeapScheduler", "SlottedWheel", "default_scheduler"]
