"""The two-machine testbed from the paper's §6.

A Dell R730 "server" (the device under test: 2.0 GHz cores, offload
NIC) and an R640 "generator" (workload generator and remote-drive
target) connected back-to-back over 100 Gbps ConnectX-6 Dx ports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cpu.model import CostModel, DEFAULT_COST_MODEL
from repro.faults.plan import FaultPlan
from repro.net.host import Host
from repro.net.link import Link, LinkConfig
from repro.nic import OffloadNic
from repro.sim import Simulator
from repro.util.units import GBPS


@dataclass
class TestbedConfig:
    __test__ = False  # not a pytest collectable despite the name

    seed: int = 0
    server_cores: int = 1  # the DUT ("server" in the paper)
    generator_cores: int = 12  # the workload generator (R640: 12 cores/socket)
    bandwidth_bps: float = 100 * GBPS
    latency_s: float = 5e-6
    # Fault injection, per direction.
    loss_to_server: float = 0.0
    reorder_to_server: float = 0.0
    duplicate_to_server: float = 0.0
    loss_to_generator: float = 0.0
    reorder_to_generator: float = 0.0
    # Richer fault injection (repro.faults): bursty loss, corruption,
    # jitter, link flaps, NIC faults, and the degradation policy.  None
    # leaves every draw sequence untouched.
    faults: Optional[FaultPlan] = None
    model: CostModel = field(default_factory=lambda: DEFAULT_COST_MODEL)
    nic_cache_bytes: int = 4 * 1024 * 1024
    # Event-queue backend: "wheel" (slotted timers, default) or "heap";
    # None reads REPRO_SIM_SCHEDULER.  Results are identical either way.
    scheduler: Optional[str] = None
    # Enable the runtime invariant sanitizer (repro.analysis.sanitizer)
    # for this run; also switchable globally via REPRO_SANITIZE=1.
    sanitize: bool = False
    # Observability (repro.obs): per-component counters and, optionally,
    # a Chrome trace_event timeline.  Off by default: the datapath then
    # performs no metric work beyond a pointer check.
    metrics: bool = False
    trace: bool = False
    trace_limit: int = 200_000
    # Layer-5 protocols this scenario uses, resolved through the
    # repro.l5p.plugin registry at construction time: unknown or
    # duplicate names raise PluginError before the first packet moves.
    # Empty means "don't care" (endpoints still hit the driver-level
    # registry gate at l5o_create).
    protocols: tuple = ()


class Testbed:
    """Two hosts, one link; the server side is 'a', the generator 'b'."""

    __test__ = False  # not a pytest collectable despite the name

    def __init__(self, config: Optional[TestbedConfig] = None):
        self.config = config or TestbedConfig()
        cfg = self.config
        self.protocols = {}
        if cfg.protocols:
            from repro.l5p import plugin

            self.protocols = plugin.resolve(cfg.protocols)
        if cfg.sanitize:
            from repro.analysis import sanitizer

            sanitizer.enable()
        self.sim = Simulator(seed=cfg.seed, scheduler=cfg.scheduler)
        self.obs = None
        if cfg.metrics or cfg.trace:
            from repro.obs import Obs

            self.obs = Obs(self.sim, trace=cfg.trace, trace_limit=cfg.trace_limit)
            self.sim.obs = self.obs
        self.server = Host(
            self.sim,
            "server",
            model=cfg.model,
            cores=cfg.server_cores,
            nic=OffloadNic(cache_bytes=cfg.nic_cache_bytes),
        )
        self.generator = Host(
            self.sim,
            "generator",
            model=cfg.model,
            cores=cfg.generator_cores,
            nic=OffloadNic(cache_bytes=cfg.nic_cache_bytes),
        )
        plan = cfg.faults
        wire_to_generator = plan.to_generator if plan is not None else None
        wire_to_server = plan.to_server if plan is not None else None
        self.link = Link(
            self.sim,
            config_ab=LinkConfig(
                bandwidth_bps=cfg.bandwidth_bps,
                latency_s=cfg.latency_s,
                loss=cfg.loss_to_generator,
                reorder=cfg.reorder_to_generator,
                corrupt=wire_to_generator.corrupt if wire_to_generator else 0.0,
                jitter_s=wire_to_generator.jitter_s if wire_to_generator else 0.0,
            ),
            config_ba=LinkConfig(
                bandwidth_bps=cfg.bandwidth_bps,
                latency_s=cfg.latency_s,
                loss=cfg.loss_to_server,
                reorder=cfg.reorder_to_server,
                duplicate=cfg.duplicate_to_server,
                corrupt=wire_to_server.corrupt if wire_to_server else 0.0,
                jitter_s=wire_to_server.jitter_s if wire_to_server else 0.0,
            ),
        )
        self.server.attach_link(self.link, "a")
        self.generator.attach_link(self.link, "b")
        if plan is not None:
            self._install_faults(plan)
        if self.obs is not None:
            self._register_probes()

    def _install_faults(self, plan: FaultPlan) -> None:
        """Arm the plan's stateful injectors.  Each gets a dedicated rng
        substream so fault rolls never perturb the base simulation."""
        from repro.faults.inject import LinkFaultInjector

        if plan.to_generator is not None and (plan.to_generator.burst or plan.to_generator.flaps):
            self.link.ab.fault_injector = LinkFaultInjector(
                plan.to_generator, self.sim.substream("faults:link:to_generator")
            )
        if plan.to_server is not None and (plan.to_server.burst or plan.to_server.flaps):
            self.link.ba.fault_injector = LinkFaultInjector(
                plan.to_server, self.sim.substream("faults:link:to_server")
            )
        if plan.nic is not None:
            self.server.nic.install_faults(plan.nic, self.sim.substream("faults:nic:server"))
        if plan.degrade is not None:
            self.server.nic.driver.configure_degradation(plan.degrade)
            self.generator.nic.driver.configure_degradation(plan.degrade)
        if plan.lifecycle is not None:
            # Crash/reset fault domain on the DUT NIC (the server side —
            # where the offload contexts under test live).
            self.server.nic.lifecycle.arm(
                plan.lifecycle, self.sim.substream("faults:lifecycle:server")
            )

    # ------------------------------------------------------------------
    def _register_probes(self) -> None:
        """Attach pull-based metrics for everything that already keeps
        its own statistics; sampled only when a snapshot is taken."""
        obs = self.obs
        obs.probe("sim.events_fired", lambda: self.sim.events_fired)
        obs.probe("sim.now_ns", lambda: self.sim.now_ns)
        # Per-direction wire fault totals (drop/reorder/dup/corrupt, plus
        # injector counters when a FaultPlan armed one).
        obs.probe("link.to_generator", self.link.ab.counters)
        obs.probe("link.to_server", self.link.ba.counters)
        for host in (self.server, self.generator):
            name = host.name
            obs.probe(f"host.{name}.cpu.cycles", host.cpu.cycles_by_category)
            obs.probe(f"host.{name}.tcp.connections", lambda h=host: h.tcp.connection_count)
            obs.probe(f"host.{name}.nic.pcie.bytes", lambda h=host: dict(h.nic.pcie.bytes_by_category))
            obs.probe(
                f"host.{name}.nic.cache",
                lambda h=host: {
                    "hits": h.nic.cache.hits,
                    "misses": h.nic.cache.misses,
                    "occupancy": h.nic.cache.occupancy,
                },
            )
            obs.probe(f"host.{name}.nic.offload", lambda h=host: h.nic.offload_stats())

    # ------------------------------------------------------------------
    def run(self, until: float) -> None:
        self.sim.run(until=until)

    def reset_measurement(self) -> None:
        """Clear counters after warm-up so steady state is measured."""
        self.server.cpu.reset_stats()
        self.generator.cpu.reset_stats()
        self.server.nic.pcie.reset_stats()
        self.generator.nic.pcie.reset_stats()
        self.server.nic.cache.reset_stats()
        self.server.rx_batch_sizes.clear()
        if self.obs is not None:
            self.obs.metrics.reset()

    # ------------------------------------------------------------------
    # structured reporting (repro.obs)
    # ------------------------------------------------------------------
    def metrics_report(self) -> dict:
        """A structured snapshot of the run: config, clock, and every
        registered metric (push counters and pull probes alike)."""
        if self.obs is None:
            raise RuntimeError("metrics are not enabled; pass TestbedConfig(metrics=True)")
        cfg = self.config
        return {
            "config": {
                "seed": cfg.seed,
                "server_cores": cfg.server_cores,
                "generator_cores": cfg.generator_cores,
                "bandwidth_bps": cfg.bandwidth_bps,
                "loss_to_server": cfg.loss_to_server,
                "loss_to_generator": cfg.loss_to_generator,
                "nic_cache_bytes": cfg.nic_cache_bytes,
                "faults": cfg.faults.describe() if cfg.faults is not None else None,
            },
            "sim": {"now_ns": self.sim.now_ns, "events_fired": self.sim.events_fired},
            "metrics": self.obs.snapshot(),
        }

    def write_metrics(self, path: str) -> None:
        import json

        with open(path, "w") as fh:
            json.dump(self.metrics_report(), fh, indent=2, sort_keys=True, default=str)
            fh.write("\n")

    def write_trace(self, path: str) -> None:
        """Export the run's Chrome trace_event JSON (about:tracing /
        Perfetto); requires TestbedConfig(trace=True)."""
        if self.obs is None or self.obs.tracer is None:
            raise RuntimeError("tracing is not enabled; pass TestbedConfig(trace=True)")
        self.obs.write_trace(path)
