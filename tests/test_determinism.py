"""Reproducibility: identical seeds must produce bit-identical results —
the property that makes every benchmark number regenerable."""

from repro.experiments.iperf_tls import run_iperf
from repro.experiments.nginx_bench import run_nginx


class TestDeterminism:
    def test_iperf_identical_across_runs(self):
        a = run_iperf("tls-offload", direction="rx", streams=4, loss=0.02, seed=5,
                      warmup=3e-3, measure=4e-3)
        b = run_iperf("tls-offload", direction="rx", streams=4, loss=0.02, seed=5,
                      warmup=3e-3, measure=4e-3)
        assert a.goodput_gbps == b.goodput_gbps
        assert a.records == b.records
        assert a.dut_cycles == b.dut_cycles
        assert a.resyncs == b.resyncs

    def test_iperf_differs_across_seeds(self):
        a = run_iperf("tls-offload", direction="rx", streams=4, loss=0.02, seed=5,
                      warmup=3e-3, measure=4e-3)
        b = run_iperf("tls-offload", direction="rx", streams=4, loss=0.02, seed=6,
                      warmup=3e-3, measure=4e-3)
        # Different fault schedules: some observable difference must exist.
        assert (a.goodput_gbps, a.records) != (b.goodput_gbps, b.records)

    def test_nginx_identical_across_runs(self):
        kwargs = dict(storage="c2", file_size=65536, connections=8,
                      warmup=6e-3, measure=4e-3, seed=9)
        a = run_nginx("offload+zc", **kwargs)
        b = run_nginx("offload+zc", **kwargs)
        assert a.goodput_gbps == b.goodput_gbps
        assert a.requests == b.requests
        assert a.busy_cores == b.busy_cores
