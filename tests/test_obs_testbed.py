"""Integration tests: the observability layer wired through the §6
testbed — counters from the NIC datapath, probes, Chrome trace export,
and zero behavioral impact when enabled or disabled."""

import json

import pytest

from repro.apps.iperf import IperfClient, IperfServer
from repro.harness.testbed import Testbed, TestbedConfig
from repro.l5p.tls.ktls import TlsConfig


def run_tls_testbed(metrics=True, trace=False, loss=0.02, until=6e-3, seed=11):
    """Server transmits offloaded TLS toward the generator over a lossy
    link; returns (testbed, server_app)."""
    tb = Testbed(
        TestbedConfig(
            seed=seed,
            server_cores=1,
            generator_cores=2,
            loss_to_generator=loss,
            metrics=metrics,
            trace=trace,
        )
    )
    app = IperfServer(tb.generator, tls=TlsConfig(rx_offload=True))
    IperfClient(
        tb.server,
        "generator",
        streams=2,
        message_size=64 * 1024,
        tls=TlsConfig(tx_offload=True),
    )
    tb.run(until=until)
    return tb, app


class TestMetricsWiring:
    @pytest.fixture(scope="class")
    def run(self):
        return run_tls_testbed(metrics=True, trace=True)

    def test_datapath_counters_populated(self, run):
        tb, app = run
        assert app.total_bytes > 0
        counters = tb.obs.snapshot()["counters"]
        assert counters["nic.tx.pkts"] > 0
        assert counters["nic.rx.pkts"] > 0
        assert counters["driver.contexts.installed"] >= 2  # one per stream
        assert counters["walker.tx.offload.bytes"] > 0
        assert counters["l5p.tls.tx.bytes.offload"] > 0

    def test_loss_surfaces_in_tcp_and_recovery_counters(self, run):
        tb, _ = run
        counters = tb.obs.snapshot()["counters"]
        assert counters["tcp.retransmits"] > 0
        assert counters["nic.tx.recoveries"] > 0
        assert counters["nic.tx.recovery_dma_bytes"] > 0

    def test_gauges_and_probes(self, run):
        tb, _ = run
        snap = tb.obs.snapshot()
        assert snap["gauges"]["driver.contexts.active"] >= 1
        probes = snap["probes"]
        assert probes["sim.events_fired"] == tb.sim.events_fired
        assert probes["sim.now_ns"] == tb.sim.now_ns
        assert probes["host.server.nic.cache"]["hits"] > 0
        assert "app" in probes["host.server.cpu.cycles"] or probes["host.server.cpu.cycles"]

    def test_rx_batch_histogram(self, run):
        tb, _ = run
        hist = tb.obs.snapshot()["histograms"]["host.generator.rx_batch"]
        assert hist["count"] > 0
        assert hist["mean"] >= 1

    def test_metrics_report_shape(self, run):
        tb, _ = run
        report = tb.metrics_report()
        assert report["config"]["seed"] == 11
        assert report["sim"]["now_ns"] == tb.sim.now_ns
        assert set(report["metrics"]) == {"counters", "gauges", "histograms", "probes"}

    def test_write_metrics_json(self, run, tmp_path):
        tb, _ = run
        path = tmp_path / "metrics.json"
        tb.write_metrics(str(path))
        assert json.loads(path.read_text())["metrics"]["counters"]

    def test_trace_exports_chrome_json(self, run, tmp_path):
        tb, _ = run
        path = tmp_path / "trace.json"
        tb.write_trace(str(path))
        trace = json.loads(path.read_text())
        events = trace["traceEvents"]
        assert len(events) > 10
        phases = {e["ph"] for e in events}
        assert "M" in phases and "i" in phases and "X" in phases
        # Context lanes and core lanes got named threads.
        lanes = {e["args"]["name"] for e in events if e["ph"] == "M" and e["name"] == "thread_name"}
        assert any(lane.startswith("ctx/") for lane in lanes)
        assert any("core" in lane for lane in lanes)
        # Timestamps are the simulated clock in microseconds.
        ts = [e["ts"] for e in events if "ts" in e]
        assert ts and all(0 <= t <= tb.sim.now * 1e6 + 1 for t in ts)

    def test_reset_measurement_clears_counters(self):
        tb, _ = run_tls_testbed(metrics=True, until=3e-3)
        assert tb.obs.snapshot()["counters"]["nic.tx.pkts"] > 0
        tb.reset_measurement()
        assert tb.obs.snapshot()["counters"]["nic.tx.pkts"] == 0


class TestDisabledPath:
    def test_obs_off_by_default(self):
        tb = Testbed(TestbedConfig())
        assert tb.obs is None
        assert tb.sim.obs is None
        with pytest.raises(RuntimeError):
            tb.metrics_report()
        with pytest.raises(RuntimeError):
            tb.write_trace("/dev/null")

    def test_metrics_do_not_change_behavior(self):
        """Instrumentation must not perturb the simulation: identical
        seed with metrics on and off produces the identical run."""
        tb_off, app_off = run_tls_testbed(metrics=False, until=4e-3)
        tb_on, app_on = run_tls_testbed(metrics=True, trace=True, until=4e-3)
        assert app_on.total_bytes == app_off.total_bytes
        assert tb_on.sim.events_fired == tb_off.sim.events_fired
        assert tb_on.sim.now == tb_off.sim.now

    def test_trace_flag_alone_enables_obs(self):
        tb = Testbed(TestbedConfig(trace=True))
        assert tb.obs is not None and tb.obs.tracer is not None
