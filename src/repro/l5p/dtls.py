"""DTLS over UDP with the trivial datagram offload (paper §7).

Each record is one datagram: ``type(1) | version(2) | epoch_seq(8) |
length(2) | ciphertext | tag(16)``.  The per-record nonce comes from the
explicit epoch+sequence field, so every datagram is self-contained —
the NIC needs no stream position, no resync, and no software fallback;
loss and reordering simply do not concern the offload.

The handshake is modelled the same way as kTLS's (random exchange +
deterministic key derivation), over two datagrams with retry.
"""

from __future__ import annotations

import struct
from typing import Callable, Optional

from repro.core.datagram import DatagramAdapter
from repro.core.types import Direction
from repro.crypto.gcm import AuthenticationError
from repro.crypto.sha1 import sha1
from repro.crypto.suite import get_cipher_suite
from repro.l5p.tls.record import CONTENT_APPDATA, CONTENT_HANDSHAKE, VERSION
from repro.net.packet import FlowKey
from repro.udp.stack import MAX_DATAGRAM

HEADER_LEN = 13
TAG_LEN = 16
MAX_PAYLOAD = MAX_DATAGRAM - HEADER_LEN - TAG_LEN
_HELLO_LEN = 32
_RETRY_S = 20e-3


def make_record_header(ctype: int, epoch_seq: int, length: int) -> bytes:
    return struct.pack(">BHQH", ctype, VERSION, epoch_seq, length)


def parse_record(datagram: bytes) -> Optional[tuple[int, int, bytes, bytes]]:
    """Returns (type, epoch_seq, body, tag) or None if not a record."""
    if len(datagram) < HEADER_LEN + TAG_LEN:
        return None
    ctype, version, epoch_seq, length = struct.unpack(">BHQH", datagram[:HEADER_LEN])
    if version != VERSION or length != len(datagram) - HEADER_LEN:
        return None
    body = datagram[HEADER_LEN : len(datagram) - TAG_LEN]
    return ctype, epoch_seq, body, datagram[-TAG_LEN:]


def record_nonce(iv: bytes, epoch_seq: int) -> bytes:
    seq_bytes = epoch_seq.to_bytes(12, "big")
    return bytes(a ^ b for a, b in zip(iv, seq_bytes))


class DtlsAdapter(DatagramAdapter):
    """Per-datagram crypto; no dynamic state whatsoever."""

    name = "dtls"

    def tx_transform(self, state, payload: bytes) -> Optional[bytes]:
        parsed = parse_record(payload)
        if parsed is None or parsed[0] != CONTENT_APPDATA:
            return None
        ctype, epoch_seq, body, _dummy_tag = parsed
        header = payload[:HEADER_LEN]
        nonce = record_nonce(state.iv, epoch_seq)
        ciphertext, tag = state.suite.seal(state.key, nonce, body, aad=header)
        return header + ciphertext + tag

    def rx_transform(self, state, payload: bytes) -> Optional[tuple[bytes, bool]]:
        parsed = parse_record(payload)
        if parsed is None or parsed[0] != CONTENT_APPDATA:
            return None
        ctype, epoch_seq, body, tag = parsed
        header = payload[:HEADER_LEN]
        nonce = record_nonce(state.iv, epoch_seq)
        try:
            plain = state.suite.open(state.key, nonce, body, tag, aad=header)
        except AuthenticationError:
            return payload, False
        return header + plain + tag, True


class DtlsSocket:
    """Datagram-oriented secure socket over the host's UDP stack."""

    def __init__(self, host, peer: str, peer_port: int, role: str, port: Optional[int] = None,
                 suite_name: str = "xor-gcm", offload: bool = False):
        if role not in ("client", "server"):
            raise ValueError(f"bad role {role!r}")
        self.host = host
        self.peer = peer
        self.peer_port = peer_port
        self.role = role
        self.offload = offload
        self.suite = get_cipher_suite(suite_name)
        if port is None:
            self.port = host.udp.bind_ephemeral(self._on_datagram)
        else:
            self.port = host.udp.bind(port, self._on_datagram)
        self.core = host.core_for_flow(FlowKey(host.name, self.port, peer, peer_port))
        self.ready = False
        self.tx_seq = 0
        self.on_ready: Optional[Callable[[], None]] = None
        self.on_data: Optional[Callable[[bytes], None]] = None
        self.tx_state = None
        self.rx_state = None
        self._my_random = host.sim.substream(f"dtls:{role}:{host.name}:{self.port}").randbytes(_HELLO_LEN)
        self._peer_random: Optional[bytes] = None
        self._replay_window: set[int] = set()
        self._replay_horizon = 0
        self.stats = {"sent": 0, "received": 0, "offloaded_rx": 0, "sw_rx": 0, "auth_fail": 0, "replays": 0}
        if role == "client":
            self._send_hello()

    # ------------------------------------------------------------------
    # handshake
    # ------------------------------------------------------------------
    def _send_hello(self) -> None:
        body = self._my_random
        wire = make_record_header(CONTENT_HANDSHAKE, 0, len(body) + TAG_LEN) + body + b"\x00" * TAG_LEN
        self.host.udp.sendto(self.peer, self.peer_port, wire, sport=self.port)
        if not self.ready and self.role == "client":
            self.host.sim.schedule(_RETRY_S, self._retry_hello)

    def _retry_hello(self) -> None:
        if not self.ready:
            self._send_hello()

    def _derive(self) -> None:
        if self.role == "client":
            cr, sr = self._my_random, self._peer_random
        else:
            cr, sr = self._peer_random, self._my_random
        master = cr + sr

        class _State:
            pass

        def mk(prefix: bytes):
            s = _State()
            s.suite = self.suite
            s.key = sha1(prefix + b"key" + master)[:16]
            s.iv = sha1(prefix + b"iv" + master)[:12]
            return s

        client, server = mk(b"c"), mk(b"s")
        self.tx_state = client if self.role == "client" else server
        self.rx_state = server if self.role == "client" else client
        self.core.charge(self.host.model.cycles_tls_handshake, "crypto")
        if self.offload:
            driver = getattr(self.host.nic, "driver", None)
            if driver is None:
                raise RuntimeError("DTLS offload requires an OffloadNic")
            tx_flow = FlowKey(self.host.name, self.port, self.peer, self.peer_port)
            driver.l5o_create_datagram(tx_flow, DtlsAdapter(), self.tx_state, Direction.TX)
            driver.l5o_create_datagram(tx_flow.reversed(), DtlsAdapter(), self.rx_state, Direction.RX)
        self.ready = True
        if self.on_ready:
            self.on_ready()

    # ------------------------------------------------------------------
    # datapath
    # ------------------------------------------------------------------
    def send(self, data: bytes) -> None:
        """Protect and send one datagram (<= MAX_PAYLOAD bytes)."""
        if not self.ready:
            raise RuntimeError("DTLS handshake not complete")
        if len(data) > MAX_PAYLOAD:
            raise ValueError(f"datagram payload limited to {MAX_PAYLOAD}B")
        epoch_seq = self.tx_seq
        self.tx_seq += 1
        header = make_record_header(CONTENT_APPDATA, epoch_seq, len(data) + TAG_LEN)
        if self.offload:
            wire = header + data + b"\x00" * TAG_LEN  # NIC seals it
        else:
            nonce = record_nonce(self.tx_state.iv, epoch_seq)
            ciphertext, tag = self.suite.seal(self.tx_state.key, nonce, data, aad=header)
            wire = header + ciphertext + tag
            self.core.charge(
                self.host.model.cycles_crypto_setup + self.host.model.cpb_aes_gcm * (len(data) + TAG_LEN),
                "crypto",
            )
        self.stats["sent"] += 1
        self.host.udp.sendto(self.peer, self.peer_port, wire, sport=self.port)

    def _on_datagram(self, payload: bytes, flow: FlowKey, pkt) -> None:
        parsed = parse_record(payload)
        if parsed is None:
            return
        ctype, epoch_seq, body, tag = parsed
        if ctype == CONTENT_HANDSHAKE:
            if self._peer_random is None:
                self._peer_random = body[:_HELLO_LEN]
                if self.role == "server":
                    self._send_hello()
                self._derive()
            elif self.role == "server":
                self._send_hello()  # client retry: re-answer
            return
        if not self.ready:
            return
        if not self._replay_check(epoch_seq):
            self.stats["replays"] += 1
            return
        if pkt.meta.offloaded:
            ok = pkt.meta.decrypted
            plain = body
            self.stats["offloaded_rx"] += 1
        else:
            header = payload[:HEADER_LEN]
            nonce = record_nonce(self.rx_state.iv, epoch_seq)
            self.core.charge(
                self.host.model.cycles_crypto_setup + self.host.model.cpb_aes_gcm * len(payload), "crypto"
            )
            try:
                plain = self.suite.open(self.rx_state.key, nonce, body, tag, aad=header)
                ok = True
            except AuthenticationError:
                ok = False
                plain = b""
            self.stats["sw_rx"] += 1
        if not ok:
            self.stats["auth_fail"] += 1
            return
        self.stats["received"] += 1
        if self.on_data:
            self.on_data(plain)

    def _replay_check(self, epoch_seq: int) -> bool:
        """Sliding anti-replay window (RFC 6347 §4.1.2.6, simplified)."""
        if epoch_seq < self._replay_horizon or epoch_seq in self._replay_window:
            return False
        self._replay_window.add(epoch_seq)
        if len(self._replay_window) > 128:
            self._replay_horizon = max(self._replay_window) - 128
            self._replay_window = {s for s in self._replay_window if s >= self._replay_horizon}
        return True

    def close(self) -> None:
        self.host.udp.unbind(self.port)
