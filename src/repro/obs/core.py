"""The per-run observability handle.

One :class:`Obs` bundles a :class:`~repro.obs.metrics.MetricsRegistry`
and an optional :class:`~repro.obs.trace.Tracer` and hangs off the
:class:`~repro.sim.Simulator` (``sim.obs``).  Components reach it
through whatever already leads them to the simulator (``host.sim``,
``nic.host.sim``) and guard every instrumentation site with a single
``is not None`` check — when observability is off (the default),
``sim.obs`` is ``None`` and the datapath does no metric work at all.

Construct it *before* building hosts so components that cache the
handle at construction time see it.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.obs.metrics import Cell, Gauge, Histogram, MetricsRegistry, Number
from repro.obs.trace import Tracer


class Obs:
    """Metrics registry plus (optional) event tracer for one run."""

    def __init__(self, sim=None, trace: bool = False, trace_limit: int = 200_000):
        self.sim = sim
        self.metrics = MetricsRegistry()
        clock = (lambda: sim.now) if sim is not None else (lambda: 0.0)
        self.tracer: Optional[Tracer] = Tracer(clock, limit=trace_limit) if trace else None

    # ------------------------------------------------------------------
    # metric shorthands
    # ------------------------------------------------------------------
    def count(self, name: str, n: Number = 1) -> None:
        self.metrics.counter(name).inc(n)

    def cell(self, name: str) -> Cell:
        """Epoch-batched counter slot for per-packet hot paths; see
        :meth:`MetricsRegistry.cell`."""
        return self.metrics.cell(name)

    def gauge(self, name: str) -> Gauge:
        return self.metrics.gauge(name)

    def observe(self, name: str, value: Number, buckets: Optional[Sequence[float]] = None) -> Histogram:
        h = self.metrics.histogram(name, buckets)
        h.observe(value)
        return h

    def probe(self, name: str, fn: Callable[[], Any]) -> None:
        self.metrics.probe(name, fn)

    # ------------------------------------------------------------------
    # trace shorthands (no-ops when tracing is off)
    # ------------------------------------------------------------------
    def event(self, name: str, lane: str = "sim", cat: str = "sim", **args: Any) -> None:
        if self.tracer is not None:
            self.tracer.instant(name, lane=lane, cat=cat, **args)

    def span(self, name: str, start_s: float, duration_s: float, lane: str = "sim", **args: Any) -> None:
        if self.tracer is not None:
            self.tracer.complete(name, start_s, duration_s, lane=lane, **args)

    def sample(self, name: str, lane: str = "sim", **values: float) -> None:
        if self.tracer is not None:
            self.tracer.counter(name, lane=lane, **values)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        return self.metrics.snapshot()

    def write_trace(self, path: str) -> None:
        if self.tracer is None:
            raise RuntimeError("tracing was not enabled for this run")
        self.tracer.write(path)
