"""SIM012 — baseline metrics must stay reachable from benchmark code.

``python -m repro.obs.regress`` diffs ``benchmarks/out/<name>.json``
against ``benchmarks/baseline.json``.  The gate's weak spot is a
*rename*: change ``offload_gbps`` to ``offload_goodput`` in the
benchmark and the baseline key silently stops matching anything —
depending on gate options the stale baseline row becomes a zero
baseline that every future regression sails past.  This pass makes the
rename loud at lint time.

For every directory in the scanned set that contains a
``baseline.json``, each baseline benchmark entry is checked two ways:

- the benchmark **name** (``_quick`` suffix stripped) must appear as a
  string constant in some scanned module in that directory — otherwise
  nothing can ever emit it;
- every baseline **metric key**'s final dotted segment (the static
  counter name, e.g. ``tcp_gbps`` of ``loss0.tcp_gbps``) must appear
  inside a string constant of the emitting module(s), including
  f-string fragments — otherwise the counter was renamed or removed.

This is a :class:`~repro.analysis.lint.ProjectRule`: it runs once over
the scanned set and parses only the modules living next to a
``baseline.json``.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Iterable, Iterator, Optional

from repro.analysis.lint import Finding, ProjectRule, SourceModule

_BASELINE_FILENAME = "baseline.json"
_QUICK_SUFFIX = "_quick"


def _string_constants(module: SourceModule) -> set:
    """Every string constant in the module, f-string fragments included."""
    out: set = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            out.add(node.value)
    return out


def _line_of_constant(module: SourceModule, needle: str) -> int:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str) and needle in node.value:
            return getattr(node, "lineno", 1)
    return 1


class MetricBaselineRule(ProjectRule):
    code = "SIM012"
    name = "metric-baseline-consistency"
    description = "every baseline.json metric must be producible by a scanned benchmark module"
    family = "consistency"

    def check_project(self, modules) -> Iterable[Finding]:
        by_dir: dict = {}
        for path in modules.paths:
            by_dir.setdefault(path.parent, []).append(path)
        for directory, files in sorted(by_dir.items()):
            baseline_path = directory / _BASELINE_FILENAME
            if baseline_path.exists():
                yield from self._check_baseline(baseline_path, files, modules)

    # ------------------------------------------------------------------
    def _check_baseline(self, baseline_path: Path, files: list, modules) -> Iterator[Finding]:
        try:
            baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
        except (ValueError, OSError) as exc:
            yield Finding(str(baseline_path), 1, 1, self.code, f"unreadable baseline: {exc}")
            return
        benchmarks = baseline.get("benchmarks")
        if not isinstance(benchmarks, dict):
            yield Finding(
                str(baseline_path), 1, 1, self.code, "baseline has no `benchmarks` mapping"
            )
            return

        constants: dict = {}  # path -> set of string constants
        for path in files:
            module = modules.load(path)
            if module is not None:
                constants[path] = _string_constants(module)

        for name, entry in sorted(benchmarks.items()):
            base = name[: -len(_QUICK_SUFFIX)] if name.endswith(_QUICK_SUFFIX) else name
            emitters = [path for path, consts in sorted(constants.items()) if base in consts]
            if not emitters:
                yield Finding(
                    str(baseline_path),
                    1,
                    1,
                    self.code,
                    f"baseline entry `{name}`: no scanned benchmark module contains the "
                    f"string `{base}` — nothing can emit it, so the gate row is dead",
                )
                continue
            metrics = entry.get("metrics", {})
            if not isinstance(metrics, dict):
                continue
            missing = sorted(
                {
                    leaf
                    for leaf in (key.rsplit(".", 1)[-1] for key in metrics)
                    if not self._leaf_reachable(leaf, emitters, constants)
                }
            )
            for leaf in missing:
                anchor = emitters[0]
                yield Finding(
                    str(anchor),
                    _line_of_constant(modules.load(anchor), base),
                    1,
                    self.code,
                    f"baseline `{name}` expects metric `*.{leaf}` but no string constant in "
                    f"{', '.join(p.name for p in emitters)} mentions `{leaf}`: the counter was "
                    "renamed or removed — update benchmarks/baseline.json to match",
                )

    @staticmethod
    def _leaf_reachable(leaf: str, emitters: list, constants: dict) -> bool:
        for path in emitters:
            for const in constants[path]:
                if leaf in const:
                    return True
        return False
