"""Plugin protocols (HTTP/2 + RESP): offload sweep and the registry-wide
magic-pattern false-positive study.

No paper figure covers these — they are the §7 "applicability"
argument made executable through the L5Protocol plugin registry:

1. **Offload sweep** — each plugin protocol, offload on/off, across a
   loss sweep.  The loss points are the resync-speculation stress
   profile: HTTP/2 responses use deliberately non-uniform frame lengths
   and RESP clients pipeline many short inline commands per packet, so
   recovery can never ride a fixed record cadence.  Emitted metrics
   include the NIC's resync counters.
2. **False-positive study** — seeded random windows scanned by every
   registered protocol's TCAM mask and full ``check_magic``.  Gates two
   invariants of the plugin contract: the mask is a *necessary*
   condition of the full check (mask misses imply check misses), and
   the measured full-check rate stays within the declared
   ``MagicSpec.confidence`` bound.  Hit counts are integers, so the
   baseline comparison is bit-identical.
"""

import random

from benchlib import QUICK, loss_pct
from repro.exec import run_grid_dict
from repro.experiments.l5p_plugins import run_l5p_point
from repro.harness.report import Table
from repro.l5p import plugin

SEED = 23
LOSS_POINTS = (0.0, 0.02) if QUICK else (0.0, 0.01, 0.03)
OPS = {"http2": 12, "resp": 16} if QUICK else {"http2": 48, "resp": 64}
UNTIL = 1.0 if QUICK else 2.0

FP_WINDOWS = 80_000 if QUICK else 300_000
FP_SEED = 7


def run_point(point):
    proto, offload, loss = point
    return run_l5p_point(
        proto=proto, offload=offload, loss=loss, ops=OPS[proto], seed=SEED, until=UNTIL
    )


def sweep():
    points = [
        (proto, offload, loss)
        for proto in ("http2", "resp")
        for offload in (True, False)
        for loss in LOSS_POINTS
    ]
    return run_grid_dict(points, run_point)


def false_positive_study():
    """Slide seeded random windows past every registered protocol."""
    plugin.ensure_builtins()
    protos = plugin.registered()
    width = max(len(p.magic.pattern) for p in protos)
    rng = random.Random(FP_SEED)
    data = rng.randbytes(FP_WINDOWS + width)

    scans = []
    for proto in protos:
        adapter = proto.factory()
        size = len(proto.magic.pattern)
        mask = int.from_bytes(proto.magic.mask, "big")
        want = int.from_bytes(proto.magic.pattern, "big") & mask
        scans.append((proto, adapter, size, mask, want, [0, 0]))

    for i in range(FP_WINDOWS):
        for proto, adapter, size, mask, want, hits in scans:
            window = data[i : i + size]
            mask_hit = int.from_bytes(window, "big") & mask == want
            magic_hit = adapter.check_magic(window, None)
            hits[0] += mask_hit
            hits[1] += magic_hit
            # Contract invariant: the TCAM mask is a necessary condition
            # of the full check — it may over-accept, never under-accept.
            assert not (magic_hit and not mask_hit), (
                f"{proto.name}: check_magic accepted a window its mask rejects"
            )
    return {proto.name: tuple(hits) for proto, _, _, _, _, hits in scans}


def test_fig_l5p_plugins(benchmark, emit):
    grid, fp = benchmark.pedantic(
        lambda: (sweep(), false_positive_study()), rounds=1, iterations=1
    )

    table = Table(
        ["protocol", "offload", "loss", "ops", "offloaded %", "Mcycles", "resyncs"],
        title=(
            "Plugin protocols: HTTP/2 frame placement and RESP inline "
            f"steering (closed loop, seed {SEED})"
        ),
    )
    metrics = {}
    for (proto, offload, loss), run in grid.items():
        mode = "off" if offload else "sw"
        key = f"{proto}.{mode}.{loss_pct(loss)}"
        cycles = sum(run.dut_cycles.values())
        table.row(
            proto,
            mode,
            f"{100 * loss:.0f}%",
            run.completed,
            f"{100 * run.offloaded_fraction:.0f}%",
            cycles / 1e6,
            run.nic_stats["resyncs_completed"],
        )
        metrics[f"{key}.completed"] = run.completed
        metrics[f"{key}.offloaded_frac"] = run.offloaded_fraction
        metrics[f"{key}.mcycles"] = cycles / 1e6
        metrics[f"{key}.resync_requests"] = run.nic_stats["resync_requests"]
        metrics[f"{key}.resyncs_completed"] = run.nic_stats["resyncs_completed"]
        metrics[f"{key}.boundary_resyncs"] = run.nic_stats["boundary_resyncs"]
        metrics[f"{key}.resync_failures"] = run.nic_stats["resync_failures"]

    fp_table = Table(
        ["protocol", "mask hits", "check_magic hits", "rate", "declared bound"],
        title=f"Magic false positives over {FP_WINDOWS} random windows (seed {FP_SEED})",
    )
    for name, (mask_hits, magic_hits) in sorted(fp.items()):
        bound = plugin.get(name).magic.confidence
        rate = magic_hits / FP_WINDOWS
        fp_table.row(name, mask_hits, magic_hits, f"{rate:.2e}", f"{bound:.0e}")
        metrics[f"fp.{name}.mask_hits"] = mask_hits
        metrics[f"fp.{name}.magic_hits"] = magic_hits
        # The declared confidence is an upper bound on the measured rate.
        assert rate <= bound, f"{name}: measured FP rate {rate:.2e} exceeds bound {bound:.0e}"
    metrics["fp.windows"] = FP_WINDOWS

    emit(
        "fig_l5p_plugins",
        table.render() + "\n\n" + fp_table.render(),
        metrics=metrics,
        meta={"seed": SEED, "loss_points": list(LOSS_POINTS), "ops": OPS},
    )

    # Offload engages fully on clean links and saves DUT cycles.
    h2_off = grid[("http2", True, 0.0)]
    h2_sw = grid[("http2", False, 0.0)]
    assert h2_off.completed == OPS["http2"] and h2_sw.completed == OPS["http2"]
    assert h2_off.offloaded_fraction == 1.0
    assert sum(h2_off.dut_cycles.values()) < sum(h2_sw.dut_cycles.values())
    resp_off = grid[("resp", True, 0.0)]
    resp_sw = grid[("resp", False, 0.0)]
    assert resp_off.completed == OPS["resp"] and resp_sw.completed == OPS["resp"]
    assert resp_off.offloaded_fraction >= 0.8
    assert sum(resp_off.dut_cycles.values()) < sum(resp_sw.dut_cycles.values())
    # The stress profile exercised the resync machinery (the lossy HTTP/2
    # points via dropped frames; RESP at least via the pipelined-on-the-
    # handshake install race) and never left a flow failed.
    worst = max(LOSS_POINTS)
    assert grid[("http2", True, worst)].nic_stats["resync_requests"] > 0
    assert resp_off.nic_stats["resync_requests"] > 0
    for run in grid.values():
        assert run.nic_stats["resync_failures"] == 0
        assert run.completed > 0
