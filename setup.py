"""Legacy setup shim.

The environment ships a setuptools without wheel support, so editable
installs need the classic ``setup.py develop`` path.  All metadata lives
in pyproject.toml.
"""

from setuptools import setup

setup()
