"""SARIF 2.1.0 output for the analysis pipeline.

CI uploads this as an artifact (and code-scanning UIs ingest it), so
every registered rule gets a ``reportingDescriptor`` with its family
and description, and each finding becomes a ``result`` with a physical
location.  The emitter is deliberately minimal: one run, one tool, no
fixes/graphs — enough to be valid under the 2.1.0 schema.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.lint import SYNTAX_ERROR_CODE, UNUSED_SUPPRESSION_CODE, Finding, LintRule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

#: Pipeline-level pseudo-rules that are not in the registry but can
#: appear in findings.
_PSEUDO_RULES = (
    (UNUSED_SUPPRESSION_CODE, "unused-suppression", "a `# sim: noqa[...]` comment matched no finding"),
    (SYNTAX_ERROR_CODE, "syntax-error", "the file could not be parsed"),
)


def _descriptor(code: str, name: str, description: str, family: str = "pipeline") -> dict:
    return {
        "id": code,
        "name": name,
        "shortDescription": {"text": description or name},
        "properties": {"family": family},
    }


def to_sarif(findings: Sequence[Finding], rules: Sequence[LintRule]) -> dict:
    """Render findings as a SARIF 2.1.0 log (a JSON-ready dict)."""
    descriptors = [_descriptor(r.code, r.name, r.description, r.family) for r in rules]
    known = {r.code for r in rules}
    for code, name, description in _PSEUDO_RULES:
        if code not in known:
            descriptors.append(_descriptor(code, name, description))
    results = []
    for finding in findings:
        results.append(
            {
                "ruleId": finding.code,
                "level": "warning" if finding.code == UNUSED_SUPPRESSION_CODE else "error",
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": finding.path.replace("\\", "/")},
                            "region": {"startLine": finding.line, "startColumn": finding.col},
                        }
                    }
                ],
            }
        )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analysis",
                        "informationUri": "https://github.com/",
                        "rules": descriptors,
                    }
                },
                "results": results,
            }
        ],
    }
