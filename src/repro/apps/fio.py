"""fio: random-read/write workload against an NVMe-TCP namespace.

Figure 10's microbenchmark: random reads of a fixed size with a given
I/O depth, one core doing all the work, reporting cycles per request
broken into crc / copy / other / idle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.l5p.nvme_tcp.host import NvmeTcpHost


@dataclass
class FioStats:
    completed: int = 0
    bytes_done: int = 0
    latencies: list = field(default_factory=list)
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def iops(self) -> float:
        elapsed = self.finished_at - self.started_at
        return self.completed / elapsed if elapsed > 0 else 0.0

    @property
    def mean_latency(self) -> float:
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0.0


class FioJob:
    """Keeps ``iodepth`` random requests outstanding on one queue pair."""

    def __init__(
        self,
        nvme: NvmeTcpHost,
        block_size: int,
        iodepth: int,
        span_bytes: int = 8 << 30,
        mode: str = "randread",
        total_requests: Optional[int] = None,
        seed: int = 0,
    ):
        if mode not in ("randread", "randwrite"):
            raise ValueError(f"unsupported fio mode {mode!r}")
        self.nvme = nvme
        self.block_size = block_size
        self.iodepth = iodepth
        self.span_blocks = max(1, span_bytes // block_size)
        self.mode = mode
        self.total_requests = total_requests
        self.rng = nvme.host.sim.substream(f"fio:{seed}")
        self.stats = FioStats()
        self._issued = 0
        self._stopped = False
        self._write_payload = bytes(block_size)

    # ------------------------------------------------------------------
    def start(self) -> None:
        self.stats.started_at = self.nvme.host.sim.now
        if self.nvme.ready:
            self._fill()
        else:
            previous = self.nvme.on_ready

            def ready():
                if previous:
                    previous()
                self.stats.started_at = self.nvme.host.sim.now
                self._fill()

            self.nvme.on_ready = ready

    def stop(self) -> None:
        self._stopped = True

    def _fill(self) -> None:
        while not self._done_issuing() and self.nvme.inflight + len(self.nvme._waiting) < self.iodepth:
            self._issue_one()

    def _done_issuing(self) -> bool:
        if self._stopped:
            return True
        return self.total_requests is not None and self._issued >= self.total_requests

    def _issue_one(self) -> None:
        offset = self.rng.randrange(self.span_blocks) * self.block_size
        self._issued += 1
        if self.mode == "randread":
            self.nvme.read(offset, self.block_size, self._read_done)
        else:
            self.nvme.write(offset, self._write_payload, self._write_done)

    def _read_done(self, data: bytes, latency: float) -> None:
        self._complete(len(data), latency)

    def _write_done(self, latency: float) -> None:
        self._complete(self.block_size, latency)

    def _complete(self, nbytes: int, latency: float) -> None:
        self.stats.completed += 1
        self.stats.bytes_done += nbytes
        self.stats.latencies.append(latency)
        self.stats.finished_at = self.nvme.host.sim.now
        self._fill()

    @property
    def done(self) -> bool:
        return self._done_issuing() and self.nvme.inflight == 0 and not self.nvme._waiting
