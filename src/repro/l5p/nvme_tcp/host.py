"""NVMe-TCP initiator (the paper's "host" / client side, §5.1).

Reads allocate a block-layer buffer, register it under the command's CID
with the NIC (``l5o_add_rr_state``) so C2HData payloads can be placed
directly (Figure 9), and fall back to software memcpy + CRC for PDUs the
NIC did not fully handle.  Writes carry in-capsule data whose data
digest is either computed in software or left dummy for the NIC to fill.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.types import Direction, TxMsgState
from repro.l5p.base import StreamAssembler
from repro.l5p.nvme_tcp import pdu as P
from repro.l5p import plugin
from repro.l5p.nvme_tcp.pdu import NvmeConfig
from repro.tcp import seq as sq


@dataclass
class _Request:
    cid: int
    opcode: int
    slba: int
    length: int
    buffer: bytearray
    on_complete: Callable
    issued_at: float
    data_failures: int = 0
    write_data: bytes = b""  # retained for R2T-solicited transfers


@dataclass
class NvmeHostStats:
    reads: int = 0
    writes: int = 0
    pdus_rx: int = 0
    pdus_placed: int = 0  # C2HData fully placed + CRC-verified by the NIC
    pdus_software: int = 0
    digest_failures: int = 0
    io_failures: int = 0  # detected I/O or framing failures (on_error set)
    offload_degraded: int = 0  # driver gave up on this flow's offload
    bytes_read: int = 0
    bytes_written: int = 0
    latencies: list = field(default_factory=list)


class NvmeTcpHost:
    """One NVMe-TCP queue pair mapped to one TCP socket."""

    def __init__(self, host, config: Optional[NvmeConfig] = None, tls=None):
        self.host = host
        self.config = config or NvmeConfig()
        self.tls_config = tls
        self.model = host.model
        self.digest_cls = P.get_digest(self.config.digest_name)
        self.conn = None
        self.core = None
        self.ktls = None
        self.ready = False
        self.on_ready: Optional[Callable[[], None]] = None
        # When set, detected failures (bad status, digest mismatch,
        # framing desync) are reported here instead of raising — fault
        # injection runs keep going and count them.
        self.on_error: Optional[Callable[[str], None]] = None

        self._free_cids: deque[int] = deque(range(self.config.queue_depth))
        self._inflight: dict[int, _Request] = {}
        self._waiting: deque[tuple] = deque()
        self._outq: deque[tuple[bytes, bool]] = deque()  # (wire, track)
        self._assembler: Optional[StreamAssembler] = None
        self._rx_ctx = None
        self._tx_ctx = None
        self._tx_msgs: deque[tuple[int, int, bytes]] = deque()
        self._tx_msg_count = 0
        self._pending_resync: list[int] = []
        self.stats = NvmeHostStats()

    # ------------------------------------------------------------------
    # connection setup
    # ------------------------------------------------------------------
    def connect(self, target: str, port: int = 4420, on_ready: Optional[Callable] = None) -> None:
        self.on_ready = on_ready
        self.conn = self.host.tcp.connect(target, port)
        self.core = self.host.core_for_flow(self.conn.flow)
        if self.tls_config is not None:
            self._connect_tls()
        else:
            self.conn.on_data = self._on_skb
            self.conn.on_established = self._go_ready
            self.conn.on_writable = self._on_writable

    def _connect_tls(self) -> None:
        from repro.l5p.nvme_tls import PlainTxMap
        from repro.l5p.tls.ktls import KtlsSocket

        adapter = None
        self._tls_tx_map = PlainTxMap()
        if self.tls_config.tx_offload or self.tls_config.rx_offload:
            adapter = plugin.make_adapter("nvme-tls", nvme_config=self.config)
            adapter.inner_tx_ops = self._tls_tx_map
        self.ktls = KtlsSocket(self.host, self.conn, "client", self.tls_config, adapter=adapter)
        self.ktls.on_record = self._on_tls_record
        self.ktls.on_ready = self._go_ready
        self.ktls.on_writable = self._on_writable
        self.ktls.on_reattach = self._on_tls_reattach

    def _on_tls_reattach(self, direction: str) -> None:
        """Stacked NVMe-TLS: the kTLS socket re-installed its context
        after a NIC reset; refresh our cached handles and re-register
        in-flight READ placement state on the new RX context."""
        if direction == Direction.RX.value:
            self._rx_ctx = self.ktls._rx_ctx
            if self._rx_ctx is not None and self.config.rx_offload_copy:
                driver = self.host.nic.driver
                for cid, req in self._inflight.items():
                    if req.opcode == P.OPC_READ:
                        driver.l5o_add_rr_state(self._rx_ctx, cid, req.buffer)
        else:
            self._tx_ctx = self.ktls._tx_ctx

    def _go_ready(self) -> None:
        self._install_offloads()
        self.ready = True
        if self.on_ready:
            self.on_ready()
        self._drain_waiting()

    def _install_offloads(self) -> None:
        driver = getattr(self.host.nic, "driver", None)
        if self.tls_config is not None:
            # Combined NVMe-TLS: the stacked adapter owns the HW contexts;
            # placement state is registered on the TLS RX context.
            self._rx_ctx = self.ktls._rx_ctx
            self._tx_ctx = self.ktls._tx_ctx
            return
        if self.config.rx_offload:
            if driver is None:
                raise RuntimeError("NVMe RX offload requires an OffloadNic")
            adapter = plugin.make_adapter("nvme-tcp", config=self.config, place=self.config.rx_offload_copy)
            self._rx_ctx = driver.l5o_create(
                self.conn, adapter, None, tcpsn=self.conn.rcv_nxt, direction=Direction.RX, l5p_ops=self
            )
        if self.config.tx_offload:
            if driver is None:
                raise RuntimeError("NVMe TX offload requires an OffloadNic")
            adapter = plugin.make_adapter("nvme-tcp", config=self.config)
            self._tx_ctx = driver.l5o_create(
                self.conn,
                adapter,
                None,
                tcpsn=self.conn.send_buffer.end_seq,
                direction=Direction.TX,
                l5p_ops=self,
            )

    # ------------------------------------------------------------------
    # block I/O API
    # ------------------------------------------------------------------
    def read(self, slba: int, length: int, on_complete: Callable[[bytes, float], None]) -> None:
        """Read ``length`` bytes at byte address ``slba``; completion gets
        ``(data, latency_seconds)``."""
        self._submit(P.OPC_READ, slba, length, b"", on_complete)

    def write(self, slba: int, data: bytes, on_complete: Callable[[float], None]) -> None:
        self._submit(P.OPC_WRITE, slba, len(data), data, on_complete)

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    def _submit(self, opcode, slba, length, data, on_complete) -> None:
        self._waiting.append((opcode, slba, length, data, on_complete))
        self._drain_waiting()

    def _drain_waiting(self) -> None:
        if not self.ready:
            return
        while self._waiting and self._free_cids and not self._outq:
            opcode, slba, length, data, on_complete = self._waiting[0]
            wire_len = P.CH_LEN + P.PSH_LEN[P.TYPE_CAPSULE_CMD] + len(data) + P.DDGST_LEN
            if self._send_space() < wire_len:
                break
            self._waiting.popleft()
            self._issue(opcode, slba, length, data, on_complete)

    def _send_space(self) -> int:
        if self.ktls is not None:
            return self.ktls.send_space
        return self.conn.send_space

    def _issue(self, opcode, slba, length, data, on_complete) -> None:
        cid = self._free_cids.popleft()
        req = _Request(cid, opcode, slba, length, bytearray(length), on_complete, self.host.sim.now)
        self._inflight[cid] = req
        self.host.llc.occupy(length)
        self.core.charge(self.model.cycles_block_io, "stack")

        if opcode == P.OPC_READ:
            self.stats.reads += 1
            if self._rx_ctx is not None and self.config.rx_offload_copy:
                self.host.nic.driver.l5o_add_rr_state(self._rx_ctx, cid, req.buffer)
            wire = P.build_pdu(P.TYPE_CAPSULE_CMD, P.make_sqe(opcode, cid, slba, length), b"", self.digest_cls, False)
            # Tracked even though a READ capsule needs no transform: TX
            # recovery must find message state covering *any* un-acked
            # sequence (retransmits, post-reset reattach).
            self._send_wire(wire, track=self._tx_ctx is not None)
        else:
            self.stats.writes += 1
            self.stats.bytes_written += length
            offloaded_tx = self._tx_ctx is not None
            if length > self.config.inline_write_limit:
                # Spec-shaped large write: command first, data follows
                # in H2CData PDUs once the target sends R2T.
                req.write_data = bytes(data)
                wire = P.build_pdu(
                    P.TYPE_CAPSULE_CMD, P.make_sqe(opcode, cid, slba, length), b"", self.digest_cls, False
                )
                self._send_wire(wire, track=offloaded_tx)
                return
            wire = P.build_pdu(
                P.TYPE_CAPSULE_CMD,
                P.make_sqe(opcode, cid, slba, length),
                bytes(data),
                self.digest_cls,
                self.config.data_digest,
                dummy_digest=offloaded_tx,
            )
            # The user-to-kernel copy happens either way.
            self.core.charge(length * self.host.llc.copy_cpb(), "copy")
            if not offloaded_tx and self.config.data_digest:
                self.core.charge(length * self.host.llc.touch_cpb(self.model.cpb_crc32c), "crc")
            self._send_wire(wire, track=offloaded_tx)

    def _send_wire(self, wire: bytes, track: bool = False) -> None:
        """Queue one PDU for transmission with backpressure."""
        self.core.charge(self.model.cycles_pdu, "l5p")
        self._outq.append((wire, track))
        self._flush_out()

    def _flush_out(self) -> None:
        while self._outq:
            wire, track = self._outq[0]
            if self.ktls is not None:
                if not self.ktls.ready or self.ktls.send_space < len(wire):
                    return
                self._outq.popleft()
                if track:
                    self._track_tls_tx(wire)
                sent = self.ktls.send(wire)
                if track:
                    oldest = self.ktls._tx_msgs[0][3] if self.ktls._tx_msgs else self.ktls._tx_plain_sent
                    self._tls_tx_map.prune(oldest)
            else:
                if self.conn.send_space < len(wire):
                    return
                self._outq.popleft()
                if track:
                    start = self.conn.send_buffer.end_seq
                    self._tx_msgs.append((start, self._tx_msg_count, wire))
                    self._tx_msg_count += 1
                sent = self.conn.send(wire)
            if sent != len(wire):
                raise RuntimeError("PDU split across send buffer boundary")

    def _track_tls_tx(self, wire: bytes) -> None:
        # Record the PDU's plaintext-stream start so the stacked adapter
        # can replay the covering PDU during inner TX recovery (§5.3).
        self._tls_tx_map.track(self.ktls.stats.bytes_tx, wire)

    def _on_writable(self) -> None:
        una = self.conn.snd_una
        while self._tx_msgs and sq.le(sq.add(self._tx_msgs[0][0], len(self._tx_msgs[0][2])), una):
            self._tx_msgs.popleft()
        self._flush_out()
        self._drain_waiting()

    # ------------------------------------------------------------------
    # Listing 2 upcalls
    # ------------------------------------------------------------------
    def l5o_get_tx_msgstate(self, tcpsn: int) -> Optional[TxMsgState]:
        for start, idx, wire in self._tx_msgs:
            if sq.between(start, tcpsn, sq.add(start, len(wire))):
                return TxMsgState(start_seq=start, msg_index=idx, wire_bytes=wire)
        return None

    def l5o_offload_degraded(self, direction: str, reason: str) -> None:
        """The driver gave up on this flow's offload (paper §5.3's
        permanent software fallback); the queue pair keeps working."""
        self.stats.offload_degraded += 1

    def l5o_nic_reattach(self, direction: str):
        """Re-install this queue pair's context after a NIC reset.

        TX restarts at the head of the un-acked PDU queue, RX at the
        next PDU boundary the assembler expects; in-flight READ buffers
        are re-registered so C2HData placement resumes (Figure 9).  In
        stacked NVMe-TLS mode the kTLS socket owns the contexts and gets
        the upcall instead (see :meth:`_on_tls_reattach`)."""
        if not self.ready or self.conn is None or self.conn.state == "closed":
            return None
        if self.tls_config is not None:
            return None  # the stacked KtlsSocket re-installs for us
        driver = self.host.nic.driver
        if direction == Direction.RX.value:
            adapter = plugin.make_adapter("nvme-tcp", config=self.config, place=self.config.rx_offload_copy)
            tcpsn = self._assembler.next_msg_seq if self._assembler else self.conn.rcv_nxt
            self._rx_ctx = driver.l5o_create(
                self.conn,
                adapter,
                None,
                tcpsn=tcpsn,
                direction=Direction.RX,
                l5p_ops=self,
                msg_index=self.stats.pdus_rx,
            )
            if self.config.rx_offload_copy:
                for cid, req in self._inflight.items():
                    if req.opcode == P.OPC_READ:
                        driver.l5o_add_rr_state(self._rx_ctx, cid, req.buffer)
            return self._rx_ctx
        adapter = plugin.make_adapter("nvme-tcp", config=self.config)
        if self._tx_msgs:
            start, idx, _wire = self._tx_msgs[0]
        else:
            start, idx = self.conn.send_buffer.end_seq, self._tx_msg_count
        self._tx_ctx = driver.l5o_create(
            self.conn,
            adapter,
            None,
            tcpsn=start,
            direction=Direction.TX,
            l5p_ops=self,
            msg_index=idx,
        )
        self._tx_ctx.created_seq = start
        return self._tx_ctx

    def l5o_resync_rx_req(self, tcpsn: int) -> None:
        self._pending_resync.append(tcpsn)

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def _on_skb(self, skb) -> None:
        if self._assembler is None:
            self._assembler = StreamAssembler(P.CH_LEN, P.pdu_total_len, start_seq=skb.seq)
        self._ingest(skb.data, skb.meta)

    def _on_tls_record(self, runs) -> None:
        if self._assembler is None:
            self._assembler = StreamAssembler(P.CH_LEN, P.pdu_total_len, start_seq=0)
        for run in runs:
            self._ingest(run.data, run.meta)

    def _ingest(self, data, meta) -> None:
        try:
            messages = self._assembler.push(data, meta)
        except ValueError as exc:
            if self.on_error is not None:
                self.stats.io_failures += 1
                self.on_error(f"NVMe-TCP stream framing error: {exc}")
                return
            raise RuntimeError(f"NVMe-TCP stream framing error: {exc}") from None
        for msg in messages:
            self._on_pdu(msg)

    def _on_pdu(self, msg) -> None:
        self.stats.pdus_rx += 1
        self.core.charge(self.model.cycles_pdu, "l5p")
        wire = msg.wire
        pdu_type = wire[0]
        has_digest = bool(wire[1] & P.FLAG_DDGST)
        self._answer_resyncs(msg)
        if pdu_type == P.TYPE_C2H_DATA:
            self._on_c2h_data(msg, has_digest)
        elif pdu_type == P.TYPE_CAPSULE_RESP:
            self._on_resp(wire)
        elif pdu_type == P.TYPE_R2T:
            self._on_r2t(wire)
        # Other types are ignored by the initiator.

    def _on_c2h_data(self, msg, has_digest: bool) -> None:
        wire = msg.wire
        psh = wire[P.CH_LEN : P.CH_LEN + P.PSH_LEN[P.TYPE_C2H_DATA]]
        cid, data_offset, data_len = P.parse_data_psh(psh)
        req = self._inflight.get(cid)
        if req is None or data_offset + data_len > len(req.buffer):
            return  # stale or corrupt; the CapsuleResp will sort it out
        data_start = P.CH_LEN + P.PSH_LEN[P.TYPE_C2H_DATA]
        data_runs = msg.slice_runs(data_start, data_len)
        placed = all(r.meta.placed for r in data_runs) and self.config.rx_offload_copy
        crc_done = all(r.meta.crc_ok for r in msg.runs) and self.config.rx_offload_crc

        if placed and (crc_done or not has_digest):
            # Figure 9: payload already sits in the block-layer buffer and
            # the digest was checked inline — memcpy src == dst, skip all.
            self.stats.pdus_placed += 1
            return
        self.stats.pdus_software += 1
        data = wire[data_start : data_start + data_len]
        copy_bytes = sum(len(r.data) for r in data_runs if not (r.meta.placed and self.config.rx_offload_copy))
        if copy_bytes:
            self.core.charge(copy_bytes * self.host.llc.copy_cpb(), "copy")
        req.buffer[data_offset : data_offset + data_len] = data
        if has_digest and not crc_done:
            self.core.charge(data_len * self.host.llc.touch_cpb(self.model.cpb_crc32c), "crc")
            wire_digest = wire[-P.DDGST_LEN :]
            if self.digest_cls(data).digest() != wire_digest:
                self.stats.digest_failures += 1
                req.data_failures += 1

    def _on_r2t(self, wire: bytes) -> None:
        """Target solicits write data: answer with H2CData."""
        psh = wire[P.CH_LEN : P.CH_LEN + P.PSH_LEN[P.TYPE_R2T]]
        cid, offset, length = P.parse_r2t_psh(psh)
        req = self._inflight.get(cid)
        if req is None or offset + length > len(req.write_data):
            return  # stale R2T
        chunk = req.write_data[offset : offset + length]
        offloaded_tx = self._tx_ctx is not None
        wire_out = P.build_pdu(
            P.TYPE_H2C_DATA,
            P.make_data_psh(cid, offset, length),
            chunk,
            self.digest_cls,
            self.config.data_digest,
            dummy_digest=offloaded_tx,
        )
        self.core.charge(length * self.host.llc.copy_cpb(), "copy")
        if not offloaded_tx and self.config.data_digest:
            self.core.charge(length * self.host.llc.touch_cpb(self.model.cpb_crc32c), "crc")
        self._send_wire(wire_out, track=offloaded_tx)

    def _on_resp(self, wire: bytes) -> None:
        psh = wire[P.CH_LEN : P.CH_LEN + P.PSH_LEN[P.TYPE_CAPSULE_RESP]]
        cid, status = P.parse_cqe(psh)
        req = self._inflight.pop(cid, None)
        if req is None:
            return
        self._free_cids.append(cid)
        self.host.llc.release(req.length)
        if self._rx_ctx is not None and self.config.rx_offload_copy and req.opcode == P.OPC_READ:
            self.host.nic.driver.l5o_del_rr_state(self._rx_ctx, cid)
        latency = self.host.sim.now - req.issued_at
        self.stats.latencies.append(latency)
        if status != 0 or req.data_failures:
            if self.on_error is not None:
                self.stats.io_failures += 1
                self.on_error(f"NVMe I/O cid={cid} failed (status={status})")
                self._drain_waiting()
                return
            raise RuntimeError(f"NVMe I/O cid={cid} failed (status={status})")
        if req.opcode == P.OPC_READ:
            self.stats.bytes_read += req.length
            req.on_complete(bytes(req.buffer), latency)
        else:
            req.on_complete(latency)
        self._drain_waiting()

    def _answer_resyncs(self, msg) -> None:
        if not self._pending_resync or self._rx_ctx is None or self.tls_config is not None:
            return
        driver = self.host.nic.driver
        end = sq.add(msg.start_seq, msg.length)
        still = []
        for req_seq in self._pending_resync:
            if req_seq == msg.start_seq:
                driver.l5o_resync_rx_resp(self._rx_ctx, req_seq, True, msg_index=self.stats.pdus_rx - 1)
            elif sq.lt(req_seq, end):
                driver.l5o_resync_rx_resp(self._rx_ctx, req_seq, False)
            else:
                still.append(req_seq)
        self._pending_resync = still
