"""Network substrate: packets, links, and hosts."""

from repro.net.packet import FlowKey, Packet, SkbMeta, MSS, WIRE_OVERHEAD
from repro.net.link import Link, LinkConfig

__all__ = ["FlowKey", "Packet", "SkbMeta", "MSS", "WIRE_OVERHEAD", "Link", "LinkConfig"]
