"""Figure 13: nginx with the TLS offload variants, C2 (page cache,
NIC-bound): https baseline vs offload vs offload+zc vs plain http."""

from repro.experiments.nginx_bench import VARIANTS, run_nginx
from repro.harness.report import Table, ratio_label

SIZES = (16 * 1024, 64 * 1024, 256 * 1024)
PAPER_ZC_1CORE = {16 * 1024: "+24%", 64 * 1024: "+64%", 256 * 1024: "2.7x"}


def run_grid(cores, sizes):
    out = {}
    for size in sizes:
        for variant in VARIANTS:
            out[(size, variant)] = run_nginx(
                variant,
                storage="c2",
                file_size=size,
                server_cores=cores,
                connections=24,
                measure=8e-3,
            )
    return out


def test_fig13_one_core(benchmark, emit):
    grid = benchmark.pedantic(run_grid, args=(1, SIZES), rounds=1, iterations=1)
    table = Table(
        ["file", "https", "offload", "offload+zc", "http", "zc vs https", "paper"],
        title="Figure 13a: nginx TLS offload variants, C2, 1 core (Gbps)",
    )
    for size in SIZES:
        https = grid[(size, "https")].goodput_gbps
        off = grid[(size, "offload")].goodput_gbps
        zc = grid[(size, "offload+zc")].goodput_gbps
        http = grid[(size, "http")].goodput_gbps
        table.row(
            f"{size // 1024}KiB", https, off, zc, http,
            ratio_label(zc, https), PAPER_ZC_1CORE[size],
        )
    emit("fig13a_nginx_tls_1core", table.render())

    for size in SIZES:
        https = grid[(size, "https")].goodput_gbps
        off = grid[(size, "offload")].goodput_gbps
        zc = grid[(size, "offload+zc")].goodput_gbps
        http = grid[(size, "http")].goodput_gbps
        # Paper's ordering: https < offload < offload+zc <= http.
        assert https < off < zc
        assert zc <= http * 1.05
    # Gains grow with file size (per-byte crypto dominates big files).
    gain = lambda s: grid[(s, "offload+zc")].goodput_gbps / grid[(s, "https")].goodput_gbps
    assert gain(256 * 1024) > gain(16 * 1024)


def test_fig13_eight_cores(benchmark, emit):
    grid = benchmark.pedantic(run_grid, args=(8, (256 * 1024,)), rounds=1, iterations=1)
    size = 256 * 1024
    table = Table(
        ["variant", "Gbps", "busy cores"],
        title="Figure 13b/c: nginx TLS variants, C2, 8 cores, 256KiB files",
    )
    for variant in VARIANTS:
        run = grid[(size, variant)]
        table.row(variant, run.goodput_gbps, run.busy_cores)
    emit("fig13bc_nginx_tls_8core", table.render())

    zc = grid[(size, "offload+zc")]
    https = grid[(size, "https")]
    # Offload+zc pushes far beyond the software baseline toward line
    # rate (paper: +88% when reaching the NIC's limit).
    assert zc.goodput_gbps > https.goodput_gbps * 1.5
    assert zc.goodput_gbps > 50  # closing in on the 100G NIC
