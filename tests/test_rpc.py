"""RPC L5P tests: TLV codec, framing/adapter, end-to-end calls with and
without the response copy+CRC offload, fault resilience."""

import pytest
from hypothesis import given, settings, strategies as st

from helpers import make_pair
from repro.crypto.crc import Crc32c
from repro.l5p.rpc import RpcClient, RpcConfig, RpcServer, decode, encode
from repro.l5p.rpc import frame as F
from repro.l5p.rpc.endpoint import RpcError
from repro.nic import OffloadNic

VALUES = [
    None,
    True,
    False,
    0,
    -1,
    2**40,
    -(2**40),
    3.14159,
    b"raw bytes",
    "unicode ☃ text",
    [1, "two", [3, None]],
    {"key": "value", "n": [1, 2, 3], "deep": {"x": b"y"}},
]


class TestCodec:
    @pytest.mark.parametrize("value", VALUES, ids=lambda v: type(v).__name__ + str(v)[:12])
    def test_round_trip(self, value):
        assert decode(encode(value)) == value

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ValueError):
            decode(encode(42) + b"\x00")

    def test_truncation_rejected(self):
        data = encode({"a": [1, 2, 3]})
        with pytest.raises(ValueError):
            decode(data[:-2])

    def test_unserializable_rejected(self):
        with pytest.raises(TypeError):
            encode(object())

    json_like = st.recursive(
        st.none() | st.booleans() | st.integers() | st.binary(max_size=40) | st.text(max_size=20),
        lambda children: st.lists(children, max_size=4)
        | st.dictionaries(st.text(max_size=8), children, max_size=4),
        max_leaves=20,
    )

    @settings(max_examples=80, deadline=None)
    @given(value=json_like)
    def test_round_trip_property(self, value):
        assert decode(encode(value)) == value


class TestFraming:
    def test_frame_round_trip(self):
        payload = encode({"hello": "world"})
        wire = F.make_frame(F.TYPE_REQUEST, 7, 3, payload, Crc32c)
        ftype, rpc_id, method_id, payload_len = F.parse_header(wire[: F.HEADER_LEN])
        assert (ftype, rpc_id, method_id, payload_len) == (F.TYPE_REQUEST, 7, 3, len(payload))
        assert wire[F.HEADER_LEN : F.HEADER_LEN + payload_len] == payload

    def test_bad_headers_rejected(self):
        assert F.parse_header(b"XX" + bytes(11)) is None
        wire = F.make_frame(F.TYPE_RESPONSE, 1, 1, b"x", Crc32c)
        bad_type = wire[:2] + b"\x09" + wire[3:]
        assert F.parse_header(bad_type[: F.HEADER_LEN]) is None


def rpc_pair(client_cfg=None, seed=0, **link_kwargs):
    pair = make_pair(seed=seed, client_nic=OffloadNic(), server_nic=OffloadNic(), **link_kwargs)
    server = RpcServer(pair.server, port=7000)
    server.register(1, lambda args: args)  # echo
    server.register(2, lambda args: {"sum": sum(args)})
    server.register(3, lambda args: b"\xab" * args["n"])  # bulk payload

    def boom(args):
        raise RpcError("deliberate failure")

    server.register(9, boom)
    client = RpcClient(pair.client, "server", port=7000, config=client_cfg)
    return pair, client, server


OFFLOAD = RpcConfig(rx_offload_crc=True, rx_offload_copy=True)


class TestRpcEndToEnd:
    def test_echo_call(self):
        pair, client, server = rpc_pair()
        results = []
        client.call(1, {"msg": "hello"}, lambda v, lat: results.append((v, lat)))
        pair.sim.run(until=1.0)
        assert results[0][0] == {"msg": "hello"}
        assert results[0][1] > 0

    def test_many_concurrent_calls(self):
        pair, client, server = rpc_pair()
        results = {}
        for i in range(50):
            client.call(2, [i, i, i], lambda v, lat, i=i: results.__setitem__(i, v))
        pair.sim.run(until=2.0)
        assert results == {i: {"sum": 3 * i} for i in range(50)}

    def test_error_propagates(self):
        pair, client, server = rpc_pair()
        results = []
        client.call(9, None, lambda v, lat: results.append(v))
        client.call(42, None, lambda v, lat: results.append(v))  # unknown method
        pair.sim.run(until=1.0)
        assert all(isinstance(v, RpcError) for v in results)
        assert len(results) == 2

    def test_offloaded_bulk_responses_placed(self):
        pair, client, server = rpc_pair(client_cfg=OFFLOAD)
        results = []
        for _ in range(10):
            client.call(3, {"n": 100_000}, lambda v, lat: results.append(v))
        pair.sim.run(until=2.0)
        assert len(results) == 10
        assert all(v == b"\xab" * 100_000 for v in results)
        assert client.stats["placed"] == 10
        assert client.stats["software"] == 0
        # Copy/CRC cycles skipped on the client.
        cats = pair.client.cpu.cycles_by_category()
        assert cats.get("copy", 0) == 0 and cats.get("crc", 0) == 0

    def test_offload_saves_cycles_vs_software(self):
        def client_cycles(cfg):
            pair, client, server = rpc_pair(client_cfg=cfg, seed=4)
            done = []
            for _ in range(10):
                client.call(3, {"n": 200_000}, lambda v, lat: done.append(1))
            pair.sim.run(until=3.0)
            assert len(done) == 10
            return pair.client.cpu.cycles_by_category()

        offload = client_cycles(OFFLOAD)
        software = client_cycles(None)
        # Copy+CRC vanish entirely; deserialization remains in software
        # (the paper leaves it as §7 future work), so the total shrinks
        # by the per-byte copy+crc share.
        assert offload.get("copy", 0) == 0 and offload.get("crc", 0) == 0
        assert software["copy"] > 0 and software["crc"] > 0
        assert sum(offload.values()) < sum(software.values()) * 0.85

    def test_offload_survives_loss(self):
        pair, client, server = rpc_pair(client_cfg=OFFLOAD, seed=6, loss_to_client=0.02)
        results = []
        for _ in range(15):
            client.call(3, {"n": 60_000}, lambda v, lat: results.append(v))
        pair.sim.run(until=10.0)
        assert len(results) == 15
        assert all(v == b"\xab" * 60_000 for v in results)
        # Some responses fell back to software copy+CRC, none were lost.
        assert client.stats["software"] > 0
        assert client.stats["errors"] == 0

    def test_oversized_response_falls_back(self):
        cfg = RpcConfig(rx_offload_crc=True, rx_offload_copy=True, max_response=1024)
        pair, client, server = rpc_pair(client_cfg=cfg)
        results = []
        client.call(3, {"n": 50_000}, lambda v, lat: results.append(v))  # > max_response
        pair.sim.run(until=2.0)
        assert results == [b"\xab" * 50_000]
        assert client.stats["software"] == 1  # placement skipped, SW path
