"""NVMe/TCP PDU unit tests: wire formats, parsing, and the adapter."""

import pytest
from hypothesis import given, strategies as st

from repro.core.types import Direction
from repro.crypto.crc import Crc32c
from repro.l5p.nvme_tcp import pdu as P
from repro.l5p.nvme_tcp.pdu import NvmeAdapter, NvmeConfig
from repro.net.packet import SkbMeta


class TestWireFormats:
    def test_sqe_round_trip(self):
        sqe = P.make_sqe(P.OPC_READ, cid=7, slba=123456789, length=65536)
        assert len(sqe) == P.PSH_LEN[P.TYPE_CAPSULE_CMD]
        assert P.parse_sqe(sqe) == (P.OPC_READ, 7, 123456789, 65536)

    def test_cqe_round_trip(self):
        cqe = P.make_cqe(cid=300, status=1)
        assert len(cqe) == P.PSH_LEN[P.TYPE_CAPSULE_RESP]
        assert P.parse_cqe(cqe) == (300, 1)

    def test_data_psh_round_trip(self):
        psh = P.make_data_psh(cid=9, data_offset=4096, data_len=8192)
        assert P.parse_data_psh(psh) == (9, 4096, 8192)

    def test_build_pdu_with_digest(self):
        data = b"payload" * 100
        pdu = P.build_pdu(P.TYPE_C2H_DATA, P.make_data_psh(1, 0, len(data)), data, Crc32c, True)
        assert P.pdu_total_len(pdu[:8]) == len(pdu)
        assert pdu[-4:] == Crc32c(data).digest()

    def test_build_pdu_dummy_digest(self):
        data = b"x" * 50
        pdu = P.build_pdu(P.TYPE_C2H_DATA, P.make_data_psh(1, 0, 50), data, Crc32c, True, dummy_digest=True)
        assert pdu[-4:] == b"\x00\x00\x00\x00"

    def test_no_digest_without_data(self):
        pdu = P.build_pdu(P.TYPE_CAPSULE_RESP, P.make_cqe(1, 0), b"", Crc32c, True)
        assert len(pdu) == P.CH_LEN + P.PSH_LEN[P.TYPE_CAPSULE_RESP]

    def test_total_len_rejects_junk(self):
        with pytest.raises(ValueError):
            P.pdu_total_len(b"\xff" * 8)  # bad type
        good = P.make_ch(P.TYPE_C2H_DATA, 100, False)
        bad_hlen = good[:2] + b"\x05" + good[3:]
        with pytest.raises(ValueError):
            P.pdu_total_len(bad_hlen)

    def test_wrong_psh_length_rejected(self):
        with pytest.raises(ValueError):
            P.build_pdu(P.TYPE_CAPSULE_CMD, b"short", b"", Crc32c, False)


def make_adapter(place=False):
    return NvmeAdapter(NvmeConfig(), place=place)


class TestNvmeAdapter:
    def test_parse_header(self):
        pdu = P.build_pdu(P.TYPE_C2H_DATA, P.make_data_psh(1, 0, 1000), b"d" * 1000, Crc32c, True)
        desc = make_adapter().parse_header(pdu[:8], None)
        assert desc is not None
        assert desc.header_len == 8
        assert desc.trailer_len == 4
        assert desc.total_len == len(pdu)

    def test_magic_accepts_valid_rejects_noise(self):
        adapter = make_adapter()
        pdu = P.build_pdu(P.TYPE_CAPSULE_RESP, P.make_cqe(1, 0), b"", Crc32c, False)
        assert adapter.check_magic(pdu[:8], None)
        assert not adapter.check_magic(b"\xde\xad\xbe\xef\xde\xad\xbe\xef", None)
        assert not adapter.check_magic(b"\x04", None)  # too short

    def test_transform_digest_tx(self):
        adapter = make_adapter()
        data = bytes(range(256)) * 4
        pdu = P.build_pdu(P.TYPE_C2H_DATA, P.make_data_psh(1, 0, len(data)), data, Crc32c, True)
        desc = adapter.parse_header(pdu[:8], None)
        t = adapter.begin_message(Direction.TX, None, desc, 0, rr_state={})
        body = pdu[8:-4]
        assert t.process(body) == body  # digests never change bytes
        assert t.finalize_tx() == Crc32c(data).digest()

    def test_transform_verify_rx(self):
        adapter = make_adapter()
        data = b"blockdata" * 77
        pdu = P.build_pdu(P.TYPE_C2H_DATA, P.make_data_psh(2, 0, len(data)), data, Crc32c, True)
        desc = adapter.parse_header(pdu[:8], None)
        t = adapter.begin_message(Direction.RX, None, desc, 0, rr_state={})
        t.process(pdu[8:-4])
        assert t.verify_rx(pdu[-4:])

    def test_placement_writes_registered_buffer(self):
        adapter = make_adapter(place=True)
        data = b"Z" * 500
        buffer = bytearray(1000)
        pdu = P.build_pdu(P.TYPE_C2H_DATA, P.make_data_psh(5, 100, len(data)), data, Crc32c, True)
        desc = adapter.parse_header(pdu[:8], None)
        t = adapter.begin_message(Direction.RX, None, desc, 0, rr_state={5: buffer})
        # Feed in dribbles to exercise the PSH/data split logic.
        body = pdu[8:-4]
        for i in range(0, len(body), 13):
            t.process(body[i : i + 13])
        assert bytes(buffer[100:600]) == data
        assert adapter.place_failures == 0

    def test_placement_missing_cid_flags_failure(self):
        adapter = make_adapter(place=True)
        data = b"Z" * 10
        pdu = P.build_pdu(P.TYPE_C2H_DATA, P.make_data_psh(42, 0, 10), data, Crc32c, True)
        desc = adapter.parse_header(pdu[:8], None)
        t = adapter.begin_message(Direction.RX, None, desc, 0, rr_state={})
        t.process(pdu[8:-4])
        assert adapter.place_failures == 1
        meta = SkbMeta()
        adapter.apply_packet_meta(meta, processed=True, ok=True, desc_kinds=[])
        assert meta.placed is False

    def test_placement_out_of_bounds_rejected(self):
        adapter = make_adapter(place=True)
        buffer = bytearray(100)
        data = b"Z" * 200  # bigger than the buffer
        pdu = P.build_pdu(P.TYPE_C2H_DATA, P.make_data_psh(1, 0, 200), data, Crc32c, True)
        desc = adapter.parse_header(pdu[:8], None)
        t = adapter.begin_message(Direction.RX, None, desc, 0, rr_state={1: buffer})
        t.process(pdu[8:-4])
        assert adapter.place_failures == 1
        assert bytes(buffer) == b"\x00" * 100  # untouched

    @given(data=st.binary(min_size=0, max_size=400), chop=st.integers(min_value=1, max_value=50))
    def test_incremental_digest_any_chunking(self, data, chop):
        adapter = make_adapter()
        pdu = P.build_pdu(P.TYPE_C2H_DATA, P.make_data_psh(1, 0, len(data)), data, Crc32c, bool(data))
        desc = adapter.parse_header(pdu[:8], None)
        if desc.trailer_len == 0:
            return
        t = adapter.begin_message(Direction.RX, None, desc, 0, rr_state={})
        body = pdu[8:-4]
        for i in range(0, len(body), chop):
            t.process(body[i : i + chop])
        assert t.verify_rx(pdu[-4:])
