"""Software fallback for partially-offloaded TLS records (§5.2).

AES-GCM authenticates the *ciphertext*, so when the NIC decrypted only
some packets of a record, software must re-encrypt those plaintext runs
to recompute the tag — "handling partial decryption is costlier than
full decryption".  This module performs the recovery (bit-exact) and
reports how many bytes had to be re-encrypted so the CPU model can
charge the extra cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.gcm import AuthenticationError
from repro.crypto.suite import CipherSuite
from repro.l5p.base import Run


@dataclass
class RecoveredRecord:
    plaintext: bytes
    ok: bool
    reencrypted_bytes: int  # plaintext runs that had to be re-encrypted
    decrypted_bytes: int  # ciphertext runs software had to decrypt


def recover_partial_record(
    suite: CipherSuite,
    key: bytes,
    nonce: bytes,
    aad: bytes,
    body_runs: list[Run],
    wire_tag: bytes,
) -> RecoveredRecord:
    """Authenticate and decrypt a record whose body arrived as a mix of
    NIC-decrypted (plaintext) and untouched (ciphertext) runs.

    Pass 1 rebuilds the full ciphertext: plaintext runs are re-encrypted,
    ciphertext runs are absorbed into the authenticator as-is; the tag is
    then checked.  Pass 2 decrypts the ciphertext runs by seeking a
    throwaway keystream to each run's offset.
    """
    enc = suite.encryptor(key, nonce, aad=aad)
    reencrypted = 0
    to_decrypt: list[tuple[int, bytes]] = []  # (offset, ciphertext)
    offset = 0
    for run in body_runs:
        if run.meta.decrypted:
            enc.update(run.data)  # re-encrypt to recover the ciphertext
            reencrypted += len(run.data)
        else:
            enc.absorb_ciphertext(run.data)
            to_decrypt.append((offset, run.data))
        offset += len(run.data)
    ok = enc.finalize() == wire_tag

    plain = bytearray(b"".join(r.data for r in body_runs))
    decrypted = 0
    for run_offset, ciphertext in to_decrypt:
        dec = suite.decryptor(key, nonce, aad=aad)
        if run_offset:
            dec.skip(run_offset)
        plain[run_offset : run_offset + len(ciphertext)] = dec.update(ciphertext)
        decrypted += len(ciphertext)
    return RecoveredRecord(
        plaintext=bytes(plain),
        ok=ok,
        reencrypted_bytes=reencrypted,
        decrypted_bytes=decrypted,
    )


def decrypt_whole_record(
    suite: CipherSuite,
    key: bytes,
    nonce: bytes,
    aad: bytes,
    ciphertext: bytes,
    wire_tag: bytes,
) -> tuple[bytes, bool]:
    """Plain software decryption of an entirely un-offloaded record."""
    try:
        return suite.open(key, nonce, ciphertext, wire_tag, aad=aad), True
    except AuthenticationError:
        dec = suite.decryptor(key, nonce, aad=aad)
        return dec.update(ciphertext), False
