"""Reno congestion control (RFC 5681) with NewReno-style recovery.

The loss/reorder experiments (§6.4) depend on the sender reacting to
duplicate ACKs and timeouts the way a real stack does; throughput under
injected loss emerges from this module rather than being assumed.
"""

from __future__ import annotations

from repro.net.packet import MSS


class RenoCc:
    """Congestion state for one connection, in bytes."""

    DUP_ACK_THRESHOLD = 3

    def __init__(self, mss: int = MSS, initial_window_packets: int = 10):
        self.mss = mss
        self.cwnd = initial_window_packets * mss
        self.ssthresh = float("inf")
        self.in_recovery = False
        self.recovery_point = 0  # snd_nxt when recovery was entered
        # Stats the benchmarks report:
        self.fast_retransmits = 0
        self.timeouts = 0

    # ------------------------------------------------------------------
    def on_ack(self, acked_bytes: int) -> None:
        """New data was cumulatively ACKed outside recovery."""
        if acked_bytes <= 0:
            return
        if self.cwnd < self.ssthresh:
            self.cwnd += min(acked_bytes, self.mss)  # slow start
        else:
            # Congestion avoidance: +1 MSS per RTT, per-ACK increments.
            self.cwnd += max(1, self.mss * self.mss // self.cwnd)

    def enter_recovery(self, flight_bytes: int, snd_nxt: int) -> None:
        """Triple duplicate ACK: halve and fast-retransmit."""
        self.ssthresh = max(flight_bytes // 2, 2 * self.mss)
        self.cwnd = self.ssthresh + self.DUP_ACK_THRESHOLD * self.mss
        self.in_recovery = True
        self.recovery_point = snd_nxt
        self.fast_retransmits += 1

    def on_dup_ack_in_recovery(self) -> None:
        """Window inflation while duplicate ACKs keep arriving."""
        self.cwnd += self.mss

    def on_partial_ack(self, acked_bytes: int) -> None:
        """NewReno partial ACK: deflate by the ACKed amount."""
        self.cwnd = max(self.cwnd - acked_bytes + self.mss, self.mss)

    def exit_recovery(self) -> None:
        self.in_recovery = False
        self.cwnd = self.ssthresh

    def on_timeout(self, flight_bytes: int) -> None:
        self.ssthresh = max(flight_bytes // 2, 2 * self.mss)
        self.cwnd = self.mss
        self.in_recovery = False
        self.timeouts += 1


class CubicCc(RenoCc):
    """CUBIC congestion control (RFC 8312, simplified) — Linux's default.

    Window growth in congestion avoidance follows the cubic function
    W(t) = C*(t - K)^3 + W_max anchored at the last loss, giving the
    fast-reprobe/plateau/probe shape; slow start and recovery inherit
    the Reno machinery (Linux couples CUBIC with standard recovery).
    """

    C = 0.4  # scaling constant, segments/sec^3
    BETA = 0.7  # multiplicative decrease factor

    def __init__(self, mss: int = MSS, initial_window_packets: int = 10, clock=None):
        super().__init__(mss, initial_window_packets)
        self._clock = clock or (lambda: 0.0)
        self._w_max = 0.0  # segments at the last reduction
        self._epoch_start: float = -1.0
        self._k = 0.0

    def _segments(self, cwnd_bytes: float) -> float:
        return cwnd_bytes / self.mss

    def on_ack(self, acked_bytes: int) -> None:
        if acked_bytes <= 0:
            return
        if self.cwnd < self.ssthresh:
            self.cwnd += min(acked_bytes, self.mss)
            return
        now = self._clock()
        if self._epoch_start < 0:
            self._epoch_start = now
            self._w_max = max(self._w_max, self._segments(self.cwnd))
            self._k = ((self._w_max * (1 - self.BETA)) / self.C) ** (1.0 / 3.0)
        t = now - self._epoch_start
        target = self.C * (t - self._k) ** 3 + self._w_max  # segments
        current = self._segments(self.cwnd)
        if target > current:
            # Close a fraction of the gap per ACK (per-RTT in aggregate).
            self.cwnd += max(1, int((target - current) / max(current, 1) * self.mss))
        else:
            # TCP-friendly floor: at least Reno's linear growth.
            self.cwnd += max(1, self.mss * self.mss // self.cwnd)

    def _reduce(self) -> None:
        self._w_max = self._segments(self.cwnd)
        self._epoch_start = -1.0

    def enter_recovery(self, flight_bytes: int, snd_nxt: int) -> None:
        self._reduce()
        self.ssthresh = max(int(flight_bytes * self.BETA), 2 * self.mss)
        self.cwnd = self.ssthresh + self.DUP_ACK_THRESHOLD * self.mss
        self.in_recovery = True
        self.recovery_point = snd_nxt
        self.fast_retransmits += 1

    def on_timeout(self, flight_bytes: int) -> None:
        self._reduce()
        super().on_timeout(flight_bytes)


CC_ALGORITHMS = {"reno": RenoCc, "cubic": CubicCc}


def make_cc(name: str, mss: int = MSS, clock=None):
    """Congestion-control factory (``reno`` or ``cubic``)."""
    try:
        cls = CC_ALGORITHMS[name]
    except KeyError:
        raise ValueError(f"unknown congestion control {name!r}; choose from {sorted(CC_ALGORITHMS)}") from None
    if cls is CubicCc:
        return cls(mss=mss, clock=clock)
    return cls(mss=mss)


class RttEstimator:
    """RFC 6298 smoothed RTT and retransmission timeout."""

    def __init__(self, min_rto: float = 5e-3, max_rto: float = 1.0):
        self.srtt = 0.0
        self.rttvar = 0.0
        self.min_rto = min_rto
        self.max_rto = max_rto
        self._rto = 0.2  # conservative until the first sample
        self.samples = 0

    def sample(self, rtt: float) -> None:
        if rtt < 0:
            raise ValueError("negative RTT sample")
        if self.samples == 0:
            self.srtt = rtt
            self.rttvar = rtt / 2
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - rtt)
            self.srtt = 0.875 * self.srtt + 0.125 * rtt
        self.samples += 1
        raw = self.srtt + max(4 * self.rttvar, 1e-6)
        self._rto = min(max(raw, self.min_rto), self.max_rto)

    @property
    def rto(self) -> float:
        return self._rto

    def backoff(self) -> None:
        """Exponential backoff after a retransmission timeout."""
        self._rto = min(self._rto * 2, self.max_rto)
