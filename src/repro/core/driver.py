"""The NIC driver: the software half of the autonomous offload.

Implements Listing 1 (operations the driver provides to the L5P) and
dispatches Listing 2 (upcalls the L5P provides to the driver).  The
driver shadows each HW context's expected TCP sequence so that
out-of-sequence transmissions are detected in software, before the
packet is posted to the NIC (§4.2).

Offload commands ride to the NIC through the flow's send ring as
special descriptors; we account their PCIe cost but model their
ordering as exact (the send ring guarantees it in hardware).
"""

from __future__ import annotations

import itertools
from typing import Any, Optional, Protocol

from repro.core.context import HwContext
from repro.core.types import Direction, L5pAdapter, TxMsgState
from repro.net.packet import FlowKey


class L5pOps(Protocol):
    """Listing 2: operations the L5P provides to the NIC driver."""

    def l5o_get_tx_msgstate(self, tcpsn: int) -> Optional[TxMsgState]:
        """State of the transmitted message covering ``tcpsn``."""
        ...

    def l5o_resync_rx_req(self, tcpsn: int) -> None:
        """The NIC speculates an L5P header starts at ``tcpsn``; confirm
        or deny later via ``l5o_resync_rx_resp``."""
        ...


class NicDriver:
    """Per-NIC driver instance (mlx5-equivalent glue)."""

    _ids = itertools.count(1)

    def __init__(self, nic):
        self.nic = nic
        self.tx_contexts: dict[int, HwContext] = {}
        self.rx_contexts: dict[FlowKey, HwContext] = {}
        self.dgram_tx_contexts: dict[FlowKey, object] = {}
        self.dgram_rx_contexts: dict[FlowKey, object] = {}
        # Ablation knob: extra delay before the L5P sees a speculation
        # request (models slower driver/firmware paths).
        self.resync_delay_s = 0.0

    # ------------------------------------------------------------------
    # Listing 1: L5P-facing operations
    # ------------------------------------------------------------------
    def l5o_create(
        self,
        conn,
        adapter: L5pAdapter,
        static_state: Any,
        tcpsn: int,
        direction: Direction,
        l5p_ops: L5pOps,
        msg_index: int = 0,
    ) -> HwContext:
        """Install an offload context for ``conn`` starting at ``tcpsn``
        (the first byte of the next L5P message on the stream)."""
        ctx_id = next(self._ids)
        if direction == Direction.TX:
            flow = conn.flow
        else:
            flow = conn.flow.reversed()  # incoming packets carry the peer's view
        ctx = HwContext(ctx_id, flow, direction, adapter, static_state, tcpsn, msg_index=msg_index)
        ctx.l5p_ops = l5p_ops
        ctx.obs = self.nic.obs
        if direction == Direction.TX:
            self.tx_contexts[ctx_id] = ctx
            conn.tx_ctx_id = ctx_id
        else:
            self.rx_contexts[flow] = ctx
        self.nic.context_installed(ctx)
        return ctx

    def l5o_destroy(self, ctx: HwContext) -> None:
        if ctx.direction == Direction.TX:
            self.tx_contexts.pop(ctx.ctx_id, None)
        else:
            self.rx_contexts.pop(ctx.flow, None)
        self.nic.context_removed(ctx)

    def l5o_add_rr_state(self, ctx: HwContext, key: Any, state: Any) -> Any:
        """Register request/response state (e.g. an NVMe CID -> the block
        buffers its response payload must be placed into)."""
        ctx.rr_state[key] = state
        self.nic.pcie.count("descriptor", 64)
        return key

    def l5o_del_rr_state(self, ctx: HwContext, key: Any) -> None:
        ctx.rr_state.pop(key, None)
        self.nic.pcie.count("descriptor", 64)

    def l5o_resync_rx_resp(self, ctx: HwContext, tcpsn: int, result: bool, msg_index: int = 0) -> None:
        """The L5P confirms/denies the NIC's speculated header at
        ``tcpsn``; on success the NIC resumes offloading from the next
        message boundary (Figure 7, transition d2)."""
        obs = self.nic.obs
        if obs is not None:
            obs.count("driver.resync.confirmed" if result else "driver.resync.denied")
        self.nic.rx_engine.resync_response(ctx, tcpsn, result, msg_index)

    # ------------------------------------------------------------------
    # driver-internal helpers used by the engines
    # ------------------------------------------------------------------
    def l5o_create_datagram(self, flow: FlowKey, adapter, static_state, direction: Direction):
        """Install a datagram (UDP) offload context — §7's trivial case:
        static state only, no sequence tracking, no recovery interface."""
        from repro.core.datagram import DatagramContext

        ctx = DatagramContext(next(self._ids), flow, adapter, static_state)
        if direction == Direction.TX:
            self.dgram_tx_contexts[flow] = ctx
        else:
            self.dgram_rx_contexts[flow] = ctx
        self.nic.pcie.count("descriptor", 64)
        return ctx

    def l5o_destroy_datagram(self, ctx) -> None:
        self.dgram_tx_contexts.pop(ctx.flow, None)
        self.dgram_rx_contexts.pop(ctx.flow, None)

    def lookup_tx(self, ctx_id: Optional[int]) -> Optional[HwContext]:
        if ctx_id is None:
            return None
        return self.tx_contexts.get(ctx_id)

    def lookup_rx(self, flow: FlowKey) -> Optional[HwContext]:
        return self.rx_contexts.get(flow)

    def request_resync(self, ctx: HwContext, tcpsn: int) -> None:
        """HW->SW: deliver the speculation request to the L5P (via a
        completion on the receive ring, then the driver's upcall)."""
        ctx.resync_requests += 1
        obs = self.nic.obs
        if obs is not None:
            obs.count("driver.resync.requests")
            obs.event("resync-request", lane=f"ctx/{ctx.ctx_id}", cat="resync", tcpsn=tcpsn)
        self.nic.pcie.count("descriptor", 64)
        if ctx.l5p_ops is not None:
            self.nic.host.sim.schedule(self.resync_delay_s, ctx.l5p_ops.l5o_resync_rx_req, tcpsn)
