"""Layer-5 protocols: kernel TLS, NVMe-TCP, and their composition.

Each L5P implements the adapter contract of :mod:`repro.core.types`
(paper Table 3) and is therefore autonomously offloadable without the
NIC terminating TCP: :mod:`repro.l5p.tls` (§5.2), in-kernel NVMe-TCP in
:mod:`repro.l5p.nvme_tcp` (§5.1, and §5.3 when layered over TLS), and
the §7 sketches (:mod:`repro.l5p.rpc`, DTLS via :mod:`repro.udp`).
"""
