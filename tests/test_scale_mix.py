"""Tests for the datacenter-scale flow-mix engine (fig19_xl).

Small flow counts with a shrunken cache keep the tests fast while
exercising the exact machinery the benchmark sweeps at 16 K..128 K.
"""

import pytest

from repro.experiments.scale_mix import VARIANTS, run_mix_point

# A 16 KiB cache holds ~78 contexts: 64 flows fit, 1024 thrash.
SMALL_CACHE = 16 * 1024


def _point(flows, **kw):
    kw.setdefault("cache_bytes", SMALL_CACHE)
    kw.setdefault("duration", 4e-3)
    return run_mix_point(flows, **kw)


def test_miss_rate_cliffs_past_cache_capacity():
    small = _point(64)
    big = _point(1024)
    assert small.flows < small.cache_capacity_flows < big.flows
    assert small.cache_miss_rate < 0.2
    assert big.cache_miss_rate > 0.5
    # Goodput degrades gently (the miss is per burst, not per packet).
    assert big.goodput_gbps > 0.4 * small.goodput_gbps


def test_https_variant_has_no_nic_context_traffic():
    p = _point(256, variant="https")
    assert p.cache_miss_rate == 0.0
    assert p.miss_dma_mb == 0.0
    # Software TLS is far slower than the offload datapath.
    assert p.goodput_gbps < _point(256).goodput_gbps / 5


def test_deterministic_per_seed_and_scheduler_invariant():
    a = _point(256, seed=3)
    b = _point(256, seed=3)
    assert a == b
    heap = _point(256, seed=3, scheduler="heap")
    assert heap.scheduler == "heap" and a.scheduler == "wheel"
    # Scheduler choice never changes results — only the label differs.
    assert {**vars(a), "scheduler": None} == {**vars(heap), "scheduler": None}
    assert _point(256, seed=4) != a


def test_traffic_process_is_variant_invariant():
    # The cache must never influence the generator's draws: both
    # variants see the identical event sequence.
    zc = _point(256)
    sw = _point(256, variant="https")
    assert zc.events_fired == sw.events_fired
    assert zc.pkts == sw.pkts and zc.bursts == sw.bursts


def test_churn_installs_fresh_contexts():
    p = _point(256, churn=0.2)
    assert p.churn_installs > 0
    no_churn = _point(256, churn=0.0)
    assert no_churn.churn_installs == 0


def test_unknown_variant_rejected():
    with pytest.raises(ValueError):
        run_mix_point(64, variant="quic")
    assert VARIANTS == ("offload+zc", "https")
