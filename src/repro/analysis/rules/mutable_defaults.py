"""SIM003 — no mutable default arguments.

A mutable default is evaluated once at definition time and shared by
every call.  In a simulator whose per-flow/per-context state must be
isolated (constant-size incremental state, Table 3), a shared default
``[]``/``{}`` is cross-flow state leakage waiting to happen.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.lint import Finding, LintRule, SourceModule

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter", "OrderedDict"}


def _is_mutable(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = node.func.id if isinstance(node.func, ast.Name) else None
        if name is None and isinstance(node.func, ast.Attribute):
            name = node.func.attr
        return name in _MUTABLE_CALLS
    return False


class MutableDefaultsRule(LintRule):
    code = "SIM003"
    name = "mutable-defaults"
    description = "mutable default argument is shared across calls; default to None and create inside"

    def check(self, module: SourceModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            args = node.args
            defaults = list(args.defaults) + [d for d in args.kw_defaults if d is not None]
            for default in defaults:
                if _is_mutable(default):
                    func = getattr(node, "name", "<lambda>")
                    yield module.finding(
                        default,
                        self.code,
                        f"mutable default argument in `{func}`; use None and construct per call",
                    )
