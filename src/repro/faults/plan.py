"""Declarative fault plans (the configuration half of ``repro.faults``).

A :class:`FaultPlan` describes every fault the harness can inject into a
run — network-level (bursty loss, corruption, jitter, link flaps),
NIC/driver-level (context-cache eviction storms, PCIe stalls/failures
during TX recovery, misbehaving resync responses) — plus the
:class:`DegradePolicy` that governs how the driver degrades gracefully
under sustained failure (paper §5.3's "give up" path).

Everything here is a frozen dataclass with zero-fault defaults: an empty
plan is byte-for-byte identical to no plan, so baselines are untouched.
The *mechanisms* that consume these plans live in ``repro.net.link``
(wire faults), ``repro.nic``/``repro.core`` (device faults and
degradation), and ``repro.harness.testbed`` (wiring).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional, Tuple

Window = Tuple[float, float]  # (start_s, end_s) in simulated time


@dataclass(frozen=True)
class GilbertElliott:
    """Two-state bursty-loss channel (Gilbert–Elliott).

    The channel steps once per packet: in the *good* state it moves to
    *bad* with ``p_good_to_bad``; in *bad* it recovers with
    ``p_bad_to_good``.  Each state drops packets at its own rate.  The
    stationary loss rate is ``pi_bad * loss_bad + (1-pi_bad) *
    loss_good`` with ``pi_bad = p_good_to_bad / (p_good_to_bad +
    p_bad_to_good)``; the mean burst length is ``1 / p_bad_to_good``
    packets.
    """

    p_good_to_bad: float = 0.0
    p_bad_to_good: float = 0.2
    loss_good: float = 0.0
    loss_bad: float = 0.5

    def mean_loss(self) -> float:
        denom = self.p_good_to_bad + self.p_bad_to_good
        pi_bad = self.p_good_to_bad / denom if denom else 0.0
        return pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good

    @classmethod
    def for_mean_loss(cls, mean: float, burst_len: float = 5.0, loss_bad: float = 0.5) -> "GilbertElliott":
        """A channel with stationary loss ``mean`` and the given mean
        burst length (in packets) while in the bad state."""
        if not 0.0 <= mean < loss_bad:
            raise ValueError(f"mean loss {mean} must be in [0, loss_bad={loss_bad})")
        p_b2g = 1.0 / burst_len
        pi_bad = mean / loss_bad
        p_g2b = p_b2g * pi_bad / (1.0 - pi_bad) if pi_bad else 0.0
        return cls(p_good_to_bad=p_g2b, p_bad_to_good=p_b2g, loss_bad=loss_bad)


@dataclass(frozen=True)
class LinkFaultProfile:
    """Wire faults for one link direction, beyond the i.i.d. knobs that
    already live on :class:`repro.net.link.LinkConfig`."""

    corrupt: float = 0.0  # per-packet probability of a payload bit flip
    jitter_s: float = 0.0  # uniform extra delivery delay in [0, jitter_s)
    burst: Optional[GilbertElliott] = None  # bursty loss channel
    flaps: Tuple[Window, ...] = ()  # scripted down/up windows (sim time)


@dataclass(frozen=True)
class NicFaultProfile:
    """Faults inside the NIC/driver of the device under test."""

    # Context-cache eviction storms: every access during a storm window
    # forcibly misses; outside windows each access is evicted first with
    # ``cache_evict_prob`` (models firmware churn / tenant interference).
    cache_evict_prob: float = 0.0
    cache_storm_windows: Tuple[Window, ...] = ()
    # PCIe faults during TX context recovery (§4.2's DMA re-read).
    pcie_stall_prob: float = 0.0
    pcie_stall_cycles: int = 20_000
    pcie_fail_prob: float = 0.0
    # Resync-response channel between driver and NIC (Figure 7 c->d).
    resync_resp_drop: float = 0.0
    resync_resp_delay: float = 0.0
    resync_resp_delay_s: float = 1e-3
    resync_resp_dup: float = 0.0

    def storm_active(self, now: float) -> bool:
        return any(start <= now < end for start, end in self.cache_storm_windows)


@dataclass(frozen=True)
class DegradePolicy:
    """Graceful-degradation knobs for :class:`repro.core.driver.NicDriver`.

    All zero by default — the driver then behaves exactly like the
    pre-degradation code (no retry timers are ever scheduled).  With
    ``max_resync_retries > 0`` the driver re-issues an unanswered resync
    request up to that many times with exponential backoff; an exhausted
    or denied speculation counts as one resync *failure*.  After
    ``disable_after_failures`` consecutive failures the flow's offload
    is auto-disabled (permanent software fallback), optionally re-armed
    after ``probation_s`` of simulated time.
    """

    max_resync_retries: int = 0
    resync_timeout_s: float = 2e-3
    resync_backoff: float = 2.0
    disable_after_failures: int = 0
    probation_s: float = 0.0


@dataclass(frozen=True)
class FaultPlan:
    """Everything injectable in one run, per direction/component."""

    to_server: Optional[LinkFaultProfile] = None  # generator -> DUT wire
    to_generator: Optional[LinkFaultProfile] = None  # DUT -> generator wire
    nic: Optional[NicFaultProfile] = None  # DUT NIC/driver faults
    degrade: Optional[DegradePolicy] = None  # driver degradation policy

    def describe(self) -> dict:
        """JSON-friendly summary (for run manifests and chaos logs)."""
        return asdict(self)
