"""Figure 17: packet loss at the *receiver* — throughput plus the
classification of TLS records into entirely / partially / not offloaded
(the effectiveness of the NIC's context recovery)."""

from benchlib import QUICK, loss_pct
from repro.exec import run_grid_dict
from repro.experiments.iperf_tls import run_iperf
from repro.harness.report import Table

LOSS_POINTS = (0.0, 0.03) if QUICK else (0.0, 0.01, 0.03, 0.05)
STREAMS = 64  # scaled from the paper's 128 for simulation cost
MODES = ("tcp", "tls-offload", "tls-sw")


def run_point(point):
    loss, mode = point
    return run_iperf(
        mode,
        direction="rx",
        streams=STREAMS,
        loss=loss,
        warmup=4e-3,
        measure=8e-3,
        seed=23,
    )


def sweep():
    points = [(loss, mode) for loss in LOSS_POINTS for mode in MODES]
    return run_grid_dict(points, run_point)


def classify(run):
    total = max(1, sum(run.records.values()))
    return {k: v / total for k, v in run.records.items()}


def test_fig17(benchmark, emit):
    grid = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        ["loss %", "tcp Gbps", "offload Gbps", "sw tls Gbps", "full %", "partial %", "none %"],
        title=f"Figure 17: receiver-side loss (1 receiver core, {STREAMS} streams)",
    )
    metrics = {}
    for loss in LOSS_POINTS:
        off = grid[(loss, "tls-offload")]
        cls = classify(off)
        table.row(
            f"{100 * loss:.0f}",
            grid[(loss, "tcp")].goodput_gbps,
            off.goodput_gbps,
            grid[(loss, "tls-sw")].goodput_gbps,
            f"{100 * cls['full']:.0f}%",
            f"{100 * cls['partial']:.0f}%",
            f"{100 * cls['none']:.0f}%",
        )
        key = loss_pct(loss)
        metrics[f"{key}.tcp_gbps"] = grid[(loss, "tcp")].goodput_gbps
        metrics[f"{key}.offload_gbps"] = off.goodput_gbps
        metrics[f"{key}.sw_gbps"] = grid[(loss, "tls-sw")].goodput_gbps
        metrics[f"{key}.full_frac"] = cls["full"]
        metrics[f"{key}.partial_frac"] = cls["partial"]
        metrics[f"{key}.none_frac"] = cls["none"]
    emit("fig17_rx_loss", table.render(), metrics=metrics, meta={"streams": STREAMS})

    # Loss-free: everything is offloaded and offload ~ matches TCP pace.
    clean = classify(grid[(0.0, "tls-offload")])
    assert clean["full"] > 0.99
    # Under light loss, most records stay fully offloaded; heavier loss
    # degrades gradually, never to zero.  (The paper reports >50% full
    # at 5%; our software-confirmation latency is more conservative —
    # each speculative recovery costs a few records — so the measured
    # tail is lower.  See EXPERIMENTS.md.)
    if 0.01 in LOSS_POINTS:
        assert classify(grid[(0.01, "tls-offload")])["full"] > 0.45
    worst = classify(grid[(LOSS_POINTS[-1], "tls-offload")])
    assert worst["full"] > 0.05
    # Offload clearly wins at realistic loss (<=2% on the internet) and
    # degrades to software-TLS parity at the worst case.
    for loss in LOSS_POINTS:
        off = grid[(loss, "tls-offload")].goodput_gbps
        sw = grid[(loss, "tls-sw")].goodput_gbps
        assert off > sw * (1.2 if loss <= 0.01 else 0.9)
