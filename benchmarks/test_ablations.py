"""Ablations of the design choices DESIGN.md calls out (not in the
paper's evaluation, but implied by its design discussion):

- deterministic boundary resync (Figure 8b) vs speculation-only,
- the hardware-driven speculation machinery vs none at all,
- sensitivity to the driver's resync-request latency,
- NIC context-cache size vs miss rate,
- TLS record size vs recovery effectiveness under loss.
"""

from repro.experiments.iperf_tls import run_iperf
from repro.experiments.scalability import run_scale_point
from repro.harness.report import Table

LOSS = 0.03
SEED = 41


def _full_fraction(run):
    total = max(1, sum(run.records.values()))
    return run.records["full"] / total


def test_ablation_recovery_mechanisms(benchmark, emit):
    def runs():
        def off_boundary(nic):
            nic.rx_engine.enable_boundary_resync = False

        def off_everything(nic):
            nic.rx_engine.enable_boundary_resync = False
            nic.rx_engine.enable_speculation = False

        return {
            "full machinery": run_iperf("tls-offload", "rx", streams=16, loss=LOSS, seed=SEED),
            "no boundary resync": run_iperf(
                "tls-offload", "rx", streams=16, loss=LOSS, seed=SEED, tune_nic=off_boundary
            ),
            "no recovery at all": run_iperf(
                "tls-offload", "rx", streams=16, loss=LOSS, seed=SEED, tune_nic=off_everything
            ),
        }

    grid = benchmark.pedantic(runs, rounds=1, iterations=1)
    table = Table(
        ["configuration", "Gbps", "fully offloaded %", "resyncs"],
        title=f"Ablation: RX recovery machinery at {100 * LOSS:.0f}% loss",
    )
    for name, run in grid.items():
        table.row(name, run.goodput_gbps, f"{100 * _full_fraction(run):.0f}%", run.resyncs)
    emit("ablation_recovery", table.render())

    full = _full_fraction(grid["full machinery"])
    no_boundary = _full_fraction(grid["no boundary resync"])
    none_at_all = _full_fraction(grid["no recovery at all"])
    # The deterministic boundary re-lock carries the recovery: without
    # it, speculation alone cannot keep up at this loss rate (every
    # episode pays the software-confirmation round trip) and with
    # nothing at all the offload dies at the first loss per flow.
    assert full > max(no_boundary, 0.1)
    assert no_boundary >= none_at_all
    assert grid["no boundary resync"].resyncs > 0
    assert grid["no recovery at all"].resyncs == 0
    assert none_at_all < 0.05


def test_ablation_resync_latency(benchmark, emit):
    def runs():
        # Small records make speculation the dominant recovery path
        # (headers are lost along with data), so the request latency
        # actually bites.
        out = {}
        for delay in (0.0, 500e-6, 2e-3):
            def tune(nic, d=delay):
                nic.driver.resync_delay_s = d

            out[delay] = run_iperf(
                "tls-offload", "rx", streams=16, loss=LOSS, record_size=2048, seed=SEED, tune_nic=tune
            )
        return out

    grid = benchmark.pedantic(runs, rounds=1, iterations=1)
    table = Table(
        ["resync request delay", "Gbps", "fully offloaded %"],
        title=f"Ablation: driver resync latency at {100 * LOSS:.0f}% loss",
    )
    for delay, run in grid.items():
        table.row(f"{delay * 1e6:.0f}us", run.goodput_gbps, f"{100 * _full_fraction(run):.0f}%")
    emit("ablation_resync_latency", table.render())

    # Slower confirmations keep the NIC bypassing longer.
    assert _full_fraction(grid[0.0]) >= _full_fraction(grid[2e-3])


def test_ablation_record_size_under_loss(benchmark, emit):
    def runs():
        return {
            size: run_iperf("tls-offload", "rx", streams=16, loss=LOSS, record_size=size, seed=SEED)
            for size in (2 * 1024, 8 * 1024, 16 * 1024)
        }

    grid = benchmark.pedantic(runs, rounds=1, iterations=1)
    table = Table(
        ["record size", "Gbps", "fully offloaded %"],
        title=f"Ablation: record size vs recovery at {100 * LOSS:.0f}% loss",
    )
    for size, run in grid.items():
        table.row(f"{size // 1024}KiB", run.goodput_gbps, f"{100 * _full_fraction(run):.0f}%")
    emit("ablation_record_size", table.render())

    # Smaller records put more headers on the wire, so after a loss the
    # NIC re-locks sooner (boundary re-locks and partially-past tracking
    # walks find a header within a packet or two) and a larger fraction
    # of records survives fully offloaded.  Note: more headers also mean
    # losses hit headers more often, driving more speculative searches
    # (see the resync counts) — but confirmations resolve quickly.
    assert _full_fraction(grid[2 * 1024]) > _full_fraction(grid[16 * 1024])
    assert grid[2 * 1024].resyncs > grid[16 * 1024].resyncs


def test_ablation_nic_cache_size(benchmark, emit):
    def runs():
        # Same connection count against shrinking caches.
        return {
            scale: run_scale_point(512, variant="offload+zc", server_cores=4, scale=scale, measure=6e-3)
            for scale in (4, 64, 512)
        }

    grid = benchmark.pedantic(runs, rounds=1, iterations=1)
    table = Table(
        ["cache flows", "Gbps", "ctx miss %", "rx batch"],
        title="Ablation: NIC context-cache size, 512 connections",
    )
    for scale, p in grid.items():
        table.row(p.cache_capacity_flows, p.goodput_gbps, f"{100 * p.cache_miss_rate:.1f}%", p.mean_rx_batch)
    emit("ablation_cache_size", table.render())

    # Misses rise as the cache shrinks below the flow count...
    assert grid[512].cache_miss_rate > grid[4].cache_miss_rate
    # ...but throughput survives (batching hides the misses, §6.5).
    assert grid[512].goodput_gbps > 0.5 * grid[4].goodput_gbps
