#!/usr/bin/env python3
"""Scenario: what happens to the offload when the network misbehaves.

Injects loss and reordering on the path toward an offloaded TLS
receiver and watches the Figure-7 machinery work: retransmitted packets
bypass the offload, message-boundary resyncs re-lock deterministically,
and the speculative magic-pattern search plus software confirmation
brings the NIC back when whole headers go missing — all while the data
stays bit-correct.

Run:  python examples/lossy_network_resilience.py
"""

from repro.experiments.iperf_tls import run_iperf
from repro.harness.report import Table


def main() -> None:
    table = Table(
        ["fault", "offload Gbps", "sw TLS Gbps", "full %", "partial %", "none %", "resyncs"],
        title="Offloaded TLS receiver under injected faults (16 streams, 1 core)",
    )
    for fault, kwargs in [
        ("clean", {}),
        ("1% loss", {"loss": 0.01}),
        ("5% loss", {"loss": 0.05}),
        ("1% reorder", {"reorder": 0.01}),
        ("5% reorder", {"reorder": 0.05}),
    ]:
        off = run_iperf("tls-offload", direction="rx", streams=16, seed=11, **kwargs)
        sw = run_iperf("tls-sw", direction="rx", streams=16, seed=11, **kwargs)
        total = max(1, sum(off.records.values()))
        table.row(
            fault,
            off.goodput_gbps,
            sw.goodput_gbps,
            f"{100 * off.records['full'] / total:.0f}%",
            f"{100 * off.records['partial'] / total:.0f}%",
            f"{100 * off.records['none'] / total:.0f}%",
            off.resyncs,
        )
    table.show()
    print()
    print("Light faults leave most records fully offloaded (boundary resync")
    print("is cheap); heavy faults push more records to software fallback")
    print("until the offload converges to software-TLS performance — never")
    print("meaningfully below it — and every byte arrives intact.")


if __name__ == "__main__":
    main()
