"""The two-machine testbed from the paper's §6.

A Dell R730 "server" (the device under test: 2.0 GHz cores, offload
NIC) and an R640 "generator" (workload generator and remote-drive
target) connected back-to-back over 100 Gbps ConnectX-6 Dx ports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cpu.model import CostModel, DEFAULT_COST_MODEL
from repro.net.host import Host
from repro.net.link import Link, LinkConfig
from repro.nic import OffloadNic
from repro.sim import Simulator
from repro.util.units import GBPS


@dataclass
class TestbedConfig:
    __test__ = False  # not a pytest collectable despite the name

    seed: int = 0
    server_cores: int = 1  # the DUT ("server" in the paper)
    generator_cores: int = 12  # the workload generator (R640: 12 cores/socket)
    bandwidth_bps: float = 100 * GBPS
    latency_s: float = 5e-6
    # Fault injection, per direction.
    loss_to_server: float = 0.0
    reorder_to_server: float = 0.0
    duplicate_to_server: float = 0.0
    loss_to_generator: float = 0.0
    reorder_to_generator: float = 0.0
    model: CostModel = field(default_factory=lambda: DEFAULT_COST_MODEL)
    nic_cache_bytes: int = 4 * 1024 * 1024
    # Enable the runtime invariant sanitizer (repro.analysis.sanitizer)
    # for this run; also switchable globally via REPRO_SANITIZE=1.
    sanitize: bool = False


class Testbed:
    """Two hosts, one link; the server side is 'a', the generator 'b'."""

    __test__ = False  # not a pytest collectable despite the name

    def __init__(self, config: Optional[TestbedConfig] = None):
        self.config = config or TestbedConfig()
        cfg = self.config
        if cfg.sanitize:
            from repro.analysis import sanitizer

            sanitizer.enable()
        self.sim = Simulator(seed=cfg.seed)
        self.server = Host(
            self.sim,
            "server",
            model=cfg.model,
            cores=cfg.server_cores,
            nic=OffloadNic(cache_bytes=cfg.nic_cache_bytes),
        )
        self.generator = Host(
            self.sim,
            "generator",
            model=cfg.model,
            cores=cfg.generator_cores,
            nic=OffloadNic(cache_bytes=cfg.nic_cache_bytes),
        )
        self.link = Link(
            self.sim,
            config_ab=LinkConfig(
                bandwidth_bps=cfg.bandwidth_bps,
                latency_s=cfg.latency_s,
                loss=cfg.loss_to_generator,
                reorder=cfg.reorder_to_generator,
            ),
            config_ba=LinkConfig(
                bandwidth_bps=cfg.bandwidth_bps,
                latency_s=cfg.latency_s,
                loss=cfg.loss_to_server,
                reorder=cfg.reorder_to_server,
                duplicate=cfg.duplicate_to_server,
            ),
        )
        self.server.attach_link(self.link, "a")
        self.generator.attach_link(self.link, "b")

    # ------------------------------------------------------------------
    def run(self, until: float) -> None:
        self.sim.run(until=until)

    def reset_measurement(self) -> None:
        """Clear counters after warm-up so steady state is measured."""
        self.server.cpu.reset_stats()
        self.generator.cpu.reset_stats()
        self.server.nic.pcie.reset_stats()
        self.generator.nic.pcie.reset_stats()
        self.server.nic.cache.reset_stats()
        self.server.rx_batch_sizes.clear()
