"""End-to-end NVMe-TCP tests: reads/writes over the simulated fabric,
CRC and copy offloads, fault resilience, and the NVMe-TLS composition."""


from helpers import make_pair
from repro.l5p.nvme_tcp import NvmeConfig, NvmeTcpHost, NvmeTcpTarget
from repro.l5p.tls.ktls import TlsConfig
from repro.nic import OffloadNic
from repro.storage.blockdev import BlockDevice


def nvme_pair(
    seed=0,
    host_cfg=None,
    target_cfg=None,
    host_tls=None,
    target_tls=None,
    loss_to_client=0.0,
    reorder_to_client=0.0,
    loss_to_server=0.0,
    client_cores=1,
    server_cores=4,
):
    """Client = initiator, server = target machine with the drive."""
    pair = make_pair(
        seed=seed,
        client_cores=client_cores,
        server_cores=server_cores,
        loss_to_client=loss_to_client,
        reorder_to_client=reorder_to_client,
        loss_to_server=loss_to_server,
        client_nic=OffloadNic(),
        server_nic=OffloadNic(),
    )
    device = BlockDevice(pair.sim)
    target = NvmeTcpTarget(pair.server, device, config=target_cfg or NvmeConfig(), tls=target_tls)
    target.start()
    initiator = NvmeTcpHost(pair.client, config=host_cfg or NvmeConfig(), tls=host_tls)
    initiator.connect("server", on_ready=None)
    return pair, initiator, target, device


def run_reads(pair, initiator, offsets_lengths, until=10.0):
    results = {}

    def issue():
        for i, (off, length) in enumerate(offsets_lengths):
            initiator.read(off, length, lambda data, lat, i=i: results.__setitem__(i, (data, lat)))

    if initiator.ready:
        issue()
    else:
        initiator.on_ready = issue
    pair.sim.run(until=until)
    return results


SOFT = NvmeConfig()
OFF_RX = NvmeConfig(rx_offload_crc=True, rx_offload_copy=True)
OFF_TX = NvmeConfig(tx_offload=True)
OFF_ALL = NvmeConfig(tx_offload=True, rx_offload_crc=True, rx_offload_copy=True)


class TestSoftwareNvme:
    def test_read_returns_device_content(self):
        pair, initiator, target, device = nvme_pair()
        results = run_reads(pair, initiator, [(0, 4096), (8192, 16384)])
        assert results[0][0] == device.peek(0, 4096)
        assert results[1][0] == device.peek(8192, 16384)
        assert initiator.stats.pdus_software > 0
        assert initiator.stats.pdus_placed == 0

    def test_write_then_read_round_trip(self):
        pair, initiator, target, device = nvme_pair()
        payload = bytes(i % 199 for i in range(32768))
        done = {}

        def go():
            # NVMe gives no cross-command ordering: read after completion.
            initiator.write(
                4096,
                payload,
                lambda lat: initiator.read(
                    4096, len(payload), lambda data, _lat: done.setdefault("r", data)
                ),
            )

        initiator.on_ready = go
        pair.sim.run(until=5.0)
        assert done["r"] == payload
        assert device.peek(4096, len(payload)) == payload

    def test_large_read_spans_many_packets(self):
        pair, initiator, target, device = nvme_pair()
        results = run_reads(pair, initiator, [(0, 256 * 1024)])
        assert results[0][0] == device.peek(0, 256 * 1024)

    def test_queue_depth_limits_inflight(self):
        cfg = NvmeConfig(queue_depth=4)
        pair, initiator, target, device = nvme_pair(host_cfg=cfg, target_cfg=cfg)
        seen = []
        orig = initiator._issue

        def spy(*args):
            seen.append(initiator.inflight)
            orig(*args)

        initiator._issue = spy
        results = run_reads(pair, initiator, [(i * 4096, 4096) for i in range(32)])
        assert len(results) == 32
        assert max(seen) <= 4

    def test_latency_includes_drive_time(self):
        pair, initiator, target, device = nvme_pair()
        results = run_reads(pair, initiator, [(0, 65536)])
        _, latency = results[0]
        # Must be at least drive access + transfer + RTT.
        assert latency > device.access_latency_s


class TestOffloadedNvme:
    def test_rx_offload_places_and_verifies(self):
        pair, initiator, target, device = nvme_pair(host_cfg=OFF_RX, target_cfg=SOFT)
        results = run_reads(pair, initiator, [(0, 131072), (131072, 65536)])
        assert results[0][0] == device.peek(0, 131072)
        assert results[1][0] == device.peek(131072, 65536)
        assert initiator.stats.pdus_placed > 0

    def test_rx_offload_skips_copy_and_crc_cycles(self):
        def cycles(cfg):
            pair, initiator, target, device = nvme_pair(host_cfg=cfg, target_cfg=SOFT, seed=7)
            run_reads(pair, initiator, [(i * 65536, 65536) for i in range(16)])
            cats = pair.client.cpu.cycles_by_category()
            return cats.get("copy", 0) + cats.get("crc", 0)

        assert cycles(OFF_RX) < cycles(SOFT) * 0.05

    def test_tx_offload_fills_write_digest(self):
        pair, initiator, target, device = nvme_pair(host_cfg=OFF_TX, target_cfg=SOFT)
        payload = bytes(i % 97 for i in range(65536))
        done = {}

        def go():
            initiator.write(0, payload, lambda lat: done.setdefault("w", True))

        initiator.on_ready = go
        pair.sim.run(until=5.0)
        # The target verified the digest in software and accepted: the
        # NIC must have produced a correct CRC.
        assert done.get("w") is True
        assert device.peek(0, len(payload)) == payload
        stats = pair.client.nic.offload_stats()
        assert stats["pkts_offloaded"] > 0

    def test_target_tx_offload_serves_reads(self):
        pair, initiator, target, device = nvme_pair(host_cfg=SOFT, target_cfg=OFF_TX)
        results = run_reads(pair, initiator, [(0, 131072)])
        # Host verifies the CRC the *target's* NIC computed.
        assert results[0][0] == device.peek(0, 131072)
        assert initiator.stats.digest_failures == 0


class TestNvmeUnderFaults:
    def test_reads_survive_loss_toward_initiator(self):
        pair, initiator, target, device = nvme_pair(
            host_cfg=OFF_RX, target_cfg=SOFT, seed=21, loss_to_client=0.02
        )
        results = run_reads(pair, initiator, [(i * 65536, 65536) for i in range(12)], until=30.0)
        assert len(results) == 12
        for i in range(12):
            assert results[i][0] == device.peek(i * 65536, 65536)
        # Some PDUs fell back to software.
        assert initiator.stats.pdus_software > 0

    def test_reads_survive_reordering(self):
        pair, initiator, target, device = nvme_pair(
            host_cfg=OFF_RX, target_cfg=SOFT, seed=22, reorder_to_client=0.03
        )
        results = run_reads(pair, initiator, [(i * 65536, 65536) for i in range(12)], until=30.0)
        for i in range(12):
            assert results[i][0] == device.peek(i * 65536, 65536)

    def test_writes_survive_loss_with_tx_offload(self):
        pair, initiator, target, device = nvme_pair(
            host_cfg=OFF_TX, target_cfg=SOFT, seed=23, loss_to_server=0.02
        )
        payload = bytes(i % 251 for i in range(131072))
        done = []

        def go():
            for i in range(6):
                initiator.write(i * 131072, payload, lambda lat: done.append(lat))

        initiator.on_ready = go
        pair.sim.run(until=30.0)
        assert len(done) == 6
        for i in range(6):
            assert device.peek(i * 131072, 131072) == payload
        # Retransmissions forced TX context recoveries.
        assert pair.client.nic.offload_stats()["tx_recoveries"] > 0


TLS_OFF = TlsConfig(tx_offload=True, rx_offload=True)
TLS_SOFT = TlsConfig()


class TestNvmeTls:
    def test_combined_offload_round_trip(self):
        pair, initiator, target, device = nvme_pair(
            host_cfg=OFF_ALL, target_cfg=OFF_ALL, host_tls=TLS_OFF, target_tls=TLS_OFF
        )
        results = run_reads(pair, initiator, [(0, 131072), (131072, 131072)])
        assert results[0][0] == device.peek(0, 131072)
        assert results[1][0] == device.peek(131072, 131072)
        # The initiator's NIC decrypted AND placed (skipping software).
        assert initiator.stats.pdus_placed > 0

    def test_combined_software_round_trip(self):
        pair, initiator, target, device = nvme_pair(
            host_cfg=SOFT, target_cfg=SOFT, host_tls=TLS_SOFT, target_tls=TLS_SOFT
        )
        results = run_reads(pair, initiator, [(0, 65536)])
        assert results[0][0] == device.peek(0, 65536)

    def test_combined_write_path(self):
        pair, initiator, target, device = nvme_pair(
            host_cfg=OFF_ALL, target_cfg=OFF_ALL, host_tls=TLS_OFF, target_tls=TLS_OFF
        )
        payload = bytes(i % 103 for i in range(131072))
        done = []
        initiator.on_ready = lambda: initiator.write(0, payload, lambda lat: done.append(lat))
        pair.sim.run(until=5.0)
        assert done
        assert device.peek(0, len(payload)) == payload

    def test_combined_offload_survives_loss(self):
        """Under loss the inner offload degrades but data stays correct."""
        pair, initiator, target, device = nvme_pair(
            host_cfg=OFF_ALL,
            target_cfg=OFF_ALL,
            host_tls=TLS_OFF,
            target_tls=TLS_OFF,
            seed=31,
            loss_to_client=0.02,
        )
        results = run_reads(pair, initiator, [(i * 65536, 65536) for i in range(10)], until=40.0)
        assert len(results) == 10
        for i in range(10):
            assert results[i][0] == device.peek(i * 65536, 65536)

    def test_combined_offload_saves_cycles(self):
        def client_cycles(nvme_cfg, tls_cfg):
            pair, initiator, target, device = nvme_pair(
                host_cfg=nvme_cfg, target_cfg=OFF_ALL, host_tls=tls_cfg, target_tls=TLS_OFF, seed=5
            )
            run_reads(pair, initiator, [(i * 131072, 131072) for i in range(8)])
            return pair.client.cpu.total_cycles

        soft = client_cycles(SOFT, TLS_SOFT)
        combined = client_cycles(OFF_ALL, TLS_OFF)
        assert combined < soft * 0.6
