"""Figure 11 + §6.1: kTLS/iperf per-record cycles by record size, and
the single-core throughput gains of the real TLS offload (paper: 3.3x
transmit, 2.2x receive)."""

from repro.experiments.iperf_tls import run_iperf
from repro.harness.report import Table

RECORD_SIZES = (2 * 1024, 4 * 1024, 8 * 1024, 16 * 1024)
PAPER_SHARE = {  # crypto % per record size, transmit / receive
    2 * 1024: (61, 54),
    4 * 1024: (66, 55),
    8 * 1024: (70, 58),
    16 * 1024: (70, 60),
}


def sweep(direction):
    return [
        run_iperf("tls-sw", direction=direction, record_size=size, measure=6e-3)
        for size in RECORD_SIZES
    ]


def test_fig11_cycles_per_record(benchmark, emit):
    tx_runs = benchmark.pedantic(sweep, args=("tx",), rounds=1, iterations=1)
    rx_runs = sweep("rx")
    table = Table(
        ["record", "dir", "crypto/rec", "other/rec", "crypto %", "paper %"],
        title="Figure 11: kTLS/iperf per-record cycles (software TLS)",
    )
    shares = {}
    for direction, runs in (("tx", tx_runs), ("rx", rx_runs)):
        for size, run in zip(RECORD_SIZES, runs):
            per_record = run.cycles_per_record(size)
            crypto = per_record.get("crypto", 0)
            other = sum(per_record.values()) - crypto
            share = run.crypto_fraction
            shares[(direction, size)] = share
            paper = PAPER_SHARE[size][0 if direction == "tx" else 1]
            table.row(f"{size // 1024}KiB", direction, crypto, other, f"{100 * share:.0f}%", f"{paper}%")
    emit("fig11_tls_cycles", table.render())

    # Bigger records make crypto more dominant, in both directions.
    for direction in ("tx", "rx"):
        series = [shares[(direction, s)] for s in RECORD_SIZES]
        assert series[-1] > series[0]
        assert series[-1] > 0.5


def test_sec61_offload_gains(benchmark, emit):
    def run_all():
        # 8 streams: the single DUT core stays the bottleneck while the
        # generator spreads the other side across its cores.
        return {
            "tx-sw": run_iperf("tls-sw", direction="tx", streams=8),
            "tx-off": run_iperf("tls-offload", direction="tx", streams=8),
            "rx-sw": run_iperf("tls-sw", direction="rx", streams=8),
            "rx-off": run_iperf("tls-offload", direction="rx", streams=8),
        }

    runs = benchmark.pedantic(run_all, rounds=1, iterations=1)
    tx_gain = runs["tx-off"].goodput_gbps / runs["tx-sw"].goodput_gbps
    rx_gain = runs["rx-off"].goodput_gbps / runs["rx-sw"].goodput_gbps
    table = Table(
        ["direction", "software Gbps", "offload Gbps", "gain", "paper"],
        title="§6.1: single-core iperf TLS offload improvement",
    )
    table.row("transmit", runs["tx-sw"].goodput_gbps, runs["tx-off"].goodput_gbps, f"{tx_gain:.2f}x", "3.3x")
    table.row("receive", runs["rx-sw"].goodput_gbps, runs["rx-off"].goodput_gbps, f"{rx_gain:.2f}x", "2.2x")
    emit("sec61_offload_gains", table.render())

    assert 2.0 <= tx_gain <= 4.5
    assert 1.5 <= rx_gain <= 3.5
    assert tx_gain > rx_gain  # transmit benefits more (paper's finding)
