"""Figure 18: reordering at the receiver — costlier than loss for the
offload (reordered packets tear records without dropping bytes), yet
never worse than software TLS."""

from repro.experiments.iperf_tls import run_iperf
from repro.harness.report import Table

REORDER_POINTS = (0.0, 0.01, 0.03, 0.05)
STREAMS = 64  # scaled from the paper's 128 for simulation cost


def sweep():
    out = {}
    for reorder in REORDER_POINTS:
        for mode in ("tcp", "tls-offload", "tls-sw"):
            out[(reorder, mode)] = run_iperf(
                mode,
                direction="rx",
                streams=STREAMS,
                reorder=reorder,
                warmup=4e-3,
                measure=8e-3,
                seed=29,
            )
    return out


def classify(run):
    total = max(1, sum(run.records.values()))
    return {k: v / total for k, v in run.records.items()}


def test_fig18(benchmark, emit):
    grid = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        ["reorder %", "tcp Gbps", "offload Gbps", "sw tls Gbps", "full %", "partial %", "none %"],
        title=f"Figure 18: receiver-side reordering (1 receiver core, {STREAMS} streams)",
    )
    for reorder in REORDER_POINTS:
        off = grid[(reorder, "tls-offload")]
        cls = classify(off)
        table.row(
            f"{100 * reorder:.0f}",
            grid[(reorder, "tcp")].goodput_gbps,
            off.goodput_gbps,
            grid[(reorder, "tls-sw")].goodput_gbps,
            f"{100 * cls['full']:.0f}%",
            f"{100 * cls['partial']:.0f}%",
            f"{100 * cls['none']:.0f}%",
        )
    emit("fig18_rx_reorder", table.render())

    # Reordering shreds full offloading much faster than loss does
    # (paper: 24% fully offloaded at 2%, ~0 at 5%)...
    assert classify(grid[(0.03, "tls-offload")])["full"] < 0.6
    assert classify(grid[(0.05, "tls-offload")])["full"] < classify(grid[(0.01, "tls-offload")])["full"]
    # ...but in the worst case offload degrades to software TLS, not
    # below it (paper: "performance is still as good as software tls").
    for reorder in REORDER_POINTS:
        off = grid[(reorder, "tls-offload")].goodput_gbps
        sw = grid[(reorder, "tls-sw")].goodput_gbps
        assert off > sw * 0.85
