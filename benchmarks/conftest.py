"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables or figures: it
runs the matching experiment on the simulated testbed, prints the same
rows/series the paper reports, and saves them under benchmarks/out/ so
EXPERIMENTS.md can be cross-checked against fresh runs.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


@pytest.fixture
def emit():
    """Print a figure/table reproduction and persist it to out/."""

    def _emit(name: str, text: str) -> None:
        os.makedirs(OUT_DIR, exist_ok=True)
        print()
        print(f"=== {name} ===")
        print(text)
        with open(os.path.join(OUT_DIR, f"{name}.txt"), "w") as fh:
            fh.write(text + "\n")

    return _emit
