"""Smoke tests for the experiment runners (tiny durations): every
figure's runner must produce sane, internally consistent results."""

import pytest

from repro.experiments.fio_cycles import run_fio_point
from repro.experiments.iperf_tls import run_iperf
from repro.experiments.nginx_bench import run_nginx, variant_tls
from repro.experiments.rof_bench import run_rof
from repro.experiments.scalability import run_scale_point


class TestIperfRunner:
    def test_tls_sw_tx(self):
        run = run_iperf("tls-sw", direction="tx", warmup=2e-3, measure=3e-3)
        assert run.goodput_gbps > 0.5
        assert run.dut_cycles.get("crypto", 0) > 0
        assert 0.3 < run.crypto_fraction < 0.9

    def test_tcp_mode_has_no_crypto(self):
        run = run_iperf("tcp", direction="tx", warmup=2e-3, measure=3e-3)
        assert run.dut_cycles.get("crypto", 0) == 0
        assert run.goodput_gbps > 1

    def test_offload_rx_records_all_full(self):
        run = run_iperf("tls-offload", direction="rx", warmup=2e-3, measure=3e-3)
        assert run.records["full"] > 0
        assert run.records["none"] == 0

    def test_bad_mode_and_direction(self):
        with pytest.raises(ValueError):
            run_iperf("quic")
        with pytest.raises(ValueError):
            run_iperf("tcp", direction="sideways")

    def test_loss_triggers_tx_recovery(self):
        run = run_iperf("tls-offload", direction="tx", loss=0.03, warmup=3e-3, measure=5e-3, seed=3)
        assert run.tx_recoveries > 0
        assert run.pcie_recovery_fraction >= 0


class TestFioRunner:
    def test_point_sane(self):
        p = run_fio_point(4096, iodepth=1, warmup=2e-3, measure=4e-3)
        assert p.requests > 0
        assert p.cycles_total > 0
        assert 0 <= p.offloadable_fraction < 0.5
        assert p.cycles_idle > 0  # a single outstanding 4KiB I/O waits a lot

    def test_offload_point_removes_copy_crc(self):
        base = run_fio_point(65536, iodepth=8, warmup=2e-3, measure=4e-3)
        off = run_fio_point(65536, iodepth=8, offload=True, warmup=2e-3, measure=4e-3)
        assert off.cycles_copy + off.cycles_crc < 0.2 * (base.cycles_copy + base.cycles_crc)

    def test_llc_pressure_raises_copy_cost(self):
        shallow = run_fio_point(256 * 1024, iodepth=4, warmup=2e-3, measure=5e-3)
        deep = run_fio_point(256 * 1024, iodepth=256, warmup=2e-3, measure=5e-3)
        per_byte_shallow = shallow.cycles_copy / (256 * 1024)
        per_byte_deep = deep.cycles_copy / (256 * 1024)
        assert per_byte_deep > per_byte_shallow * 1.3


class TestNginxRunner:
    def test_variants_map_to_configs(self):
        assert variant_tls("http") is None
        assert variant_tls("https").tx_offload is False
        assert variant_tls("offload").tx_offload is True
        assert variant_tls("offload+zc").zerocopy_sendfile is True
        with pytest.raises(ValueError):
            variant_tls("spdy")

    def test_c2_run(self):
        r = run_nginx("http", storage="c2", file_size=65536, connections=8, warmup=6e-3, measure=4e-3)
        assert r.goodput_gbps > 1
        assert r.requests > 0

    def test_c1_is_drive_bound_not_faster_than_drive(self):
        r = run_nginx(
            "http", storage="c1", file_size=65536, server_cores=8,
            connections=16, warmup=8e-3, measure=6e-3,
        )
        assert r.goodput_gbps < 22.5  # the drive's ~21.4 Gbps ceiling

    def test_bad_storage_rejected(self):
        with pytest.raises(ValueError):
            run_nginx("http", storage="c9")


class TestRofRunner:
    def test_offload_beats_baseline(self):
        base = run_rof("baseline", value_size=65536, warmup=4e-3, measure=5e-3)
        off = run_rof("offload", value_size=65536, warmup=4e-3, measure=5e-3)
        assert base.gets > 0 and off.gets > 0
        assert off.goodput_gbps > base.goodput_gbps

    def test_bad_variant(self):
        with pytest.raises(ValueError):
            run_rof("turbo")


class TestScalabilityRunner:
    def test_point_reports_cache_stats(self):
        p = run_scale_point(64, server_cores=2, measure=4e-3)
        assert p.goodput_gbps > 0
        assert p.cache_capacity_flows > 0
        assert 0 <= p.cache_miss_rate <= 1
        assert p.mean_rx_batch >= 1
