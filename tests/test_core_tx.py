"""Transmit-engine unit tests: in-sequence offload, retransmission
recovery via l5o_get_tx_msgstate, walker correctness across packets."""

import pytest

from repro.core.types import Direction, ProtocolError
from repro.net.host import Host
from repro.net.packet import FlowKey, Packet
from repro.nic import OffloadNic
from repro.sim import Simulator
from toy_l5p import ToyAdapter, ToyL5pOps, encode_message

FLOW = FlowKey("client", 1000, "server", 2000)


class _FakeConn:
    def __init__(self, flow):
        self.flow = flow
        self.tx_ctx_id = None
        self.snd_una = 0  # nothing acknowledged in these unit tests


class TxHarness:
    """An OffloadNic wired to a sink instead of a link."""

    def __init__(self, start_seq=0):
        self.sim = Simulator()
        self.nic = OffloadNic()
        self.host = Host(self.sim, "client", nic=self.nic)
        self.wire = []
        self.nic.output = self.wire.append  # bypass the link
        self.conn = _FakeConn(FLOW)
        self.ops = ToyL5pOps(start_seq=start_seq)
        self.ctx = self.nic.driver.l5o_create(
            self.conn, ToyAdapter(), None, tcpsn=start_seq, direction=Direction.TX, l5p_ops=self.ops
        )

    def send_packet(self, seq, payload):
        pkt = Packet(FLOW, seq=seq, payload=payload)
        pkt.tx_ctx_id = self.conn.tx_ctx_id
        self.nic.transmit(self.conn, pkt)
        return self.wire[-1]

    def wire_bytes(self):
        return b"".join(p.payload for p in self.wire)


def segments(data, size):
    return [(i, data[i : i + size]) for i in range(0, len(data), size)]


class TestInSequenceTx:
    def test_single_message_one_packet(self):
        h = TxHarness()
        body = b"hello offload world"
        plain = h.ops.stage(body)
        out = h.send_packet(0, plain)
        assert out.payload == encode_message(body, 0)
        assert out.meta.offloaded

    def test_message_split_across_packets(self):
        h = TxHarness()
        body = bytes(range(200)) * 10
        plain = h.ops.stage(body)
        for seg_seq, chunk in segments(plain, 137):
            h.send_packet(seg_seq, chunk)
        assert h.wire_bytes() == encode_message(body, 0)

    def test_multiple_messages_multiple_packets(self):
        h = TxHarness()
        bodies = [b"a" * 50, b"b" * 500, b"", b"c" * 33]
        plain = b"".join(h.ops.stage(b) for b in bodies)
        for seg_seq, chunk in segments(plain, 100):
            h.send_packet(seg_seq, chunk)
        expect = b"".join(encode_message(b, i) for i, b in enumerate(bodies))
        assert h.wire_bytes() == expect

    def test_header_split_across_packets(self):
        h = TxHarness()
        bodies = [b"x" * 10, b"y" * 10]
        plain = b"".join(h.ops.stage(b) for b in bodies)
        # Cut inside the second message's 4-byte header.
        cut = 10 + 4 + 4 + 2
        h.send_packet(0, plain[:cut])
        h.send_packet(cut, plain[cut:])
        expect = encode_message(bodies[0], 0) + encode_message(bodies[1], 1)
        assert h.wire_bytes() == expect

    def test_trailer_split_across_packets(self):
        h = TxHarness()
        body = b"q" * 20
        plain = h.ops.stage(body)
        cut = 4 + 20 + 2  # inside the 4-byte trailer
        h.send_packet(0, plain[:cut])
        h.send_packet(cut, plain[cut:])
        assert h.wire_bytes() == encode_message(body, 0)

    def test_empty_payload_packets_ignored(self):
        h = TxHarness()
        plain = h.ops.stage(b"data")
        h.send_packet(0, b"")  # pure ACK
        out = h.send_packet(0, plain)
        assert out.payload == encode_message(b"data", 0)


class TestTxRecovery:
    def test_retransmission_reproduces_identical_bytes(self):
        h = TxHarness()
        body = bytes(range(256)) * 4
        plain = h.ops.stage(body)
        firsts = {}
        for seg_seq, chunk in segments(plain, 100):
            firsts[seg_seq] = h.send_packet(seg_seq, chunk).payload
        # Retransmit a middle segment: must produce the same wire bytes.
        again = h.send_packet(300, plain[300:400])
        assert again.payload == firsts[300]
        assert h.ctx.tx_recoveries == 1
        assert h.ctx.tx_recovery_bytes == 300

    def test_retransmit_then_new_data_recovers_twice(self):
        h = TxHarness()
        bodies = [b"m" * 300, b"n" * 300]
        plain = b"".join(h.ops.stage(b) for b in bodies)
        outs = {}
        for seg_seq, chunk in segments(plain, 100):
            outs[seg_seq] = h.send_packet(seg_seq, chunk).payload
        h.send_packet(100, plain[100:200])  # retransmit
        new = h.send_packet(600, plain[600:])  # jump forward again
        assert new.payload == outs[600]
        assert h.ctx.tx_recoveries == 2

    def test_recovery_into_second_message(self):
        h = TxHarness()
        bodies = [b"A" * 100, b"B" * 100]
        plain = b"".join(h.ops.stage(b) for b in bodies)
        for seg_seq, chunk in segments(plain, 72):
            h.send_packet(seg_seq, chunk)
        # Retransmit a slice that lies wholly inside message 2's body.
        start = 108 + 20
        out = h.send_packet(start, plain[start : start + 50])
        expect = (encode_message(bodies[0], 0) + encode_message(bodies[1], 1))[start : start + 50]
        assert out.payload == expect

    def test_recovery_at_exact_message_start_needs_no_replay(self):
        h = TxHarness()
        h.ops.stage(b"1" * 50)
        plain2_start = 58
        plain = h.ops.stage(b"2" * 50)
        h.send_packet(0, h.ops.messages[0][2])
        h.send_packet(plain2_start, plain)
        out = h.send_packet(plain2_start, plain)  # retransmit whole msg 2
        assert out.payload == encode_message(b"2" * 50, 1)
        assert h.ctx.tx_recovery_bytes == 0

    def test_recovery_counts_pcie_bytes(self):
        h = TxHarness()
        plain = h.ops.stage(b"z" * 500)
        for seg_seq, chunk in segments(plain, 100):
            h.send_packet(seg_seq, chunk)
        h.send_packet(400, plain[400:500])
        assert h.nic.pcie.bytes_by_category["recovery"] == 400

    def test_missing_msgstate_raises(self):
        h = TxHarness()
        plain = h.ops.stage(b"w" * 100)
        h.send_packet(0, plain)
        h.ops.messages.clear()  # L5P released state too early
        with pytest.raises(ProtocolError):
            h.send_packet(50, plain[50:60])


class TestTxValidation:
    def test_unparseable_stream_raises(self):
        h = TxHarness()
        with pytest.raises(ProtocolError):
            h.send_packet(0, b"\xff" * 64)  # not a toy message

    def test_flows_without_context_pass_through(self):
        h = TxHarness()
        other = _FakeConn(FlowKey("client", 1, "server", 2))
        pkt = Packet(other.flow, seq=0, payload=b"\xff" * 64)
        h.nic.transmit(other, pkt)
        assert h.wire[-1].payload == b"\xff" * 64
        assert not h.wire[-1].meta.offloaded

    def test_sequence_wraparound_tx(self):
        start = (1 << 32) - 50
        h = TxHarness(start_seq=start)
        body = b"wrap" * 30
        plain = h.ops.stage(body)  # ToyL5pOps.next_seq handles ints fine
        first, second = plain[:50], plain[50:]
        h.send_packet(start, first)
        h.send_packet((start + 50) % (1 << 32), second)
        assert h.wire_bytes() == encode_message(body, 0)
