"""Per-core cycle accounting integrated with the event loop.

The model is *charge and serialize*: a component requests ``cycles`` of
work on a core; the work begins when the core frees up and its
completion callback fires when it ends.  Each charge is attributed to a
category (``crypto``, ``copy``, ``crc``, ``stack``, ...) so the
benchmarks can reproduce the paper's cycle-breakdown figures (2, 10,
11) directly from instrumentation rather than hand-waving.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Optional

from repro.cpu.model import CostModel
from repro.sim import Simulator


class Core:
    """One CPU core: a FIFO resource measured in cycles."""

    def __init__(self, sim: Simulator, model: CostModel, index: int = 0):
        self.sim = sim
        self.model = model
        self.index = index
        self.busy_until = 0.0
        self.busy_seconds = 0.0
        self.cycles_by_category: dict[str, float] = defaultdict(float)

    # ------------------------------------------------------------------
    def charge(self, cycles: float, category: str) -> float:
        """Occupy the core for ``cycles``; returns the completion time.

        Work starts when the core is free (or now, whichever is later)
        and runs without preemption.
        """
        if cycles < 0:
            raise ValueError(f"negative cycle charge {cycles!r}")
        start = max(self.sim.now, self.busy_until)
        duration = self.model.seconds(cycles)
        self.busy_until = start + duration
        self.busy_seconds += duration
        self.cycles_by_category[category] += cycles
        return self.busy_until

    def run(self, cycles: float, category: str, fn: Callable[..., Any], *args: Any) -> None:
        """Charge ``cycles`` and invoke ``fn(*args)`` when the work ends."""
        done = self.charge(cycles, category)
        self.sim.at(done, fn, *args)

    def when_free(self, fn: Callable[..., Any], *args: Any) -> None:
        """Invoke ``fn(*args)`` as soon as the core is idle."""
        self.sim.at(max(self.sim.now, self.busy_until), fn, *args)

    # ------------------------------------------------------------------
    def utilization(self, interval: float) -> float:
        """Fraction of ``interval`` this core spent busy."""
        if interval <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / interval)

    def reset_stats(self) -> None:
        self.busy_seconds = 0.0
        self.cycles_by_category.clear()

    @property
    def total_cycles(self) -> float:
        return sum(self.cycles_by_category.values())


class Cpu:
    """A socket's worth of identical cores with RSS-style flow steering."""

    def __init__(self, sim: Simulator, model: CostModel, cores: int = 1):
        if cores < 1:
            raise ValueError("need at least one core")
        self.sim = sim
        self.model = model
        self.cores = [Core(sim, model, index=i) for i in range(cores)]

    def core_for_flow(self, flow_hash: int) -> Core:
        """Deterministic flow→core steering (RSS)."""
        return self.cores[flow_hash % len(self.cores)]

    def charge(self, cycles: float, category: str, core: Optional[Core] = None) -> float:
        return (core or self.cores[0]).charge(cycles, category)

    # ------------------------------------------------------------------
    def busy_cores(self, interval: float) -> float:
        """Average number of busy cores over ``interval`` (the paper's
        "busy cores" metric in Figures 12–15 and 19)."""
        if interval <= 0:
            return 0.0
        return sum(c.busy_seconds for c in self.cores) / interval

    def cycles_by_category(self) -> dict[str, float]:
        """Aggregate cycle attribution across all cores."""
        total: dict[str, float] = defaultdict(float)
        for core in self.cores:
            for category, cycles in core.cycles_by_category.items():
                total[category] += cycles
        return dict(total)

    def reset_stats(self) -> None:
        for core in self.cores:
            core.reset_stats()

    @property
    def total_cycles(self) -> float:
        return sum(c.total_cycles for c in self.cores)
