"""Uniform app-level transport over raw TCP or kTLS.

Applications (nginx, wrk, RoF, memtier) speak to a :class:`Transport`
so each can run in http / https / https+offload configurations without
code changes — mirroring how the real apps link against OpenSSL or not.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.l5p.tls.ktls import KtlsSocket, TlsConfig
from repro.net.host import Host


class Transport:
    """send/sendfile/on_data facade over a TcpConnection or KtlsSocket."""

    def __init__(self, host: Host, conn, role: str, tls: Optional[TlsConfig] = None):
        self.host = host
        self.conn = conn
        self.core = host.core_for_flow(conn.flow)
        self.on_data: Optional[Callable[[bytes], None]] = None
        self.on_ready: Optional[Callable[[], None]] = None
        self.on_writable: Optional[Callable[[], None]] = None
        self._tls: Optional[KtlsSocket] = None

        if tls is not None:
            self._tls = KtlsSocket(host, conn, role, tls)
            self._tls.on_data = self._deliver
            self._tls.on_ready = self._ready
            self._tls.on_writable = self._writable
        else:
            conn.on_data = lambda skb: self._deliver(skb.data)
            conn.on_writable = self._writable
            if conn.state == "established":
                host.sim.call_soon(self._ready)
            else:
                previous = conn.on_established

                def established():
                    if previous:
                        previous()
                    self._ready()

                conn.on_established = established

    # ------------------------------------------------------------------
    def _deliver(self, data: bytes) -> None:
        if self.on_data:
            self.on_data(data)

    def _ready(self) -> None:
        if self.on_ready:
            self.on_ready()

    def _writable(self) -> None:
        if self.on_writable:
            self.on_writable()

    # ------------------------------------------------------------------
    @property
    def ready(self) -> bool:
        if self._tls is not None:
            return self._tls.ready
        return self.conn.state in ("established", "close-wait")

    @property
    def send_space(self) -> int:
        if self._tls is not None:
            return self._tls.send_space if self._tls.ready else 0
        return self.conn.send_space

    def send(self, data: bytes) -> int:
        if self._tls is not None:
            return self._tls.send(data)
        return self.conn.send(data)

    def sendfile(self, data: bytes) -> int:
        """Transmit page-cache bytes (no user copy on the plain path)."""
        if self._tls is not None:
            return self._tls.sendfile(data)
        pages = (len(data) + 4095) // 4096
        self.core.charge(self.host.model.cycles_sendfile_page * pages, "stack")
        return self.conn.send(data)

    def close(self) -> None:
        self.conn.close()

    @property
    def tls(self) -> Optional[KtlsSocket]:
        return self._tls
