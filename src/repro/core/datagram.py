"""Datagram offload engine (paper §7, "Not restricted to TCP").

For L5Ps whose messages are self-contained datagrams (DTLS over UDP),
autonomous offloading is trivial: "the NIC never has to worry about
losing and having to reconstruct its position in the sequence ...
falling back on L5P software processing is likewise never needed."
The engine therefore has no walker, no resync machinery, and no
sequence state — only a per-flow static context (keys) and a
per-datagram transform.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.net.packet import FlowKey, Packet


class DatagramAdapter:
    """What the NIC knows about a datagram L5P."""

    name = "abstract-datagram"

    def tx_transform(self, static_state: Any, payload: bytes) -> Optional[bytes]:
        """Transform one outgoing datagram; None = pass through."""
        raise NotImplementedError

    def rx_transform(self, static_state: Any, payload: bytes) -> Optional[tuple[bytes, bool]]:
        """Transform one incoming datagram: (new payload, ok), or None
        if the datagram does not parse as this L5P (pass through)."""
        raise NotImplementedError


class DatagramContext:
    """Per-flow datagram offload context (static state only)."""

    def __init__(self, ctx_id: int, flow: FlowKey, adapter: DatagramAdapter, static_state: Any):
        self.ctx_id = ctx_id
        self.flow = flow
        self.adapter = adapter
        self.static_state = static_state
        self.datagrams_offloaded = 0
        self.datagrams_passed = 0


class DatagramEngine:
    """TX/RX datagram processing on the NIC."""

    def __init__(self, nic):
        self.nic = nic

    def process_tx(self, ctx: DatagramContext, pkt: Packet) -> None:
        out = ctx.adapter.tx_transform(ctx.static_state, pkt.payload)
        self.nic.cache_datagram(ctx)
        self.nic.pcie.count("tx-packet", len(pkt.payload))
        if out is None:
            ctx.datagrams_passed += 1
            return
        if len(out) != len(pkt.payload):
            raise ValueError(f"{ctx.adapter.name}: datagram transform changed size")
        pkt.payload = out
        pkt.meta.offloaded = True
        ctx.datagrams_offloaded += 1

    def process_rx(self, ctx: DatagramContext, pkt: Packet) -> None:
        result = ctx.adapter.rx_transform(ctx.static_state, pkt.payload)
        self.nic.cache_datagram(ctx)
        self.nic.pcie.count("rx-packet", len(pkt.payload))
        if result is None:
            ctx.datagrams_passed += 1
            return
        out, ok = result
        pkt.payload = out
        pkt.meta.offloaded = True
        pkt.meta.decrypted = ok
        pkt.meta.crc_ok = ok
        ctx.datagrams_offloaded += 1
