"""Storage substrate tests: block device timing/content, page cache,
flat filesystem with read-ahead."""

import pytest

from repro.sim import Simulator
from repro.storage.blockdev import BLOCK_SIZE, BlockDevice
from repro.storage.fs import FlatFs
from repro.storage.pagecache import PAGE_SIZE, PageCache


class TestBlockDevice:
    def test_read_delivers_deterministic_content(self):
        sim = Simulator()
        dev = BlockDevice(sim)
        out = {}
        dev.read(0, 8192, lambda data: out.setdefault("d", data))
        sim.run()
        assert out["d"] == dev.peek(0, 8192)
        assert len(out["d"]) == 8192

    def test_write_then_read(self):
        sim = Simulator()
        dev = BlockDevice(sim)
        payload = bytes(range(256)) * 32
        done = []
        dev.write(4096, payload, lambda: done.append(True))
        out = {}
        dev.read(4096, len(payload), lambda data: out.setdefault("d", data))
        sim.run()
        assert done == [True]
        assert out["d"] == payload

    def test_unaligned_write_preserves_neighbors(self):
        sim = Simulator()
        dev = BlockDevice(sim)
        before = dev.peek(0, 3 * BLOCK_SIZE)
        dev.write(100, b"X" * 50, lambda: None)
        sim.run()
        after = dev.peek(0, 3 * BLOCK_SIZE)
        assert after[:100] == before[:100]
        assert after[100:150] == b"X" * 50
        assert after[150:] == before[150:]

    def test_bandwidth_bound_timing(self):
        sim = Simulator()
        dev = BlockDevice(sim, read_bw_bytes_per_s=1e9, access_latency_s=10e-6)
        times = {}
        dev.read(0, 1_000_000, lambda data: times.setdefault("t", sim.now))
        sim.run()
        # 1 MB at 1 GB/s = 1 ms, plus 10 us latency.
        assert times["t"] == pytest.approx(1e-3 + 10e-6)

    def test_reads_serialize_through_channel(self):
        sim = Simulator()
        dev = BlockDevice(sim, read_bw_bytes_per_s=1e9, access_latency_s=0.0)
        times = []
        dev.read(0, 1_000_000, lambda data: times.append(sim.now))
        dev.read(0, 1_000_000, lambda data: times.append(sim.now))
        sim.run()
        assert times[1] == pytest.approx(2e-3)

    def test_out_of_range_rejected(self):
        dev = BlockDevice(Simulator(), capacity_bytes=1 << 20)
        with pytest.raises(ValueError):
            dev.read((1 << 20) - 10, 100, lambda d: None)


class TestPageCache:
    def test_hit_miss_accounting(self):
        pc = PageCache()
        assert pc.lookup(("f", 0)) is None
        pc.insert(("f", 0), b"x" * PAGE_SIZE)
        assert pc.lookup(("f", 0)) == b"x" * PAGE_SIZE
        assert pc.hits == 1
        assert pc.misses == 1

    def test_capacity_evicts_lru(self):
        pc = PageCache(capacity_bytes=2 * PAGE_SIZE)
        pc.insert(("f", 0), b"0")
        pc.insert(("f", 1), b"1")
        pc.lookup(("f", 0))  # refresh page 0
        pc.insert(("f", 2), b"2")
        assert pc.contains(("f", 0))
        assert not pc.contains(("f", 1))

    def test_drop(self):
        pc = PageCache()
        pc.insert(("f", 0), b"x")
        pc.drop()
        assert pc.resident_pages == 0

    def test_oversized_page_rejected(self):
        with pytest.raises(ValueError):
            PageCache().insert(("f", 0), b"x" * (PAGE_SIZE + 1))


class TestFlatFs:
    def setup_method(self):
        self.sim = Simulator()
        self.dev = BlockDevice(self.sim)
        self.fs = FlatFs(self.dev)

    def test_create_and_read(self):
        self.fs.create("a.bin", 10_000)
        out = {}
        self.fs.read("a.bin", 0, 10_000, lambda data: out.setdefault("d", data))
        self.sim.run()
        assert out["d"] == self.dev.peek(0, 10_000)

    def test_second_read_hits_cache(self):
        self.fs.create("a.bin", 8192)
        self.fs.read("a.bin", 0, 8192, lambda d: None)
        self.sim.run()
        reads_before = self.dev.reads
        served_sync = self.fs.read("a.bin", 0, 8192, lambda d: None)
        assert served_sync is True
        assert self.dev.reads == reads_before

    def test_partial_read_with_offset(self):
        self.fs.create("a.bin", 100_000)
        out = {}
        self.fs.read("a.bin", 12_345, 23_456, lambda data: out.setdefault("d", data))
        self.sim.run()
        assert out["d"] == self.dev.peek(12_345, 23_456)

    def test_files_do_not_overlap(self):
        e1 = self.fs.create("a", 5000)
        e2 = self.fs.create("b", 5000)
        assert e2.offset >= e1.offset + 5000
        assert e2.offset % PAGE_SIZE == 0

    def test_warm_builds_c2_state(self):
        self.fs.create("a", 65536)
        done = []
        self.fs.warm("a", lambda: done.append(True))
        self.sim.run()
        assert done == [True]
        served_sync = self.fs.read("a", 0, 65536, lambda d: None)
        assert served_sync is True

    def test_drop_caches_builds_c1_state(self):
        self.fs.create("a", 8192)
        self.fs.warm("a", lambda: None)
        self.sim.run()
        self.fs.drop_caches()
        assert self.fs.read("a", 0, 8192, lambda d: None) is False

    def test_read_outside_file_rejected(self):
        self.fs.create("a", 100)
        with pytest.raises(ValueError):
            self.fs.read("a", 50, 100, lambda d: None)

    def test_missing_file(self):
        with pytest.raises(FileNotFoundError):
            self.fs.stat("nope")

    def test_duplicate_create_rejected(self):
        self.fs.create("a", 1)
        with pytest.raises(ValueError):
            self.fs.create("a", 1)
