"""Layer-5 protocols: kernel TLS, NVMe-TCP, and their composition."""
