"""CPU modelling: cycle cost constants, per-core accounting, LLC model,
and the on-CPU vs off-CPU accelerator models used by Table 1."""

from repro.cpu.model import CostModel, DEFAULT_COST_MODEL
from repro.cpu.core import Core, Cpu
from repro.cpu.cache import LlcModel
from repro.cpu.accel import AesNiModel, QatModel

__all__ = [
    "CostModel",
    "DEFAULT_COST_MODEL",
    "Core",
    "Cpu",
    "LlcModel",
    "AesNiModel",
    "QatModel",
]
