"""FaultPlan construction-time validation: impossible plans raise
``ValueError`` with a message naming the offending field, instead of
producing silently-wrong fault behavior deep inside a soak."""

import pytest

from repro.faults.plan import (
    DegradePolicy,
    FaultPlan,
    GilbertElliott,
    LinkFaultProfile,
    NicFaultProfile,
    NicLifecycleProfile,
)


class TestProbabilityFields:
    @pytest.mark.parametrize("value", [-0.1, 1.5, 2.0])
    def test_link_corrupt_out_of_range(self, value):
        with pytest.raises(ValueError, match=r"LinkFaultProfile\.corrupt.*probability"):
            LinkFaultProfile(corrupt=value)

    @pytest.mark.parametrize(
        "field", ["p_good_to_bad", "p_bad_to_good", "loss_good", "loss_bad"]
    )
    def test_gilbert_elliott_fields_are_probabilities(self, field):
        with pytest.raises(ValueError, match=rf"GilbertElliott\.{field}"):
            GilbertElliott(**{field: 1.01})

    @pytest.mark.parametrize(
        "field",
        [
            "cache_evict_prob",
            "pcie_stall_prob",
            "pcie_fail_prob",
            "resync_resp_drop",
            "resync_resp_delay",
            "resync_resp_dup",
        ],
    )
    def test_nic_probability_fields(self, field):
        with pytest.raises(ValueError, match=rf"NicFaultProfile\.{field}"):
            NicFaultProfile(**{field: -0.5})


class TestMagnitudeFields:
    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError, match=r"jitter_s must be >= 0"):
            LinkFaultProfile(jitter_s=-1e-6)

    def test_degrade_timeout_must_be_positive(self):
        with pytest.raises(ValueError, match=r"resync_timeout_s must be > 0"):
            DegradePolicy(resync_timeout_s=0.0)

    def test_degrade_backoff_must_be_positive(self):
        with pytest.raises(ValueError, match=r"resync_backoff must be > 0"):
            DegradePolicy(resync_backoff=0.0)

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match=r"max_resync_retries must be >= 0"):
            DegradePolicy(max_resync_retries=-1)


class TestWindows:
    def test_inverted_flap_window(self):
        with pytest.raises(ValueError, match=r"inverted or negative"):
            LinkFaultProfile(flaps=((2e-3, 1e-3),))

    def test_negative_storm_window(self):
        with pytest.raises(ValueError, match=r"cache_storm_windows"):
            NicFaultProfile(cache_storm_windows=((-1e-3, 1e-3),))

    def test_malformed_window_entry(self):
        with pytest.raises(ValueError, match=r"\(start_s, end_s\) pairs"):
            LinkFaultProfile(flaps=((1e-3,),))


class TestLifecycleProfile:
    def test_inverted_hang_window(self):
        with pytest.raises(ValueError, match=r"hang_windows"):
            NicLifecycleProfile(hang_windows=((5e-3, 1e-3),))

    def test_inverted_reset_latency(self):
        with pytest.raises(ValueError, match=r"reset_latency_s"):
            NicLifecycleProfile(reset_latency_s=(2e-3, 1e-3))

    def test_zero_heartbeat_rejected(self):
        with pytest.raises(ValueError, match=r"heartbeat_interval_s must be > 0"):
            NicLifecycleProfile(heartbeat_interval_s=0.0)

    @pytest.mark.parametrize("field", ["missed_heartbeats", "reinstall_batch"])
    def test_counts_must_be_at_least_one(self, field):
        with pytest.raises(ValueError, match=rf"{field} must be >= 1"):
            NicLifecycleProfile(**{field: 0})

    def test_unknown_personality_rejected(self):
        with pytest.raises(ValueError, match=r"personality must be one of"):
            NicLifecycleProfile(personality="smartnic")

    def test_negative_crash_hazard_rejected(self):
        with pytest.raises(ValueError, match=r"crash_prob_per_s must be >= 0"):
            NicLifecycleProfile(crash_prob_per_s=-0.1)


class TestValidPlansStillConstruct:
    def test_zero_fault_defaults_are_valid(self):
        plan = FaultPlan(
            to_server=LinkFaultProfile(),
            nic=NicFaultProfile(),
            degrade=DegradePolicy(),
            lifecycle=NicLifecycleProfile(),
        )
        described = plan.describe()
        assert described["lifecycle"]["personality"] == "autonomous"

    def test_describe_includes_lifecycle_knobs(self):
        plan = FaultPlan(
            lifecycle=NicLifecycleProfile(
                hang_windows=((1e-3, 2e-3),), personality="toe"
            )
        )
        described = plan.describe()
        assert described["lifecycle"]["hang_windows"] == ((1e-3, 2e-3),)
        assert described["lifecycle"]["personality"] == "toe"

    def test_boundary_probabilities_accepted(self):
        GilbertElliott(p_good_to_bad=0.0, p_bad_to_good=1.0, loss_bad=1.0)
        NicFaultProfile(resync_resp_drop=1.0)
        LinkFaultProfile(corrupt=1.0)
