"""Unit tests for units and statistics helpers."""

import pytest

from repro.util import stats, units


class TestUnits:
    def test_parse_binary_sizes(self):
        assert units.parse_size("4K") == 4096
        assert units.parse_size("4KiB") == 4096
        assert units.parse_size("256k") == 256 * 1024
        assert units.parse_size("1MiB") == 1024 * 1024
        assert units.parse_size("2g") == 2 * 1024**3

    def test_parse_decimal_sizes(self):
        assert units.parse_size("1kb") == 1000
        assert units.parse_size("3MB") == 3_000_000

    def test_parse_plain_bytes(self):
        assert units.parse_size("512") == 512
        assert units.parse_size("128B") == 128

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            units.parse_size("banana")
        with pytest.raises(ValueError):
            units.parse_size("12q")

    def test_gbps(self):
        # 1 GB in one second = 8 Gbps.
        assert units.gbps(1_000_000_000, 1.0) == pytest.approx(8.0)
        with pytest.raises(ValueError):
            units.gbps(1, 0)

    def test_fmt_size_round_trips(self):
        for text in ("4KiB", "256KiB", "16MiB", "1GiB", "100B"):
            assert units.fmt_size(units.parse_size(text)) == text


class TestStats:
    def test_trimmed_mean_drops_min_and_max(self):
        values = [100.0, 1.0, 2.0, 3.0, -50.0]
        assert stats.trimmed_mean(values) == pytest.approx(2.0)

    def test_trimmed_mean_small_samples(self):
        assert stats.trimmed_mean([5.0]) == 5.0
        assert stats.trimmed_mean([4.0, 6.0]) == 5.0

    def test_trimmed_mean_empty_raises(self):
        with pytest.raises(ValueError):
            stats.trimmed_mean([])

    def test_stdev(self):
        assert stats.stdev([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == pytest.approx(2.138, abs=1e-3)
        assert stats.stdev([3.0]) == 0.0

    def test_summary(self):
        s = stats.Summary.of([1.0, 2.0, 3.0, 4.0, 100.0])
        assert s.mean == pytest.approx(3.0)
        assert s.n == 5
        assert s.minimum == 1.0
        assert s.maximum == 100.0

    def test_summary_format(self):
        s = stats.Summary.of([10.0, 10.0, 10.0])
        assert "±0.0%" in f"{s}"

    def test_percentile(self):
        values = list(range(1, 101))
        assert stats.percentile(values, 50) == 50
        assert stats.percentile(values, 99) == 99
        assert stats.percentile(values, 100) == 100
        with pytest.raises(ValueError):
            stats.percentile([], 50)

    def test_counter(self):
        c = stats.Counter()
        c.add(10, 2)
        c.add(20)
        assert c.total == 30
        assert c.events == 3
        assert c.per_event == 10
