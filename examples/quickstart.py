#!/usr/bin/env python3
"""Quickstart: autonomous TLS offload in 60 lines.

Builds the paper's two-machine testbed, connects a kTLS client to a
kTLS sink with the autonomous NIC offload enabled on both sides, pushes
data through a real (simulated) TCP stack, and shows what the offload
did: every in-sequence packet was encrypted/decrypted by the NIC while
TCP stayed entirely in software.

Run:  python examples/quickstart.py
"""

from repro.harness.testbed import Testbed, TestbedConfig
from repro.l5p.tls import KtlsSocket, TlsConfig


def main() -> None:
    tb = Testbed(TestbedConfig(seed=1, server_cores=1, generator_cores=2))

    received = bytearray()

    def on_accept(conn):
        tls = KtlsSocket(tb.generator, conn, "server", TlsConfig(rx_offload=True))
        tls.on_data = received.extend

    tb.generator.tcp.listen(443, on_accept)

    conn = tb.server.tcp.connect("generator", 443)
    client = KtlsSocket(tb.server, conn, "client", TlsConfig(tx_offload=True))

    payload = b"autonomous offloads keep TCP in software! " * 25_000  # ~1 MiB
    progress = {"sent": 0}

    def feed():
        while progress["sent"] < len(payload):
            sent = client.send(payload[progress["sent"] : progress["sent"] + 65536])
            if sent == 0:
                return
            progress["sent"] += sent

    client.on_ready = feed
    client.on_writable = feed

    tb.run(until=0.1)

    assert bytes(received) == payload, "decrypted stream must match"
    tx_stats = tb.server.nic.offload_stats()
    rx_stats = tb.generator.nic.offload_stats()
    crypto_cycles = tb.server.cpu.cycles_by_category().get("crypto", 0)

    print(f"transferred        : {len(received):,} bytes over TLS in "
          f"{tb.sim.now * 1000:.2f} ms of simulated time")
    print(f"sender NIC         : {tx_stats['pkts_offloaded']} packets encrypted inline")
    print(f"receiver NIC       : {rx_stats['pkts_offloaded']} packets decrypted inline")
    print(f"sender CPU crypto  : {crypto_cycles:,.0f} cycles "
          f"(just the handshake — the record path cost zero)")
    print("TCP retransmissions, acks, congestion control: all still in software.")


if __name__ == "__main__":
    main()
